"""The intra-document splitter: carve, type, reassemble — identically.

The subtree-parallel pipeline types one huge document as parallel
top-level chunks and must be indistinguishable from the serial bytes
machine: the *interned-identical* type on every valid document (the
speculative chunker may decline or fail validation, falling back to the
serial fold — never to a wrong answer), and the exact serial error on
every malformed one (the fallback path IS the serial machine).

Covers the scanner (``scan_depth1_spans``), the planner
(``plan_subtree_split`` + ``combine_subtree``), the driver
(``infer_subtree_text``, serial and multiprocess), the scheduler's
third mode, the calibration constants feeding its cost model, and the
digit-key line-cache regression that rode along with this change.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import open_corpus
from repro.inference import infer_subtree_text
from repro.inference.engine import (
    TypeAccumulator,
    accumulate_ranges,
    combine_subtree,
    plan_subtree_split,
    type_subtree_chunks,
)
from repro.parsing.structural import document_bounds, scan_depth1_spans
from repro.types import Equivalence
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable


def _corpus_path(tmp_path, lines):
    path = tmp_path / "corpus.ndjson"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def _subtree_result(tmp_path, lines, processes, **kwargs):
    with open_corpus(_corpus_path(tmp_path, lines)) as corpus:
        return infer_subtree_text(
            corpus, processes=processes, min_split_bytes=0, **kwargs
        )


def _reference(lines, table):
    encoder = EventTypeEncoder(table)
    accumulator = TypeAccumulator(table=table)
    for line in lines:
        if not line or line.isspace():
            continue
        accumulator.add_type(encoder.encode_text(line))
    return accumulator.result()


# ---------------------------------------------------------------------------
# the exact depth-1 scanner
# ---------------------------------------------------------------------------


class TestScanner:
    def test_array_spans_cover_every_element(self):
        data = b'  [1, "two", [3, 4], {"five": 5}, null]  '
        scan = scan_depth1_spans(data)
        assert scan is not None and scan.kind == "array"
        values = [data[s:e] for s, e in scan.parts]
        assert values == [b"1", b'"two"', b"[3, 4]", b'{"five": 5}', b"null"]

    def test_object_spans_carry_key_and_value(self):
        data = b'{"a": 1, "b c": [2], "d": {"e": 3}}'
        scan = scan_depth1_spans(data)
        assert scan is not None and scan.kind == "object"
        members = [
            (data[kb:ke], data[vs:ve]) for (_ks, kb, ke, vs, ve) in scan.parts
        ]
        assert members == [
            (b"a", b"1"),
            (b"b c", b"[2]"),
            (b"d", b'{"e": 3}'),
        ]

    def test_escaped_quotes_never_break_a_span(self):
        # Strings whose contents mimic structure: escaped quotes,
        # brackets, commas and colons inside literals.
        data = rb'["a\"b", "}{", "[,]", {"k\"": ":"}]'
        scan = scan_depth1_spans(data)
        assert scan is not None
        values = [data[s:e] for s, e in scan.parts]
        assert values == [rb'"a\"b"', b'"}{"', b'"[,]"', rb'{"k\"": ":"}']

    def test_backslash_runs_before_closing_quotes(self):
        # \\" ends the string (escaped backslash, real quote); \\\" does
        # not (escaped backslash, escaped quote).
        data = rb'["a\\", "b\\\"c", "\\\\"]'
        scan = scan_depth1_spans(data)
        assert scan is not None
        values = [data[s:e] for s, e in scan.parts]
        assert values == [rb'"a\\"', rb'"b\\\"c"', rb'"\\\\"']

    def test_multibyte_utf8_inside_strings(self):
        doc = '["héllo", {"日本": "語"}, "𝄞𝄞"]'
        data = doc.encode("utf-8")
        scan = scan_depth1_spans(data)
        assert scan is not None
        assert len(scan.parts) == 3
        assert data[scan.parts[1][0] : scan.parts[1][1]] == '{"日本": "語"}'.encode()

    def test_top_level_scalars_and_empty_containers(self):
        assert scan_depth1_spans(b"42") is None
        assert scan_depth1_spans(b'"str"') is None
        assert scan_depth1_spans(b"null") is None
        assert scan_depth1_spans(b"   ") is None
        for empty, kind in ((b"[]", "array"), (b"{ }", "object")):
            scan = scan_depth1_spans(empty)
            assert scan is not None and scan.kind == kind
            assert scan.parts == ()

    def test_malformed_buffers_decline(self):
        for bad in (
            b"[1, 2",  # unterminated
            b"[1, 2]]",  # trailing garbage
            b"[1 2]",  # missing comma
            b'{"a" 1}',  # missing colon
            b'{"a": }',  # missing value
            b"[,]",  # leading comma
            b'["unterminated]',
        ):
            assert scan_depth1_spans(bad) is None, bad

    def test_document_bounds_checks_edges_only(self):
        assert document_bounds(b" [1, 2] ") == ("array", 1, 6)
        assert document_bounds(b'{"a": 1}') == ("object", 0, 7)
        assert document_bounds(b"42") is None
        assert document_bounds(b"[1, 2}") is None


# ---------------------------------------------------------------------------
# the planner + reassembly (exact tier)
# ---------------------------------------------------------------------------


EXACT_DOCS = [
    '[{"a": 1}, {"a": 2, "b": "x"}, {"a": 3.5}, null, [1, 2], "s"]',
    '{"a": 1, "b": [1, 2, 3], "c": {"d": null}, "e": "f", "g": true}',
    "[[1], [2.5], [3], [], [[4]]]",
    '[{"k": [{"n": 1}]}, {"k": []}]',
    '["é", "日本語", "𝄞", {"ключ": "значение"}]',
    "[0, -1, 2.5, 3e10, 123456789012345678901234567890]",
]


@pytest.mark.parametrize("doc", EXACT_DOCS)
@pytest.mark.parametrize("targets", [2, 3, 5])
def test_exact_tier_reassembles_identically(doc, targets):
    data = doc.encode("utf-8")
    table = InternTable()
    encoder = EventTypeEncoder(table)
    reference = encoder.encode_bytes(data)
    split = plan_subtree_split(data, targets=targets)
    assert split is not None, doc
    chunk_parts = type_subtree_chunks(encoder, data, split.kind, split.chunks)
    assert combine_subtree(table, split, chunk_parts) is reference


def _speculative_type(data, table, encoder, *, targets=3, exact_limit=16):
    """The driver's descend-retry loop, with the exact tier forced off
    so the speculative carver and spine logic run on small docs."""
    skip = 0
    for _ in range(3):
        split = plan_subtree_split(
            data, targets=targets, exact_limit=exact_limit, skip_chunk_levels=skip
        )
        if split is None:
            return None
        try:
            chunk_parts = type_subtree_chunks(
                encoder, data, split.kind, split.chunks, max_depth=512 - split.spine_depth
            )
        except Exception:  # noqa: BLE001 - validation failure → re-plan deeper
            skip = split.spine_depth + 1
            continue
        try:
            heads = [
                type_subtree_chunks(encoder, data, "object", [frame[1]])[0]
                if frame[0] == "recw" and frame[1] is not None
                else None
                for frame in split.frames
            ]
        except Exception:  # noqa: BLE001 - a lying spine frame
            return None
        return combine_subtree(table, split, chunk_parts, heads)
    return None


@pytest.mark.parametrize(
    "doc",
    [
        # Wrapper spines: single-element arrays and last-member objects
        # around one splittable payload.
        '[{"meta": {"v": 1}, "rows": %s}]'
        % json.dumps([{"n": i, "v": i * 0.5} for i in range(200)]),
        json.dumps([[{"n": i} for i in range(150)]]),
        json.dumps({"rows": [{"n": i, "s": "x" * 10} for i in range(150)]}),
    ],
)
def test_deeply_nested_single_subtree_descends_the_spine(doc):
    data = doc.encode("utf-8")
    table = InternTable()
    encoder = EventTypeEncoder(table)
    reference = encoder.encode_bytes(data)
    got = _speculative_type(data, table, encoder)
    # The carver may decline (serial fallback) but must never be wrong.
    if got is not None:
        assert got is reference


def test_planner_declines_unsplittable_ranges():
    assert plan_subtree_split(b"42") is None
    assert plan_subtree_split(b"[]") is None
    assert plan_subtree_split(b"{}") is None
    assert plan_subtree_split(b"[1, 2]", min_bytes=1000) is None
    assert plan_subtree_split(b"not json at all") is None


# ---------------------------------------------------------------------------
# the driver: identity on valid corpora, error parity on malformed ones
# ---------------------------------------------------------------------------


DRIVER_DOCS = [
    json.dumps({"rows": [{"id": i, "tags": ["a", "b"], "w": i * 1.5} for i in range(300)]}),
    json.dumps([{"k": i} if i % 3 else {"k": i, "extra": None} for i in range(250)]),
    json.dumps([[i, i + 1] for i in range(200)]),
    json.dumps(list(range(500))),
    json.dumps({"meta": {"v": 1}, "rows": [{"n": i} for i in range(200)]}),
    json.dumps([{"rows": [{"n": i, "s": "x" * 20} for i in range(150)]}]),
]


@pytest.mark.parametrize("processes", [1, 2])
def test_driver_is_interned_identical_per_document(tmp_path, processes):
    for doc in DRIVER_DOCS:
        run = _subtree_result(tmp_path, [doc], processes)
        table = InternTable()
        assert table.canonical(run.result) is _reference([doc], table)


@pytest.mark.parametrize("processes", [1, 2])
def test_driver_mixes_small_and_huge_lines(tmp_path, processes):
    lines = ['{"small": 1}', "", DRIVER_DOCS[0], "   ", '{"small": 2.5}', DRIVER_DOCS[3]]
    run = _subtree_result(tmp_path, lines, processes)
    table = InternTable()
    assert table.canonical(run.result) is _reference(lines, table)


def test_driver_error_parity_with_serial_fold(tmp_path):
    # Malformed documents must raise exactly what the serial bytes fold
    # raises — same class, message, and position — because the subtree
    # route's authority on any decline IS the serial machine.
    for bad in (
        '[{"a": 1}, {"a": 01}]',  # leading zero deep in a chunk
        '[{"a": 1}, {"a": 2},]',  # trailing comma
        '[{"a": 1}, {"a": 2}] x',  # trailing garbage
        '{"rows": [1, 2, 3}',  # mismatched close
    ):
        path = _corpus_path(tmp_path, [bad])
        serial_exc = None
        try:
            with open_corpus(path) as corpus:
                accumulate_ranges(
                    corpus.buffer(), corpus.spans, table=InternTable()
                ).result()
        except Exception as exc:  # noqa: BLE001 - parity fingerprint
            serial_exc = (type(exc), str(exc))
        assert serial_exc is not None
        with open_corpus(path) as corpus:
            with pytest.raises(serial_exc[0]) as caught:
                infer_subtree_text(corpus, processes=1, min_split_bytes=0)
        assert str(caught.value) == serial_exc[1]


def test_driver_both_equivalences(tmp_path):
    lines = [DRIVER_DOCS[1]]
    for equivalence in (Equivalence.KIND, Equivalence.LABEL):
        run = _subtree_result(tmp_path, lines, 2, equivalence=equivalence)
        table = InternTable()
        encoder = EventTypeEncoder(table)
        accumulator = TypeAccumulator(equivalence, table=table)
        accumulator.add_type(encoder.encode_text(lines[0]))
        assert table.canonical(run.result) is accumulator.result()


def test_driver_empty_corpus_raises(tmp_path):
    from repro.errors import InferenceError

    path = tmp_path / "empty.ndjson"
    path.write_text("\n \n", encoding="utf-8")
    with open_corpus(path) as corpus:
        with pytest.raises(InferenceError):
            infer_subtree_text(corpus, processes=1, min_split_bytes=0)


# ---------------------------------------------------------------------------
# the scheduler's third mode
# ---------------------------------------------------------------------------


class TestSchedulerSubtreeMode:
    def _huge_line(self):
        return json.dumps(
            {"rows": [{"id": i, "name": "x" * 40, "tags": ["a", "b"]} for i in range(60000)]}
        )

    @pytest.fixture(autouse=True)
    def _pinned_calibration(self, monkeypatch):
        # Deterministic cost model: the machine's measured profile must
        # not decide whether this 5 MB corpus clears the 1.15x bar.
        monkeypatch.setenv("REPRO_WORKER_STARTUP_SECONDS", "0.001")
        monkeypatch.setenv("REPRO_SHIP_BYTES_PER_SECOND", "150e6")
        monkeypatch.setenv("REPRO_SCAN_BYTES_PER_SECOND", "80e6")
        monkeypatch.setenv("REPRO_SPLIT_BYTES_PER_SECOND", "2e9")
        monkeypatch.setenv("REPRO_CACHE_HIT_SPEEDUP", "4.0")

    def test_huge_single_document_plans_subtree(self, tmp_path, monkeypatch):
        from repro.inference import distributed as dist

        monkeypatch.setattr(dist, "auto_jobs", lambda: 4)
        path = _corpus_path(tmp_path, [self._huge_line()])
        with open_corpus(path) as corpus:
            plan = dist.plan_schedule(corpus)
        assert plan.mode == "subtree"
        assert plan.subtree and not plan.parallel
        assert plan.jobs == 4

    def test_adaptive_routes_subtree_plan_identically(self, tmp_path, monkeypatch):
        from repro.inference import distributed as dist

        monkeypatch.setattr(dist, "auto_jobs", lambda: 4)
        line = self._huge_line()
        path = _corpus_path(tmp_path, [line])
        with open_corpus(path) as corpus:
            run = dist.infer_adaptive_text(corpus)
        assert run.plan is not None and run.plan.mode == "subtree"
        table = InternTable()
        assert table.canonical(run.result) is _reference([line], table)

    def test_many_small_lines_still_plan_line_modes(self, tmp_path, monkeypatch):
        from repro.inference import distributed as dist

        monkeypatch.setattr(dist, "auto_jobs", lambda: 4)
        path = _corpus_path(tmp_path, ['{"k": %d}' % i for i in range(200)])
        with open_corpus(path) as corpus:
            plan = dist.plan_schedule(corpus)
        assert plan.mode in ("serial", "parallel")
        assert not plan.subtree


# ---------------------------------------------------------------------------
# calibration constants for the subtree cost model
# ---------------------------------------------------------------------------


class TestCalibrationConstants:
    def test_env_overrides(self, monkeypatch):
        from repro.inference import calibration

        monkeypatch.setenv("REPRO_SCAN_BYTES_PER_SECOND", "123e6")
        monkeypatch.setenv("REPRO_SPLIT_BYTES_PER_SECOND", "456e6")
        monkeypatch.setenv("REPRO_CACHE_HIT_SPEEDUP", "2.5")
        assert calibration.scan_bytes_per_second() == 123e6
        assert calibration.split_bytes_per_second() == 456e6
        assert calibration.cache_hit_speedup() == 2.5
        assert calibration.calibration_source() == "env"

    def test_cache_speedup_clamps_to_at_least_one(self, monkeypatch):
        from repro.inference import calibration

        monkeypatch.setenv("REPRO_CACHE_HIT_SPEEDUP", "0.25")
        assert calibration.cache_hit_speedup() == 1.0

    def test_profile_back_compat_without_new_keys(self, tmp_path, monkeypatch):
        # A profile written before the subtree mode must still load,
        # with the new constants at their defaults.
        from repro.inference import calibration

        profile = tmp_path / "sched.json"
        profile.write_text(
            json.dumps(
                {
                    "version": 1,
                    "worker_startup_seconds": 0.05,
                    "ship_bytes_per_second": 200e6,
                }
            ),
            encoding="utf-8",
        )
        monkeypatch.setenv("REPRO_SCHED_PROFILE", str(profile))
        loaded = calibration.load_calibration(measure_if_missing=False)
        assert loaded is not None
        assert loaded.worker_startup_seconds == 0.05
        assert loaded.scan_bytes_per_second == calibration.DEFAULT_SCAN_BYTES_PER_SECOND
        assert loaded.split_bytes_per_second == calibration.DEFAULT_SPLIT_BYTES_PER_SECOND
        assert loaded.cache_hit_speedup == calibration.DEFAULT_CACHE_HIT_SPEEDUP


# ---------------------------------------------------------------------------
# the digit-key line-cache regression (satellite fix)
# ---------------------------------------------------------------------------


class TestDigitKeyCache:
    def test_digit_keys_no_longer_disable_the_cache(self):
        # Keys like "p99" used to fold into the skeleton's digit class,
        # missing the cache on every line; now key-region digits are
        # protected and identical shapes hit.
        encoder = EventTypeEncoder(InternTable())
        lines = [b'{"p99": %d, "sha256": "x"}' % i for i in range(50)]
        out = encoder.encode_lines(lines)
        attempts, hits, enabled = encoder.line_cache_stats
        assert enabled
        assert attempts == 50
        assert hits >= 48  # every repeat of the shape hits
        for line, got in zip(lines, out):
            assert got is encoder.encode_text(line.decode()), line

    def test_distinct_digit_keys_do_not_alias(self):
        encoder = EventTypeEncoder(InternTable())
        a = encoder.encode_lines([b'{"k1": 5}'])[0]
        b = encoder.encode_lines([b'{"k2": 5}'])[0]
        assert a is not b
        assert a is encoder.encode_text('{"k1": 5}')
        assert b is encoder.encode_text('{"k2": 5}')

    def test_value_digits_still_participate_in_the_shape(self):
        # Digits in VALUES must still fold (that is what makes the cache
        # hit across lines with different numbers).
        encoder = EventTypeEncoder(InternTable())
        lines = [b'{"n": %d}' % i for i in range(20)]
        encoder.encode_lines(lines)
        attempts, hits, _ = encoder.line_cache_stats
        assert hits >= 19

    def test_escaped_quote_in_key_keeps_parity(self):
        encoder = EventTypeEncoder(InternTable())
        line = rb'{"a\"9": 1}'
        got = encoder.encode_lines([line])[0]
        assert got is encoder.encode_text(line.decode())
