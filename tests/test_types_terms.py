"""Tests for repro.types.terms, simplify, and build."""

import pytest

from repro.errors import InferenceError
from repro.types import (
    ANY,
    ArrType,
    AtomType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    UnionType,
    simplify,
    type_of,
    union,
    union2,
    walk,
)


class TestTerms:
    def test_atom_validation(self):
        with pytest.raises(InferenceError):
            AtomType("integer")

    def test_atom_kind(self):
        assert INT.kind == "number"
        assert FLT.kind == "number"
        assert NUM.kind == "number"
        assert STR.kind == "str"

    def test_record_fields_sorted(self):
        rec = RecType((FieldType("b", INT), FieldType("a", STR)))
        assert [f.name for f in rec.fields] == ["a", "b"]

    def test_record_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            RecType((FieldType("a", INT), FieldType("a", STR)))

    def test_record_of(self):
        rec = RecType.of({"x": INT, "y": STR}, optional=frozenset({"y"}))
        assert rec.required_labels() == {"x"}
        assert rec.labels() == {"x", "y"}

    def test_equality_structural(self):
        a = RecType.of({"x": INT, "y": union2(STR, NULL)})
        b = RecType.of({"y": union2(NULL, STR), "x": INT})
        assert a == b
        assert hash(a) == hash(b)

    def test_size(self):
        # {a: Int, b: [Str]} = rec(1) + field(1)+Int(1) + field(1)+arr(1)+Str(1) = 6
        rec = RecType.of({"a": INT, "b": ArrType(STR)})
        assert rec.size() == 6

    def test_walk(self):
        t = union2(ArrType(INT), STR)
        nodes = list(walk(t))
        assert INT in nodes and STR in nodes and t in nodes


class TestUnion:
    def test_empty_union_is_bot(self):
        assert union([]) is not None
        assert union([]) == BOT

    def test_singleton_unwrapped(self):
        assert union([INT]) == INT

    def test_flattening(self):
        inner = UnionType((INT, STR))
        assert union([inner, NULL]) == union([INT, STR, NULL])

    def test_dedup(self):
        assert union([INT, INT]) == INT

    def test_bot_identity(self):
        assert union2(BOT, STR) == STR

    def test_any_absorbs(self):
        assert union2(ANY, STR) == ANY

    def test_num_absorbs_int_flt(self):
        assert union([INT, NUM]) == NUM
        assert union([FLT, NUM, STR]) == union([NUM, STR])

    def test_member_order_canonical(self):
        assert union([STR, INT]) == union([INT, STR])

    def test_int_flt_not_merged_by_union(self):
        # Plain union keeps Int and Flt distinct; only merging joins them.
        result = union([INT, FLT])
        assert isinstance(result, UnionType)
        assert set(result.members) == {INT, FLT}


class TestSimplify:
    def test_idempotent(self):
        t = UnionType((UnionType((INT, BOT)), UnionType((STR,))))
        once = simplify(t)
        assert simplify(once) == once

    def test_nested_containers(self):
        t = ArrType(UnionType((BOT, INT)))
        assert simplify(t) == ArrType(INT)

    def test_record_field_simplified(self):
        t = RecType.of({"a": UnionType((INT, INT))})
        assert simplify(t) == RecType.of({"a": INT})


class TestTypeOf:
    def test_scalars(self):
        assert type_of(None) == NULL
        assert type_of(True) == BOOL
        assert type_of(3) == INT
        assert type_of(3.5) == FLT
        assert type_of("s") == STR

    def test_bool_not_int(self):
        assert type_of(True) != INT

    def test_empty_array(self):
        assert type_of([]) == ArrType(BOT)

    def test_homogeneous_array(self):
        assert type_of([1, 2, 3]) == ArrType(INT)

    def test_heterogeneous_array(self):
        t = type_of([1, "a"])
        assert t == ArrType(union2(INT, STR))

    def test_object_all_required(self):
        t = type_of({"a": 1, "b": "x"})
        assert t == RecType.of({"a": INT, "b": STR})
        assert t.required_labels() == {"a", "b"}

    def test_nested(self):
        t = type_of({"a": [{"b": None}]})
        assert t == RecType.of({"a": ArrType(RecType.of({"b": NULL}))})
