"""Tests for the JSound verbose syntax and the syntax converters."""

import pytest

from repro.jsound import (
    JSoundSchemaError,
    compact_to_verbose,
    compile_jsound,
    compile_verbose,
    verbose_to_compact,
)

COMPACT_DOCS = [
    "string",
    "integer?",
    ["double"],
    {"name": "string", "age": "integer"},
    {"name": "string", "nickname?": "string", "email": "string?"},
    {"rows": [{"v": "integer"}], "meta?": {"lang": "string"}},
]

INSTANCES = [
    "x",
    1,
    None,
    [1.5],
    {"name": "ada", "age": 36},
    {"name": "ada", "email": None},
    {"rows": [{"v": 1}]},
    {"rows": []},
    {"unexpected": True},
]


class TestVerboseCompilation:
    def test_atomic(self):
        schema = compile_verbose({"kind": "atomic", "type": "integer"})
        assert schema.is_valid(3)
        assert not schema.is_valid(3.5)

    def test_nullable_atomic(self):
        schema = compile_verbose({"kind": "atomic", "type": "string", "nullable": True})
        assert schema.is_valid(None)
        assert schema.is_valid("x")

    def test_array(self):
        schema = compile_verbose(
            {"kind": "array", "content": {"kind": "atomic", "type": "boolean"}}
        )
        assert schema.is_valid([True, False])
        assert not schema.is_valid([1])

    def test_object_with_optional(self):
        schema = compile_verbose(
            {
                "kind": "object",
                "content": {
                    "a": {"kind": "atomic", "type": "integer"},
                    "b": {"kind": "atomic", "type": "string", "optional": True},
                },
            }
        )
        assert schema.is_valid({"a": 1})
        assert schema.is_valid({"a": 1, "b": "x"})
        assert not schema.is_valid({"b": "x"})

    @pytest.mark.parametrize(
        "bad",
        [
            "string",
            {"kind": "tuple"},
            {"kind": "atomic", "type": "varchar"},
            {"kind": "array"},
            {"kind": "object", "content": [1]},
            {"kind": "array", "nullable": True, "content": {"kind": "atomic", "type": "string"}},
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(JSoundSchemaError):
            compile_verbose(bad)


class TestConverters:
    @pytest.mark.parametrize("compact", COMPACT_DOCS, ids=[str(d)[:30] for d in COMPACT_DOCS])
    def test_roundtrip_compact(self, compact):
        assert verbose_to_compact(compact_to_verbose(compact)) == compact

    @pytest.mark.parametrize("compact", COMPACT_DOCS, ids=[str(d)[:30] for d in COMPACT_DOCS])
    def test_both_syntaxes_validate_identically(self, compact):
        compact_schema = compile_jsound(compact)
        verbose_schema = compile_verbose(compact_to_verbose(compact))
        for instance in INSTANCES:
            assert compact_schema.is_valid(instance) == verbose_schema.is_valid(
                instance
            ), instance

    def test_verbose_shape(self):
        verbose = compact_to_verbose({"friends": ["string"], "bio?": "string?"})
        assert verbose["kind"] == "object"
        assert verbose["content"]["friends"] == {
            "kind": "array",
            "content": {"kind": "atomic", "type": "string"},
        }
        assert verbose["content"]["bio"] == {
            "kind": "atomic",
            "type": "string",
            "nullable": True,
            "optional": True,
        }
