"""Tests for the adaptive parallel scheduler (`repro.inference.distributed`).

The scheduler exists to fix one concrete regression (E16: `--jobs N`
measuring 0.94–1.01x serial): it must *never* schedule a worker pool
whose modeled cost exceeds the serial fold — one usable CPU, a tiny
corpus, or heavy shipping all mean serial — while still scheduling
workers when the model says they win.  Every route stays bit-identical
to the serial fold.
"""

from __future__ import annotations

import pytest

from repro.datasets import ndjson_lines, tweets
from repro.errors import InferenceError
from repro.inference import (
    auto_jobs,
    infer_adaptive_text,
    infer_type,
    partition_bounds,
    plan_schedule,
)
from repro.inference import distributed as distributed_module


@pytest.fixture()
def many_cpus(monkeypatch):
    """Pretend the machine has 8 usable CPUs and free workers, so plans
    are decided by the cost model rather than this container's 1 CPU."""
    monkeypatch.setattr(distributed_module, "auto_jobs", lambda: 8)
    monkeypatch.setenv("REPRO_WORKER_STARTUP_SECONDS", "0")
    return 8


def test_auto_jobs_is_positive():
    assert auto_jobs() >= 1


def test_partition_bounds_cover_contiguously():
    bounds = partition_bounds(10, 3)
    assert bounds == [(0, 4), (4, 7), (7, 10)]
    assert partition_bounds(2, 5) == [(0, 1), (1, 2)]
    with pytest.raises(InferenceError):
        partition_bounds(4, 0)


def test_one_requested_worker_plans_serial():
    lines = ndjson_lines(tweets(20, seed=1))
    plan = plan_schedule(lines, jobs=1)
    assert plan.mode == "serial"
    assert plan.jobs == 1
    assert "one worker" in plan.reason


def test_single_cpu_plans_serial_without_sampling(monkeypatch):
    monkeypatch.setattr(distributed_module, "auto_jobs", lambda: 1)
    lines = ndjson_lines(tweets(20, seed=1))
    plan = plan_schedule(lines, jobs=8)
    assert plan.mode == "serial"
    assert plan.cpus == 1
    assert "one usable CPU" in plan.reason
    # No sample was timed: the decision needed no measurement.
    assert plan.sample_docs_per_sec == 0.0


def test_empty_corpus_plans_serial():
    plan = plan_schedule([], jobs=4)
    assert plan.mode == "serial"
    assert plan.documents == 0


def test_tiny_corpus_falls_back_to_serial(monkeypatch):
    """With real per-worker startup cost, a handful of documents can
    never amortize a pool."""
    monkeypatch.setattr(distributed_module, "auto_jobs", lambda: 8)
    monkeypatch.setenv("REPRO_WORKER_STARTUP_SECONDS", "0.1")
    lines = ndjson_lines(tweets(10, seed=2))
    plan = plan_schedule(lines, jobs=4)
    assert plan.mode == "serial"
    assert plan.estimated_parallel_seconds > plan.estimated_serial_seconds / (
        distributed_module._PARALLEL_ADVANTAGE
    )


def test_large_corpus_plans_parallel_when_cpus_are_free(many_cpus):
    lines = ndjson_lines(tweets(400, seed=3)) * 50  # 20k docs
    plan = plan_schedule(lines, jobs=4, shared_memory=True)
    assert plan.mode == "parallel"
    assert plan.jobs == 4  # the request caps the pool below the 8 CPUs
    assert plan.partitions == plan.jobs
    assert plan.sample_docs_per_sec > 0
    assert plan.estimated_serial_seconds > plan.estimated_parallel_seconds


def test_requested_jobs_cap_at_usable_cpus(many_cpus):
    lines = ndjson_lines(tweets(400, seed=3)) * 50
    plan = plan_schedule(lines, jobs=64, shared_memory=True)
    assert plan.mode == "parallel"
    assert plan.jobs == 8  # capped by affinity, not the request


def test_adaptive_serial_route_is_identical():
    docs = tweets(120, seed=5)
    lines = ndjson_lines(docs)
    reference = infer_type(docs)
    run = infer_adaptive_text(lines, jobs=4)
    assert run.result is reference
    assert run.document_count == len(docs)
    assert run.plan is not None
    if run.plan.mode == "serial":
        assert run.processes == 1


def test_adaptive_parallel_route_is_identical(many_cpus, monkeypatch):
    """Force a parallel plan (capped to 2 real workers) and check the
    pool lands on the canonical node."""
    docs = tweets(150, seed=7)
    lines = ndjson_lines(docs)
    reference = infer_type(docs)
    run = infer_adaptive_text(lines, jobs=2)
    assert run.plan is not None and run.plan.mode == "parallel"
    assert run.processes == 2
    assert run.result is reference
    assert run.document_count == len(docs)


def test_adaptive_empty_corpus_raises():
    with pytest.raises(InferenceError):
        infer_adaptive_text(["", "   "], jobs=2)


def test_plan_survives_into_the_run(many_cpus):
    lines = ndjson_lines(tweets(150, seed=9))
    run = infer_adaptive_text(lines, jobs=2)
    assert run.plan is not None
    assert run.plan.parallel == (run.plan.mode == "parallel")
    assert run.plan.documents == len(lines)


def test_infer_report_path_reads_non_regular_files(tmp_path):
    """FIFOs (process substitution, /dev/stdin) stat as size 0 — the
    path route must fall back to streaming reads instead of mmap."""
    import os
    import threading

    from repro.inference import infer_report_path

    docs = tweets(20, seed=33)
    lines = ndjson_lines(docs)
    fifo = tmp_path / "pipe.ndjson"
    os.mkfifo(fifo)

    def writer():
        with open(fifo, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        report = infer_report_path(str(fifo), jobs=2)
    finally:
        thread.join()
    assert report.document_count == len(docs)
    assert report.inferred is infer_type(docs)
