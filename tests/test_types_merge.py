"""Tests for repro.types.merge (parametric fusion, K vs L equivalence)."""

from repro.types import (
    ArrType,
    BOOL,
    BOT,
    Equivalence,
    FLT,
    FieldType,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    UnionType,
    merge,
    merge_all,
    type_of,
    union,
    union2,
)

K = Equivalence.KIND
L = Equivalence.LABEL


class TestAtomMerging:
    def test_same_atom(self):
        assert merge(INT, INT, K) == INT
        assert merge(INT, INT, L) == INT

    def test_int_flt_kind(self):
        assert merge(INT, FLT, K) == NUM

    def test_int_flt_label(self):
        assert merge(INT, FLT, L) == union2(INT, FLT)

    def test_different_kinds_stay_union(self):
        assert merge(INT, STR, K) == union2(INT, STR)
        assert merge(NULL, BOOL, L) == union2(NULL, BOOL)


class TestArrayMerging:
    def test_arrays_fuse_under_both(self):
        a = ArrType(INT)
        b = ArrType(STR)
        assert merge(a, b, K) == ArrType(union2(INT, STR))
        assert merge(a, b, L) == ArrType(union2(INT, STR))

    def test_empty_array_is_identity(self):
        assert merge(ArrType(BOT), ArrType(INT), K) == ArrType(INT)

    def test_nested_equivalence_propagates(self):
        a = ArrType(INT)
        b = ArrType(FLT)
        assert merge(a, b, K) == ArrType(NUM)
        assert merge(a, b, L) == ArrType(union2(INT, FLT))


class TestRecordMergingKind:
    def test_same_labels(self):
        a = RecType.of({"x": INT})
        b = RecType.of({"x": STR})
        assert merge(a, b, K) == RecType.of({"x": union2(INT, STR)})

    def test_different_labels_fuse_with_optionality(self):
        a = RecType.of({"x": INT})
        b = RecType.of({"y": STR})
        merged = merge(a, b, K)
        assert merged == RecType.of({"x": INT, "y": STR}, optional=frozenset({"x", "y"}))

    def test_partial_overlap(self):
        a = RecType.of({"x": INT, "y": STR})
        b = RecType.of({"x": FLT})
        merged = merge(a, b, K)
        expected = RecType.of({"x": NUM, "y": STR}, optional=frozenset({"y"}))
        assert merged == expected

    def test_optionality_is_sticky(self):
        a = RecType.of({"x": INT}, optional=frozenset({"x"}))
        b = RecType.of({"x": INT})
        merged = merge(a, b, K)
        assert merged == RecType.of({"x": INT}, optional=frozenset({"x"}))


class TestRecordMergingLabel:
    def test_same_labels_fuse(self):
        a = RecType.of({"x": INT})
        b = RecType.of({"x": STR})
        assert merge(a, b, L) == RecType.of({"x": union2(INT, STR)})

    def test_different_labels_stay_separate(self):
        a = RecType.of({"x": INT})
        b = RecType.of({"y": STR})
        merged = merge(a, b, L)
        assert isinstance(merged, UnionType)
        assert set(merged.members) == {a, b}

    def test_label_set_not_multiplicity(self):
        a = RecType.of({"x": INT, "y": STR})
        b = RecType.of({"y": NULL, "x": FLT})
        merged = merge(a, b, L)
        assert merged == RecType.of({"x": union2(INT, FLT), "y": union2(STR, NULL)})


class TestMergeAll:
    def test_matches_binary_fold(self):
        types = [type_of(d) for d in (
            {"a": 1},
            {"a": 2.5, "b": "s"},
            {"b": None},
            [1, 2],
            "scalar",
        )]
        for eq in (K, L):
            folded = types[0]
            for t in types[1:]:
                folded = merge(folded, t, eq)
            assert merge_all(types, eq) == folded

    def test_empty_is_bot(self):
        assert merge_all([], K) == BOT

    def test_union_inputs_flattened(self):
        u = union([RecType.of({"a": INT}), STR])
        v = RecType.of({"b": STR})
        merged = merge(u, v, K)
        rec = RecType.of({"a": INT, "b": STR}, optional=frozenset({"a", "b"}))
        assert merged == union2(rec, STR)


class TestPrecisionOrdering:
    def test_label_refines_kind(self):
        """L keeps variants apart that K collapses."""
        docs = [{"kind": "a", "x": 1}, {"kind": "b", "y": "s"}]
        t_k = merge_all((type_of(d) for d in docs), K)
        t_l = merge_all((type_of(d) for d in docs), L)
        assert isinstance(t_k, RecType)  # single fused record
        assert isinstance(t_l, UnionType)  # two distinct records
        assert len(t_l.members) == 2

    def test_kind_size_never_larger(self):
        docs = [
            {"a": 1, "b": "x"},
            {"a": 2.0, "c": True},
            {"b": "y", "c": False, "d": None},
        ]
        t_k = merge_all((type_of(d) for d in docs), K)
        t_l = merge_all((type_of(d) for d in docs), L)
        assert t_k.size() <= t_l.size()
