"""Fuzz differential for the bytes-native scan and the line-shape cache.

The contract, by construction of :meth:`EventTypeEncoder.encode_bytes`
and :meth:`EventTypeEncoder.encode_lines`:

- on any byte string ``b``, ``encode_bytes(b)`` behaves exactly like
  ``encode_text(b.decode("utf-8"))`` — the *object-identical* canonical
  node on valid input, the identical error (class, message, character
  offset) on malformed JSON, and the identical ``UnicodeDecodeError``
  (object, positions, reason) on undecodable bytes;
- ``encode_lines`` (the batched skeleton cache) and
  ``accumulate_ranges`` (the bytes fold) agree with the per-line str
  feed on every line of every batch — including across batches sharing
  one encoder, where an unsound skeleton collision would surface as a
  wrong cached type.

Hypothesis drives serialized values, raw text, and raw *bytes* (mostly
malformed UTF-8); the parametrized cases pin the named edge shapes —
non-ASCII keys and values, multibyte sequences truncated mid-string,
``\\uXXXX`` escapes and lone surrogates, overlong/surrogate/out-of-range
UTF-8, and skeleton near-collisions (digit keys, leading zeros, spaced
keys, control bytes).
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference.engine import accumulate_lines, accumulate_ranges
from repro.jsonvalue.lexer import JsonLexError
from repro.jsonvalue.parser import JsonParseError
from repro.jsonvalue.serializer import dumps
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable, global_table

from tests.strategies import json_values


def _failure(fn):
    """Error fingerprint, or None on success."""
    try:
        fn()
    except JsonLexError as exc:
        return ("lex", str(exc), exc.offset)
    except JsonParseError as exc:
        return ("parse", str(exc), exc.token.offset)
    except UnicodeDecodeError as exc:
        return ("unicode", exc.reason, exc.start, exc.end, bytes(exc.object))
    return None


def _differential(raw: bytes, encoder=None):
    """encode_bytes(raw) must equal decode-then-encode_text in outcome."""
    enc = encoder if encoder is not None else EventTypeEncoder(InternTable())

    def str_path():
        return enc.encode_text(raw.decode("utf-8"))

    reference = _failure(str_path)
    observed = _failure(lambda: enc.encode_bytes(raw))
    assert observed == reference, (raw, observed, reference)
    if reference is None:
        assert enc.encode_bytes(raw) is str_path()


@given(json_values(max_leaves=30))
@settings(max_examples=150, deadline=None)
def test_bytes_type_is_interned_str_type(value):
    _differential(dumps(value).encode("utf-8"))


@given(st.text(max_size=40))
@settings(max_examples=200, deadline=None)
def test_arbitrary_text_as_bytes_differential(text):
    try:
        raw = text.encode("utf-8")
    except UnicodeEncodeError:  # lone surrogates are not encodable
        return
    _differential(raw)


@given(st.binary(max_size=40))
@settings(max_examples=250, deadline=None)
def test_arbitrary_bytes_differential(raw):
    """Raw bytes — mostly malformed UTF-8: identical UnicodeDecodeError
    (or identical parse outcome when the bytes happen to decode)."""
    _differential(raw)


@given(st.binary(max_size=30))
@settings(max_examples=150, deadline=None)
def test_bytes_inside_json_context_differential(raw):
    """Arbitrary bytes embedded where a value is expected."""
    _differential(b'{"k": ' + raw + b"}")
    _differential(b"[1, " + raw + b"]")


_EDGE_TEXTS = [
    # non-ASCII keys and values (2-, 3- and 4-byte sequences)
    '{"é": 1, "日本語": "ü", "k": "𝄞"}',
    '{"キー": {"ключ": [null, "значение"]}}',
    '"żółć"',
    '["α", "β", "γ", "αβγ"]',
    # escapes: named, \uXXXX, surrogate pairs, lone surrogates
    '{"\\u006b\\u0065\\u0079": "\\ud834\\udd1e"}',
    '"\\ud800"',
    '{"a\\"b": 1, "c\\\\d": [true, "\\t\\n"]}',
    '{"\\u0041": 1, "A": 2}',
    # strings whose contents look structural
    '{"a": "}", "b": "{\\"x\\": 1}", "c": ":"}',
    '{"a": ":", "b": ","}',
    '["1,2", "3", {"k4": "5:6"}]',
    # skeleton near-collisions: digit keys, leading zeros, spaced keys
    '{"k1": 1}',
    '{"k2": 1}',
    '{"a" : 5}',
    '{"a": -0}',
    '{"p99": 1.5, "sha256": "x"}',
    # numbers across kinds and spellings
    '{"a": 1, "b": 1.5, "c": 1e5, "d": 1E-5, "e": -0.0, "f": 12345678901234567890}',
    # whitespace / blank shapes
    ' \t {"a":\t1} ',
    "[]",
    "{}",
]

_EDGE_BYTES = [
    # malformed UTF-8: truncation, bare continuation, overlong, CESU
    # surrogates, out-of-range, and a split multibyte char mid-string
    b'{"a": "\xff"}',
    b'"\xc3"',
    b'{"\xed\xa0\x80": 1}',
    b'"ab\xc0\xafcd"',
    b'[1, "\xf5"]',
    b'{"k\xff": 1}',
    b'{"a": "\xe6\x97"}',
    b'{"\xc3": 1}',
    b'"\xf0\x9d\x84"',
    b"\x80",
    # control bytes raw in the stream (skeleton marker domain)
    b'{"a\x03b": 1}',
    b'{"a": "x"}\x04',
    b"\x01",
    # leading zeros and spaced keys as raw bytes
    b'{"a": 01}',
    b'{"a": 00.5}',
    b'{"a"  : 1}',
]


@pytest.mark.parametrize("text", _EDGE_TEXTS)
def test_edge_texts_bytes_vs_str(text):
    _differential(text.encode("utf-8"))


@pytest.mark.parametrize("raw", _EDGE_BYTES)
def test_edge_bytes_vs_str(raw):
    _differential(raw)


def test_edge_cases_share_one_encoder_and_its_caches():
    """All edge shapes through a single encoder: the key cache, shape
    caches and line cache must never leak a wrong answer across
    documents."""
    enc = EventTypeEncoder(InternTable())
    for text in _EDGE_TEXTS:
        _differential(text.encode("utf-8"), enc)
    for raw in _EDGE_BYTES:
        _differential(raw, enc)
    # and again, with everything warm
    for text in _EDGE_TEXTS:
        _differential(text.encode("utf-8"), enc)


# ---------------------------------------------------------------------------
# the counting bytes scan (counted_type_of_bytes)
# ---------------------------------------------------------------------------


def _counted_differential(raw: bytes):
    """counted_type_of_bytes(raw) must equal decode + counted_type_of_text
    in outcome: structurally equal counted type, or the identical error."""
    from repro.inference.counting import counted_type_of_bytes, counted_type_of_text
    from repro.types import Equivalence

    for equivalence in (Equivalence.KIND, Equivalence.LABEL):

        def str_path():
            return counted_type_of_text(raw.decode("utf-8"), equivalence)

        reference = _failure(str_path)
        observed = _failure(lambda: counted_type_of_bytes(raw, equivalence=equivalence))
        assert observed == reference, (raw, observed, reference)
        if reference is None:
            assert counted_type_of_bytes(raw, equivalence=equivalence) == str_path()


@given(json_values(max_leaves=25))
@settings(max_examples=100, deadline=None)
def test_counted_bytes_matches_counted_text(value):
    _counted_differential(dumps(value).encode("utf-8"))


@given(st.binary(max_size=40))
@settings(max_examples=150, deadline=None)
def test_counted_bytes_arbitrary_bytes_differential(raw):
    _counted_differential(raw)


@pytest.mark.parametrize("text", _EDGE_TEXTS)
def test_counted_bytes_edge_texts(text):
    _counted_differential(text.encode("utf-8"))


@pytest.mark.parametrize("raw", _EDGE_BYTES)
def test_counted_bytes_edge_bytes(raw):
    _counted_differential(raw)


def test_counted_bytes_range_offsets_and_depth():
    from repro.inference.counting import counted_type_of_bytes, counted_type_of_text
    from repro.jsonvalue.parser import JsonParseError as ParseError

    buf = b'xxx{"a": [1, 2.5, "s"]}yyy'
    assert counted_type_of_bytes(buf, 3, len(buf) - 3) == counted_type_of_text(
        '{"a": [1, 2.5, "s"]}'
    )
    deep = b"[" * 8 + b"1" + b"]" * 8
    assert counted_type_of_bytes(deep, max_depth=8) == counted_type_of_text(
        deep.decode(), max_depth=8
    )
    with pytest.raises(ParseError):
        counted_type_of_bytes(deep, max_depth=7)


# ---------------------------------------------------------------------------
# the batched line-shape cache (encode_lines / accumulate_ranges)
# ---------------------------------------------------------------------------


def _line_spans(blob: bytes):
    from repro.datasets.ndjson import iter_line_spans

    return list(iter_line_spans(blob))


def _fold_failure(fn):
    try:
        return ("ok", fn().result())
    except JsonLexError as exc:
        return ("lex", str(exc), exc.offset)
    except JsonParseError as exc:
        return ("parse", str(exc), exc.token.offset)
    except UnicodeDecodeError as exc:
        return ("unicode", exc.reason, exc.start, exc.end)


@given(
    st.lists(
        st.one_of(
            json_values(max_leaves=10).map(dumps),
            st.text(
                alphabet='abk12"\\{}[]:,.-0 \t é', max_size=24
            ),
        ),
        max_size=12,
    )
)
@settings(max_examples=150, deadline=None)
def test_ranges_fold_matches_lines_fold(lines):
    """accumulate_ranges over the encoded corpus ≡ accumulate_lines over
    the decoded lines — same canonical node or same first error."""
    blob = "\n".join(lines).encode("utf-8")
    spans = _line_spans(blob)
    assert len(spans) == max(1, len(lines))

    bytes_out = _fold_failure(
        lambda: accumulate_ranges(blob, spans, table=InternTable())
    )
    str_out = _fold_failure(lambda: accumulate_lines(lines, table=InternTable()))
    if bytes_out[0] == "ok" and str_out[0] == "ok":
        table = global_table()
        assert table.canonical(bytes_out[1]) is table.canonical(str_out[1])
    else:
        assert bytes_out == str_out


@given(
    st.lists(
        st.lists(json_values(max_leaves=8).map(dumps), min_size=1, max_size=6),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=100, deadline=None)
def test_encode_lines_is_sound_across_batches(batches):
    """One encoder, many batches: every cached answer must stay the
    canonical node of its exact line (a skeleton collision would fail
    the identity here)."""
    enc = EventTypeEncoder(InternTable())
    for batch in batches:
        raw = [line.encode("utf-8") for line in batch]
        out = enc.encode_lines(raw)
        for line, got in zip(batch, out):
            assert got is enc.encode_text(line), line


def test_non_ascii_corpus_fold_is_identical():
    """The acceptance corpus: non-ASCII keys and values, multibyte at
    fused-pattern boundaries, repeated and novel shapes."""
    lines = [
        '{"имя": "Алёна", "возраст": 33, "языки": ["ru", "de"]}',
        '{"имя": "Борис", "возраст": 41, "языки": []}',
        '{"имя": "Вера", "возраст": 28.5, "языки": ["fr"]}',
        '{"名前": "花子", "都市": {"名": "東京", "区": "渋谷"}}',
        '{"имя": "Глеб", "возраст": 19, "языки": ["en", "ja", "ru"]}',
        '{"emoji": "🦊🦊🦊", "mixed": "a𝄞b", "n": 1}',
    ] * 40
    blob = "\n".join(lines).encode("utf-8")
    spans = _line_spans(blob)
    bytes_acc = accumulate_ranges(blob, spans, table=InternTable())
    str_acc = accumulate_lines(lines, table=InternTable())
    table = global_table()
    assert table.canonical(bytes_acc.result()) is table.canonical(str_acc.result())
    assert bytes_acc.document_count == str_acc.document_count == len(lines)


def test_blank_and_unicode_whitespace_lines_skip_identically():
    lines = ["", "   ", "\t", " ", "   ", '{"a": 1}', "", "  "]
    blob = "\n".join(lines).encode("utf-8")
    bytes_acc = accumulate_ranges(blob, _line_spans(blob), table=InternTable())
    str_acc = accumulate_lines(lines, table=InternTable())
    assert bytes_acc.document_count == str_acc.document_count == 1
    table = global_table()
    assert table.canonical(bytes_acc.result()) is table.canonical(str_acc.result())


def test_malformed_utf8_line_raises_after_earlier_lines():
    """A malformed-UTF-8 pseudo-blank line must not preempt an earlier
    malformed document's error (serial ordering parity)."""
    blob = b'{"a": 1}\n{"broken\n\xa0\xa0'
    spans = _line_spans(blob)
    bytes_out = _fold_failure(
        lambda: accumulate_ranges(blob, spans, table=InternTable())
    )
    str_out = _fold_failure(
        lambda: accumulate_lines(
            ['{"a": 1}', '{"broken', "\xa0\xa0"], table=InternTable()
        )
    )
    assert bytes_out == str_out
    assert bytes_out[0] == "lex"  # the *earlier* line's error wins


def test_add_bytes_matches_add_text():
    from repro.inference.engine import TypeAccumulator

    table = InternTable()
    via_bytes = TypeAccumulator(table=table)
    via_text = TypeAccumulator(table=table)
    lines = ['{"a": 1}', '{"a": 2.5, "b": "x"}', "[1, null]"]
    for line in lines:
        via_bytes.add_bytes(line.encode("utf-8"))
        via_text.add_text(line)
    assert via_bytes.result() is via_text.result()
    assert via_bytes.document_count == len(lines)


def test_line_cache_rebinds_on_table_epoch():
    """A table clear must not leak stale canonical nodes out of the
    line-shape cache."""
    table = InternTable()
    enc = EventTypeEncoder(table)
    first = enc.encode_lines([b'{"a": 1}'])[0]
    table.clear()
    second = enc.encode_lines([b'{"a": 1}'])[0]
    assert second is table.intern(second)
    assert second is not first


def test_non_default_max_depth_bypasses_line_cache():
    enc = EventTypeEncoder(InternTable())
    deep = b"[" * 5 + b"1" + b"]" * 5
    assert enc.encode_lines([deep])[0] is enc.encode_bytes(deep)
    with pytest.raises(JsonParseError):
        enc.encode_lines([deep], max_depth=3)


class TestReviewRegressions:
    """Pins for review findings on the line-shape cache and bytes feeds."""

    def test_collapse_respects_element_boundaries(self):
        """The repeated-element collapse must never cross token
        boundaries: `0,0` matching a prefix of `0,0.0` *or* starting
        mid-number in `0.0,0` would alias int/float-mixed and pure-float
        arrays, which have different types."""
        import itertools

        enc = EventTypeEncoder(InternTable())
        scalars = ["1", "2.5", "3e5", '"s"', "true", "null"]
        cases = [
            "[" + ",".join(combo) + "]"
            for n in (1, 2, 3)
            for combo in itertools.product(scalars, repeat=n)
        ] + [
            '{"a":[1,2],"b":[3.5,4.5],"c":[1,2.5]}',
            "[[1,2],[1,2]]",
            '[{"a":1},{"a":2}]',
            '[{"a":1},{"a":2.5}]',
        ]
        # one shared encoder: every probe runs against a warm cache
        for line in cases:
            assert enc.encode_lines([line.encode()])[0] is enc.encode_text(
                line
            ), line

    def test_forged_markers_cannot_hit_a_cached_entry(self):
        """A control-byte line that forges the skeleton markers must be
        typed by the machine (here: raise), not alias a clean entry."""
        enc = EventTypeEncoder(InternTable())
        enc.encode_lines([b'{"a":"x"}'])  # seed the cache
        forged = b'{"a\x04\x03}'
        with pytest.raises(JsonLexError):
            enc.encode_lines([forged])
        # digit-key and leading-zero forgeries must miss the cache too
        enc.encode_lines([b'{"k1": 5}'])
        assert enc.encode_lines([b'{"k2": 5}'])[0] is enc.encode_text('{"k2": 5}')
        enc.encode_lines([b'{"n": 12}'])
        with pytest.raises(JsonLexError):
            enc.encode_lines([b'{"n": 01}'])

    def test_formfeed_blank_lines_skip_like_the_str_feed(self):
        for blank in ("\x0c", "\x0b", "\x1c", "\x1f", "\x0c \t"):
            lines = ['{"a": 1}', blank, '{"b": 2}']
            blob = "\n".join(lines).encode("utf-8")
            bytes_acc = accumulate_ranges(blob, _line_spans(blob), table=InternTable())
            str_acc = accumulate_lines(lines, table=InternTable())
            assert bytes_acc.document_count == str_acc.document_count == 2
            table = global_table()
            assert table.canonical(bytes_acc.result()) is table.canonical(
                str_acc.result()
            )

    def test_plan_sampling_skips_blank_corpus_lines(self, tmp_path, monkeypatch):
        from repro.datasets import open_corpus
        from repro.inference import distributed as distributed_module
        from repro.inference.distributed import plan_schedule

        monkeypatch.setattr(distributed_module, "auto_jobs", lambda: 4)
        path = tmp_path / "blanky.ndjson"
        path.write_text('   \n{"a": 1}\n\x0c\n{"b": 2}\n', encoding="utf-8")
        with open_corpus(path) as corpus:
            plan = plan_schedule(corpus, jobs=2)
        assert plan.documents == 4  # planning succeeded, no raise
