"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script, monkeypatch):
    if script.stem == "fast_analytics_parsing":
        pytest.skip("timing-heavy; exercised by the benchmarks instead")
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print their findings"


def test_example_inventory():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the deliverable requires at least three examples"
