"""Tests for the algebra→PL bridges and the E1 feature matrix."""

import pytest

from repro.pl import (
    FEATURES,
    SYSTEMS,
    algebra_to_swift,
    algebra_to_typescript,
    feature_matrix,
    render_matrix,
    swift_declaration_for,
    typescript_declaration_for,
)
from repro.pl import swift as sw
from repro.pl import typescript as ts
from repro.pl.swift import SwiftInferenceError
from repro.types import (
    ArrType,
    BOT,
    FLT,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    type_of,
    union2,
)


class TestAlgebraToTypeScript:
    def test_atoms(self):
        assert algebra_to_typescript(NULL) == ts.NULL
        assert algebra_to_typescript(INT) == ts.NUMBER
        assert algebra_to_typescript(FLT) == ts.NUMBER
        assert algebra_to_typescript(STR) == ts.STRING

    def test_int_flt_union_collapses(self):
        # TS has one number type; Int + Flt collapses to it.
        assert algebra_to_typescript(union2(INT, FLT)) == ts.NUMBER

    def test_record_with_optional(self):
        t = RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"}))
        result = algebra_to_typescript(t)
        assert isinstance(result, ts.TSObject)
        assert result.property_map()["b"].optional

    def test_union_survives(self):
        result = algebra_to_typescript(union2(STR, ArrType(INT)))
        assert isinstance(result, ts.TSUnion)

    def test_checked_against_original_values(self):
        docs = [{"a": 1}, {"a": "x", "b": [1.5]}]
        from repro.types import Equivalence, merge_all

        merged = merge_all((type_of(d) for d in docs), Equivalence.KIND)
        ts_type = algebra_to_typescript(merged)
        for d in docs:
            assert ts.check(d, ts_type)


class TestAlgebraToSwift:
    def test_atoms(self):
        assert algebra_to_swift(INT) == sw.INT
        assert algebra_to_swift(FLT) == sw.DOUBLE
        assert algebra_to_swift(NUM) == sw.DOUBLE
        assert algebra_to_swift(STR) == sw.STRING

    def test_nullable_becomes_optional(self):
        assert algebra_to_swift(union2(STR, NULL)) == sw.SwiftOptional(sw.STRING)

    def test_int_flt_widens(self):
        assert algebra_to_swift(union2(INT, FLT)) == sw.DOUBLE

    def test_record(self):
        t = RecType.of({"age": INT, "nick": STR}, optional=frozenset({"nick"}))
        result = algebra_to_swift(t, "user")
        assert isinstance(result, sw.SwiftStruct)
        assert result.field_map()["nick"].type == sw.SwiftOptional(sw.STRING)

    def test_union_rejected(self):
        with pytest.raises(SwiftInferenceError):
            algebra_to_swift(union2(STR, INT))

    def test_empty_array(self):
        assert algebra_to_swift(ArrType(BOT)) == sw.SwiftArray(sw.STRING)


class TestDeclarationHelpers:
    DOCS = [
        {"id": 1, "name": "a", "tags": ["x"]},
        {"id": 2, "name": "b"},
    ]

    def test_typescript_declaration(self):
        src = typescript_declaration_for(self.DOCS, "Item")
        assert src.startswith("interface Item {")
        assert "tags?: string[];" in src

    def test_swift_declaration(self):
        src = swift_declaration_for(self.DOCS, "Item")
        assert "struct Item: Codable {" in src
        assert "let tags: [String]?" in src

    def test_swift_declaration_fails_on_unions(self):
        docs = [{"v": 1}, {"v": "x"}]
        with pytest.raises(SwiftInferenceError):
            swift_declaration_for(docs, "Item")


class TestFeatureMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return feature_matrix()

    def test_shape(self, matrix):
        assert set(matrix.keys()) == set(FEATURES)
        for row in matrix.values():
            assert set(row.keys()) == set(SYSTEMS)

    def test_expected_headline_cells(self, matrix):
        # The comparisons the tutorial makes explicitly.
        assert matrix["union types"]["JSON Schema"]
        assert matrix["union types"]["Joi"]
        assert matrix["union types"]["TypeScript"]
        assert not matrix["union types"]["JSound"]
        assert not matrix["union types"]["Swift"]

        assert matrix["negation types"]["JSON Schema"]
        assert not matrix["negation types"]["Joi"]

        assert matrix["co-occurrence constraints"]["Joi"]
        assert matrix["mutual exclusion (xor)"]["Joi"]
        assert matrix["value-dependent types"]["Joi"]

        assert matrix["int/float distinction"]["Swift"]
        assert not matrix["int/float distinction"]["TypeScript"]

    def test_optional_fields_universal(self, matrix):
        assert all(matrix["optional fields"].values())

    def test_render(self, matrix):
        table = render_matrix(matrix)
        assert "JSON Schema" in table
        assert "union types" in table
        assert table.count("\n") >= len(FEATURES)
