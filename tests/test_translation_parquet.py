"""Tests for the Parquet-like Dremel shredder."""

import pytest

from repro.errors import TranslationError
from repro.jsonvalue.model import sort_keys_deep, strict_equal
from repro.translation import assemble, compile_schema, shred
from repro.translation.parquet import PLeaf, PList, PRecord
from repro.types import (
    ArrType,
    BOT,
    Equivalence,
    FLT,
    INT,
    NULL,
    RecType,
    STR,
    merge_all,
    type_of,
    union2,
)


def schema_for(docs):
    return compile_schema(merge_all((type_of(d) for d in docs), Equivalence.KIND))


def assert_roundtrip(docs):
    schema = schema_for(docs)
    store = shred(docs, schema)
    out = assemble(store)
    assert len(out) == len(docs)
    for original, rebuilt in zip(docs, out):
        assert strict_equal(sort_keys_deep(original), sort_keys_deep(rebuilt)), (
            original,
            rebuilt,
        )
    return store


class TestCompileSchema:
    def test_atoms(self):
        assert compile_schema(INT) == PLeaf("long")
        assert compile_schema(FLT) == PLeaf("double")
        assert compile_schema(NULL) == PLeaf("null")

    def test_nullable_leaf(self):
        assert compile_schema(union2(STR, NULL)) == PLeaf("string", nullable=True)

    def test_int_flt_widen(self):
        assert compile_schema(union2(INT, FLT)) == PLeaf("double")

    def test_record_and_list(self):
        t = RecType.of({"a": INT, "xs": ArrType(STR)}, optional=frozenset({"xs"}))
        node = compile_schema(t)
        assert isinstance(node, PRecord)
        assert isinstance(node.fields[1].node, PList)

    def test_general_union_rejected(self):
        with pytest.raises(TranslationError):
            compile_schema(union2(INT, STR))

    def test_empty_array(self):
        assert compile_schema(ArrType(BOT)) == PList(PLeaf("null"))


class TestDremelLevels:
    """The worked Dremel example shape: nested repeated structures."""

    DOCS = [
        {"id": 1, "links": [{"url": "a", "w": 1}, {"url": "b", "w": 2}]},
        {"id": 2, "links": []},
        {"id": 3},
    ]

    def test_levels(self):
        # Make 'links' optional by the merge (doc 3 lacks it).
        store = assert_roundtrip(self.DOCS)
        url = store.column("links.[].url")
        # max rep: one list level; max def: optional field + list level.
        assert url.max_repetition == 1
        assert url.max_definition == 2
        assert url.repetition_levels == [0, 1, 0, 0]
        assert url.definition_levels == [2, 2, 1, 0]
        assert url.values == ["a", "b"]

    def test_scalar_column(self):
        store = assert_roundtrip(self.DOCS)
        id_col = store.column("id")
        assert id_col.max_repetition == 0
        assert id_col.max_definition == 0
        assert id_col.values == [1, 2, 3]


class TestRoundtrips:
    def test_flat(self):
        assert_roundtrip([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])

    def test_optional_fields(self):
        assert_roundtrip([{"a": 1, "b": "x"}, {"a": 2}, {"b": "z", "a": 3}])

    def test_nullable_values(self):
        assert_roundtrip([{"v": None}, {"v": "s"}, {"v": None}])

    def test_lists_of_scalars(self):
        assert_roundtrip([{"xs": [1, 2, 3]}, {"xs": []}, {"xs": [4]}])

    def test_lists_of_records(self):
        assert_roundtrip(
            [
                {"es": [{"t": "a", "w": 1}, {"t": "b"}]},
                {"es": [{"w": 2}]},
                {"es": []},
            ]
        )

    def test_nested_lists(self):
        assert_roundtrip([{"m": [[1], [], [2, 3]]}, {"m": []}, {"m": [[4]]}])

    def test_deep_mixed(self):
        assert_roundtrip(
            [
                {
                    "user": {"name": "ada", "geo": {"lat": 1.5}},
                    "posts": [{"tags": ["x", "y"], "n": 1}],
                },
                {"user": {"name": "bob"}, "posts": []},
                {"user": {"name": "cleo", "geo": {"lat": 2.0}}},
            ]
        )

    def test_empty_object_field(self):
        assert_roundtrip([{"meta": {}}, {"meta": {}}])

    def test_optional_record_vs_empty_record(self):
        docs = [{"m": {"a": 1}}, {"m": {}}, {}]
        assert_roundtrip(docs)

    def test_null_only_column(self):
        assert_roundtrip([{"z": None}, {"z": None}])

    def test_root_scalar(self):
        docs = ["a", "b", "c"]
        schema = schema_for(docs)
        store = shred(docs, schema)
        assert assemble(store) == docs


class TestErrors:
    def test_schema_violation(self):
        schema = schema_for([{"a": 1}])
        with pytest.raises(TranslationError):
            shred([{"a": "not-a-long"}], schema)

    def test_missing_required(self):
        schema = schema_for([{"a": 1}])
        with pytest.raises(TranslationError):
            shred([{}], schema)

    def test_unknown_column(self):
        store = shred([{"a": 1}], schema_for([{"a": 1}]))
        with pytest.raises(TranslationError):
            store.column("nope")


class TestSizeAccounting:
    def test_columnar_smaller_than_text(self):
        from repro.jsonvalue.serializer import dumps

        docs = [
            {"id": i, "label": "stable", "score": i / 2, "ok": i % 2 == 0}
            for i in range(200)
        ]
        store = assert_roundtrip(docs)
        text_bytes = sum(len(dumps(d).encode()) for d in docs)
        assert store.total_encoded_size() < text_bytes
