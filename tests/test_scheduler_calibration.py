"""Tests for the persisted scheduler calibration and the auto
shared-memory heuristic (`repro.inference.calibration` /
`repro.inference.distributed`)."""

from __future__ import annotations

import json

import pytest

from repro.inference import calibration as calibration_module
from repro.inference import distributed as distributed_module
from repro.inference.distributed import choose_shared_memory, plan_schedule
from repro.datasets import ndjson_lines, open_corpus, tweets, write_ndjson


@pytest.fixture()
def fresh_profile(tmp_path, monkeypatch):
    """Point the profile at a fresh path and drop the process cache."""
    path = tmp_path / "sched.json"
    monkeypatch.setenv("REPRO_SCHED_PROFILE", str(path))
    monkeypatch.delenv("REPRO_WORKER_STARTUP_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_SHIP_BYTES_PER_SECOND", raising=False)
    calibration_module._LOADED.clear()
    yield path
    calibration_module._LOADED.clear()


@pytest.fixture()
def many_cpus(monkeypatch):
    monkeypatch.setattr(distributed_module, "auto_jobs", lambda: 8)
    return 8


class TestCalibrationProfile:
    def test_profile_file_is_loaded_not_remeasured(self, fresh_profile):
        fresh_profile.write_text(
            json.dumps(
                {"worker_startup_seconds": 0.5, "ship_bytes_per_second": 1e6}
            )
        )
        loaded = calibration_module.load_calibration()
        assert loaded.source == "profile"
        assert loaded.worker_startup_seconds == 0.5
        assert calibration_module.worker_startup_seconds() == 0.5
        assert calibration_module.ship_bytes_per_second() == 1e6

    def test_missing_profile_measures_once_and_persists(self, fresh_profile):
        loaded = calibration_module.load_calibration()
        assert loaded.source == "measured"
        assert loaded.worker_startup_seconds > 0
        assert loaded.ship_bytes_per_second > 0
        assert fresh_profile.exists()
        record = json.loads(fresh_profile.read_text())
        assert record["worker_startup_seconds"] == loaded.worker_startup_seconds
        # a second load (fresh cache) reads the persisted file
        calibration_module._LOADED.clear()
        again = calibration_module.load_calibration()
        assert again.source == "profile"
        assert again.worker_startup_seconds == loaded.worker_startup_seconds

    def test_malformed_profile_falls_back_to_defaults(self, fresh_profile):
        fresh_profile.write_text("{not json")
        loaded = calibration_module.load_calibration()
        assert loaded.source == "default"
        assert (
            loaded.worker_startup_seconds
            == calibration_module.DEFAULT_WORKER_STARTUP_SECONDS
        )
        # the hand-broken file is not silently overwritten
        assert fresh_profile.read_text() == "{not json"

    def test_nonpositive_profile_values_rejected(self, fresh_profile):
        fresh_profile.write_text(
            json.dumps(
                {"worker_startup_seconds": -1, "ship_bytes_per_second": 0}
            )
        )
        assert calibration_module.load_calibration().source == "default"

    def test_env_overrides_beat_the_profile(self, fresh_profile, monkeypatch):
        fresh_profile.write_text(
            json.dumps(
                {"worker_startup_seconds": 0.5, "ship_bytes_per_second": 1e6}
            )
        )
        monkeypatch.setenv("REPRO_WORKER_STARTUP_SECONDS", "0.25")
        assert calibration_module.worker_startup_seconds() == 0.25
        assert calibration_module.calibration_source() == "env"
        # ship rate still comes from the profile
        assert calibration_module.ship_bytes_per_second() == 1e6

    def test_measure_calibration_is_sane(self):
        measured = calibration_module.measure_calibration()
        assert 0 < measured.worker_startup_seconds < 30
        assert measured.ship_bytes_per_second > 1e4
        assert measured.source == "measured"


class TestPlanConsumesCalibration:
    def test_plan_records_profile_source(self, fresh_profile, many_cpus):
        fresh_profile.write_text(
            json.dumps(
                {"worker_startup_seconds": 0.0, "ship_bytes_per_second": 1e12}
            )
        )
        lines = ndjson_lines(tweets(400, seed=3)) * 25  # 10k docs
        plan = plan_schedule(lines, jobs=4)
        assert plan.calibration_source == "profile"
        assert plan.mode == "parallel"  # zero startup: workers always win

    def test_profile_startup_changes_the_decision(self, fresh_profile, many_cpus):
        # A machine profile with pathological startup cost forces serial.
        fresh_profile.write_text(
            json.dumps(
                {"worker_startup_seconds": 3600.0, "ship_bytes_per_second": 1e12}
            )
        )
        lines = ndjson_lines(tweets(200, seed=3))
        plan = plan_schedule(lines, jobs=4)
        assert plan.mode == "serial"
        assert plan.calibration_source == "profile"

    def test_corpus_sampling_is_bytes_native(self, fresh_profile, many_cpus, tmp_path):
        fresh_profile.write_text(
            json.dumps(
                {"worker_startup_seconds": 0.0, "ship_bytes_per_second": 1e12}
            )
        )
        path = tmp_path / "corpus.ndjson"
        write_ndjson(path, tweets(2000, seed=5))
        with open_corpus(path) as corpus:
            plan = plan_schedule(corpus, jobs=2)
            assert plan.sample_docs_per_sec > 0
            assert plan.documents == 2000


class TestAutoSharedMemory:
    def test_heuristic(self):
        big, small = 10 << 20, 1 << 20
        assert choose_shared_memory(big, 4)
        assert not choose_shared_memory(small, 4)
        assert not choose_shared_memory(big, 1)
        assert not choose_shared_memory(big, 4, file_backed=True)

    def test_resolver_passes_booleans_through(self):
        resolve = distributed_module._resolve_shared_memory
        assert resolve(True, 0, 1) is True
        assert resolve(False, 1 << 30, 8) is False
        assert resolve("auto", 10 << 20, 4) is True
        assert resolve("auto", 10 << 20, 4, file_backed=True) is False

    def test_auto_is_identical_to_explicit(self):
        from repro.inference import infer_distributed_text, infer_type
        from repro.types.intern import global_table

        docs = tweets(120, seed=11)
        lines = ndjson_lines(docs)
        reference = infer_type(docs)
        for shared in ("auto", True, False):
            run = infer_distributed_text(
                lines, partitions=3, processes=2, shared_memory=shared
            )
            assert global_table().canonical(run.result) is reference

    def test_cli_shared_memory_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["infer", "x"]).shared_memory == "auto"
        assert (
            parser.parse_args(["infer", "x", "--shared-memory"]).shared_memory
            == "always"
        )
        assert (
            parser.parse_args(
                ["infer", "x", "--shared-memory", "never"]
            ).shared_memory
            == "never"
        )
        with pytest.raises(SystemExit):
            parser.parse_args(["infer", "x", "--shared-memory", "bogus"])
