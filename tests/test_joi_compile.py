"""Tests for the Joi → JSON Schema compiler (DESIGN.md invariant 7)."""

import pytest

import repro.joi as joi
from repro.joi import compile_to_jsonschema
from repro.jsonschema import compile_schema


def agree_on(joi_schema, instances):
    """Assert Joi and its compiled JSON Schema accept/reject identically."""
    compiled = compile_schema(compile_to_jsonschema(joi_schema))
    for instance in instances:
        assert joi_schema.is_valid(instance) == compiled.is_valid(instance), instance


class TestScalarCompilation:
    def test_string(self):
        agree_on(joi.string().min(2).max(4), ["a", "ab", "abcd", "abcde", 5, None])

    def test_pattern(self):
        agree_on(joi.string().pattern(r"^\d+$"), ["123", "x1", ""])

    def test_alphanum(self):
        agree_on(joi.string().alphanum(), ["abc1", "a b", ""])

    def test_number(self):
        agree_on(joi.number().min(0).max(10), [-1, 0, 5, 10, 11, "5"])

    def test_integer(self):
        # Note: JSON Schema "integer" admits 3.0 (spec semantics) while Joi's
        # integer() does not — exclude integral floats from the comparison.
        agree_on(joi.number().integer().positive(), [1, 7, -1, 0, "x"])

    def test_multiple(self):
        agree_on(joi.number().multiple(3), [9, 10, 0])

    def test_boolean(self):
        agree_on(joi.boolean(), [True, False, 0, "true"])

    def test_valid_whitelist(self):
        agree_on(joi.any_().valid("a", "b"), ["a", "b", "c", 1])

    def test_allow_null(self):
        agree_on(joi.string().allow(None), ["x", None, 3])


class TestContainerCompilation:
    def test_array(self):
        agree_on(
            joi.array().items(joi.number()).min(1).max(3),
            [[], [1], [1, 2, 3], [1, 2, 3, 4], ["x"], "not-array"],
        )

    def test_array_union_items(self):
        agree_on(
            joi.array().items(joi.string(), joi.number()),
            [["a", 1], [None], [[]]],
        )

    def test_unique(self):
        agree_on(joi.array().unique(), [[1, 2], [1, 1]])

    def test_object_keys(self):
        schema = joi.object().keys(
            {"a": joi.number().required(), "b": joi.string()}
        )
        agree_on(
            schema,
            [
                {"a": 1},
                {"a": 1, "b": "x"},
                {"b": "x"},
                {"a": "no"},
                {"a": 1, "z": 0},
            ],
        )

    def test_object_unknown(self):
        agree_on(joi.object().keys({"a": joi.any_()}).unknown(), [{"a": 1, "z": 2}])

    def test_forbidden_key(self):
        agree_on(
            joi.object().keys({"legacy": joi.any_().forbidden()}).unknown(),
            [{}, {"legacy": 1}, {"other": 2}],
        )

    def test_pattern_properties(self):
        schema = joi.object().pattern(r"^meta_", joi.string())
        agree_on(schema, [{"meta_a": "x"}, {"meta_a": 1}])


class TestConstraintCompilation:
    CASES = [
        {},
        {"a": 1},
        {"b": 2},
        {"a": 1, "b": 2},
        {"a": 1, "b": 2, "c": 3},
        {"c": 3},
    ]

    def test_and(self):
        agree_on(joi.object().unknown().and_("a", "b"), self.CASES)

    def test_or(self):
        agree_on(joi.object().unknown().or_("a", "b"), self.CASES)

    def test_xor(self):
        agree_on(joi.object().unknown().xor("a", "b"), self.CASES)

    def test_nand(self):
        agree_on(joi.object().unknown().nand("a", "b"), self.CASES)

    def test_with(self):
        agree_on(joi.object().unknown().with_("a", "b"), self.CASES)

    def test_without(self):
        agree_on(joi.object().unknown().without("a", "b"), self.CASES)

    def test_three_way_xor(self):
        schema = joi.object().unknown().xor("a", "b", "c")
        agree_on(schema, self.CASES)


class TestWhenCompilation:
    def test_value_dependent_field(self):
        schema = joi.object().keys(
            {
                "kind": joi.string().valid("circle", "square").required(),
                "size": joi.when(
                    "kind",
                    is_=joi.string().valid("circle"),
                    then=joi.number().required(),
                    otherwise=joi.string().required(),
                ),
            }
        )
        agree_on(
            schema,
            [
                {"kind": "circle", "size": 3.5},
                {"kind": "circle", "size": "big"},
                {"kind": "circle"},
                {"kind": "square", "size": "big"},
                {"kind": "square", "size": 3.5},
            ],
        )


class TestAlternativesCompilation:
    def test_union(self):
        agree_on(joi.alternatives(joi.string(), joi.number()), ["x", 1, None, []])

    def test_nested(self):
        schema = joi.alternatives(
            joi.object().keys({"a": joi.number().required()}),
            joi.array().items(joi.string()),
        )
        agree_on(schema, [{"a": 1}, ["x"], [1], {"b": 2}, "scalar"])


class TestAccountExampleCompilation:
    def test_full_example(self):
        schema = (
            joi.object()
            .keys(
                {
                    "username": joi.string().alphanum().min(3).max(30).required(),
                    "password": joi.string().pattern(r"^[a-zA-Z0-9]{3,30}$"),
                    "access_token": joi.alternatives(joi.string(), joi.number()),
                    "birth_year": joi.number().integer().min(1900).max(2013),
                }
            )
            .with_("username", "birth_year")
            .xor("password", "access_token")
        )
        agree_on(
            schema,
            [
                {"username": "abc", "birth_year": 1994, "password": "passwd1"},
                {"username": "abc", "birth_year": 1994, "access_token": 12},
                {"username": "abc", "birth_year": 1994},
                {
                    "username": "abc",
                    "birth_year": 1994,
                    "password": "p1",
                    "access_token": 1,
                },
                {"username": "abc", "password": "passwd1"},
                {"birth_year": 1994, "password": "passwd1"},
            ],
        )
