"""Tests for the JSound compact schema language."""

import pytest

from repro.jsonschema import compile_schema
from repro.jsound import JSoundSchemaError, compile_jsound


class TestAtomicTypes:
    @pytest.mark.parametrize(
        "type_name,good,bad",
        [
            ("string", "x", 1),
            ("integer", 3, 3.5),
            ("integer", 3, True),
            ("decimal", 3.5, "3.5"),
            ("double", 2.5, None),
            ("boolean", True, 1),
            ("null", None, 0),
            ("date", "2019-03-26", "26/03/2019"),
            ("dateTime", "2019-03-26T09:30:00Z", "2019-03-26"),
            ("time", "09:30:00Z", "9:30"),
            ("anyURI", "https://example.org", "a b"),
            ("hexBinary", "deadBEEF", "xyz"),
            ("base64Binary", "aGVsbG8=", "%%%"),
            ("any", {"x": [1]}, NotImplemented),
            ("atomic", "scalar", [1]),
        ],
    )
    def test_atoms(self, type_name, good, bad):
        schema = compile_jsound(type_name)
        assert schema.is_valid(good)
        if bad is not NotImplemented:
            assert not schema.is_valid(bad)

    def test_nullable_type(self):
        schema = compile_jsound("string?")
        assert schema.is_valid("x")
        assert schema.is_valid(None)
        assert not schema.is_valid(1)

    def test_unknown_type_rejected(self):
        with pytest.raises(JSoundSchemaError):
            compile_jsound("varchar")


class TestArrays:
    def test_homogeneous(self):
        schema = compile_jsound(["integer"])
        assert schema.is_valid([1, 2])
        assert schema.is_valid([])
        assert not schema.is_valid([1, "x"])
        assert not schema.is_valid("not-an-array")

    def test_exactly_one_item_type(self):
        with pytest.raises(JSoundSchemaError):
            compile_jsound(["integer", "string"])
        with pytest.raises(JSoundSchemaError):
            compile_jsound([])

    def test_nested(self):
        schema = compile_jsound([["string"]])
        assert schema.is_valid([["a"], []])
        assert not schema.is_valid(["a"])


class TestObjects:
    def test_basic(self):
        schema = compile_jsound({"name": "string", "age": "integer"})
        assert schema.is_valid({"name": "ada", "age": 36})
        assert not schema.is_valid({"name": "ada"})  # age required
        assert not schema.is_valid({"name": "ada", "age": "36"})

    def test_optional_field(self):
        schema = compile_jsound({"name": "string", "nickname?": "string"})
        assert schema.is_valid({"name": "ada"})
        assert schema.is_valid({"name": "ada", "nickname": "al"})
        assert not schema.is_valid({"name": "ada", "nickname": 1})

    def test_closed_objects(self):
        schema = compile_jsound({"a": "integer"})
        assert not schema.is_valid({"a": 1, "b": 2})

    def test_nullable_field_type(self):
        schema = compile_jsound({"email": "string?"})
        assert schema.is_valid({"email": None})
        assert schema.is_valid({"email": "a@b.c"})

    def test_duplicate_names_rejected(self):
        with pytest.raises(JSoundSchemaError):
            compile_jsound({"a": "integer", "a?": "string"})

    def test_tutorial_example(self):
        schema = compile_jsound(
            {
                "name": "string",
                "age": "integer",
                "gender?": "string",
                "friends": ["string"],
            }
        )
        assert schema.is_valid(
            {"name": "ada", "age": 36, "friends": ["grace", "edsger"]}
        )
        assert not schema.is_valid({"name": "ada", "age": 36, "friends": [1]})

    def test_failure_messages_carry_paths(self):
        schema = compile_jsound({"a": ["integer"]})
        result = schema.validate({"a": [1, "x"]})
        assert not result.valid
        assert result.failures[0].path == ("a", 1)


class TestNoUnions:
    def test_restrictiveness(self):
        """JSound cannot express Int|Str — the tutorial's point of comparison."""
        with pytest.raises(JSoundSchemaError):
            compile_jsound(["integer", "string"])


class TestJsonSchemaExport:
    @pytest.mark.parametrize(
        "jsound_doc,instances",
        [
            ("string", ["x", 1, None]),
            ("string?", ["x", None, 1]),
            (["integer"], [[1], [1.5], ["x"], "no"]),
            (
                {"name": "string", "age?": "integer"},
                [{"name": "a"}, {"name": "a", "age": 3}, {"age": 3}, {"name": 1}],
            ),
        ],
    )
    def test_export_agrees(self, jsound_doc, instances):
        jsound = compile_jsound(jsound_doc)
        exported = compile_schema(jsound.to_jsonschema())
        for instance in instances:
            # JSON Schema "integer" admits 3.0; avoid integral floats here.
            assert jsound.is_valid(instance) == exported.is_valid(instance), instance

    def test_date_format_exported(self):
        exported = compile_jsound({"d": "date"}).to_jsonschema()
        assert exported["properties"]["d"] == {"type": "string", "format": "date"}
