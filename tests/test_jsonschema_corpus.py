"""A table-driven conformance corpus for the JSON Schema validator.

Modelled on the official JSON-Schema-Test-Suite format: groups of
(description, schema, [(instance, valid)]) cases, focused on *keyword
interactions* the per-keyword tests don't reach.
"""

import pytest

from repro.jsonschema import compile_schema

# (group description, schema, [(instance, expected_valid), ...])
CORPUS = [
    (
        "type and enum interact conjunctively",
        {"type": "string", "enum": ["a", 1]},
        [("a", True), (1, False), ("b", False)],
    ),
    (
        "allOf with base keywords",
        {"type": "integer", "allOf": [{"minimum": 0}, {"maximum": 10}]},
        [(5, True), (-1, False), (11, False), ("5", False)],
    ),
    (
        "anyOf with overlapping branches",
        {"anyOf": [{"minimum": 5}, {"maximum": 10}]},
        [(0, True), (7, True), (100, True), ("anything", True)],
    ),
    (
        "oneOf with nested not",
        {"oneOf": [{"type": "integer"}, {"not": {"type": "integer"}}]},
        [(1, True), ("x", True), (1.5, True)],
    ),
    (
        "not with object schema",
        {"not": {"type": "object", "required": ["secret"]}},
        [({"public": 1}, True), ({"secret": 1}, False), ("scalar", True)],
    ),
    (
        "double negation",
        {"not": {"not": {"type": "integer"}}},
        [(1, True), (1.0, True), (1.5, False), ("1", False)],
    ),
    (
        "if without else passes non-matching",
        {"if": {"type": "integer"}, "then": {"minimum": 10}},
        [(12, True), (5, False), ("five", True)],
    ),
    (
        "nested if/then/else",
        {
            "if": {"type": "object"},
            "then": {
                "if": {"required": ["a"]},
                "then": {"required": ["b"]},
            },
        },
        [({}, True), ({"a": 1, "b": 2}, True), ({"a": 1}, False), (3, True)],
    ),
    (
        "items with contains",
        {
            "type": "array",
            "items": {"type": "integer"},
            "contains": {"minimum": 100},
        },
        [([1, 100], True), ([1, 2], False), ([100, "x"], False), ([], False)],
    ),
    (
        "uniqueItems across containers",
        {"uniqueItems": True},
        [([[1], [2]], True), ([[1], [1]], False), ([{"a": 1}, {"a": 2}], True)],
    ),
    (
        "uniqueItems with key order",
        {"uniqueItems": True},
        [([{"a": 1, "b": 2}, {"b": 2, "a": 1}], False)],
    ),
    (
        "patternProperties interact with properties",
        {
            "properties": {"exact": {"type": "integer"}},
            "patternProperties": {"^ex": {"minimum": 0}},
        },
        [({"exact": 5}, True), ({"exact": -5}, False), ({"extra": -1}, False)],
    ),
    (
        "additionalProperties schema applies to leftovers only",
        {
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": {"type": "string"},
        },
        [({"a": 1, "b": "x"}, True), ({"a": 1, "b": 2}, False), ({"a": "no"}, False)],
    ),
    (
        "propertyNames with maxLength",
        {"propertyNames": {"maxLength": 3}},
        [({"abc": 1}, True), ({"abcd": 1}, False), ({}, True)],
    ),
    (
        "dependencies combine with required",
        {
            "required": ["id"],
            "dependencies": {"card": ["cvv"], "cvv": ["card"]},
        },
        [
            ({"id": 1}, True),
            ({"id": 1, "card": "x", "cvv": "y"}, True),
            ({"id": 1, "card": "x"}, False),
            ({"id": 1, "cvv": "y"}, False),
            ({"card": "x", "cvv": "y"}, False),
        ],
    ),
    (
        "schema dependency adds constraints",
        {"dependencies": {"a": {"properties": {"b": {"type": "integer"}}}}},
        [({"a": 1, "b": 2}, True), ({"a": 1, "b": "x"}, False), ({"b": "x"}, True)],
    ),
    (
        "numeric keywords on integer-valued floats",
        {"type": "integer", "multipleOf": 2},
        [(4.0, True), (5.0, False), (4, True)],
    ),
    (
        "exclusive bounds with equal limits",
        {"exclusiveMinimum": 5, "exclusiveMaximum": 5},
        [(5, False), (4, False), (6, False)],
    ),
    (
        "minProperties with patternProperties",
        {"minProperties": 1, "patternProperties": {".*": {"type": "integer"}}},
        [({}, False), ({"k": 1}, True), ({"k": "x"}, False)],
    ),
    (
        "tuple items beyond declared positions unconstrained without additionalItems",
        {"items": [{"type": "integer"}]},
        [([1, "anything", None], True), (["x"], False)],
    ),
    (
        "contains on its own",
        {"contains": {"const": 42}},
        [([41, 42], True), ([41], False), ("not-an-array", True)],
    ),
    (
        "required alone does not force object",
        {"required": ["a"]},
        [("string", True), ({"a": 1}, True), ({}, False)],
    ),
    (
        "const object compares structurally",
        {"const": {"a": [1, 2]}},
        [({"a": [1, 2]}, True), ({"a": [2, 1]}, False), ({"a": [1, 2], "b": 1}, False)],
    ),
    (
        "enum with null member",
        {"enum": [None, 0]},
        [(None, True), (0, True), (False, False), ("", False)],
    ),
    (
        "combined string constraints",
        {"type": "string", "minLength": 2, "pattern": "^[ab]+$"},
        [("ab", True), ("a", False), ("abc", False), ("aa", True)],
    ),
    (
        "if/then with $ref condition",
        {
            "definitions": {"is_circle": {"properties": {"k": {"const": "c"}}, "required": ["k"]}},
            "if": {"$ref": "#/definitions/is_circle"},
            "then": {"required": ["r"]},
        },
        [({"k": "c", "r": 1}, True), ({"k": "c"}, False), ({"k": "s"}, True)],
    ),
    (
        "anyOf inside items",
        {"items": {"anyOf": [{"type": "string"}, {"type": "integer", "minimum": 0}]}},
        [(["a", 0], True), ([-1], False), ([1.5], False)],
    ),
    (
        "oneOf discriminated records",
        {
            "oneOf": [
                {"properties": {"kind": {"const": "a"}, "x": {"type": "integer"}}, "required": ["kind", "x"]},
                {"properties": {"kind": {"const": "b"}, "y": {"type": "string"}}, "required": ["kind", "y"]},
            ]
        },
        [
            ({"kind": "a", "x": 1}, True),
            ({"kind": "b", "y": "s"}, True),
            ({"kind": "a", "y": "s"}, False),
        ],
    ),
    (
        "deeply nested structural mix",
        {
            "type": "object",
            "properties": {
                "rows": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "properties": {
                            "cells": {"type": "array", "items": {"type": ["number", "null"]}}
                        },
                        "required": ["cells"],
                    },
                }
            },
        },
        [
            ({"rows": [{"cells": [1, None, 2.5]}]}, True),
            ({"rows": [{"cells": ["x"]}]}, False),
            ({"rows": [{}]}, False),
            ({"rows": []}, True),
        ],
    ),
    (
        "empty required list is vacuous",
        {"required": []},
        [({}, True), ("x", True)],
    ),
    (
        "maxProperties zero",
        {"maxProperties": 0},
        [({}, True), ({"a": 1}, False), ([1, 2], True)],
    ),
]


def _case_id(group: str, index: int) -> str:
    return f"{group[:40]}#{index}"


CASES = [
    pytest.param(schema, instance, expected, id=_case_id(desc, i))
    for desc, schema, pairs in CORPUS
    for i, (instance, expected) in enumerate(pairs)
]


@pytest.mark.parametrize("schema,instance,expected", CASES)
def test_corpus(schema, instance, expected):
    compiled = compile_schema(schema)
    result = compiled.validate(instance)
    assert result.valid == expected, (
        f"expected {'valid' if expected else 'invalid'}, got "
        f"{[str(f) for f in result.failures]}"
    )
