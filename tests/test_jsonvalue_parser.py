"""Tests for repro.jsonvalue.parser."""

import pytest

from repro.errors import JsonError
from repro.jsonvalue.model import strict_equal
from repro.jsonvalue.parser import JsonParseError, ParseOptions, parse, parse_lines


class TestScalars:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("null", None),
            ("true", True),
            ("false", False),
            ("42", 42),
            ("-1.5", -1.5),
            ('"hi"', "hi"),
        ],
    )
    def test_top_level_scalars(self, text, value):
        assert strict_equal(parse(text), value)

    def test_whitespace_tolerated(self):
        assert parse("  \t\n 1 \r\n ") == 1


class TestContainers:
    def test_empty_object(self):
        assert parse("{}") == {}

    def test_empty_array(self):
        assert parse("[]") == []

    def test_nested(self):
        doc = parse('{"a": [1, {"b": [true, null]}], "c": {}}')
        assert doc == {"a": [1, {"b": [True, None]}], "c": {}}

    def test_key_order_preserved(self):
        doc = parse('{"z": 1, "a": 2, "m": 3}')
        assert list(doc.keys()) == ["z", "a", "m"]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "{",
            "}",
            "[1,]",
            "{1: 2}",
            '{"a" 1}',
            '{"a": }',
            '{"a": 1,}',
            "[1 2]",
            '{"a": 1} extra',
            "[1] [2]",
            '{"a": 1 "b": 2}',
        ],
    )
    def test_malformed(self, text):
        # Lex-level and parse-level failures both derive from JsonError.
        with pytest.raises(JsonError):
            parse(text)


class TestDuplicateKeys:
    def test_last_wins_by_default(self):
        assert parse('{"a": 1, "a": 2}') == {"a": 2}

    def test_first_policy(self):
        options = ParseOptions(duplicate_keys="first")
        assert parse('{"a": 1, "a": 2}', options) == {"a": 1}

    def test_error_policy(self):
        options = ParseOptions(duplicate_keys="error")
        with pytest.raises(JsonParseError, match="duplicate"):
            parse('{"a": 1, "a": 2}', options)


class TestDepthLimit:
    def test_within_limit(self):
        text = "[" * 10 + "1" + "]" * 10
        assert parse(text, ParseOptions(max_depth=10))

    def test_exceeded(self):
        text = "[" * 11 + "1" + "]" * 11
        with pytest.raises(JsonParseError, match="depth"):
            parse(text, ParseOptions(max_depth=10))

    def test_adversarial_default(self):
        text = "[" * 600 + "]" * 600
        with pytest.raises(JsonParseError, match="depth"):
            parse(text)


class TestTopLevelContainerOption:
    def test_scalar_rejected(self):
        options = ParseOptions(require_top_level_container=True)
        with pytest.raises(JsonParseError):
            parse("42", options)

    def test_container_accepted(self):
        options = ParseOptions(require_top_level_container=True)
        assert parse("[42]", options) == [42]


class TestParseLines:
    def test_ndjson(self):
        lines = ['{"a": 1}', "", '{"a": 2}']
        docs = list(parse_lines(lines))
        assert docs == [{"a": 1}, {"a": 2}]

    def test_blank_line_error_when_not_skipping(self):
        with pytest.raises(JsonParseError):
            list(parse_lines(["{}", " "], skip_blank=False))

    def test_numbers_keep_types(self):
        (doc,) = parse_lines(['{"i": 3, "f": 3.0}'])
        assert isinstance(doc["i"], int)
        assert isinstance(doc["f"], float)
