"""Tests for the translation pipelines (E9) and the schema repository."""

import pytest

from repro.errors import InferenceError
from repro.inference.skeleton import structure_of
from repro.repository import SchemaRepository
from repro.translation import (
    assemble,
    resolve_type,
    schema_aware_translate,
    schema_oblivious_translate,
)
from repro.types import INT, NULL, RecType, STR, matches, type_of, union2


class TestResolveType:
    def test_representable_untouched(self):
        t = RecType.of({"a": INT, "b": union2(STR, NULL)})
        resolved, fallbacks = resolve_type(t)
        assert fallbacks == []
        assert resolved == t

    def test_int_flt_widens(self):
        from repro.types import FLT, NUM

        resolved, fallbacks = resolve_type(RecType.of({"v": union2(INT, FLT)}))
        assert fallbacks == []
        assert resolved == RecType.of({"v": NUM})

    def test_general_union_falls_back(self):
        t = RecType.of({"v": union2(INT, STR)})
        resolved, fallbacks = resolve_type(t)
        assert fallbacks == ["v"]
        assert resolved.field_map()["v"].type.tag == "str"

    def test_fallback_path_in_arrays(self):
        from repro.types import ArrType

        t = RecType.of({"xs": ArrType(union2(INT, STR))})
        _, fallbacks = resolve_type(t)
        assert fallbacks == ["xs.[]"]

    def test_nullable_numeric_union_widens(self):
        from repro.types import FLT, NUM
        from repro.types.simplify import union

        t = RecType.of({"v": union([INT, FLT, NULL])})
        resolved, fallbacks = resolve_type(t)
        assert fallbacks == []
        assert resolved == RecType.of({"v": union2(NULL, NUM)})

    def test_nullable_num_passes_through(self):
        from repro.types import NUM

        t = RecType.of({"v": union2(NUM, NULL)})
        resolved, fallbacks = resolve_type(t)
        assert fallbacks == []
        assert resolved == t

    def test_nullable_record_resolves_as_optional_record(self):
        inner = RecType.of({"lat": INT, "lon": INT})
        t = RecType.of({"geo": union2(inner, NULL)})
        resolved, fallbacks = resolve_type(t)
        assert fallbacks == []
        assert resolved == t

    def test_nullable_record_inner_fallbacks_keep_paths(self):
        inner = RecType.of({"v": union2(INT, STR)})
        t = RecType.of({"geo": union2(inner, NULL)})
        resolved, fallbacks = resolve_type(t)
        assert fallbacks == ["geo.v"]


class TestSchemaAwareTranslation:
    DOCS = [
        {"id": 1, "name": "a", "score": 0.5, "tags": ["x"]},
        {"id": 2, "name": "b", "score": 1.5, "tags": []},
        {"id": 3, "name": "c", "score": 2.0, "tags": ["y", "z"]},
    ]

    def test_report_shape(self):
        report = schema_aware_translate(self.DOCS)
        assert report.document_count == 3
        assert report.fallback_count == 0
        assert report.typed_fraction == 1.0
        assert report.columnar_bytes > 0
        assert report.avro_bytes > 0

    def test_columnar_roundtrip(self):
        from repro.jsonvalue.model import sort_keys_deep, strict_equal

        report = schema_aware_translate(self.DOCS)
        rebuilt = assemble(report.columnar)
        for original, back in zip(self.DOCS, rebuilt):
            assert strict_equal(sort_keys_deep(original), sort_keys_deep(back))

    def test_outputs_smaller_than_input(self):
        docs = [
            {"id": i, "name": f"user_{i}", "score": i / 3, "active": True}
            for i in range(100)
        ]
        report = schema_aware_translate(docs)
        assert report.columnar_bytes < report.input_bytes
        assert report.avro_bytes < report.input_bytes

    def test_heterogeneous_fields_fall_back(self):
        docs = [{"v": 1}, {"v": "one"}, {"v": 2}]
        report = schema_aware_translate(docs)
        assert report.fallback_count == 1
        assert report.typed_fraction < 1.0

    def test_fallback_values_preserved_as_json_text(self):
        docs = [{"v": 1}, {"v": "one"}]
        report = schema_aware_translate(docs)
        rebuilt = assemble(report.columnar)
        assert rebuilt[0]["v"] == "1"  # serialized JSON text
        assert rebuilt[1]["v"] == '"one"'


class TestObliviousBaseline:
    def test_blob_sizes(self):
        docs = [{"a": 1}, {"b": [1, 2]}]
        report = schema_oblivious_translate(docs)
        assert report.document_count == 2
        assert report.total_bytes == sum(len(b) for b in report.blobs)

    def test_schema_aware_beats_oblivious_on_regular_data(self):
        docs = [
            {"id": i, "label": "constant-label-text", "value": i * 1.5}
            for i in range(200)
        ]
        aware = schema_aware_translate(docs)
        oblivious = schema_oblivious_translate(docs)
        assert aware.columnar_bytes < oblivious.total_bytes


USERS = [{"type": "user", "name": f"u{i}", "age": i} for i in range(8)]
POSTS = [{"type": "post", "title": f"t{i}", "tags": ["a"]} for i in range(4)]


class TestSchemaRepository:
    @pytest.fixture()
    def repo(self):
        repo = SchemaRepository()
        repo.register("events", USERS + POSTS, k=2)
        repo.register("logs", [{"level": "info", "msg": "m"}] * 5, k=1)
        return repo

    def test_register_and_summary(self, repo):
        summary = repo.summary()
        assert [s["collection"] for s in summary] == ["events", "logs"]
        events = summary[0]
        assert events["documents"] == 12
        assert events["structures"] == 2
        assert events["top_structure_support"] == 8

    def test_duplicate_name_rejected(self, repo):
        with pytest.raises(InferenceError):
            repo.register("events", USERS)

    def test_path_query(self, repo):
        assert repo.find_collections_with_path(("name",)) == ["events"]
        assert repo.find_collections_with_path("level") == ["logs"]
        assert repo.find_collections_with_path("tags.[*]") == ["events"]
        assert repo.find_collections_with_path("missing") == []

    def test_containment_query(self, repo):
        hits = repo.containing_structures([("type",), ("title",)])
        assert len(hits) == 1
        name, structure = hits[0]
        assert name == "events"
        assert ("tags", "[*]") in structure

    def test_containment_within(self, repo):
        assert repo.containing_structures([("level",)], within="logs")
        assert not repo.containing_structures([("level",)], within="events")

    def test_classify_known_structure(self, repo):
        t = repo.classify("events", {"type": "user", "name": "new", "age": 99})
        assert t is not None
        assert matches({"type": "user", "name": "new", "age": 99}, t)

    def test_classify_unknown_structure(self, repo):
        # The skeleton misses structures outside its top-k — by design.
        assert repo.classify("events", {"totally": "different"}) is None

    def test_unknown_collection(self, repo):
        with pytest.raises(InferenceError):
            repo.collection("nope")

    def test_group_types_match_members(self, repo):
        entry = repo.collection("events")
        for doc in USERS:
            t = entry.group_types[structure_of(doc)]
            assert matches(doc, t)
