"""Property-based tests for the JSON substrate (DESIGN.md invariant 1 and 8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsonvalue.events import iter_events, values_from_events
from repro.jsonvalue.model import freeze, iter_paths, strict_equal, unfreeze
from repro.jsonvalue.parser import parse
from repro.jsonvalue.pointer import JsonPointer
from repro.jsonvalue.serializer import CANONICAL, DumpOptions, PRETTY, dumps

from tests.strategies import json_values


@given(json_values())
def test_parse_dumps_roundtrip_compact(value):
    assert strict_equal(parse(dumps(value)), value)


@given(json_values())
def test_parse_dumps_roundtrip_pretty(value):
    assert strict_equal(parse(dumps(value, PRETTY)), value)


@given(json_values())
def test_parse_dumps_roundtrip_ascii(value):
    assert strict_equal(parse(dumps(value, CANONICAL)), value)


@given(json_values())
def test_stdlib_agrees_with_our_parser(value):
    """Cross-validate against the standard library on our own output."""
    import json as stdlib_json

    ours = dumps(value)
    assert parse(stdlib_json.dumps(stdlib_json.loads(ours))) == parse(ours)


@given(json_values())
def test_event_stream_rebuilds_value(value):
    text = dumps(value)
    (rebuilt,) = values_from_events(iter_events(text))
    assert strict_equal(rebuilt, value)


@given(json_values())
def test_freeze_unfreeze_roundtrip(value):
    assert strict_equal(unfreeze(freeze(value)), value)


@given(json_values(), json_values())
def test_freeze_injective(a, b):
    if freeze(a) == freeze(b):
        assert strict_equal(a, b)
    else:
        assert not strict_equal(a, b)


@given(json_values())
def test_every_leaf_path_resolves_by_pointer(value):
    """Invariant 8: pointer built from a model path resolves to that leaf."""
    for path, leaf in iter_paths(value):
        resolved = JsonPointer.from_path(path).resolve(value)
        assert strict_equal(resolved, leaf)


@given(json_values())
@settings(max_examples=50)
def test_canonical_dump_is_deterministic(value):
    options = DumpOptions(sort_keys=True)
    assert dumps(value, options) == dumps(value, options)


@given(st.text(max_size=40))
def test_string_escaping_roundtrip(text):
    try:
        text.encode("utf-8")
    except UnicodeEncodeError:
        # Lone surrogates cannot be produced by hypothesis text(), but guard anyway.
        return
    assert parse(dumps(text)) == text
