"""Tests for skeleton mining (Wang et al.) and Couchbase flavor discovery."""

import pytest

from repro.errors import InferenceError
from repro.inference import (
    build_skeleton,
    discover_flavors,
    document_coverage,
    mine_structures,
    path_coverage,
    structure_of,
)
from repro.types import matches

USERS = [{"type": "user", "name": f"u{i}", "age": i} for i in range(6)]
POSTS = [{"type": "post", "title": f"t{i}", "tags": ["a", "b"]} for i in range(3)]
ODD = [{"weird": {"deep": [1]}}]
COLLECTION = USERS + POSTS + ODD


class TestStructureOf:
    def test_flat(self):
        assert structure_of({"a": 1, "b": "x"}) == frozenset({("a",), ("b",)})

    def test_nested_and_arrays_generalized(self):
        s = structure_of({"u": {"n": 1}, "xs": [{"v": 1}, {"v": 2}]})
        assert s == frozenset({("u", "n"), ("xs", "[*]", "v")})

    def test_array_positions_collapse(self):
        assert structure_of({"xs": [1, 2, 3]}) == structure_of({"xs": [9]})


class TestMineStructures:
    def test_counts(self):
        structures = mine_structures(COLLECTION)
        assert structures[0].count == 6  # users dominate
        assert structures[1].count == 3
        assert structures[2].count == 1

    def test_order_most_frequent_first(self):
        structures = mine_structures(COLLECTION)
        counts = [s.count for s in structures]
        assert counts == sorted(counts, reverse=True)

    def test_empty(self):
        with pytest.raises(InferenceError):
            mine_structures([])


class TestSkeleton:
    def test_top_k(self):
        skeleton = build_skeleton(COLLECTION, k=2)
        assert skeleton.order == 2
        assert skeleton.document_count == 10

    def test_document_coverage_monotone_in_k(self):
        coverages = [
            document_coverage(build_skeleton(COLLECTION, k=k), COLLECTION)
            for k in (1, 2, 3)
        ]
        assert coverages == sorted(coverages)
        assert coverages[0] == 0.6
        assert coverages[1] == 0.9
        assert coverages[2] == 1.0

    def test_path_coverage(self):
        skeleton = build_skeleton(COLLECTION, k=1)
        pc = path_coverage(skeleton, COLLECTION)
        dc = document_coverage(skeleton, COLLECTION)
        assert pc >= dc  # partial matches count for paths

    def test_skeleton_misses_rare_paths(self):
        """The defining property: skeletons may miss traversable paths."""
        skeleton = build_skeleton(COLLECTION, k=2)
        assert not skeleton.covers_path(("weird", "deep", "[*]"))
        assert skeleton.covers_path(("type",))

    def test_as_trees(self):
        skeleton = build_skeleton(COLLECTION, k=1)
        (tree,) = skeleton.as_trees()
        assert set(tree.keys()) == {"type", "name", "age"}

    def test_covers_document(self):
        skeleton = build_skeleton(COLLECTION, k=1)
        assert skeleton.covers_document(USERS[0])
        assert not skeleton.covers_document(ODD[0])


class TestCouchbaseFlavors:
    def test_discovers_major_flavors(self):
        flavors = discover_flavors(COLLECTION, threshold=0.5)
        assert len(flavors) >= 2
        assert flavors[0].count == 6
        assert flavors[1].count == 3

    def test_flavor_schemas_sound(self):
        for flavor in discover_flavors(COLLECTION, threshold=0.5):
            for doc in flavor.members:
                assert matches(doc, flavor.schema)

    def test_semantic_discrimination(self):
        """Docs with identical structure but different `type` values split."""
        docs = [{"type": "a", "v": 1}] * 4 + [{"type": "b", "v": 2}] * 4
        flavors = discover_flavors(docs, threshold=0.9)
        assert len(flavors) == 2

    def test_threshold_zero_gives_one_flavor(self):
        flavors = discover_flavors(COLLECTION, threshold=0.0)
        assert len(flavors) == 1
        assert flavors[0].count == len(COLLECTION)

    def test_describe(self):
        flavors = discover_flavors(USERS, threshold=0.5)
        assert "6 docs" in flavors[0].describe()

    def test_empty(self):
        with pytest.raises(InferenceError):
            discover_flavors([])
