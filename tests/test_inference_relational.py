"""Tests for FD-driven relational normalisation (DiScala & Abadi style)."""

import pytest

from repro.errors import InferenceError
from repro.inference import (
    FunctionalDependency,
    decompose,
    flatten,
    mine_fds,
    normalize,
)

# Denormalised orders: customer attributes repeat with every order —
# exactly the redundancy the SIGMOD '16 paper removes.
_CUSTOMERS = {
    "c1": ("Ada", "Paris", "FR", "gold"),
    "c2": ("Bob", "Pisa", "IT", "silver"),
    "c3": ("Cleo", "Lyon", "FR", "gold"),
}
ORDERS = [
    {
        "order": i,
        "cust_id": cid,
        "cust_name": _CUSTOMERS[cid][0],
        "cust_city": _CUSTOMERS[cid][1],
        "cust_country": _CUSTOMERS[cid][2],
        "cust_segment": _CUSTOMERS[cid][3],
        "amount": 10 + 7 * i,
    }
    for i, cid in enumerate(["c1", "c2", "c3"] * 4)
]


class TestFlatten:
    def test_flat_objects(self):
        result = flatten([{"a": 1, "b": "x"}])
        assert result.fact.columns == ["_id", "a", "b"]
        assert result.fact.rows == [(0, 1, "x")]

    def test_nested_objects_dotted(self):
        result = flatten([{"u": {"name": "a", "geo": {"city": "p"}}}])
        assert "u.name" in result.fact.columns
        assert "u.geo.city" in result.fact.columns

    def test_missing_fields_get_sentinel(self):
        result = flatten([{"a": 1}, {"b": 2}])
        row0, row1 = result.fact.rows
        assert row0[result.fact.columns.index("b")] != 2
        assert row1[result.fact.columns.index("b")] == 2

    def test_object_arrays_become_child_tables(self):
        docs = [{"id": 1, "items": [{"sku": "a"}, {"sku": "b"}]}]
        result = flatten(docs)
        (child,) = result.children
        assert child.name == "root.items"
        assert child.columns == ["_parent_id", "sku"]
        assert len(child.rows) == 2

    def test_scalar_arrays_stay_inline(self):
        result = flatten([{"tags": ["a", "b"]}])
        assert result.children == []
        assert "tags" in result.fact.columns

    def test_non_objects_rejected(self):
        with pytest.raises(InferenceError):
            flatten([[1, 2]])

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            flatten([])


class TestMineFds:
    def test_discovers_customer_fds(self):
        table = flatten(ORDERS).fact
        fds = set(map(str, mine_fds(table)))
        assert "cust_id -> cust_name" in fds
        assert "cust_id -> cust_city" in fds

    def test_no_false_fds(self):
        table = flatten(ORDERS).fact
        fds = set(map(str, mine_fds(table)))
        assert "cust_id -> amount" not in fds
        assert "cust_name -> order" not in fds

    def test_keys_excluded_as_determinants(self):
        table = flatten(ORDERS).fact
        fds = mine_fds(table)
        assert not any(fd.determinant in ("order", "_id") for fd in fds)

    def test_small_tables_yield_nothing(self):
        table = flatten([{"a": 1, "b": 2}]).fact
        assert mine_fds(table) == []


class TestDecompose:
    def test_entity_extracted(self):
        table = flatten(ORDERS).fact
        result = decompose(table)
        assert result.table_count() == 2
        (entity,) = result.entities
        assert set(entity.columns) == {
            entity.columns[0],
            "cust_name",
            "cust_city",
            "cust_country",
            "cust_segment",
            "cust_id",
        }
        assert len(entity.rows) == 3  # deduplicated customers

    def test_fact_keeps_fk(self):
        table = flatten(ORDERS).fact
        result = decompose(table)
        assert "cust_id" in result.fact.columns
        assert "cust_name" not in result.fact.columns

    def test_redundancy_reduced(self):
        report = normalize(ORDERS)
        assert report.redundancy_reduction > 0.15
        assert report.decomposition.total_cells() < report.flattened.fact.cell_count()

    def test_explicit_fds(self):
        table = flatten(ORDERS).fact
        fds = [
            FunctionalDependency("cust_id", "cust_name"),
            FunctionalDependency("cust_id", "cust_city"),
        ]
        result = decompose(table, fds)
        assert result.table_count() == 2

    def test_no_fds_no_decomposition(self):
        docs = [{"a": i, "b": i * 2 + (i % 3)} for i in range(10)]
        report = normalize(docs)
        assert report.decomposition.table_count() >= 1


class TestNormalizePipeline:
    def test_report_fields(self):
        report = normalize(ORDERS)
        assert report.fds
        assert report.flattened.fact.rows
        assert 0.0 <= report.redundancy_reduction < 1.0

    def test_values_preserved_via_join(self):
        """Joining entities back along the FK reconstructs the flat table."""
        report = normalize(ORDERS)
        fact = report.decomposition.fact
        (entity,) = report.decomposition.entities
        entity_index = {row[0]: row for row in entity.rows}
        fk = fact.columns.index("cust_id")
        name_col = entity.columns.index("cust_name")
        flat = report.flattened.fact
        flat_name = flat.columns.index("cust_name")
        flat_fk = flat.columns.index("cust_id")
        for flat_row, fact_row in zip(flat.rows, fact.rows):
            assert fact_row[fk] == flat_row[flat_fk]
            assert entity_index[fact_row[fk]][name_col] == flat_row[flat_name]
