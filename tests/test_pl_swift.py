"""Tests for the Swift-like Codable layer."""

import pytest

from repro.pl import swift as sw
from repro.pl.swift import SwiftDecodeError, SwiftInferenceError


class TestPrimitiveDecoding:
    def test_string(self):
        assert sw.decode(sw.STRING, "x") == "x"
        with pytest.raises(SwiftDecodeError):
            sw.decode(sw.STRING, 1)

    def test_bool(self):
        assert sw.decode(sw.BOOL, True) is True
        with pytest.raises(SwiftDecodeError):
            sw.decode(sw.BOOL, 1)

    def test_int(self):
        assert sw.decode(sw.INT, 3) == 3
        assert sw.decode(sw.INT, 3.0) == 3  # integral double bridges
        with pytest.raises(SwiftDecodeError):
            sw.decode(sw.INT, 3.5)
        with pytest.raises(SwiftDecodeError):
            sw.decode(sw.INT, True)

    def test_double(self):
        assert sw.decode(sw.DOUBLE, 3) == 3.0
        assert isinstance(sw.decode(sw.DOUBLE, 3), float)
        assert sw.decode(sw.DOUBLE, 3.5) == 3.5
        with pytest.raises(SwiftDecodeError):
            sw.decode(sw.DOUBLE, "3.5")

    def test_null_raises_value_not_found(self):
        with pytest.raises(SwiftDecodeError) as exc:
            sw.decode(sw.INT, None)
        assert exc.value.case == "valueNotFound"


class TestOptional:
    def test_nil(self):
        assert sw.decode(sw.SwiftOptional(sw.INT), None) is None

    def test_present(self):
        assert sw.decode(sw.SwiftOptional(sw.INT), 5) == 5

    def test_wrong_type_still_fails(self):
        with pytest.raises(SwiftDecodeError):
            sw.decode(sw.SwiftOptional(sw.INT), "x")


class TestContainers:
    def test_array(self):
        assert sw.decode(sw.SwiftArray(sw.INT), [1, 2]) == [1, 2]
        with pytest.raises(SwiftDecodeError) as exc:
            sw.decode(sw.SwiftArray(sw.INT), [1, "x"])
        assert exc.value.coding_path == (1,)

    def test_dictionary(self):
        t = sw.SwiftDictionary(sw.DOUBLE)
        assert sw.decode(t, {"a": 1, "b": 2.5}) == {"a": 1.0, "b": 2.5}
        with pytest.raises(SwiftDecodeError):
            sw.decode(t, {"a": "x"})


class TestStructDecoding:
    TWEET = sw.SwiftStruct.of(
        "Tweet",
        {
            "id": sw.INT,
            "text": sw.STRING,
            "lang": sw.SwiftOptional(sw.STRING),
        },
    )

    def test_full(self):
        out = sw.decode(self.TWEET, {"id": 1, "text": "hi", "lang": "en"})
        assert out == {"id": 1, "text": "hi", "lang": "en"}

    def test_missing_optional_becomes_nil(self):
        out = sw.decode(self.TWEET, {"id": 1, "text": "hi"})
        assert out["lang"] is None

    def test_missing_required_key_not_found(self):
        with pytest.raises(SwiftDecodeError) as exc:
            sw.decode(self.TWEET, {"text": "hi"})
        assert exc.value.case == "keyNotFound"

    def test_unknown_members_ignored(self):
        out = sw.decode(self.TWEET, {"id": 1, "text": "hi", "extra": [1]})
        assert "extra" not in out

    def test_type_mismatch_path(self):
        nested = sw.SwiftStruct.of(
            "Outer", {"inner": sw.SwiftStruct.of("Inner", {"v": sw.INT})}
        )
        with pytest.raises(SwiftDecodeError) as exc:
            sw.decode(nested, {"inner": {"v": "x"}})
        assert exc.value.coding_path == ("inner", "v")


class TestInference:
    def test_simple_struct(self):
        t = sw.infer_struct("User", [{"name": "ada", "age": 36}])
        assert t.field_map()["name"].type == sw.STRING
        assert t.field_map()["age"].type == sw.INT

    def test_missing_field_becomes_optional(self):
        t = sw.infer_struct("User", [{"a": 1}, {"a": 2, "b": "x"}])
        assert t.field_map()["b"].type == sw.SwiftOptional(sw.STRING)

    def test_int_double_widen(self):
        t = sw.infer_struct("M", [{"v": 1}, {"v": 2.5}])
        assert t.field_map()["v"].type == sw.DOUBLE

    def test_null_makes_optional(self):
        t = sw.infer_struct("M", [{"v": None}, {"v": "x"}])
        assert t.field_map()["v"].type == sw.SwiftOptional(sw.STRING)

    def test_nested_structs(self):
        t = sw.infer_struct("Post", [{"user": {"name": "a"}}])
        user_type = t.field_map()["user"].type
        assert isinstance(user_type, sw.SwiftStruct)
        assert user_type.name == "PostUser"

    def test_union_data_raises(self):
        with pytest.raises(SwiftInferenceError):
            sw.infer_struct("M", [{"v": 1}, {"v": "x"}])

    def test_inferred_struct_decodes_samples(self):
        samples = [
            {"id": 1, "tags": ["a"], "score": 0.5},
            {"id": 2, "tags": [], "score": 1, "note": "x"},
        ]
        t = sw.infer_struct("Row", samples)
        for s in samples:
            sw.decode(t, s)  # must not raise


class TestCodegen:
    def test_render_struct(self):
        t = sw.SwiftStruct.of(
            "Tweet",
            {"id": sw.INT, "text": sw.STRING, "lang": sw.SwiftOptional(sw.STRING)},
        )
        src = sw.render_struct(t)
        assert "struct Tweet: Codable {" in src
        assert "let id: Int" in src
        assert "let lang: String?" in src

    def test_nested_struct_rendered_inline(self):
        inner = sw.SwiftStruct.of("User", {"name": sw.STRING})
        outer = sw.SwiftStruct.of("Post", {"user": inner, "ids": sw.SwiftArray(sw.INT)})
        src = sw.render_struct(outer)
        assert "let user: User" in src
        assert "struct User: Codable {" in src
        assert "let ids: [Int]" in src
