"""Tests for the Fad.js-style speculative encoder."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsonvalue.serializer import dumps
from repro.parsing import (
    SpeculativeEncoder,
    compile_encode_template,
    encode_shape_key,
    encode_stream,
)

from tests.strategies import json_objects


class TestShapeKey:
    def test_flat(self):
        key = encode_shape_key({"a": 1, "b": "x", "c": True, "d": None})
        assert key == (("a", "n"), ("b", "s"), ("c", "l"), ("d", "l"))

    def test_nested(self):
        key = encode_shape_key({"u": {"n": "x"}})
        assert key == (("u", (("n", "s"),)),)

    def test_key_order_matters(self):
        assert encode_shape_key({"a": 1, "b": 2}) != encode_shape_key({"b": 2, "a": 1})

    def test_arrays_not_speculable(self):
        assert encode_shape_key({"xs": [1]}) is None
        assert encode_shape_key([1]) is None
        assert encode_shape_key("scalar") is None

    def test_kind_distinctions(self):
        assert encode_shape_key({"v": 1}) == encode_shape_key({"v": 2.5})
        assert encode_shape_key({"v": 1}) != encode_shape_key({"v": "1"})
        assert encode_shape_key({"v": True}) == encode_shape_key({"v": None})


class TestTemplate:
    def test_matches_dumps(self):
        sample = {"a": 1, "b": "x", "c": {"d": True}}
        template = compile_encode_template(sample)
        other = {"a": 99, "b": "yy", "c": {"d": False}}
        assert template.encode(other) == dumps(other)

    def test_escaping_in_values(self):
        template = compile_encode_template({"s": "plain"})
        tricky = {"s": 'say "hi"\n'}
        assert template.encode(tricky) == dumps(tricky)

    def test_escaping_in_keys(self):
        sample = {'we"ird': 1}
        template = compile_encode_template(sample)
        assert template.encode(sample) == dumps(sample)

    def test_number_formats(self):
        template = compile_encode_template({"v": 0})
        assert template.encode({"v": -17}) == '{"v":-17}'
        assert template.encode({"v": 2.5}) == '{"v":2.5}'


class TestSpeculativeEncoder:
    def test_identical_to_dumps(self):
        docs = [{"a": i, "b": f"s{i}", "ok": i % 2 == 0} for i in range(50)]
        lines, stats = encode_stream(docs)
        assert lines == [dumps(d) for d in docs]
        assert stats.records == 50

    def test_stable_stream_mostly_fast(self):
        docs = [{"a": i, "b": f"s{i}"} for i in range(100)]
        _, stats = encode_stream(docs)
        assert stats.deopts == 1
        assert stats.fast_path_hits == 99

    def test_array_records_never_speculate(self):
        docs = [{"xs": [i]} for i in range(20)]
        lines, stats = encode_stream(docs)
        assert stats.fast_path_hits == 0
        assert lines == [dumps(d) for d in docs]

    def test_cache_bounded(self):
        docs = [{f"k{i}": i} for i in range(20)]  # 20 distinct shapes
        encoder = SpeculativeEncoder(cache_size=4)
        for d in docs:
            encoder.encode(d)
        assert encoder.stats.templates_compiled <= 4

    def test_shape_flip_falls_back(self):
        docs = [{"v": 1}, {"v": "now-a-string"}, {"v": 2}]
        lines, stats = encode_stream(docs)
        assert lines == [dumps(d) for d in docs]
        # The string-valued shape is distinct: it deopts then gets cached.
        assert stats.deopts == 2


@given(st.lists(json_objects(max_leaves=10), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_encoder_equals_dumps_property(docs):
    encoder = SpeculativeEncoder()
    for doc in docs:
        assert encoder.encode(doc) == dumps(doc)
        assert encoder.encode(doc) == dumps(doc)  # cached round too
