"""Tests for the JSON Schema → TypeScript bridge."""

import pytest

from hypothesis import given, settings

from repro.jsonschema import InstanceGenerator, compile_schema
from repro.pl import (
    JsonSchemaTranslationError,
    declaration_from_jsonschema,
    jsonschema_to_typescript,
)
from repro.pl import typescript as ts


class TestPrimitives:
    def test_atoms(self):
        assert jsonschema_to_typescript({"type": "null"}) == ts.NULL
        assert jsonschema_to_typescript({"type": "boolean"}) == ts.BOOLEAN
        assert jsonschema_to_typescript({"type": "integer"}) == ts.NUMBER
        assert jsonschema_to_typescript({"type": "number"}) == ts.NUMBER
        assert jsonschema_to_typescript({"type": "string"}) == ts.STRING

    def test_type_list(self):
        t = jsonschema_to_typescript({"type": ["string", "null"]})
        assert t == ts.union((ts.STRING, ts.NULL))

    def test_boolean_schemas(self):
        assert jsonschema_to_typescript(True) == ts.UNKNOWN
        assert jsonschema_to_typescript(False) == ts.NEVER
        assert jsonschema_to_typescript({}) == ts.UNKNOWN


class TestLiterals:
    def test_const(self):
        assert jsonschema_to_typescript({"const": "circle"}) == ts.TSLiteral("circle")
        assert jsonschema_to_typescript({"const": 42}) == ts.TSLiteral(42)
        assert jsonschema_to_typescript({"const": None}) == ts.NULL

    def test_enum(self):
        t = jsonschema_to_typescript({"enum": ["a", "b", 1]})
        assert t == ts.union((ts.TSLiteral("a"), ts.TSLiteral("b"), ts.TSLiteral(1)))

    def test_non_scalar_enum_members_widen(self):
        t = jsonschema_to_typescript({"enum": [[1], "x"]})
        assert isinstance(t, ts.TSUnion)
        assert ts.TSLiteral("x") in t.members


class TestContainers:
    def test_array(self):
        t = jsonschema_to_typescript({"type": "array", "items": {"type": "integer"}})
        assert t == ts.TSArray(ts.NUMBER)

    def test_tuple(self):
        t = jsonschema_to_typescript(
            {"type": "array", "items": [{"type": "integer"}, {"type": "string"}]}
        )
        assert t == ts.TSTuple((ts.NUMBER, ts.STRING))

    def test_object_with_required(self):
        schema = {
            "type": "object",
            "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
            "required": ["a"],
        }
        t = jsonschema_to_typescript(schema)
        assert isinstance(t, ts.TSObject)
        assert not t.property_map()["a"].optional
        assert t.property_map()["b"].optional

    def test_required_without_property_schema(self):
        t = jsonschema_to_typescript({"type": "object", "required": ["x"]})
        assert t.property_map()["x"].type == ts.UNKNOWN

    def test_object_inferred_from_properties(self):
        t = jsonschema_to_typescript({"properties": {"a": {"type": "null"}}})
        assert isinstance(t, ts.TSObject)


class TestCombinators:
    def test_any_of(self):
        t = jsonschema_to_typescript(
            {"anyOf": [{"type": "string"}, {"type": "integer"}]}
        )
        assert t == ts.union((ts.STRING, ts.NUMBER))

    def test_all_of_objects_merge(self):
        schema = {
            "allOf": [
                {"type": "object", "properties": {"a": {"type": "integer"}}, "required": ["a"]},
                {"type": "object", "properties": {"b": {"type": "string"}}, "required": ["b"]},
            ]
        }
        t = jsonschema_to_typescript(schema)
        assert isinstance(t, ts.TSObject)
        assert set(t.property_map()) == {"a", "b"}
        assert not t.property_map()["a"].optional

    def test_all_of_literal_refinement(self):
        schema = {"allOf": [{"type": "string"}, {"const": "x"}]}
        assert jsonschema_to_typescript(schema) == ts.TSLiteral("x")

    def test_all_of_contradiction_is_never(self):
        schema = {"allOf": [{"type": "string"}, {"type": "object", "properties": {}}]}
        assert jsonschema_to_typescript(schema) == ts.NEVER


class TestRefs:
    def test_local_ref(self):
        schema = {
            "definitions": {"name": {"type": "string"}},
            "type": "object",
            "properties": {"n": {"$ref": "#/definitions/name"}},
            "required": ["n"],
        }
        t = jsonschema_to_typescript(schema)
        assert t.property_map()["n"].type == ts.STRING

    def test_recursive_ref_cut_off(self):
        schema = {
            "definitions": {
                "node": {
                    "type": "object",
                    "properties": {"next": {"$ref": "#/definitions/node"}},
                }
            },
            "$ref": "#/definitions/node",
        }
        t = jsonschema_to_typescript(schema)
        assert isinstance(t, ts.TSObject)  # terminated, no infinite loop


class TestSoundness:
    """Schema-valid instances must inhabit the translated type (wider-only)."""

    SCHEMAS = [
        {"type": "object", "properties": {"a": {"type": "integer"}}, "required": ["a"]},
        {"type": "array", "items": {"type": ["string", "null"]}},
        {"enum": ["x", "y", 3]},
        {"anyOf": [{"type": "string"}, {"type": "object", "properties": {}}]},
        {
            "type": "object",
            "properties": {
                "kind": {"const": "circle"},
                "items": {"type": "array", "items": {"type": "number"}},
            },
            "required": ["kind"],
        },
    ]

    @pytest.mark.parametrize("schema", SCHEMAS, ids=[str(i) for i in range(len(SCHEMAS))])
    def test_generated_instances_inhabit_type(self, schema):
        t = jsonschema_to_typescript(schema)
        generator = InstanceGenerator(schema, seed=5)
        for _ in range(10):
            instance = generator.generate()
            assert ts.check(instance, t), (instance, t)


class TestDeclaration:
    def test_interface_emitted(self):
        schema = {
            "type": "object",
            "properties": {"id": {"type": "integer"}, "tags": {"type": "array", "items": {"type": "string"}}},
            "required": ["id"],
        }
        src = declaration_from_jsonschema(schema, "Item")
        assert src.startswith("interface Item {")
        assert "id: number;" in src
        assert "tags?: string[];" in src
