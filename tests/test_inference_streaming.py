"""Tests for streaming (event-based) type inference."""

import pytest

from hypothesis import given, settings

from repro.datasets import github_events, ndjson_lines
from repro.errors import InferenceError
from repro.inference import infer_type
from repro.inference.streaming import (
    infer_type_streaming,
    type_from_events,
    type_of_text,
)
from repro.jsonvalue.events import iter_events
from repro.jsonvalue.serializer import dumps
from repro.types import ArrType, BOT, Equivalence, INT, RecType, STR, type_of

from tests.strategies import json_values


class TestTypeOfText:
    @pytest.mark.parametrize(
        "text",
        [
            "null",
            "true",
            "42",
            "2.5",
            '"s"',
            "[]",
            "{}",
            "[1, 2, 3]",
            '[1, "a", null]',
            '{"a": {"b": [1.5]}, "c": []}',
        ],
    )
    def test_equals_dom_path(self, text):
        from repro.jsonvalue.parser import parse

        assert type_of_text(text) == type_of(parse(text))

    def test_simple_shapes(self):
        assert type_of_text('{"a": 1}') == RecType.of({"a": INT})
        assert type_of_text("[]") == ArrType(BOT)

    def test_empty_text_rejected(self):
        from repro.errors import ReproError

        # Zero documents: the event parser rejects the empty text.
        with pytest.raises(ReproError):
            type_of_text("")


class TestTypeFromEvents:
    def test_multiple_documents(self):
        stream = list(iter_events('{"a": 1}')) + list(iter_events('["x"]'))
        types = list(type_from_events(stream))
        assert types == [RecType.of({"a": INT}), ArrType(STR)]

    def test_truncated_stream(self):
        events = list(iter_events('{"a": 1}'))[:-1]
        with pytest.raises(InferenceError):
            list(type_from_events(events))


class TestInferStreaming:
    def test_equals_batch_inference(self):
        docs = github_events(150, seed=21)
        lines = ndjson_lines(docs)
        for eq in (Equivalence.KIND, Equivalence.LABEL):
            assert infer_type_streaming(lines, eq) == infer_type(docs, eq)

    def test_blank_lines_skipped(self):
        lines = ['{"a": 1}', "", "   ", '{"a": 2}']
        assert infer_type_streaming(lines) == RecType.of({"a": INT})

    def test_empty_stream(self):
        with pytest.raises(InferenceError):
            infer_type_streaming([])


def _dying_events(text: str, keep: int):
    """The first ``keep`` events of ``text``, then a source failure."""
    yield from list(iter_events(text))[:keep]
    raise ValueError("source died")


class TestStreamIsolation:
    def test_interleaved_streams_do_not_share_state(self):
        # Drive two generators alternately: each must keep its own
        # frame stack (a fresh encoder per call).
        first = type_from_events(iter_events("[1, 2]"))
        second = type_from_events(iter_events('{"a": 1}'))
        assert next(second) == RecType.of({"a": INT})
        assert next(first) == ArrType(INT)

    def test_failing_event_source_does_not_poison_other_streams(self):
        survivor = type_from_events(iter_events('{"a": 1}'))
        with pytest.raises(ValueError):
            # Dies mid-document (after START_OBJECT, KEY).
            list(type_from_events(_dying_events('{"a": 1}', keep=2)))
        assert list(survivor) == [RecType.of({"a": INT})]

    def test_caller_held_encoder_is_reset_after_a_failing_stream(self):
        from repro.types import EventTypeEncoder

        encoder = EventTypeEncoder()
        with pytest.raises(ValueError):
            list(type_from_events(_dying_events("[1, 2]", keep=2), encoder=encoder))
        assert encoder.depth == 0  # no half-built frames leak
        assert list(type_from_events(iter_events("[1]"), encoder=encoder)) == [
            ArrType(INT)
        ]


@given(json_values(max_leaves=20))
@settings(max_examples=80, deadline=None)
def test_streaming_type_equals_dom_type(value):
    assert type_of_text(dumps(value)) == type_of(value)
