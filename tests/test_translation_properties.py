"""Property tests for the translation substrate (DESIGN.md invariant 6)."""

from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.errors import TranslationError
from repro.jsonvalue.model import sort_keys_deep, strict_equal
from repro.translation import assemble, avro, compile_schema, shred
from repro.translation.translate import resolve_type, schema_aware_translate
from repro.types import Equivalence, merge_all, type_of

from tests.strategies import json_documents, json_values


@given(json_documents())
@settings(max_examples=60, deadline=None)
def test_parquet_roundtrip_with_resolved_schema(docs):
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    resolved, _ = resolve_type(inferred)
    try:
        schema = compile_schema(resolved)
    except TranslationError:
        assume(False)
        return
    # Resolution may turn heterogeneous subtrees into JSON text; replay
    # through the full pipeline instead of raw shredding for those.
    report = schema_aware_translate(docs, inferred)
    rebuilt = assemble(report.columnar)
    assert len(rebuilt) == len(docs)
    if report.fallback_count == 0:
        for original, back in zip(docs, rebuilt):
            assert strict_equal(sort_keys_deep(original), sort_keys_deep(back))


@given(json_values(max_leaves=12))
@settings(max_examples=80, deadline=None)
@example(
    value=[{'0': False}, {'': None, '0': False}],
).via('discovered failure')
@example(
    value=[[None, 0], [None, False, 0.0]],
).via('discovered failure')
def test_avro_roundtrip(value):
    t = type_of(value)
    schema = avro.from_algebra(t)
    assert strict_equal(avro.decode(schema, avro.encode(schema, value)), value)


@given(st.lists(st.integers(min_value=-(2**50), max_value=2**50), max_size=20))
def test_avro_long_array_roundtrip(xs):
    schema = avro.AArray(avro.LONG)
    assert avro.decode(schema, avro.encode(schema, xs)) == xs


@given(json_documents())
@settings(max_examples=40, deadline=None)
def test_translation_report_consistent(docs):
    report = schema_aware_translate(docs)
    assert report.document_count == len(docs)
    assert 0.0 <= report.typed_fraction <= 1.0
    assert len(report.avro_rows) == len(docs)
