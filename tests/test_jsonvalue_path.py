"""Tests for repro.jsonvalue.path."""

import pytest

from repro.jsonvalue.path import (
    Field,
    Index,
    JsonPath,
    JsonPathError,
    Wildcard,
    leaf_paths,
    parse_many,
)

DOC = {
    "user": {"name": "ada", "tags": ["x", "y"]},
    "entries": [
        {"id": 1, "vals": [10, 11]},
        {"id": 2, "vals": [20]},
    ],
}


class TestParsing:
    def test_root(self):
        assert JsonPath.parse("$").steps == ()
        assert JsonPath.parse("").steps == ()

    def test_fields(self):
        assert JsonPath.parse("a.b.c").steps == (Field("a"), Field("b"), Field("c"))

    def test_dollar_prefix(self):
        assert JsonPath.parse("$.a.b") == JsonPath.parse("a.b")

    def test_indexes(self):
        assert JsonPath.parse("a[0][1]").steps == (Field("a"), Index(0), Index(1))

    def test_wildcard(self):
        assert JsonPath.parse("a[*].b").steps == (Field("a"), Wildcard(), Field("b"))

    def test_str_roundtrip(self):
        for text in ("$", "a", "a.b", "a[0]", "a[*].b.c[2]"):
            assert str(JsonPath.parse(text)) == text

    @pytest.mark.parametrize("text", ["a.", ".a", "a[", "a[x]", "a..b"])
    def test_malformed(self, text):
        with pytest.raises(JsonPathError):
            JsonPath.parse(text)


class TestEvaluation:
    def test_root_matches_document(self):
        assert JsonPath.parse("$").evaluate(DOC) == [DOC]

    def test_field_chain(self):
        assert JsonPath.parse("user.name").evaluate(DOC) == ["ada"]

    def test_index(self):
        assert JsonPath.parse("user.tags[1]").evaluate(DOC) == ["y"]

    def test_wildcard_fanout(self):
        assert JsonPath.parse("entries[*].id").evaluate(DOC) == [1, 2]

    def test_nested_wildcards(self):
        assert JsonPath.parse("entries[*].vals[*]").evaluate(DOC) == [10, 11, 20]

    def test_missing_yields_empty(self):
        assert JsonPath.parse("nope.deep").evaluate(DOC) == []
        assert JsonPath.parse("user.tags[9]").evaluate(DOC) == []

    def test_wildcard_on_object_yields_empty(self):
        assert JsonPath.parse("user[*]").evaluate(DOC) == []

    def test_first(self):
        assert JsonPath.parse("entries[*].id").first(DOC) == 1
        assert JsonPath.parse("nope").first(DOC, default="d") == "d"


class TestFromTuple:
    def test_concrete(self):
        p = JsonPath.from_tuple(("a", 0, "b"))
        assert str(p) == "a[0].b"

    def test_generalized(self):
        p = JsonPath.from_tuple(("a", 0, "b"), generalize_indexes=True)
        assert str(p) == "a[*].b"

    def test_bad_step(self):
        with pytest.raises(JsonPathError):
            JsonPath.from_tuple(("a", 1.5))


class TestPrefix:
    def test_plain_prefix(self):
        assert JsonPath.parse("a.b").is_prefix_of(JsonPath.parse("a.b.c"))
        assert not JsonPath.parse("a.c").is_prefix_of(JsonPath.parse("a.b.c"))

    def test_longer_is_not_prefix(self):
        assert not JsonPath.parse("a.b.c").is_prefix_of(JsonPath.parse("a.b"))

    def test_wildcard_matches_index(self):
        assert JsonPath.parse("a[*]").is_prefix_of(JsonPath.parse("a[3].b"))

    def test_index_does_not_match_wildcard(self):
        assert not JsonPath.parse("a[3]").is_prefix_of(JsonPath.parse("a[*].b"))


class TestHelpers:
    def test_parse_many(self):
        paths = parse_many(["a", "b[*]"])
        assert paths == [JsonPath.parse("a"), JsonPath.parse("b[*]")]

    def test_leaf_paths(self):
        doc = {"a": [{"b": 1}, {"b": 2}], "c": 3}
        got = {str(p) for p in leaf_paths(doc)}
        assert got == {"a[*].b", "c"}

    def test_child(self):
        p = JsonPath.parse("a").child(Wildcard()).child(Field("b"))
        assert str(p) == "a[*].b"
