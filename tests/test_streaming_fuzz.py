"""Fuzz differential for the fused text→type pipeline.

Two claims, both by construction of :meth:`EventTypeEncoder.encode_text`:

- on any valid JSON text ``s``, ``type_of_text(s)`` is the *object-
  identical* canonical node ``intern(type_of(parse(s)))`` — the whole
  zero-materialization pipeline commutes with the DOM path;
- on any malformed text, the streaming path raises exactly what the DOM
  parser raises: same error class, same message, same offset.

Hypothesis drives both with arbitrary values (serialized) and arbitrary
raw text (mostly malformed); the parametrized cases pin the named edge
cases — unicode escapes and surrogate pairs, exponent/big numbers, deep
nesting at the ``max_depth`` boundary, NDJSON with blank lines, and
duplicate object keys under the parser's default last-wins policy.
"""

from __future__ import annotations

import pytest

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import JsonError
from repro.inference import infer_type, infer_type_streaming, type_of_text
from repro.jsonvalue.lexer import JsonLexError
from repro.jsonvalue.parser import JsonParseError, parse, parse_lines
from repro.jsonvalue.serializer import dumps
from repro.types import type_of
from repro.types.intern import global_table

from tests.strategies import json_values


def _dom_type(text: str):
    return global_table().intern(type_of(parse(text)))


def _failure(fn):
    """Error fingerprint: (class, message, offset), or None on success."""
    try:
        fn()
    except JsonLexError as exc:
        return (type(exc), str(exc), exc.offset)
    except JsonParseError as exc:
        return (type(exc), str(exc), exc.token.offset)
    return None


@given(json_values(max_leaves=30))
@settings(max_examples=150, deadline=None)
@example(
    value=[0],
).via('discovered failure')
def test_text_type_is_interned_dom_type(value):
    text = dumps(value)
    assert type_of_text(text) is _dom_type(text)


@given(st.text(max_size=40))
@settings(max_examples=200, deadline=None)
def test_arbitrary_text_differential(text):
    """On raw text — valid or garbage — both paths succeed identically
    or fail identically."""
    parser_failure = _failure(lambda: parse(text))
    streaming_failure = _failure(lambda: type_of_text(text))
    assert streaming_failure == parser_failure
    if parser_failure is None:
        assert type_of_text(text) is _dom_type(text)


@pytest.mark.parametrize(
    "text",
    [
        # unicode escapes, incl. surrogate pairs and lone surrogates
        '"\\u00e9\\u0041"',
        '"\\ud834\\udd1e"',
        '"\\ud800"',
        '{"\\u006b": [true, "\\t\\n\\\\"]}',
        # exponents and big numbers
        "1e308",
        "2.5E-3",
        "-0.0",
        "123456789012345678901234567890",
        '{"n": [0, -1, 1.5e10, 9007199254740993]}',
        # duplicate keys (parser default: last wins)
        '{"a": 1, "a": "x", "b": 2}',
        '{"a": {"b": 1}, "a": [2]}',
        # whitespace / structure corners
        ' \t\n {"a" :\r [ ] } \n',
        "[[[[[[[[[[1]]]]]]]]]]",
        # fused-scan corners: empty containers as values/elements, runs
        # of scalar members, container opens mid-member, escaped keys
        # next to simple ones
        '{"urls": []}',
        '{"a": {}}',
        "[[]]",
        "[{}, {}, []]",
        '{"a": [], "b": {}, "c": [[]]}',
        '{"a": 1, "b": {"c": 2, "d": [3, 4]}, "e": "x"}',
        '{"a\\"b": 1, "c": 2}',
        '{"k": -0, "e": 1e5, "E": 2E-3, "f": 0.125}',
        '{ "a" : 1 , "b" : [ 2 , 3 ] }',
        '[{"a": [{"b": []}]}]',
        '{\n  "a": [1, 2],\n  "b": "x"\n}',
        '["", {"": 0}]',
    ],
)
def test_edge_case_texts(text):
    assert type_of_text(text) is _dom_type(text)


# Near-miss literal shapes: the scanner classifies numbers and literals
# from a maximal regex match plus a boundary guard, so every "almost a
# number" / "almost a keyword" must fall back to the lexer's exact
# error (or value).  Each shape is checked bare, as an array element,
# and as an object member value — the three scan contexts.
_NUMBER_SHAPES = [
    "01", "-", "- 1", "--1", "+1", ".5", "1.", "1.e5", "1e", "1e+",
    "1e+5", "1..5", "1.5.5", "1e5e", "0x1", "9.", "-0", "0e0", "1 2",
]
_LITERAL_SHAPES = ["tru", "truex", "fals", "falsex", "nul", "nullx", "none"]


@pytest.mark.parametrize("shape", _NUMBER_SHAPES + _LITERAL_SHAPES)
@pytest.mark.parametrize("template", ["{}", "[{}]", '{{"k": {}}}'])
def test_near_miss_literals_fail_like_the_parser(shape, template):
    text = template.format(shape)
    parser_failure = _failure(lambda: parse(text))
    streaming_failure = _failure(lambda: type_of_text(text))
    assert streaming_failure == parser_failure
    if parser_failure is None:
        assert type_of_text(text) is _dom_type(text)


@given(st.text(alphabet='abk"\\{}[]:,.-0123456789eE \t\n', max_size=30))
@settings(max_examples=200, deadline=None)
def test_structural_soup_differential(text):
    """JSON-alphabet soup: mostly-malformed structural shapes that
    stress the fused member/element patterns and their fallbacks."""
    parser_failure = _failure(lambda: parse(text))
    streaming_failure = _failure(lambda: type_of_text(text))
    assert streaming_failure == parser_failure
    if parser_failure is None:
        assert type_of_text(text) is _dom_type(text)


@pytest.mark.parametrize("depth", [511, 512])
def test_nesting_at_the_depth_boundary(depth):
    # The recursive seed type_of blows Python's recursion limit here, so
    # the oracle is the recursion-free fused DOM encoder (itself pinned
    # to intern∘type_of by the differential suite on shallow values).
    from repro.types import type_of_interned

    text = "[" * depth + "1" + "]" * depth
    assert type_of_text(text) is type_of_interned(parse(text))


@pytest.mark.parametrize("depth", [513, 600])
def test_nesting_beyond_the_depth_boundary(depth):
    text = "[" * depth + "1" + "]" * depth
    parser_failure = _failure(lambda: parse(text))
    streaming_failure = _failure(lambda: type_of_text(text))
    assert parser_failure is not None
    assert streaming_failure == parser_failure


@pytest.mark.parametrize("leaf", ["[]", "{}", '{"k": 1}', "[1]"])
@pytest.mark.parametrize("depth", [511, 512, 513])
def test_fused_containers_at_the_depth_boundary(leaf, depth):
    """The fused member/element paths resolve empty and scalar-only
    containers without opening a frame — the nesting limit must apply
    to them exactly as the parser's push does."""
    text = "[" * depth + leaf + "]" * depth
    parser_failure = _failure(lambda: parse(text))
    streaming_failure = _failure(lambda: type_of_text(text))
    assert streaming_failure == parser_failure
    if parser_failure is None:
        from repro.types import type_of_interned

        assert type_of_text(text) is type_of_interned(parse(text))


@pytest.mark.parametrize(
    "text",
    [
        "",
        "   ",
        '{"a":}',
        "[1,]",
        '{"a" 1}',
        "{1: 2}",
        "tru",
        '"\\x"',
        '"unterminated',
        '{"a": 1',
        "[1, 2",
        "01",
        "1 2",
        '{"a": 1}}',
        "{,}",
        "\x00",
        '["\\ud834\\u12"]',
        "- 1",
        "1.e5",
        "NaN",
    ],
)
def test_malformed_text_fails_like_the_parser(text):
    parser_failure = _failure(lambda: parse(text))
    streaming_failure = _failure(lambda: type_of_text(text))
    assert parser_failure is not None, text
    assert streaming_failure == parser_failure


@given(
    st.lists(json_values(max_leaves=12), min_size=1, max_size=8),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_ndjson_with_blank_lines(values, blanks):
    lines: list[str] = []
    for value in values:
        lines.append(dumps(value))
        lines.extend([""] * blanks + ["   \t "] * (blanks % 2))
    assert infer_type_streaming(lines) is global_table().canonical(
        infer_type(list(parse_lines(lines)))
    )


def test_empty_stream_still_raises():
    from repro.errors import InferenceError

    with pytest.raises(InferenceError):
        infer_type_streaming(["", "  "])


def test_error_is_a_json_error_subclass():
    # CLI and callers catch ReproError/JsonError; the streaming path must
    # stay inside that hierarchy.
    with pytest.raises(JsonError):
        type_of_text("{")
