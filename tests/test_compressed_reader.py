"""Boundary tests for the chunked decompression reader and its routes.

The reader's contract is exact: line-aligned blocks whose concatenation
is the decompressed file, MmapCorpus-identical line semantics, picklable
offset-bearing errors for truncated/corrupt streams, and a parallel
member fold that either matches the serial fold interned-identically or
backs off to it.  These tests pin the boundary cases where that contract
is easiest to lose: lines split across decompression blocks, multi-member
files, empty members, zero-byte and header-only files, CRLF pairs split
across members, and false member candidates inside compressed payloads.
"""

from __future__ import annotations

import gzip
import os
import pickle
import zlib

import pytest

from repro.datasets import (
    CompressedCorpusError,
    CorruptStreamError,
    TruncatedStreamError,
    compress_corpus,
    compress_member,
    detect_compression,
    iter_compressed_lines,
    iter_line_blocks,
    member_candidates,
    open_corpus,
    zstd_available,
)
from repro.datasets.compressed import _line_aligned_cut, iter_block_line_spans
from repro.inference import (
    accumulate_ranges,
    fold_compressed,
    infer_compressed_parallel,
    infer_counted_compressed,
    infer_counted_streaming,
    infer_report_path,
    plan_compressed_schedule,
)
from repro.types import Equivalence
from repro.types.intern import global_table

SAMPLE_LINES = [f'{{"id": {i}, "tag": "t{i % 3}"}}' for i in range(60)]


def _write_members(path, payloads, fmt="gzip"):
    with open(path, "wb") as handle:
        for payload in payloads:
            handle.write(compress_member(payload, format=fmt))


def _plain_reference(tmp_path, raw: bytes):
    plain = tmp_path / "reference.ndjson"
    plain.write_bytes(raw)
    table = global_table()
    with open_corpus(plain) as corpus:
        return table.canonical(
            accumulate_ranges(corpus.buffer(), corpus.spans).result()
        )


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


def test_detect_compression_by_magic(tmp_path):
    gz = tmp_path / "a.gz"
    gz.write_bytes(gzip.compress(b"{}\n", mtime=0))
    plain = tmp_path / "a.ndjson"
    plain.write_bytes(b'{"a": 1}\n')
    zst = tmp_path / "a.zst"
    zst.write_bytes(b"\x28\xb5\x2f\xfd" + b"\x00" * 8)
    empty = tmp_path / "empty"
    empty.write_bytes(b"")
    short = tmp_path / "short"
    short.write_bytes(b"\x1f")
    assert detect_compression(gz) == "gzip"
    assert detect_compression(plain) is None
    assert detect_compression(zst) == "zstd"  # detection needs no module
    assert detect_compression(empty) is None
    assert detect_compression(short) is None
    assert detect_compression(tmp_path / "missing") is None


def test_zstd_without_module_raises_a_clear_error(tmp_path):
    if zstd_available():
        pytest.skip("zstandard installed: the degradation path is inert")
    path = tmp_path / "a.zst"
    path.write_bytes(b"\x28\xb5\x2f\xfd" + b"\x00" * 8)
    with pytest.raises(CompressedCorpusError, match="zstandard"):
        list(iter_line_blocks(path))


# ---------------------------------------------------------------------------
# the chunked reader
# ---------------------------------------------------------------------------


def test_blocks_are_line_aligned_and_lossless(tmp_path):
    raw = ("\n".join(SAMPLE_LINES) + "\n").encode("utf-8")
    path = tmp_path / "c.gz"
    path.write_bytes(gzip.compress(raw, mtime=0))
    # Tiny blocks force every line to be assembled across block
    # boundaries via the carry.
    blocks = list(iter_line_blocks(path, block_bytes=7))
    assert b"".join(blocks) == raw
    for block in blocks[:-1]:
        assert block.endswith((b"\n", b"\r")), "interior block not line-aligned"


def test_huge_single_line_spans_many_blocks(tmp_path):
    line = '{"blob": "' + "x" * 300_000 + '"}'
    raw = (line + "\n").encode("utf-8")
    path = tmp_path / "big.gz"
    path.write_bytes(gzip.compress(raw, mtime=0))
    blocks = list(iter_line_blocks(path, block_bytes=1024))
    assert b"".join(blocks) == raw
    assert list(iter_compressed_lines(path, block_bytes=1024)) == [line]


def test_multi_member_gzip_decodes_seamlessly(tmp_path):
    path = tmp_path / "multi.gz"
    # Member boundaries deliberately mid-line: member 1 ends inside a
    # JSON document that member 2 completes.
    raw = ("\n".join(SAMPLE_LINES) + "\n").encode("utf-8")
    cut = raw.index(b'"tag"', len(raw) // 2)
    _write_members(path, [raw[:cut], raw[cut:]])
    assert list(iter_compressed_lines(path)) == SAMPLE_LINES
    table = global_table()
    assert table.canonical(fold_compressed(path).result()) is _plain_reference(
        tmp_path, raw
    )


def test_member_end_on_block_cap_does_not_replay(tmp_path):
    # When one decompress call both fills the block cap exactly and hits
    # the member's stream end, zlib reports the remaining input in BOTH
    # unused_data and unconsumed_tail; concatenating the two replayed the
    # following members forever.  Decompressed sizes that are exact
    # multiples of block_bytes force that coincidence on every member.
    path = tmp_path / "aligned.gz"
    payloads = [b"A" * 49 + b"\n", b"B" * 49 + b"\n", b"C" * 49 + b"\n"]
    _write_members(path, payloads)
    for block_bytes in (1, 5, 10, 25, 50):
        blocks = list(iter_line_blocks(path, block_bytes=block_bytes))
        assert b"".join(blocks) == b"".join(payloads)


def test_empty_members_are_transparent(tmp_path):
    path = tmp_path / "sparse.gz"
    _write_members(path, [b"", b'{"a": 1}\n', b"", b"", b'{"b": 2}\n', b""])
    assert list(iter_compressed_lines(path)) == ['{"a": 1}', '{"b": 2}']


def test_zero_byte_file_is_a_plain_empty_corpus(tmp_path):
    path = tmp_path / "zero.gz"
    path.write_bytes(b"")
    assert detect_compression(path) is None
    with open_corpus(path) as corpus:
        assert list(corpus) == []


def test_header_only_file_raises_truncated_with_offset(tmp_path):
    path = tmp_path / "header.gz"
    path.write_bytes(b"\x1f\x8b")
    with pytest.raises(TruncatedStreamError) as excinfo:
        list(iter_line_blocks(path))
    assert excinfo.value.offset == 2
    assert excinfo.value.path == str(path)


def test_truncated_member_raises_at_stream_end(tmp_path):
    payload = gzip.compress(("\n".join(SAMPLE_LINES) + "\n").encode(), mtime=0)
    path = tmp_path / "cut.gz"
    path.write_bytes(payload[: len(payload) - 6])
    with pytest.raises(TruncatedStreamError) as excinfo:
        list(iter_line_blocks(path))
    assert excinfo.value.offset == len(payload) - 6


def test_corrupt_payload_raises_at_member_offset(tmp_path):
    first = compress_member(b'{"a": 1}\n')
    second = bytearray(compress_member(b'{"b": 2}\n'))
    second[12] ^= 0xFF  # damage the deflate payload of member 2
    path = tmp_path / "bad.gz"
    path.write_bytes(first + bytes(second))
    with pytest.raises(CorruptStreamError) as excinfo:
        list(iter_line_blocks(path))
    assert excinfo.value.offset == len(first)


def test_trailing_garbage_raises_corrupt(tmp_path):
    path = tmp_path / "garbage.gz"
    path.write_bytes(compress_member(b'{"a": 1}\n') + b"not gzip at all")
    with pytest.raises(CorruptStreamError) as excinfo:
        list(iter_line_blocks(path))
    assert excinfo.value.offset == len(compress_member(b'{"a": 1}\n'))


def test_errors_survive_pickling(tmp_path):
    for exc in (
        TruncatedStreamError("cut short", "/tmp/x.gz", 17),
        CorruptStreamError("bad crc", "/tmp/x.gz", 0),
        CompressedCorpusError("plain", None, None),
    ):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert clone.raw_message == exc.raw_message
        assert clone.path == exc.path
        assert clone.offset == exc.offset
        assert str(clone) == str(exc)


def test_line_aligned_cut_holds_back_ambiguous_cr():
    assert _line_aligned_cut(b"abc") is None
    assert _line_aligned_cut(b"abc\n") == 4
    assert _line_aligned_cut(b"abc\r") is None  # \n half may follow
    assert _line_aligned_cut(b"abc\rdef") == 4  # lone CR is complete
    assert _line_aligned_cut(b"a\nb\r") == 2
    assert _line_aligned_cut(b"a\r\r") == 2  # first CR complete, last held


def test_block_line_spans_drop_only_empty_finals():
    assert [(0, 1)] == list(iter_block_line_spans(b"a\n"))
    assert [(0, 1)] == list(iter_block_line_spans(b"a"))
    assert [(0, 0)] == list(iter_block_line_spans(b"\n"))
    assert [(0, 1), (2, 2), (3, 4)] == list(iter_block_line_spans(b"a\n\nb"))


def test_crlf_split_across_members(tmp_path):
    # The \r ends member 1's decompressed output, the \n starts member
    # 2's: the pair must still count as one break.
    path = tmp_path / "crlf.gz"
    _write_members(path, [b'{"a": 1}\r', b'\n{"b": 2}\r\n'])
    assert list(iter_compressed_lines(path)) == ['{"a": 1}', '{"b": 2}']


def test_crlf_split_across_tiny_blocks(tmp_path):
    raw = b'{"a": 1}\r\n{"b": 2}\r\n'
    path = tmp_path / "crlf2.gz"
    path.write_bytes(gzip.compress(raw, mtime=0))
    for block_bytes in range(1, 12):
        assert list(
            iter_compressed_lines(path, block_bytes=block_bytes)
        ) == ['{"a": 1}', '{"b": 2}']


# ---------------------------------------------------------------------------
# member candidates and the parallel fold
# ---------------------------------------------------------------------------


def test_member_candidates_find_true_boundaries(tmp_path):
    path = tmp_path / "members.gz"
    members = compress_corpus(path, SAMPLE_LINES, member_lines=10)
    assert members == 6
    candidates = member_candidates(path)
    assert candidates[0] == 0
    # Every true member start must be a candidate (payload coincidences
    # may add more — the fold tolerates those, missing real ones would
    # forfeit parallelism).
    offsets, pos = [], 0
    data = path.read_bytes()
    while pos < len(data):
        offsets.append(pos)
        decomp = zlib.decompressobj(31)
        decomp.decompress(data[pos:])
        pos = len(data) - len(decomp.unused_data)
    assert set(offsets) <= set(candidates)


def test_parallel_fold_matches_serial_identity(tmp_path):
    raw = ("\n".join(SAMPLE_LINES) + "\n").encode("utf-8")
    path = tmp_path / "members.gz"
    compress_corpus(path, SAMPLE_LINES, member_lines=7)
    reference = _plain_reference(tmp_path, raw)
    table = global_table()
    for equivalence in (Equivalence.KIND, Equivalence.LABEL):
        run = infer_compressed_parallel(path, equivalence, processes=3)
        assert run is not None
        serial = fold_compressed(path, equivalence)
        assert table.canonical(run.result) is table.canonical(serial.result())
        assert run.document_count == serial.document_count == len(SAMPLE_LINES)
    run = infer_compressed_parallel(path, Equivalence.KIND, processes=3)
    assert table.canonical(run.result) is reference


def test_parallel_fold_with_midline_member_boundaries(tmp_path):
    raw = ("\n".join(SAMPLE_LINES) + "\n").encode("utf-8")
    path = tmp_path / "midline.gz"
    third = len(raw) // 3
    _write_members(path, [raw[:third], raw[third : 2 * third], raw[2 * third :]])
    run = infer_compressed_parallel(path, Equivalence.KIND, processes=3)
    assert run is not None
    assert run.document_count == len(SAMPLE_LINES)
    table = global_table()
    assert table.canonical(run.result) is _plain_reference(tmp_path, raw)


def test_parallel_fold_rejects_false_candidates(tmp_path):
    path = tmp_path / "single.gz"
    path.write_bytes(gzip.compress(("\n".join(SAMPLE_LINES) + "\n").encode(), mtime=0))
    # Force a bogus mid-stream "member" offset: the worker range cannot
    # decode, so the speculative run must back off (None), never
    # misreport.
    size = os.path.getsize(path)
    run = infer_compressed_parallel(
        path, Equivalence.KIND, processes=2, candidates=[0, size // 2]
    )
    assert run is None


def test_parallel_fold_backs_off_without_members(tmp_path):
    path = tmp_path / "single.gz"
    path.write_bytes(gzip.compress(b'{"a": 1}\n', mtime=0))
    assert infer_compressed_parallel(path, Equivalence.KIND, processes=4) is None


def test_parallel_fold_backs_off_on_all_blank_corpus(tmp_path):
    path = tmp_path / "blank.gz"
    _write_members(path, [b"\n\n", b"  \n\n"])
    assert infer_compressed_parallel(path, Equivalence.KIND, processes=2) is None


# ---------------------------------------------------------------------------
# scheduler and entry points
# ---------------------------------------------------------------------------


def test_plan_compressed_schedule_modes(tmp_path, monkeypatch):
    multi = tmp_path / "multi.gz"
    compress_corpus(multi, SAMPLE_LINES, member_lines=5)
    single = tmp_path / "single.gz"
    compress_corpus(single, SAMPLE_LINES)

    plan = plan_compressed_schedule(multi, jobs=1)
    assert plan.mode == "serial" and "one worker" in plan.reason

    plan = plan_compressed_schedule(single, jobs=4)
    if plan.cpus > 1:
        assert plan.mode == "serial"
        assert "single gzip member" in plan.reason

    # Pin the constants so the decision is deterministic: free workers,
    # slow decompression → parallel wins whenever CPUs allow.
    monkeypatch.setenv("REPRO_WORKER_STARTUP_SECONDS", "0")
    monkeypatch.setenv("REPRO_DECOMPRESS_BYTES_PER_SECOND", "1")
    monkeypatch.setenv("REPRO_SCAN_BYTES_PER_SECOND", "1")
    plan = plan_compressed_schedule(multi, jobs=4)
    if plan.cpus > 1:
        assert plan.calibration_source == "env"
        assert plan.mode == "parallel"
        assert plan.jobs >= 2
        assert plan.estimated_serial_seconds > plan.estimated_parallel_seconds
    else:
        # Single-CPU machines short-circuit before the cost model runs.
        assert plan.mode == "serial"

    # Expensive workers → serial even with many members.
    monkeypatch.setenv("REPRO_WORKER_STARTUP_SECONDS", "1e9")
    monkeypatch.setenv("REPRO_DECOMPRESS_BYTES_PER_SECOND", "1e12")
    monkeypatch.setenv("REPRO_SCAN_BYTES_PER_SECOND", "1e12")
    plan = plan_compressed_schedule(multi, jobs=4)
    assert plan.mode == "serial"


def test_infer_report_path_routes_compressed(tmp_path):
    raw = ("\n".join(SAMPLE_LINES) + "\n").encode("utf-8")
    plain = tmp_path / "c.ndjson"
    plain.write_bytes(raw)
    packed = tmp_path / "c.ndjson.gz"
    compress_corpus(packed, SAMPLE_LINES, member_lines=9)
    table = global_table()
    reference = table.canonical(infer_report_path(str(plain)).inferred)
    for jobs in (1, 2, None):
        report = infer_report_path(str(packed), jobs=jobs)
        assert table.canonical(report.inferred) is reference
        assert report.document_count == len(SAMPLE_LINES)


def test_infer_counted_compressed_matches_streaming(tmp_path):
    packed = tmp_path / "c.gz"
    compress_corpus(packed, SAMPLE_LINES, member_lines=11)
    for equivalence in (Equivalence.KIND, Equivalence.LABEL):
        assert infer_counted_compressed(
            packed, equivalence
        ) == infer_counted_streaming(SAMPLE_LINES, equivalence)


def test_cli_infer_reads_compressed(tmp_path, capsys):
    from repro.cli import main

    plain = tmp_path / "c.ndjson"
    plain.write_text("\n".join(SAMPLE_LINES) + "\n", encoding="utf-8")
    packed = tmp_path / "c.ndjson.gz"
    compress_corpus(packed, SAMPLE_LINES, member_lines=13)
    assert main(["infer", str(plain)]) == 0
    expected = capsys.readouterr().out
    assert main(["infer", str(packed)]) == 0
    assert capsys.readouterr().out == expected
    assert main(["skeleton", str(packed), "--k", "2"]) == 0
    assert "skeleton of order" in capsys.readouterr().out


def test_serial_error_ordering_json_before_stream_failure(tmp_path):
    # A malformed JSON line sits *before* the corrupt second member: the
    # serial fold must report the JSON error, not the stream error.
    from repro.jsonvalue.parser import JsonParseError

    first = compress_member(b'{"ok": 1}\n{"broken": \n')
    second = bytearray(compress_member(b'{"also": 2}\n'))
    second[11] ^= 0xFF
    path = tmp_path / "ordered.gz"
    path.write_bytes(first + bytes(second))
    with pytest.raises(JsonParseError):
        fold_compressed(path)


# ---------------------------------------------------------------------------
# zstd (runs only when the optional codec is installed)
# ---------------------------------------------------------------------------

needs_zstd = pytest.mark.skipif(
    not zstd_available(), reason="optional zstandard module not installed"
)


@needs_zstd
def test_zstd_round_trip_and_identity(tmp_path):
    raw = ("\n".join(SAMPLE_LINES) + "\n").encode("utf-8")
    path = tmp_path / "c.ndjson.zst"
    compress_corpus(path, SAMPLE_LINES, member_lines=8, format="zstd")
    assert detect_compression(path) == "zstd"
    assert list(iter_compressed_lines(path)) == SAMPLE_LINES
    table = global_table()
    assert table.canonical(fold_compressed(path).result()) is _plain_reference(
        tmp_path, raw
    )


@needs_zstd
def test_zstd_parallel_members(tmp_path):
    path = tmp_path / "c.zst"
    compress_corpus(path, SAMPLE_LINES, member_lines=6, format="zstd")
    assert len(member_candidates(path)) >= 2
    run = infer_compressed_parallel(path, Equivalence.KIND, processes=3)
    assert run is not None
    table = global_table()
    assert table.canonical(run.result) is table.canonical(
        fold_compressed(path).result()
    )


@needs_zstd
def test_zstd_skippable_frames_are_skipped(tmp_path):
    import zstandard

    skippable = b"\x50\x2a\x4d\x18" + (4).to_bytes(4, "little") + b"abcd"
    frame = zstandard.ZstdCompressor().compress(b'{"a": 1}\n')
    path = tmp_path / "skip.zst"
    path.write_bytes(skippable + frame + skippable)
    assert list(iter_compressed_lines(path)) == ['{"a": 1}']
