"""Tests for Spark-style and mongodb-schema-style inference."""

import pytest

from repro.errors import InferenceError
from repro.inference import (
    StreamingAnalyzer,
    count_string_collapses,
    infer_spark_schema,
    mongodb_analyze,
    render_spark_schema,
)
from repro.inference.spark import (
    ArrayType,
    BOOLEAN,
    DOUBLE,
    LONG,
    STRING,
    StructField,
    StructType,
    merge_types,
)


class TestSparkAtomics:
    def test_long_double_widen(self):
        assert merge_types(LONG, DOUBLE) == DOUBLE

    def test_null_is_identity(self):
        from repro.inference.spark import NULL

        assert merge_types(NULL, LONG) == LONG
        assert merge_types(BOOLEAN, NULL) == BOOLEAN

    def test_conflicts_collapse_to_string(self):
        assert merge_types(LONG, BOOLEAN) == STRING
        assert merge_types(STRING, DOUBLE) == STRING

    def test_container_conflicts_collapse(self):
        arr = ArrayType(LONG)
        struct = StructType((StructField("a", LONG),))
        assert merge_types(arr, struct) == STRING
        assert merge_types(arr, LONG) == STRING


class TestSparkInference:
    def test_homogeneous(self):
        schema = infer_spark_schema([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert schema.field_map()["a"].dtype == LONG
        assert schema.field_map()["b"].dtype == STRING

    def test_missing_fields_nullable(self):
        schema = infer_spark_schema([{"a": 1}, {"b": 2}])
        assert schema.field_map()["a"].nullable
        assert schema.field_map()["b"].nullable

    def test_number_widening(self):
        schema = infer_spark_schema([{"v": 1}, {"v": 2.5}])
        assert schema.field_map()["v"].dtype == DOUBLE

    def test_heterogeneity_collapses_to_string(self):
        # The tutorial's headline criticism: no unions → Str fallback.
        schema = infer_spark_schema([{"v": 1}, {"v": [1, 2]}])
        assert schema.field_map()["v"].dtype == STRING

    def test_nested_structs(self):
        schema = infer_spark_schema([{"u": {"n": "a"}}, {"u": {"n": "b", "x": 1}}])
        u = schema.field_map()["u"].dtype
        assert isinstance(u, StructType)
        assert u.field_map()["x"].nullable

    def test_arrays(self):
        schema = infer_spark_schema([{"xs": [1, 2]}, {"xs": [3]}])
        xs = schema.field_map()["xs"].dtype
        assert xs == ArrayType(LONG)

    def test_array_with_nulls(self):
        schema = infer_spark_schema([{"xs": [1, None]}])
        xs = schema.field_map()["xs"].dtype
        assert isinstance(xs, ArrayType)
        assert xs.contains_null

    def test_corrupt_records(self):
        schema = infer_spark_schema([{"a": 1}, "not an object"])
        assert "_corrupt_record" in schema.field_map()

    def test_only_corrupt(self):
        schema = infer_spark_schema(["x", [1]])
        assert [f.name for f in schema.fields] == ["_corrupt_record"]

    def test_empty_collection(self):
        with pytest.raises(InferenceError):
            infer_spark_schema([])

    def test_render(self):
        schema = infer_spark_schema([{"a": 1, "u": {"n": "x"}}])
        text = render_spark_schema(schema)
        assert text.startswith("root")
        assert " |-- a: long (nullable = false)" in text
        assert " |    |-- n: string" in text

    def test_collapse_counter(self):
        docs = [{"v": 1, "w": "s"}, {"v": True, "w": "t"}]
        assert count_string_collapses(docs) == 1


class TestMongodbAnalyzer:
    DOCS = [
        {"a": 1, "b": "x"},
        {"a": 2.5},
        {"a": "mixed", "c": {"d": True}},
        {"b": "y", "e": [1, "two"]},
    ]

    def test_counts_and_probabilities(self):
        result = mongodb_analyze(self.DOCS)
        assert result["count"] == 4
        fields = {f["name"]: f for f in result["fields"]}
        assert fields["a"]["count"] == 3
        assert fields["a"]["probability"] == 0.75

    def test_type_breakdown(self):
        result = mongodb_analyze(self.DOCS)
        fields = {f["name"]: f for f in result["fields"]}
        types = {t["name"]: t for t in fields["a"]["types"]}
        assert types["Long"]["count"] == 1
        assert types["Double"]["count"] == 1
        assert types["String"]["count"] == 1

    def test_nested_documents(self):
        result = mongodb_analyze(self.DOCS)
        fields = {f["name"]: f for f in result["fields"]}
        c_doc = {t["name"]: t for t in fields["c"]["types"]}["Document"]
        nested = {f["name"]: f for f in c_doc["fields"]}
        assert nested["d"]["count"] == 1

    def test_array_elements(self):
        result = mongodb_analyze(self.DOCS)
        fields = {f["name"]: f for f in result["fields"]}
        e_arr = {t["name"]: t for t in fields["e"]["types"]}["Array"]
        (elem,) = e_arr["elements"]
        assert elem["count"] == 2
        element_types = {t["name"] for t in elem["types"]}
        assert element_types == {"Long", "String"}

    def test_streaming_matches_batch(self):
        analyzer = StreamingAnalyzer()
        for doc in self.DOCS:
            analyzer.feed(doc)
        assert analyzer.result() == mongodb_analyze(self.DOCS)

    def test_no_correlations_by_design(self):
        """Correlated and anti-correlated collections summarise identically."""
        correlated = [{"a": 1, "b": 1}, {"a": 2, "b": 2}, {}, {}]
        anti = [{"a": 1}, {"a": 2}, {"b": 1}, {"b": 2}]
        assert mongodb_analyze(correlated) == mongodb_analyze(anti)

    def test_samples_bounded(self):
        docs = [{"v": i} for i in range(100)]
        result = mongodb_analyze(docs, sample_size=5)
        fields = {f["name"]: f for f in result["fields"]}
        samples = fields["v"]["types"][0]["samples"]
        assert len(samples) == 5

    def test_non_object_rejected(self):
        with pytest.raises(InferenceError):
            StreamingAnalyzer().feed([1, 2])

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            StreamingAnalyzer().result()
