"""Tests for the Fad.js-style speculative decoder."""

import pytest

from repro.jsonvalue.model import strict_equal
from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import dumps
from repro.parsing import (
    SpeculativeDecoder,
    TemplateCompileError,
    compile_template,
    decode_stream,
)


class TestTemplateCompilation:
    def test_flat_record(self):
        template = compile_template({"a": 1, "b": "x", "c": True, "d": None})
        assert template.try_decode('{"a": 2, "b": "y", "c": false, "d": null}') == {
            "a": 2,
            "b": "y",
            "c": False,
            "d": None,
        }

    def test_nested_record(self):
        template = compile_template({"u": {"n": "a"}, "v": 1})
        decoded = template.try_decode('{"u": {"n": "b"}, "v": 9}')
        assert decoded == {"u": {"n": "b"}, "v": 9}

    def test_shape_mismatch_returns_none(self):
        template = compile_template({"a": 1})
        assert template.try_decode('{"b": 1}') is None
        assert template.try_decode('{"a": 1, "b": 2}') is None
        assert template.try_decode('{"a": "now-a-string"}') is None

    def test_arrays_not_speculable(self):
        with pytest.raises(TemplateCompileError):
            compile_template({"xs": [1, 2]})

    def test_non_object_not_speculable(self):
        with pytest.raises(TemplateCompileError):
            compile_template([1, 2])

    def test_number_kinds(self):
        template = compile_template({"v": 1})
        assert template.try_decode('{"v": 2.5}') == {"v": 2.5}
        assert isinstance(template.try_decode('{"v": 3}')["v"], int)

    def test_escaped_strings(self):
        template = compile_template({"s": "plain"})
        decoded = template.try_decode('{"s": "a\\nb\\u00e9"}')
        assert decoded == {"s": "a\nbé"}


class TestSpeculativeDecoder:
    def test_results_equal_generic_parse(self):
        lines = [dumps({"a": i, "b": f"s{i}", "flag": i % 2 == 0}) for i in range(30)]
        values, stats = decode_stream(lines)
        assert values == [parse(line) for line in lines]
        assert stats.records == 30

    def test_stable_shape_mostly_fast(self):
        lines = [dumps({"a": i, "b": f"s{i}"}) for i in range(100)]
        _, stats = decode_stream(lines)
        assert stats.deopts == 1  # only the first record
        assert stats.fast_path_hits == 99
        assert stats.hit_rate > 0.98

    def test_shape_churn_degrades(self):
        shapes = [
            {"a": 1},
            {"b": "x"},
            {"c": True, "d": 1},
            {"e": None},
            {"f": 1.5, "g": "y"},
        ]
        lines = [dumps(shapes[i % len(shapes)]) for i in range(100)]
        _, stats = decode_stream(lines, cache_size=2)  # cache too small
        assert stats.hit_rate < 0.5

    def test_polymorphic_cache_handles_few_shapes(self):
        shapes = [{"a": 1}, {"b": "x"}]
        lines = [dumps(shapes[i % 2]) for i in range(50)]
        _, stats = decode_stream(lines, cache_size=4)
        assert stats.fast_path_hits >= 46

    def test_array_records_always_slow(self):
        lines = [dumps({"xs": [i, i + 1]}) for i in range(20)]
        values, stats = decode_stream(lines)
        assert stats.fast_path_hits == 0
        assert stats.deopts == 20
        assert values == [parse(line) for line in lines]

    def test_type_flip_deopts_then_relearns(self):
        lines = (
            [dumps({"v": i}) for i in range(10)]
            + [dumps({"v": f"s{i}"}) for i in range(10)]
        )
        values, stats = decode_stream(lines)
        assert values == [parse(line) for line in lines]
        assert stats.deopts >= 2

    def test_mixed_correctness_fuzz(self):
        docs = [
            {"a": 1, "b": {"c": "x"}},
            {"a": 2, "b": {"c": "y}{,:"}},
            {"a": 3, "b": {"c": 'q"uote'}},
            {"different": None},
            {"a": 1.5, "b": {"c": "x"}},
        ]
        lines = [dumps(d) for d in docs] * 4
        decoder = SpeculativeDecoder()
        for line in lines:
            assert strict_equal(decoder.decode(line), parse(line))
