"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    github_events,
    heterogeneous_collection,
    ndjson_lines,
    nyt_articles,
    opendata_catalog,
    tweets,
)
from repro.jsonvalue.model import is_json_value
from repro.jsonvalue.parser import parse


ALL_GENERATORS = [
    lambda n, s: tweets(n, seed=s),
    lambda n, s: github_events(n, seed=s),
    lambda n, s: nyt_articles(n, seed=s),
    lambda n, s: opendata_catalog(n, seed=s),
    lambda n, s: heterogeneous_collection(n, seed=s),
]


class TestCommonProperties:
    @pytest.mark.parametrize("generate", ALL_GENERATORS)
    def test_deterministic(self, generate):
        assert generate(20, 7) == generate(20, 7)

    @pytest.mark.parametrize("generate", ALL_GENERATORS)
    def test_different_seeds_differ(self, generate):
        assert generate(20, 1) != generate(20, 2)

    @pytest.mark.parametrize("generate", ALL_GENERATORS)
    def test_valid_json_values(self, generate):
        for doc in generate(30, 0):
            assert is_json_value(doc)

    @pytest.mark.parametrize("generate", ALL_GENERATORS)
    def test_requested_count(self, generate):
        assert len(generate(13, 0)) == 13

    @pytest.mark.parametrize("generate", ALL_GENERATORS)
    def test_ndjson_roundtrip(self, generate):
        docs = generate(10, 3)
        lines = ndjson_lines(docs)
        assert [parse(line) for line in lines] == docs


class TestTwitter:
    def test_delete_notices_interleaved(self):
        docs = tweets(300, seed=1, delete_fraction=0.2)
        deletes = [d for d in docs if "delete" in d]
        statuses = [d for d in docs if "text" in d]
        assert len(deletes) + len(statuses) == 300
        assert 30 <= len(deletes) <= 90  # ~20%

    def test_no_deletes_option(self):
        docs = tweets(50, seed=1, delete_fraction=0.0)
        assert all("text" in d for d in docs)

    def test_retweets_nest_full_statuses(self):
        docs = tweets(300, seed=2, delete_fraction=0.0)
        retweets = [d for d in docs if "retweeted_status" in d]
        assert retweets
        inner = retweets[0]["retweeted_status"]
        assert "user" in inner and "entities" in inner
        assert "retweeted_status" not in inner  # one level only

    def test_nullable_coordinates(self):
        docs = tweets(200, seed=3, delete_fraction=0.0)
        values = {type(d["coordinates"]).__name__ for d in docs}
        assert values == {"NoneType", "dict"}


class TestGithub:
    def test_type_discriminates_payload(self):
        docs = github_events(300, seed=1)
        by_type = {}
        for d in docs:
            by_type.setdefault(d["type"], []).append(d)
        assert set(by_type) == {"PushEvent", "IssuesEvent", "WatchEvent", "ForkEvent"}
        assert all("commits" in d["payload"] for d in by_type["PushEvent"])
        assert all("issue" in d["payload"] for d in by_type["IssuesEvent"])
        assert all(d["payload"] == {"action": "started"} for d in by_type["WatchEvent"])

    def test_weights_respected(self):
        docs = github_events(1000, seed=2)
        push = sum(1 for d in docs if d["type"] == "PushEvent")
        assert 400 <= push <= 600  # weight 0.5

    def test_kind_noise_injects_conflicts(self):
        clean = github_events(100, seed=3, kind_noise=0.0)
        noisy = github_events(100, seed=3, kind_noise=0.3)
        assert clean != noisy


class TestHeterogeneous:
    def test_variant_mixture(self):
        docs = heterogeneous_collection(200, variants=3, seed=4)
        variants = {d["variant"] for d in docs}
        assert variants == {"v0", "v1", "v2"}

    def test_optional_probability_zero(self):
        docs = heterogeneous_collection(100, optional_probability=0.0, seed=5)
        assert not any("opt_note" in d for d in docs)

    def test_optional_probability_one(self):
        docs = heterogeneous_collection(100, optional_probability=1.0, seed=5)
        assert all("opt_note" in d for d in docs)


class TestDomainShapes:
    def test_nyt_has_fd_bearing_fields(self):
        docs = nyt_articles(50, seed=1)
        # section_name functionally determines print_page in the generator.
        mapping = {}
        for d in docs:
            mapping.setdefault(d["section_name"], set()).add(d["print_page"])
        assert all(len(pages) == 1 for pages in mapping.values())

    def test_opendata_extras_optional(self):
        docs = opendata_catalog(100, seed=1)
        with_extras = [d for d in docs if "extras" in d]
        assert 0 < len(with_extras) < 100
