"""Tests for repro.jsonvalue.serializer."""

import pytest

from repro.errors import JsonError
from repro.jsonvalue.model import strict_equal
from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import (
    CANONICAL,
    DumpOptions,
    PRETTY,
    dump_lines,
    dumps,
    escape_string,
)


class TestCompact:
    @pytest.mark.parametrize(
        "value,text",
        [
            (None, "null"),
            (True, "true"),
            (False, "false"),
            (0, "0"),
            (-7, "-7"),
            (2.5, "2.5"),
            ("hi", '"hi"'),
            ([], "[]"),
            ({}, "{}"),
            ([1, 2], "[1,2]"),
            ({"a": 1}, '{"a":1}'),
        ],
    )
    def test_values(self, value, text):
        assert dumps(value) == text

    def test_no_whitespace(self):
        text = dumps({"a": [1, {"b": None}]})
        assert " " not in text and "\n" not in text

    def test_key_order_preserved(self):
        assert dumps({"z": 1, "a": 2}) == '{"z":1,"a":2}'


class TestPretty:
    def test_indentation(self):
        text = dumps({"a": [1]}, PRETTY)
        assert text == '{\n  "a": [\n    1\n  ]\n}'

    def test_empty_containers_stay_inline(self):
        assert dumps({"a": [], "b": {}}, PRETTY) == '{\n  "a": [],\n  "b": {}\n}'


class TestSortKeys:
    def test_sorted(self):
        assert dumps({"b": 1, "a": 2}, CANONICAL) == '{"a":2,"b":1}'


class TestEscaping:
    def test_control_characters(self):
        assert dumps("\x01") == '"\\u0001"'
        assert dumps("a\nb\t") == '"a\\nb\\t"'

    def test_quote_backslash(self):
        assert dumps('say "hi" \\') == '"say \\"hi\\" \\\\"'

    def test_non_ascii_passthrough_by_default(self):
        assert dumps("é") == '"é"'

    def test_ensure_ascii(self):
        assert dumps("é", CANONICAL) == '"\\u00e9"'

    def test_ensure_ascii_surrogate_pair(self):
        assert dumps("😀", CANONICAL) == '"\\ud83d\\ude00"'

    def test_escape_string_helper(self):
        assert escape_string("a/b") == '"a/b"'


class TestNumbers:
    def test_float_roundtrip_shortest(self):
        assert dumps(0.1) == "0.1"

    def test_nan_rejected(self):
        with pytest.raises(JsonError):
            dumps(float("nan"))

    def test_infinity_rejected(self):
        with pytest.raises(JsonError):
            dumps(float("inf"))

    def test_allow_nan_option(self):
        options = DumpOptions(allow_nan=True)
        assert dumps(float("inf"), options) == "Infinity"
        assert dumps(float("-inf"), options) == "-Infinity"
        assert dumps(float("nan"), options) == "NaN"

    def test_big_int(self):
        n = 10**40
        assert parse(dumps(n)) == n


class TestHostTypeRejection:
    @pytest.mark.parametrize("value", [(1, 2), {1, 2}, object(), b"bytes"])
    def test_rejected(self, value):
        with pytest.raises(JsonError):
            dumps(value)

    def test_non_string_key_rejected(self):
        with pytest.raises(JsonError):
            dumps({1: "a"})


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            {"a": [1, 2.5, {"b": None}], "c": "xé", "d": True},
            [[[]]],
            {"": {"": ""}},
            {"n": -0.0},
        ],
    )
    def test_parse_dumps(self, value):
        assert strict_equal(parse(dumps(value)), value)

    def test_pretty_roundtrip(self):
        value = {"a": [1, {"b": [True, None, "s"]}]}
        assert strict_equal(parse(dumps(value, PRETTY)), value)


class TestDumpLines:
    def test_ndjson(self):
        lines = list(dump_lines([{"a": 1}, [2]]))
        assert lines == ['{"a":1}', "[2]"]

    def test_indent_rejected(self):
        with pytest.raises(JsonError):
            list(dump_lines([{}], PRETTY))
