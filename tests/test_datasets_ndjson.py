"""Tests for the line-oriented NDJSON loaders (`repro.datasets.ndjson`)."""

from __future__ import annotations

import io

import pytest

from repro.datasets import (
    github_events,
    iter_ndjson_lines,
    ndjson_lines,
    open_corpus,
    read_ndjson_lines,
    split_corpus_lines,
    stream_documents,
    stream_types,
    tweets,
    write_ndjson,
)
from repro.inference import accumulate_types, infer_type
from repro.types.intern import global_table


def test_write_then_read_round_trips(tmp_path):
    docs = tweets(40, seed=21)
    path = tmp_path / "docs.ndjson"
    assert write_ndjson(path, docs) == len(docs)
    assert read_ndjson_lines(path) == ndjson_lines(docs)
    assert list(stream_documents(path)) == docs


def test_iter_lines_accepts_handles_and_iterables(tmp_path):
    docs = github_events(10, seed=2)
    path = tmp_path / "docs.ndjson"
    write_ndjson(path, docs)
    from_path = list(iter_ndjson_lines(path))
    with open(path, "r", encoding="utf-8") as handle:
        from_handle = list(iter_ndjson_lines(handle))
    from_iterable = list(iter_ndjson_lines(io.StringIO("\n".join(from_path))))
    assert from_path == from_handle == from_iterable == ndjson_lines(docs)


def test_stream_types_matches_the_batch_path(tmp_path):
    docs = tweets(60, seed=22)
    path = tmp_path / "docs.ndjson"
    write_ndjson(path, docs)
    streamed = accumulate_types(stream_types(path)).result()
    assert global_table().canonical(streamed) is global_table().canonical(
        infer_type(docs)
    )


def test_stream_types_skips_blank_lines():
    lines = ['{"a": 1}', "", "  \t", '{"a": 2}']
    assert len(list(stream_types(lines))) == 2


# ---------------------------------------------------------------------------
# the mmap-backed corpus
# ---------------------------------------------------------------------------


class TestMmapCorpus:
    # Every newline convention the text-mode loader understands:
    # LF, CRLF, lone CR (universal newlines), blank lines, a missing
    # trailing terminator, and the empty file.
    CONTENTS = {
        "empty-file": "",
        "blank-line-only": "\n",
        "no-trailing-newline": '{"a": 1}',
        "trailing-newline": '{"a": 1}\n',
        "crlf": '{"a": 1}\r\n{"b": 2}\r\n',
        "lone-cr": '{"a": 1}\r{"b": 2}',
        "mixed-breaks": '{"a": 1}\r\r\n{"b": 2}\n',
        "blank-lines": '{"a": 1}\n\n  \t\n{"b": 2}\n\n',
    }

    @pytest.mark.parametrize("name", sorted(CONTENTS))
    def test_index_matches_iter_ndjson_lines(self, tmp_path, name):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(self.CONTENTS[name].encode("utf-8"))
        expected = list(iter_ndjson_lines(path))
        with open_corpus(path) as corpus:
            assert len(corpus) == len(expected)
            assert list(corpus) == expected
            assert [corpus[i] for i in range(len(corpus))] == expected
            assert corpus[0:len(corpus)] == expected

    def test_byte_ranges_round_trip_through_split(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(b'{"a": 1}\r\n\r\nx\r{"b": 2}\n{"c": 3}')
        with open_corpus(path) as corpus:
            lines = list(corpus)
            data = bytes(corpus.buffer())
            for start in range(len(corpus)):
                for stop in range(start + 1, len(corpus) + 1):
                    byte_start, byte_end = corpus.byte_range(start, stop)
                    text = data[byte_start:byte_end].decode("utf-8")
                    assert split_corpus_lines(text) == lines[start:stop]

    def test_byte_range_bounds_are_checked(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_text('{"a": 1}\n')
        with open_corpus(path) as corpus:
            with pytest.raises(IndexError):
                corpus.byte_range(0, 2)
            with pytest.raises(IndexError):
                corpus.byte_range(1, 1)

    def test_corpus_feeds_the_inference_paths(self, tmp_path):
        docs = tweets(50, seed=23)
        path = tmp_path / "docs.ndjson"
        write_ndjson(path, docs)
        reference = global_table().canonical(infer_type(docs))
        with open_corpus(path) as corpus:
            streamed = accumulate_types(stream_types(corpus)).result()
            assert global_table().canonical(streamed) is reference

    def test_unicode_lines_decode_exactly(self, tmp_path):
        lines = ['{"k": "héllo   wörld"}', '{"k": "\U0001f600"}']
        path = tmp_path / "unicode.ndjson"
        path.write_bytes(("\n".join(lines) + "\n").encode("utf-8"))
        with open_corpus(path) as corpus:
            assert list(corpus) == lines
            assert list(corpus) == list(iter_ndjson_lines(path))

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_text('{"a": 1}\n')
        corpus = open_corpus(path)
        assert corpus.size_bytes == len('{"a": 1}\n')
        corpus.close()
        corpus.close()
