"""Tests for the line-oriented NDJSON loaders (`repro.datasets.ndjson`)."""

from __future__ import annotations

import io

import pytest

from repro.datasets import (
    github_events,
    iter_ndjson_lines,
    ndjson_lines,
    open_corpus,
    read_ndjson_lines,
    split_corpus_lines,
    stream_documents,
    stream_types,
    tweets,
    write_ndjson,
)
from repro.inference import accumulate_types, infer_type
from repro.types.intern import global_table


def test_write_then_read_round_trips(tmp_path):
    docs = tweets(40, seed=21)
    path = tmp_path / "docs.ndjson"
    assert write_ndjson(path, docs) == len(docs)
    assert read_ndjson_lines(path) == ndjson_lines(docs)
    assert list(stream_documents(path)) == docs


def test_iter_lines_accepts_handles_and_iterables(tmp_path):
    docs = github_events(10, seed=2)
    path = tmp_path / "docs.ndjson"
    write_ndjson(path, docs)
    from_path = list(iter_ndjson_lines(path))
    with open(path, "r", encoding="utf-8") as handle:
        from_handle = list(iter_ndjson_lines(handle))
    from_iterable = list(iter_ndjson_lines(io.StringIO("\n".join(from_path))))
    assert from_path == from_handle == from_iterable == ndjson_lines(docs)


def test_stream_types_matches_the_batch_path(tmp_path):
    docs = tweets(60, seed=22)
    path = tmp_path / "docs.ndjson"
    write_ndjson(path, docs)
    streamed = accumulate_types(stream_types(path)).result()
    assert global_table().canonical(streamed) is global_table().canonical(
        infer_type(docs)
    )


def test_stream_types_skips_blank_lines():
    lines = ['{"a": 1}', "", "  \t", '{"a": 2}']
    assert len(list(stream_types(lines))) == 2


# ---------------------------------------------------------------------------
# the mmap-backed corpus
# ---------------------------------------------------------------------------


class TestMmapCorpus:
    # Every newline convention the text-mode loader understands:
    # LF, CRLF, lone CR (universal newlines), blank lines, a missing
    # trailing terminator, and the empty file.
    CONTENTS = {
        "empty-file": "",
        "blank-line-only": "\n",
        "no-trailing-newline": '{"a": 1}',
        "trailing-newline": '{"a": 1}\n',
        "crlf": '{"a": 1}\r\n{"b": 2}\r\n',
        "lone-cr": '{"a": 1}\r{"b": 2}',
        "mixed-breaks": '{"a": 1}\r\r\n{"b": 2}\n',
        "blank-lines": '{"a": 1}\n\n  \t\n{"b": 2}\n\n',
    }

    @pytest.mark.parametrize("name", sorted(CONTENTS))
    def test_index_matches_iter_ndjson_lines(self, tmp_path, name):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(self.CONTENTS[name].encode("utf-8"))
        expected = list(iter_ndjson_lines(path))
        with open_corpus(path) as corpus:
            assert len(corpus) == len(expected)
            assert list(corpus) == expected
            assert [corpus[i] for i in range(len(corpus))] == expected
            assert corpus[0:len(corpus)] == expected

    def test_byte_ranges_round_trip_through_split(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_bytes(b'{"a": 1}\r\n\r\nx\r{"b": 2}\n{"c": 3}')
        with open_corpus(path) as corpus:
            lines = list(corpus)
            data = bytes(corpus.buffer())
            for start in range(len(corpus)):
                for stop in range(start + 1, len(corpus) + 1):
                    byte_start, byte_end = corpus.byte_range(start, stop)
                    text = data[byte_start:byte_end].decode("utf-8")
                    assert split_corpus_lines(text) == lines[start:stop]

    def test_byte_range_bounds_are_checked(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_text('{"a": 1}\n')
        with open_corpus(path) as corpus:
            with pytest.raises(IndexError):
                corpus.byte_range(0, 2)
            with pytest.raises(IndexError):
                corpus.byte_range(1, 1)

    def test_corpus_feeds_the_inference_paths(self, tmp_path):
        docs = tweets(50, seed=23)
        path = tmp_path / "docs.ndjson"
        write_ndjson(path, docs)
        reference = global_table().canonical(infer_type(docs))
        with open_corpus(path) as corpus:
            streamed = accumulate_types(stream_types(corpus)).result()
            assert global_table().canonical(streamed) is reference

    def test_unicode_lines_decode_exactly(self, tmp_path):
        lines = ['{"k": "héllo   wörld"}', '{"k": "\U0001f600"}']
        path = tmp_path / "unicode.ndjson"
        path.write_bytes(("\n".join(lines) + "\n").encode("utf-8"))
        with open_corpus(path) as corpus:
            assert list(corpus) == lines
            assert list(corpus) == list(iter_ndjson_lines(path))

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "corpus.ndjson"
        path.write_text('{"a": 1}\n')
        corpus = open_corpus(path)
        assert corpus.size_bytes == len('{"a": 1}\n')
        corpus.close()
        corpus.close()


class TestMmapCorpusSequenceSemantics:
    """Regression pins for ``MmapCorpus.__getitem__``: Sequence semantics
    exactly, caching nothing."""

    LINES = ["a", "bb", "", "ccc", "  "]

    @pytest.fixture()
    def corpus(self, tmp_path):
        path = tmp_path / "seq.ndjson"
        path.write_text("\n".join(self.LINES) + "\n", encoding="utf-8")
        with open_corpus(path) as corpus:
            yield corpus

    def test_negative_indices(self, corpus):
        for i in range(-len(self.LINES), len(self.LINES)):
            assert corpus[i] == self.LINES[i]

    def test_out_of_range_raises_index_error(self, corpus):
        with pytest.raises(IndexError):
            corpus[len(self.LINES)]
        with pytest.raises(IndexError):
            corpus[-len(self.LINES) - 1]

    def test_slices_match_list_semantics(self, corpus):
        cases = [
            slice(None), slice(1, 3), slice(-2, None), slice(None, None, 2),
            slice(None, None, -1), slice(3, 1, -1), slice(10, 20), slice(0, 0),
        ]
        for s in cases:
            assert corpus[s] == self.LINES[s], s

    def test_index_like_objects_and_type_errors(self, corpus):
        class IndexLike:
            def __index__(self):
                return 1

        assert corpus[IndexLike()] == self.LINES[1]
        with pytest.raises(TypeError):
            corpus[1.5]
        with pytest.raises(TypeError):
            corpus["0"]

    def test_sequence_mixins(self, corpus):
        assert "bb" in corpus and "zz" not in corpus
        assert corpus.index("ccc") == 3
        assert corpus.count("") == 1
        assert list(reversed(corpus)) == list(reversed(self.LINES))

    def test_getitem_caches_nothing(self, corpus):
        first = corpus[1]
        second = corpus[1]
        assert first == second == "bb"
        assert first is not second  # decoded fresh from the map each time

    def test_closed_corpus_raises_value_error(self, tmp_path):
        path = tmp_path / "closed.ndjson"
        path.write_text('{"a": 1}\n{"b": 2}\n', encoding="utf-8")
        corpus = open_corpus(path)
        corpus.close()
        with pytest.raises(ValueError):
            corpus[0]
        with pytest.raises(ValueError):
            corpus[0:2]
        with pytest.raises(ValueError):
            list(corpus)


def test_split_corpus_bytes_matches_str_split(tmp_path):
    from repro.datasets import iter_line_spans, split_corpus_bytes

    raw = b'{"a": 1}\r\n{"b": 2}\r{"c": 3}\n\n{"d": 4}'
    assert [
        part.decode("utf-8") for part in split_corpus_bytes(raw)
    ] == split_corpus_lines(raw.decode("utf-8"))
    spans = list(iter_line_spans(raw))
    assert [raw[s:e] for s, e in spans] == split_corpus_bytes(raw)


def test_iter_line_spans_subrange(tmp_path):
    raw = b"aa\nbb\ncc"
    from repro.datasets import iter_line_spans

    assert [raw[s:e] for s, e in iter_line_spans(raw, 3, len(raw))] == [b"bb", b"cc"]
    assert list(iter_line_spans(b"")) == [(0, 0)]


class TestOpenCorpusCompressed:
    """`open_corpus` must agree with the pinned line-index semantics
    whether the bytes arrive plain or compressed (issue 7 regression:
    empty regular files and compressed files with no trailing newline
    must match `iter_ndjson_lines` exactly)."""

    @pytest.mark.parametrize("name", sorted(TestMmapCorpus.CONTENTS))
    def test_gzip_corpus_matches_plain_line_index(self, tmp_path, name):
        import gzip

        raw = TestMmapCorpus.CONTENTS[name].encode("utf-8")
        plain = tmp_path / "corpus.ndjson"
        plain.write_bytes(raw)
        packed = tmp_path / "corpus.ndjson.gz"
        packed.write_bytes(gzip.compress(raw, mtime=0))
        expected = list(iter_ndjson_lines(plain))
        with open_corpus(packed) as corpus:
            assert type(corpus).__name__ == "CompressedCorpus"
            assert list(corpus) == expected
            assert len(corpus) == len(expected)
            assert [corpus[i] for i in range(len(corpus))] == expected
            assert corpus[0 : len(corpus)] == expected

    def test_empty_regular_file_has_no_lines(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_bytes(b"")
        with open_corpus(path) as corpus:
            assert len(corpus) == 0
            assert list(corpus) == []
            with pytest.raises(IndexError):
                corpus[0]

    def test_compressed_no_trailing_newline_keeps_last_line(self, tmp_path):
        import gzip

        path = tmp_path / "corpus.ndjson.gz"
        path.write_bytes(gzip.compress(b'{"a": 1}\n{"b": 2}', mtime=0))
        with open_corpus(path) as corpus:
            assert list(corpus) == ['{"a": 1}', '{"b": 2}']
            assert len(corpus) == 2
            assert corpus[-1] == '{"b": 2}'

    def test_compressed_empty_stream_has_no_lines(self, tmp_path):
        import gzip

        path = tmp_path / "corpus.ndjson.gz"
        path.write_bytes(gzip.compress(b"", mtime=0))
        with open_corpus(path) as corpus:
            assert len(corpus) == 0
            assert list(corpus) == []

    def test_compressed_sequence_semantics(self, tmp_path):
        import gzip

        lines = [f'{{"i": {i}}}' for i in range(7)]
        path = tmp_path / "corpus.ndjson.gz"
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode(), mtime=0))
        with open_corpus(path) as corpus:
            reference = list(lines)
            assert corpus[-2] == reference[-2]
            assert corpus[1:6:2] == reference[1:6:2]
            assert corpus[::-1] == reference[::-1]
            assert corpus[10:] == []
            with pytest.raises(IndexError):
                corpus[7]
            with pytest.raises(IndexError):
                corpus[-8]
            with pytest.raises(TypeError):
                corpus["0"]
        with pytest.raises(ValueError):
            len(corpus)

    def test_iter_ndjson_lines_reads_compressed_paths(self, tmp_path):
        import gzip

        lines = ['{"a": 1}', "", '{"b": 2}']
        path = tmp_path / "corpus.ndjson.gz"
        path.write_bytes(gzip.compress(("\n".join(lines) + "\n").encode(), mtime=0))
        assert list(iter_ndjson_lines(str(path))) == lines
        assert list(stream_documents(str(path))) == [{"a": 1}, {"b": 2}]
