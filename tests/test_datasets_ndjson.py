"""Tests for the line-oriented NDJSON loaders (`repro.datasets.ndjson`)."""

from __future__ import annotations

import io

from repro.datasets import (
    github_events,
    iter_ndjson_lines,
    ndjson_lines,
    read_ndjson_lines,
    stream_documents,
    stream_types,
    tweets,
    write_ndjson,
)
from repro.inference import accumulate_types, infer_type
from repro.types.intern import global_table


def test_write_then_read_round_trips(tmp_path):
    docs = tweets(40, seed=21)
    path = tmp_path / "docs.ndjson"
    assert write_ndjson(path, docs) == len(docs)
    assert read_ndjson_lines(path) == ndjson_lines(docs)
    assert list(stream_documents(path)) == docs


def test_iter_lines_accepts_handles_and_iterables(tmp_path):
    docs = github_events(10, seed=2)
    path = tmp_path / "docs.ndjson"
    write_ndjson(path, docs)
    from_path = list(iter_ndjson_lines(path))
    with open(path, "r", encoding="utf-8") as handle:
        from_handle = list(iter_ndjson_lines(handle))
    from_iterable = list(iter_ndjson_lines(io.StringIO("\n".join(from_path))))
    assert from_path == from_handle == from_iterable == ndjson_lines(docs)


def test_stream_types_matches_the_batch_path(tmp_path):
    docs = tweets(60, seed=22)
    path = tmp_path / "docs.ndjson"
    write_ndjson(path, docs)
    streamed = accumulate_types(stream_types(path)).result()
    assert global_table().canonical(streamed) is global_table().canonical(
        infer_type(docs)
    )


def test_stream_types_skips_blank_lines():
    lines = ['{"a": 1}', "", "  \t", '{"a": 2}']
    assert len(list(stream_types(lines))) == 2
