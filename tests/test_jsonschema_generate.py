"""Tests for witness generation, plus type-algebra → JSON Schema integration."""

import pytest

from hypothesis import given, settings

from repro.jsonschema import (
    GenerationError,
    InstanceGenerator,
    compile_schema,
    generate_instance,
)
from repro.types import Equivalence, merge_all, type_of, type_to_jsonschema

from tests.strategies import json_documents


class TestGeneration:
    @pytest.mark.parametrize(
        "schema",
        [
            {"type": "null"},
            {"type": "boolean"},
            {"type": "integer", "minimum": 5, "maximum": 9},
            {"type": "number"},
            {"type": "string", "minLength": 3, "maxLength": 5},
            {"type": "string", "format": "date-time"},
            {"type": "array", "items": {"type": "integer"}, "minItems": 2},
            {
                "type": "object",
                "properties": {"a": {"type": "integer"}, "b": {"type": "string"}},
                "required": ["a"],
            },
            {"enum": [1, "two", [3]]},
            {"const": {"fixed": True}},
            {"anyOf": [{"type": "string"}, {"type": "null"}]},
            {"oneOf": [{"type": "integer", "minimum": 100}, {"type": "null"}]},
            {"allOf": [{"type": "integer"}, {"minimum": 5}]},
            {"type": ["string", "null"]},
            {"minProperties": 2},
        ],
    )
    def test_generated_instances_validate(self, schema):
        compiled = compile_schema(schema)
        generator = InstanceGenerator(schema, seed=7)
        for _ in range(5):
            assert compiled.is_valid(generator.generate())

    def test_deterministic_with_seed(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        a = InstanceGenerator(schema, seed=3).generate_many(5)
        b = InstanceGenerator(schema, seed=3).generate_many(5)
        assert a == b

    def test_false_schema_fails(self):
        with pytest.raises(GenerationError):
            generate_instance(False)

    def test_contradictory_schema_fails(self):
        schema = {"allOf": [{"type": "string"}, {"type": "integer"}]}
        with pytest.raises(GenerationError):
            generate_instance(schema)

    def test_recursive_schema(self):
        schema = {
            "definitions": {
                "node": {
                    "type": "object",
                    "properties": {
                        "v": {"type": "integer"},
                        "kids": {"type": "array", "items": {"$ref": "#/definitions/node"}},
                    },
                    "required": ["v"],
                }
            },
            "$ref": "#/definitions/node",
        }
        compiled = compile_schema(schema)
        assert compiled.is_valid(generate_instance(schema, seed=1))


class TestTypeAlgebraIntegration:
    """Inferred type → exported schema → validator accepts the inputs."""

    @given(json_documents())
    @settings(max_examples=40, deadline=None)
    def test_inferred_schema_validates_inputs(self, docs):
        for eq in (Equivalence.KIND, Equivalence.LABEL):
            inferred = merge_all((type_of(d) for d in docs), eq)
            compiled = compile_schema(type_to_jsonschema(inferred))
            for doc in docs:
                result = compiled.validate(doc)
                assert result.valid, f"{doc} rejected: {result.failures}"

    def test_exported_schema_rejects_outsiders(self):
        docs = [{"a": 1}, {"a": 2}]
        inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
        compiled = compile_schema(type_to_jsonschema(inferred))
        assert not compiled.is_valid({"a": "string"})
        assert not compiled.is_valid({"b": 1})
        assert not compiled.is_valid([])
