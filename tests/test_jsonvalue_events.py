"""Tests for repro.jsonvalue.events."""

import pytest

from repro.errors import JsonError
from repro.jsonvalue.events import (
    JsonEvent,
    JsonEventType,
    iter_events,
    values_from_events,
)
from repro.jsonvalue.model import strict_equal
from repro.jsonvalue.parser import JsonParseError, parse


def event_types(text):
    return [e.type for e in iter_events(text)]


class TestEventStream:
    def test_scalar(self):
        events = list(iter_events("42"))
        assert [(e.type, e.value) for e in events] == [(JsonEventType.VALUE, 42)]

    def test_empty_object(self):
        assert event_types("{}") == [
            JsonEventType.START_OBJECT,
            JsonEventType.END_OBJECT,
        ]

    def test_empty_array(self):
        assert event_types("[]") == [
            JsonEventType.START_ARRAY,
            JsonEventType.END_ARRAY,
        ]

    def test_object_members(self):
        events = list(iter_events('{"a": 1, "b": [true]}'))
        kinds_values = [(e.type, e.value) for e in events]
        assert kinds_values == [
            (JsonEventType.START_OBJECT, None),
            (JsonEventType.KEY, "a"),
            (JsonEventType.VALUE, 1),
            (JsonEventType.KEY, "b"),
            (JsonEventType.START_ARRAY, None),
            (JsonEventType.VALUE, True),
            (JsonEventType.END_ARRAY, None),
            (JsonEventType.END_OBJECT, None),
        ]

    def test_depths(self):
        events = list(iter_events('{"a": [1]}'))
        depth_of = {(e.type, e.value): e.depth for e in events}
        assert depth_of[(JsonEventType.START_OBJECT, None)] == 0
        assert depth_of[(JsonEventType.KEY, "a")] == 1
        assert depth_of[(JsonEventType.VALUE, 1)] == 2

    def test_nested_closers(self):
        assert event_types("[[[]]]") == [
            JsonEventType.START_ARRAY,
            JsonEventType.START_ARRAY,
            JsonEventType.START_ARRAY,
            JsonEventType.END_ARRAY,
            JsonEventType.END_ARRAY,
            JsonEventType.END_ARRAY,
        ]


class TestEventErrors:
    @pytest.mark.parametrize(
        "text",
        ["{", "[", '{"a"}', '{"a": 1', "[1, ", "[1] 2", '{"a": 1}}', "[1,]"],
    )
    def test_malformed(self, text):
        with pytest.raises(JsonParseError):
            list(iter_events(text))

    def test_depth_limit(self):
        with pytest.raises(JsonParseError, match="depth"):
            list(iter_events("[" * 20 + "]" * 20, max_depth=10))


class TestValuesFromEvents:
    @pytest.mark.parametrize(
        "text",
        [
            "null",
            "0",
            '"s"',
            "[]",
            "{}",
            '{"a": [1, 2.5, {"b": null}], "c": true}',
            "[[], {}, [{}]]",
        ],
    )
    def test_roundtrip(self, text):
        expected = parse(text)
        (value,) = values_from_events(iter_events(text))
        assert strict_equal(value, expected)

    def test_multiple_documents(self):
        stream = list(iter_events("[1]")) + list(iter_events('{"a": 2}'))
        values = list(values_from_events(stream))
        assert values == [[1], {"a": 2}]

    def test_truncated_stream(self):
        events = list(iter_events('{"a": 1}'))[:-1]
        with pytest.raises(JsonError):
            list(values_from_events(events))

    def test_value_without_key(self):
        events = [
            JsonEvent(JsonEventType.START_OBJECT, None, 0, 0),
            JsonEvent(JsonEventType.VALUE, 1, 1, 1),
        ]
        with pytest.raises(JsonError):
            list(values_from_events(events))

    def test_end_without_start(self):
        events = [JsonEvent(JsonEventType.END_ARRAY, None, 0, 0)]
        with pytest.raises(JsonError):
            list(values_from_events(events))

    def test_top_level_null_yielded(self):
        values = list(values_from_events(iter_events("null")))
        assert values == [None]
