"""Property-based tests for the type algebra (DESIGN.md invariant 3).

The central laws: merge is associative, commutative, and idempotent (modulo
canonical form); typing is sound (every value matches its own type and any
merge containing it); subtyping is sound w.r.t. the matches semantics.
"""

from hypothesis import given, settings

from repro.types import (
    Equivalence,
    matches,
    merge,
    merge_all,
    parse_type,
    reduce_type,
    simplify,
    type_of,
    type_to_string,
)

from tests.strategies import json_values

BOTH = (Equivalence.KIND, Equivalence.LABEL)


@given(json_values())
def test_value_matches_own_type(value):
    assert matches(value, type_of(value))


@given(json_values(), json_values())
def test_merge_commutative(a, b):
    ta, tb = type_of(a), type_of(b)
    for eq in BOTH:
        assert merge(ta, tb, eq) == merge(tb, ta, eq)


@given(json_values(), json_values(), json_values())
@settings(max_examples=60)
def test_merge_associative(a, b, c):
    ta, tb, tc = type_of(a), type_of(b), type_of(c)
    for eq in BOTH:
        left = merge(merge(ta, tb, eq), tc, eq)
        right = merge(ta, merge(tb, tc, eq), eq)
        assert left == right


@given(json_values())
def test_merge_idempotent(value):
    """merge(t, t) is the reduced normal form of t, and reduce is idempotent."""
    t = type_of(value)
    for eq in BOTH:
        reduced = reduce_type(t, eq)
        assert merge(t, t, eq) == reduced
        assert reduce_type(reduced, eq) == reduced


@given(json_values(), json_values())
def test_merge_sound(a, b):
    """Both inputs match the merged type (inference soundness, locally)."""
    for eq in BOTH:
        merged = merge(type_of(a), type_of(b), eq)
        assert matches(a, merged)
        assert matches(b, merged)


@given(json_values(), json_values(), json_values())
@settings(max_examples=60)
def test_merge_all_equals_fold(a, b, c):
    ts = [type_of(v) for v in (a, b, c)]
    for eq in BOTH:
        folded = merge(merge(ts[0], ts[1], eq), ts[2], eq)
        assert merge_all(ts, eq) == folded


@given(json_values())
def test_simplify_idempotent(value):
    t = type_of(value)
    assert simplify(simplify(t)) == simplify(t)


@given(json_values())
def test_printer_roundtrip(value):
    t = type_of(value)
    assert parse_type(type_to_string(t)) == t


@given(json_values(), json_values())
@settings(max_examples=80)
def test_subtype_soundness_via_merge(a, b):
    """type_of(a) <: merge(a, b) — and the subtype relation respects matches."""
    from repro.types import is_subtype

    for eq in BOTH:
        merged = merge(type_of(a), type_of(b), eq)
        assert is_subtype(type_of(a), merged)
        assert is_subtype(type_of(b), merged)
