"""Property-based tests for inference soundness (DESIGN.md invariant 2).

Every inference tool in the suite must produce a schema that *accepts every
document it was inferred from* — whatever its precision level.  These tests
drive all of them from the same hypothesis-generated collections.
"""

from hypothesis import given, settings

from repro.inference import (
    infer_counted,
    infer_distributed,
    infer_type,
    mongodb_analyze,
    skinfer_infer_schema,
    studio3t_analyze,
)
from repro.inference.spark import STRING, infer_spark_schema
from repro.jsonschema import compile_schema
from repro.types import Equivalence, matches

from tests.strategies import json_documents

BOTH = (Equivalence.KIND, Equivalence.LABEL)


@given(json_documents())
@settings(max_examples=60, deadline=None)
def test_parametric_inference_sound(docs):
    for eq in BOTH:
        inferred = infer_type(docs, eq)
        for doc in docs:
            assert matches(doc, inferred)


@given(json_documents())
@settings(max_examples=40, deadline=None)
def test_counting_plain_commutes(docs):
    """Strip-counts-after-merge equals plain inference (commuting square)."""
    for eq in BOTH:
        assert infer_counted(docs, eq).plain() == infer_type(docs, eq)


@given(json_documents())
@settings(max_examples=40, deadline=None)
def test_counting_root_count(docs):
    counted = infer_counted(docs, Equivalence.KIND)
    assert counted.count == len(docs)


@given(json_documents())
@settings(max_examples=40, deadline=None)
def test_skinfer_sound(docs):
    schema = skinfer_infer_schema(docs)
    compiled = compile_schema(schema)
    for doc in docs:
        result = compiled.validate(doc)
        assert result.valid, f"{doc} rejected: {[str(f) for f in result.failures]}"


@given(json_documents(min_size=2))
@settings(max_examples=40, deadline=None)
def test_distributed_equals_sequential(docs):
    for eq in BOTH:
        for partitions in (2, 3):
            run = infer_distributed(docs, partitions, eq)
            assert run.result == infer_type(docs, eq)


@given(json_documents())
@settings(max_examples=40, deadline=None)
def test_spark_schema_total(docs):
    """Spark inference never fails on object docs; string fallback is total."""
    object_docs = [d for d in docs if isinstance(d, dict)]
    if not object_docs:
        return
    schema = infer_spark_schema(object_docs)
    names = {f.name for f in schema.fields}
    for doc in object_docs:
        assert set(doc.keys()) <= names


@given(json_documents())
@settings(max_examples=30, deadline=None)
def test_studio3t_size_accounting(docs):
    analysis = studio3t_analyze(docs)
    assert analysis.distinct_shapes() <= len(docs)
    assert sum(count for _, count in analysis.shapes) == len(docs)


@given(json_documents())
@settings(max_examples=30, deadline=None)
def test_mongodb_counts_bounded(docs):
    object_docs = [d for d in docs if isinstance(d, dict)]
    if not object_docs:
        return
    result = mongodb_analyze(object_docs)
    assert result["count"] == len(object_docs)
    for field in result["fields"]:
        assert 0 < field["count"] <= len(object_docs)
        assert sum(t["count"] for t in field["types"]) == field["count"]


@given(json_documents())
@settings(max_examples=30, deadline=None)
def test_label_size_at_least_kind_size(docs):
    """L-inference is at least as large (more precise) as K-inference."""
    t_k = infer_type(docs, Equivalence.KIND)
    t_l = infer_type(docs, Equivalence.LABEL)
    assert t_k.size() <= t_l.size()
