"""Unit tests for the hash-consed type kernel (repro.types.intern)."""

import pickle

import pytest

from repro.errors import InferenceError
from repro.inference.engine import TypeAccumulator
from repro.types import (
    ArrType,
    BOT,
    Equivalence,
    FLT,
    FieldType,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    UnionType,
    intern,
    merge_interned,
    type_of,
    union2,
)
from repro.types.intern import InternTable, global_table, intern_stats


class TestInterning:
    def test_leaf_singletons_are_canonical(self):
        assert intern(NULL) is NULL
        assert intern(INT) is INT
        assert intern(BOT) is BOT

    def test_structurally_equal_terms_intern_to_same_instance(self):
        a = type_of({"x": 1, "y": ["a", "b"]})
        b = type_of({"x": 2, "y": ["c"]})
        assert a is not b
        assert intern(a) is intern(b)

    def test_distinct_terms_intern_to_distinct_instances(self):
        a = intern(type_of({"x": 1}))
        b = intern(type_of({"x": "s"}))
        assert a is not b
        assert a != b

    def test_interned_equality_is_identity(self):
        table = InternTable()
        a = table.intern(type_of({"x": [1, 2.5]}))
        b = table.intern(type_of({"x": [7, 0.1]}))
        assert a is b
        # Distinct canonical nodes of one table are unequal without any
        # deep traversal.
        c = table.intern(type_of({"x": [True]}))
        assert a != c

    def test_intern_preserves_hash_and_size(self):
        raw = type_of({"k": [1, "s", None]})
        canon = intern(raw)
        assert hash(canon) == hash(raw)
        assert canon.size() == raw.size()

    def test_field_order_is_canonicalized(self):
        table = InternTable()
        a = table.intern(RecType((FieldType("b", INT), FieldType("a", STR))))
        b = table.intern(RecType((FieldType("a", STR), FieldType("b", INT))))
        assert a is b

    def test_pickle_strips_intern_marks(self):
        canon = intern(type_of({"x": 1}))
        copy = pickle.loads(pickle.dumps(canon))
        assert copy == canon
        assert copy._interned is None
        assert intern(copy) is canon

    def test_stats_and_len_grow(self):
        table = InternTable()
        before = len(table)
        table.intern(type_of({"fresh": [1.5]}))
        assert len(table) > before
        stats = table.stats()
        assert stats["misses"] > 0
        assert set(stats) >= {"nodes", "hits", "misses", "merge_entries"}
        assert intern_stats()["nodes"] == len(global_table())


class TestCanonicalAndMerge:
    def test_canonical_simplifies(self):
        table = InternTable()
        messy = UnionType((INT, UnionType((INT, BOT, STR))))
        assert table.canonical(messy) == union2(INT, STR)

    def test_merge_interned_matches_merge_all(self):
        left = type_of({"x": 1})
        right = type_of({"x": 2.5, "y": "s"})
        for eq in Equivalence:
            out = merge_interned(left, right, eq)
            from repro.types import merge_all

            assert out == merge_all((left, right), eq)

    def test_merge_is_cached_by_identity(self):
        table = InternTable()
        left = table.intern(type_of({"x": 1}))
        right = table.intern(type_of({"y": "s"}))
        first = table.merge_types(left, right, Equivalence.KIND)
        second = table.merge_types(left, right, Equivalence.KIND)
        mirrored = table.merge_types(right, left, Equivalence.KIND)
        assert first is second is mirrored

    def test_merge_with_self_is_reduction(self):
        table = InternTable()
        t = type_of({"xs": [1, 2.5]})  # Arr(Int + Flt) reduces to Arr(Num) under KIND
        out = table.merge_types(t, t, Equivalence.KIND)
        assert out == table.reduce_types(t, Equivalence.KIND)
        assert out == RecType.of({"xs": ArrType(NUM)})

    def test_number_atoms_fuse_under_kind(self):
        table = InternTable()
        assert table.merge_types(INT, FLT, Equivalence.KIND) is table.intern(NUM)
        assert table.merge_types(INT, FLT, Equivalence.LABEL) == union2(INT, FLT)

    def test_clear_resets_table(self):
        table = InternTable()
        table.intern(type_of({"x": 1}))
        assert len(table) > 0
        table.clear()
        assert len(table) == 0
        assert table.stats()["hits"] == 0

    def test_clear_does_not_corrupt_equality_of_survivors(self):
        # Nodes interned before a clear keep the old epoch token; they
        # must still compare structurally equal to nodes interned after.
        table = InternTable()
        before = table.intern(ArrType(INT))
        table.clear()
        after = table.intern(ArrType(INT))
        assert before is not after
        assert before == after
        assert union2(before, after) == ArrType(INT)
        # And distinct survivors stay unequal.
        other = table.intern(ArrType(STR))
        assert before != other

    def test_merge_across_clear_is_still_correct(self):
        table = InternTable()
        held = table.intern(type_of({"x": 1}))
        table.clear()
        out = table.merge_types(held, type_of({"x": 2.5}), Equivalence.KIND)
        assert out == RecType.of({"x": NUM})


class TestAccumulatorBasics:
    def test_empty_result_is_bot(self):
        acc = TypeAccumulator(Equivalence.KIND)
        assert acc.is_empty()
        assert acc.result() == BOT
        assert acc.class_count() == 0

    def test_counts_and_state(self):
        acc = TypeAccumulator(Equivalence.KIND)
        for d in ({"x": 1}, {"x": 2}, {"y": "s"}, [1, 2], "scalar"):
            acc.add(d)
        assert acc.document_count == 5
        assert acc.class_count() == 3  # rec, arr, str atom
        assert acc.state_nodes() >= acc.class_count()

    def test_combine_rejects_mixed_equivalences(self):
        a = TypeAccumulator(Equivalence.KIND)
        b = TypeAccumulator(Equivalence.LABEL)
        with pytest.raises(InferenceError):
            a.combine(b)

    def test_memo_is_bounded(self):
        class SmallMemo(TypeAccumulator):
            _MEMO_LIMIT = 8

        acc = SmallMemo(Equivalence.KIND)
        for i in range(32):
            acc.add({f"k{i}": i})  # every document type distinct
        assert len(acc._memo) <= 8
        assert acc.document_count == 32
        # Absorption stays correct past the bound.
        assert acc.class_count() == 1

    def test_result_is_samplable_mid_stream(self):
        acc = TypeAccumulator(Equivalence.KIND)
        acc.add({"x": 1})
        first = acc.result()
        acc.add({"x": 2.5})
        second = acc.result()
        assert first == RecType.of({"x": INT})
        assert second == RecType.of({"x": NUM})
