"""Tests for the format vocabulary."""

import pytest

from repro.jsonschema import compile_schema, is_valid
from repro.jsonschema.formats import FORMAT_CHECKS


def check(fmt, value):
    return FORMAT_CHECKS[fmt](value)


class TestDateTime:
    @pytest.mark.parametrize(
        "value", ["2019-03-26", "2020-02-29", "0001-01-01"]
    )
    def test_valid_dates(self, value):
        assert check("date", value)

    @pytest.mark.parametrize(
        "value",
        ["2019-13-01", "2019-00-10", "2019-02-30", "2019-2-3", "2021-02-29", "19-01-01"],
    )
    def test_invalid_dates(self, value):
        assert not check("date", value)

    @pytest.mark.parametrize(
        "value", ["09:30:00Z", "23:59:60Z", "12:00:00.123+05:30", "00:00:00-01:00"]
    )
    def test_valid_times(self, value):
        assert check("time", value)

    @pytest.mark.parametrize("value", ["24:00:00Z", "09:30:00", "09:61:00Z"])
    def test_invalid_times(self, value):
        assert not check("time", value)

    @pytest.mark.parametrize(
        "value",
        ["2019-03-26T09:30:00Z", "2019-03-26t09:30:00z", "2019-03-26 09:30:00+02:00"],
    )
    def test_valid_datetimes(self, value):
        assert check("date-time", value)

    @pytest.mark.parametrize(
        "value", ["2019-03-26", "2019-03-26T25:00:00Z", "2019-02-30T09:30:00Z"]
    )
    def test_invalid_datetimes(self, value):
        assert not check("date-time", value)


class TestNetworkFormats:
    def test_email(self):
        assert check("email", "a.b+c@example.org")
        assert not check("email", "not an email")
        assert not check("email", "a@@b.com")

    def test_hostname(self):
        assert check("hostname", "example.org")
        assert check("hostname", "a-b.c-d.e")
        assert not check("hostname", "-bad.example")
        assert not check("hostname", "a" * 64 + ".com")
        assert not check("hostname", "")

    def test_ipv4(self):
        assert check("ipv4", "192.168.0.1")
        assert check("ipv4", "0.0.0.0")
        assert not check("ipv4", "256.1.1.1")
        assert not check("ipv4", "01.2.3.4")
        assert not check("ipv4", "1.2.3")

    def test_ipv6(self):
        assert check("ipv6", "::1")
        assert check("ipv6", "2001:db8::8a2e:370:7334")
        assert not check("ipv6", "192.168.0.1")
        assert not check("ipv6", "gggg::1")

    def test_uri(self):
        assert check("uri", "https://example.org/a?b=c")
        assert check("uri", "urn:isbn:0451450523")
        assert not check("uri", "/relative/path")
        assert not check("uri", "http://exa mple.org")

    def test_uri_reference(self):
        assert check("uri-reference", "/relative/path")
        assert check("uri-reference", "https://example.org")
        assert not check("uri-reference", "a b")


class TestSyntaxFormats:
    def test_regex(self):
        assert check("regex", "^a+b*$")
        assert not check("regex", "(")

    def test_json_pointer(self):
        assert check("json-pointer", "/a/b~0c")
        assert check("json-pointer", "")
        assert not check("json-pointer", "a/b")
        assert not check("json-pointer", "/a~2")

    def test_uuid(self):
        assert check("uuid", "123e4567-e89b-12d3-a456-426614174000")
        assert not check("uuid", "123e4567e89b12d3a456426614174000")


class TestFormatKeywordIntegration:
    def test_asserted_by_default(self):
        schema = {"format": "ipv4"}
        assert is_valid(schema, "10.0.0.1")
        assert not is_valid(schema, "999.0.0.1")

    def test_non_strings_ignored(self):
        assert is_valid({"format": "ipv4"}, 42)

    def test_unknown_format_passes(self):
        assert is_valid({"format": "stardate"}, "anything")

    def test_assertion_can_be_disabled(self):
        compiled = compile_schema({"format": "ipv4"}, assert_formats=False)
        assert compiled.is_valid("not-an-ip")
