"""Property tests for the incremental engine and the hash-consed kernel.

The acceptance bar of the refactor: for arbitrary document collections,
orderings and chunkings, under both equivalences, the streaming
:class:`repro.inference.engine.TypeAccumulator` produces a type
structurally identical to the seed's batch ``merge_all`` — and interning
is exactly structural equality (``intern(a) is intern(b)`` iff
``a == b``).
"""

from hypothesis import given, settings, strategies as st

from repro.inference.engine import (
    CountingAccumulator,
    TypeAccumulator,
    accumulate,
    accumulate_types,
)
from repro.inference.counting import infer_counted, merge_counted, counted_type_of
from repro.types import Equivalence, merge_all, simplify, type_of
from repro.types.intern import InternTable

from tests.strategies import json_documents, json_values

EQUIVALENCES = [Equivalence.KIND, Equivalence.LABEL]


def chunked(items, sizes):
    """Split ``items`` into chunks of the given sizes (last chunk takes the rest)."""
    chunks = []
    start = 0
    for size in sizes:
        if start >= len(items):
            break
        chunks.append(items[start : start + size])
        start += size
    if start < len(items):
        chunks.append(items[start:])
    return [c for c in chunks if c]


class TestAccumulatorEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(docs=json_documents(min_size=1, max_size=8), eq=st.sampled_from(EQUIVALENCES))
    def test_streaming_fold_matches_merge_all(self, docs, eq):
        expected = merge_all((type_of(d) for d in docs), eq)
        assert accumulate(docs, eq).result() == expected

    @settings(max_examples=60, deadline=None)
    @given(
        docs=json_documents(min_size=1, max_size=10),
        eq=st.sampled_from(EQUIVALENCES),
        data=st.data(),
    )
    def test_arbitrary_chunking_and_ordering(self, docs, eq, data):
        expected = merge_all((type_of(d) for d in docs), eq)
        order = data.draw(st.permutations(list(range(len(docs)))))
        shuffled = [docs[i] for i in order]
        sizes = data.draw(
            st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=5)
        )
        combined = TypeAccumulator(eq)
        for chunk in chunked(shuffled, sizes):
            combined.combine(accumulate(chunk, eq))
        assert combined.result() == expected
        assert combined.document_count == len(docs)

    @settings(max_examples=40, deadline=None)
    @given(docs=json_documents(min_size=1, max_size=8), eq=st.sampled_from(EQUIVALENCES))
    def test_duplicate_absorption_is_idempotent(self, docs, eq):
        expected = accumulate(docs, eq).result()
        doubled = TypeAccumulator(eq)
        for d in docs:
            doubled.add(d)
            doubled.add(d)
        assert doubled.result() == expected

    @settings(max_examples=40, deadline=None)
    @given(docs=json_documents(min_size=1, max_size=8), eq=st.sampled_from(EQUIVALENCES))
    def test_private_table_matches_global(self, docs, eq):
        expected = accumulate(docs, eq).result()
        private = accumulate(docs, eq, table=InternTable()).result()
        assert private == expected

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(json_values(max_leaves=10), min_size=1, max_size=8),
        eq=st.sampled_from(EQUIVALENCES),
    )
    def test_arbitrary_values_not_just_objects(self, values, eq):
        types = [type_of(v) for v in values]
        expected = merge_all(types, eq)
        assert accumulate_types(types, eq).result() == expected


class TestCountingAccumulator:
    @settings(max_examples=40, deadline=None)
    @given(docs=json_documents(min_size=1, max_size=8), eq=st.sampled_from(EQUIVALENCES))
    def test_matches_batch_merge_counted(self, docs, eq):
        batch = merge_counted((counted_type_of(d, eq) for d in docs), eq)
        acc = CountingAccumulator(eq)
        for d in docs:
            acc.add(d)
        assert acc.result() == batch
        assert infer_counted(docs, eq) == batch

    @settings(max_examples=30, deadline=None)
    @given(
        docs=json_documents(min_size=2, max_size=8),
        eq=st.sampled_from(EQUIVALENCES),
        split=st.integers(min_value=1, max_value=7),
    )
    def test_combine_matches_whole(self, docs, eq, split):
        split = min(split, len(docs) - 1)
        left = CountingAccumulator(eq)
        right = CountingAccumulator(eq)
        for d in docs[:split]:
            left.add(d)
        for d in docs[split:]:
            right.add(d)
        left.combine(right)
        assert left.result() == infer_counted(docs, eq)
        assert left.document_count == len(docs)


class TestInterning:
    @settings(max_examples=80, deadline=None)
    @given(a=json_values(max_leaves=12), b=json_values(max_leaves=12))
    def test_intern_identity_iff_structural_equality(self, a, b):
        table = InternTable()
        ta, tb = type_of(a), type_of(b)
        ia, ib = table.intern(ta), table.intern(tb)
        assert ia == ta and ib == tb
        assert (ia is ib) == (ta == tb)

    @settings(max_examples=50, deadline=None)
    @given(v=json_values(max_leaves=12), eq=st.sampled_from(EQUIVALENCES))
    def test_canonical_is_interned_simplify(self, v, eq):
        table = InternTable()
        t = type_of(v)
        assert table.canonical(t) == simplify(t)
        # reduce_types matches the pure reduction.
        assert table.reduce_types(t, eq) == merge_all((t,), eq)

    @settings(max_examples=50, deadline=None)
    @given(
        a=json_values(max_leaves=10),
        b=json_values(max_leaves=10),
        eq=st.sampled_from(EQUIVALENCES),
    )
    def test_native_merge_matches_merge_all(self, a, b, eq):
        table = InternTable()
        ta, tb = type_of(a), type_of(b)
        assert table.merge_types(ta, tb, eq) == merge_all((ta, tb), eq)
