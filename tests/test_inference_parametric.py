"""Tests for parametric inference and counting types."""

import pytest

from repro.errors import InferenceError
from repro.inference import (
    counted_type_of,
    field_presence_ratios,
    infer,
    infer_counted,
    infer_type,
    merge_counted,
    precision_against,
)
from repro.types import (
    ArrType,
    Equivalence,
    INT,
    NUM,
    RecType,
    STR,
    UnionType,
    matches,
    type_to_string,
    union2,
)

K = Equivalence.KIND
L = Equivalence.LABEL

HETEROGENEOUS = [
    {"id": 1, "name": "a"},
    {"id": 2, "name": "b", "tags": ["x"]},
    {"id": 3.5, "name": "c"},
    {"ref": "external"},
]


class TestInferType:
    def test_homogeneous(self):
        docs = [{"a": 1}, {"a": 2}]
        assert infer_type(docs, K) == RecType.of({"a": INT})

    def test_kind_fuses_everything(self):
        t = infer_type(HETEROGENEOUS, K)
        assert isinstance(t, RecType)
        assert t.labels() == {"id", "name", "tags", "ref"}
        assert t.required_labels() == set()
        assert t.field_map()["id"].type == NUM

    def test_label_keeps_variants(self):
        t = infer_type(HETEROGENEOUS, L)
        assert isinstance(t, UnionType)
        label_sets = {m.labels() for m in t.members if isinstance(m, RecType)}
        assert frozenset({"ref"}) in label_sets
        assert frozenset({"id", "name"}) in label_sets
        assert frozenset({"id", "name", "tags"}) in label_sets

    def test_soundness(self):
        for eq in (K, L):
            t = infer_type(HETEROGENEOUS, eq)
            for doc in HETEROGENEOUS:
                assert matches(doc, t)

    def test_empty_collection(self):
        with pytest.raises(InferenceError):
            infer_type([], K)

    def test_report(self):
        report = infer(HETEROGENEOUS, L)
        assert report.document_count == 4
        assert report.schema_size == report.inferred.size()
        assert "label" in str(report)

    def test_report_jsonschema_roundtrip(self):
        from repro.jsonschema import compile_schema

        report = infer(HETEROGENEOUS, K)
        compiled = compile_schema(report.to_jsonschema())
        for doc in HETEROGENEOUS:
            assert compiled.is_valid(doc)


class TestPrecision:
    def test_label_at_least_as_precise(self):
        # Outsiders that mix fields across variants: K accepts, L rejects.
        outsiders = [{"id": 1, "name": "x", "ref": "r"}, {"tags": ["y"]}]
        t_k = infer_type(HETEROGENEOUS, K)
        t_l = infer_type(HETEROGENEOUS, L)
        p_k = precision_against(t_k, outsiders)
        p_l = precision_against(t_l, outsiders)
        assert p_l <= p_k
        assert p_l == 0.0  # L rejects both mixtures

    def test_needs_witnesses(self):
        with pytest.raises(InferenceError):
            precision_against(INT, [])


class TestCountedTypeOf:
    def test_scalar(self):
        c = counted_type_of(3)
        assert str(c) == "Int(1)"

    def test_array_counts_elements(self):
        c = counted_type_of([1, 2, 3])
        assert str(c) == "[Int(3)](1x3)"

    def test_record(self):
        c = counted_type_of({"a": 1})
        assert c.count == 1
        assert str(c) == "{a(1): Int(1)}(1)"


class TestInferCounted:
    DOCS = [{"a": 1}, {"a": 2, "b": "x"}, {"a": 3.5, "b": "y"}, {"b": "z"}]

    def test_root_count(self):
        c = infer_counted(self.DOCS, K)
        assert c.count == 4

    def test_field_presence(self):
        c = infer_counted(self.DOCS, K)
        ratios = field_presence_ratios(c)
        assert ratios == {"a": 3 / 4, "b": 3 / 4}

    def test_plain_commutes_with_merge(self):
        """Stripping counts after merging == plain parametric inference."""
        for eq in (K, L):
            counted = infer_counted(self.DOCS, eq)
            plain = infer_type(self.DOCS, eq)
            assert counted.plain() == plain

    def test_union_member_counts_sum_to_total(self):
        docs = [{"a": 1}, "str1", "str2", [1]]
        c = infer_counted(docs, K)
        assert sum(m.count for m in c.members) == 4

    def test_merge_adds_counts(self):
        a = counted_type_of({"x": 1})
        b = counted_type_of({"x": 2})
        merged = merge_counted([a, b], K)
        assert merged.count == 2
        (rec,) = merged.members
        assert rec.field_map()["x"].count == 2

    def test_size_overhead_bounded(self):
        c = infer_counted(self.DOCS, K)
        plain_size = c.plain().size()
        assert plain_size < c.size() <= 3 * plain_size

    def test_empty_collection(self):
        with pytest.raises(InferenceError):
            infer_counted([], K)

    def test_label_equivalence_counts(self):
        c = infer_counted(self.DOCS, L)
        recs = [m for m in c.members if hasattr(m, "fields")]
        assert sum(r.count for r in recs) == 4
