"""Tests for repro.types.subtype (subtyping and semantic membership)."""

from repro.types import (
    ANY,
    ArrType,
    BOOL,
    BOT,
    FLT,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    is_equivalent,
    is_subtype,
    matches,
    union2,
)


class TestAtoms:
    def test_reflexive(self):
        for t in (NULL, BOOL, INT, FLT, NUM, STR):
            assert is_subtype(t, t)

    def test_int_flt_below_num(self):
        assert is_subtype(INT, NUM)
        assert is_subtype(FLT, NUM)
        assert not is_subtype(NUM, INT)

    def test_cross_kind(self):
        assert not is_subtype(INT, STR)
        assert not is_subtype(BOOL, INT)


class TestTopBottom:
    def test_bot_below_everything(self):
        for t in (NULL, STR, ArrType(INT), RecType.of({"a": INT}), ANY):
            assert is_subtype(BOT, t)

    def test_everything_below_any(self):
        for t in (BOT, NULL, STR, ArrType(INT), RecType.of({"a": INT})):
            assert is_subtype(t, ANY)

    def test_any_not_below_concrete(self):
        assert not is_subtype(ANY, STR)


class TestArrays:
    def test_covariant(self):
        assert is_subtype(ArrType(INT), ArrType(NUM))
        assert not is_subtype(ArrType(NUM), ArrType(INT))

    def test_empty_array_type(self):
        assert is_subtype(ArrType(BOT), ArrType(STR))


class TestRecords:
    def test_field_covariance(self):
        assert is_subtype(RecType.of({"a": INT}), RecType.of({"a": NUM}))

    def test_closedness(self):
        wide = RecType.of({"a": INT, "b": STR})
        narrow = RecType.of({"a": INT})
        # wide values may carry "b", which narrow forbids.
        assert not is_subtype(wide, narrow)

    def test_optional_widening(self):
        req = RecType.of({"a": INT})
        opt = RecType.of({"a": INT}, optional=frozenset({"a"}))
        assert is_subtype(req, opt)
        assert not is_subtype(opt, req)

    def test_required_missing(self):
        partial = RecType.of({"a": INT}, optional=frozenset({"a"}))
        total = RecType.of({"a": INT, "b": STR})
        assert not is_subtype(partial, total)

    def test_optional_extra_field_allowed_on_right(self):
        narrow = RecType.of({"a": INT})
        wide = RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"}))
        assert is_subtype(narrow, wide)


class TestUnions:
    def test_member_below_union(self):
        assert is_subtype(INT, union2(INT, STR))

    def test_union_below_type(self):
        assert is_subtype(union2(INT, FLT), NUM)

    def test_num_splits_into_int_flt(self):
        assert is_subtype(NUM, union2(INT, FLT))
        assert is_equivalent(NUM, union2(INT, FLT))

    def test_union_monotone(self):
        assert is_subtype(union2(INT, NULL), union2(NUM, NULL))
        assert not is_subtype(union2(INT, STR), union2(NUM, NULL))


class TestMatches:
    def test_atoms(self):
        assert matches(None, NULL)
        assert matches(True, BOOL)
        assert matches(1, INT)
        assert not matches(1, FLT)
        assert matches(1.5, FLT)
        assert matches(1, NUM) and matches(1.5, NUM)
        assert matches("s", STR)
        assert not matches(True, NUM)

    def test_bot_any(self):
        assert not matches(1, BOT)
        assert matches({"a": [1]}, ANY)

    def test_arrays(self):
        assert matches([1, 2], ArrType(INT))
        assert not matches([1, "x"], ArrType(INT))
        assert matches([], ArrType(BOT))

    def test_records(self):
        t = RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"}))
        assert matches({"a": 1}, t)
        assert matches({"a": 1, "b": "s"}, t)
        assert not matches({"b": "s"}, t)  # missing required a
        assert not matches({"a": 1, "c": 0}, t)  # closed record
        assert not matches({"a": "s"}, t)  # wrong field type

    def test_union(self):
        t = union2(INT, ArrType(STR))
        assert matches(3, t)
        assert matches(["a"], t)
        assert not matches(3.5, t)
