"""Tests for $ref resolution and the schema registry."""

import pytest

from repro.jsonschema import SchemaCompileError, SchemaRegistry, compile_schema


class TestLocalRefs:
    def test_definitions(self):
        schema = {
            "definitions": {"positive": {"type": "integer", "minimum": 1}},
            "properties": {"count": {"$ref": "#/definitions/positive"}},
        }
        compiled = compile_schema(schema)
        assert compiled.is_valid({"count": 3})
        assert not compiled.is_valid({"count": 0})
        assert not compiled.is_valid({"count": "3"})

    def test_root_ref(self):
        # A schema whose items refer to the whole schema: nested int arrays.
        schema = {
            "type": ["integer", "array"],
            "items": {"$ref": "#"},
        }
        compiled = compile_schema(schema)
        assert compiled.is_valid([1, [2, [3]]])
        assert not compiled.is_valid([1, ["x"]])

    def test_recursive_tree(self):
        schema = {
            "definitions": {
                "node": {
                    "type": "object",
                    "properties": {
                        "value": {"type": "integer"},
                        "children": {"type": "array", "items": {"$ref": "#/definitions/node"}},
                    },
                    "required": ["value"],
                    "additionalProperties": False,
                }
            },
            "$ref": "#/definitions/node",
        }
        compiled = compile_schema(schema)
        tree = {"value": 1, "children": [{"value": 2}, {"value": 3, "children": []}]}
        assert compiled.is_valid(tree)
        assert not compiled.is_valid({"value": "x"})
        assert not compiled.is_valid({"children": []})

    def test_ref_ignores_siblings(self):
        # Draft-07: $ref siblings are ignored.
        schema = {
            "definitions": {"anything": True},
            "properties": {"a": {"$ref": "#/definitions/anything", "type": "string"}},
        }
        compiled = compile_schema(schema)
        assert compiled.is_valid({"a": 42})

    def test_unresolvable_pointer(self):
        compiled = compile_schema({"$ref": "#/definitions/missing"})
        with pytest.raises(SchemaCompileError):
            compiled.validate(1)

    def test_infinite_ref_loop_bounded(self):
        schema = {
            "definitions": {
                "a": {"$ref": "#/definitions/b"},
                "b": {"$ref": "#/definitions/a"},
            },
            "$ref": "#/definitions/a",
        }
        compiled = compile_schema(schema)
        result = compiled.validate(1)
        assert not result.valid
        assert result.failures[0].keyword == "$ref"


class TestCrossDocumentRefs:
    def test_registry_lookup(self):
        registry = SchemaRegistry()
        registry.add(
            "https://example.org/person.json",
            {
                "type": "object",
                "properties": {"name": {"type": "string"}},
                "required": ["name"],
            },
        )
        schema = {"items": {"$ref": "https://example.org/person.json"}}
        compiled = compile_schema(schema, registry)
        assert compiled.is_valid([{"name": "ada"}])
        assert not compiled.is_valid([{}])

    def test_fragment_into_foreign_document(self):
        registry = SchemaRegistry()
        registry.add(
            "https://example.org/defs.json",
            {"definitions": {"port": {"type": "integer", "minimum": 1, "maximum": 65535}}},
        )
        schema = {"$ref": "https://example.org/defs.json#/definitions/port"}
        compiled = compile_schema(schema, registry)
        assert compiled.is_valid(8080)
        assert not compiled.is_valid(0)

    def test_id_registration(self):
        registry = SchemaRegistry()
        registry.add(
            "ignored://alias",
            {"$id": "https://example.org/atom.json", "type": "null"},
        )
        schema = {"$ref": "https://example.org/atom.json"}
        compiled = compile_schema(schema, registry)
        assert compiled.is_valid(None)
        assert not compiled.is_valid(0)

    def test_refs_inside_foreign_document_use_its_root(self):
        registry = SchemaRegistry()
        registry.add(
            "https://example.org/list.json",
            {
                "definitions": {"elem": {"type": "string"}},
                "type": "array",
                "items": {"$ref": "#/definitions/elem"},
            },
        )
        schema = {"properties": {"xs": {"$ref": "https://example.org/list.json"}}}
        compiled = compile_schema(schema, registry)
        assert compiled.is_valid({"xs": ["a", "b"]})
        assert not compiled.is_valid({"xs": [1]})

    def test_missing_document(self):
        compiled = compile_schema({"$ref": "https://nowhere.invalid/x.json"})
        with pytest.raises(SchemaCompileError):
            compiled.validate(1)

    def test_plain_name_fragment_rejected(self):
        compiled = compile_schema({"$ref": "#plainname"})
        with pytest.raises(SchemaCompileError):
            compiled.validate(1)


class TestNestedIdRejection:
    def test_nested_id_rejected(self):
        with pytest.raises(SchemaCompileError):
            compile_schema(
                {"properties": {"a": {"$id": "https://example.org/sub.json"}}}
            )

    def test_id_inside_enum_is_data(self):
        compiled = compile_schema({"enum": [{"$id": "not-a-schema"}]})
        assert compiled.is_valid({"$id": "not-a-schema"})
