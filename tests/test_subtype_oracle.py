"""Metamorphic & differential oracles for the memoized subtype engine.

Two pins, per the PR contract:

- **soundness oracle** (metamorphic): for generated ``(value, type)``
  pairs, ``matches(v, s)`` and ``is_subtype(s, t)`` together imply
  ``matches(v, t)`` — subtyping may only relate types whose value sets
  nest;
- **reference agreement** (differential): the memoized iterative checker
  returns exactly what the seed's unmemoized recursive ``_sub`` returns
  on every generated pair, cold or warm cache, global or private table.

Plus the edge-case regressions called out in the issue: empty-array
``[Bot]`` membership/subtyping, ``Num <: Int + Flt`` under memoization,
and duplicate record field names rejected identically by the fused and
seed record constructors.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.types import (
    ANY,
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    InternTable,
    NULL,
    NUM,
    RecType,
    STR,
    is_equivalent,
    is_subtype,
    matches,
    merge_all,
    type_of,
    union,
    union2,
)
from repro.types.subtype import is_subtype_reference
from repro.types.intern import global_table
from tests.strategies import json_values

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_LEAVES = st.sampled_from([BOT, ANY, NULL, BOOL, INT, FLT, NUM, STR])

# Types drawn from the fragment inference produces (exact value types and
# their merges) plus the algebra's leaves and small unions of both.
json_types = st.one_of(
    _LEAVES,
    json_values(max_leaves=10).map(type_of),
    st.lists(json_values(max_leaves=8), min_size=1, max_size=3).map(
        lambda vs: union(type_of(v) for v in vs)
    ),
    st.lists(json_values(max_leaves=8), min_size=1, max_size=3).map(
        lambda vs: merge_all([type_of(v) for v in vs])
    ),
    st.tuples(_LEAVES, _LEAVES).map(lambda pair: union2(*pair)),
)


# ---------------------------------------------------------------------------
# metamorphic soundness oracle
# ---------------------------------------------------------------------------


class TestSoundnessOracle:
    @given(json_values(max_leaves=12), st.lists(json_values(max_leaves=8), max_size=2), json_types)
    @settings(max_examples=150)
    def test_subtype_preserves_membership(self, value, extras, t):
        # s always contains value by construction (type_of is exact).
        s = union(type_of(v) for v in [value, *extras])
        assert matches(value, s)
        if is_subtype(s, t):
            assert matches(value, t)

    @given(json_values(max_leaves=12), st.lists(json_values(max_leaves=8), min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_merge_produces_supertype_of_each_input(self, value, others):
        # The merged type of a collection accepts every member document —
        # and the memoized checker agrees the exact type sits below it.
        types = [type_of(v) for v in [value, *others]]
        merged = merge_all(types)
        assert matches(value, merged)
        assert is_subtype(type_of(value), merged) == is_subtype_reference(
            type_of(value), merged
        )


# ---------------------------------------------------------------------------
# differential agreement with the unmemoized reference
# ---------------------------------------------------------------------------


class TestReferenceAgreement:
    @given(json_types, json_types)
    @settings(max_examples=200)
    def test_memoized_agrees_with_reference(self, s, t):
        expected = is_subtype_reference(s, t)
        assert is_subtype(s, t) == expected
        # Warm cache must answer identically.
        assert is_subtype(s, t) == expected

    @given(json_types, json_types)
    @settings(max_examples=100)
    def test_equivalence_agrees_with_reference(self, s, t):
        expected = is_subtype_reference(s, t) and is_subtype_reference(t, s)
        assert is_equivalent(s, t) == expected

    @given(json_types, json_types)
    @settings(max_examples=60)
    def test_private_table_agrees_with_global(self, s, t):
        assert is_subtype(s, t, table=InternTable()) == is_subtype(s, t)

    @given(json_types)
    @settings(max_examples=60)
    def test_reflexive(self, t):
        assert is_subtype(t, t)
        assert is_equivalent(t, t)

    def test_memo_survives_table_clear(self):
        table = global_table()
        assert is_subtype(INT, NUM)
        table.clear()
        # New epoch: stale id-keyed verdicts must not leak.
        assert is_subtype(INT, NUM)
        assert not is_subtype(NUM, INT)


# ---------------------------------------------------------------------------
# issue regressions
# ---------------------------------------------------------------------------


class TestEmptyArrayRegressions:
    def test_empty_array_membership(self):
        assert matches([], ArrType(BOT))
        assert not matches([1], ArrType(BOT))
        assert matches([], ArrType(STR))  # vacuously

    def test_empty_array_subtyping(self):
        for t in (ArrType(STR), ArrType(NUM), ArrType(ArrType(BOT)), ArrType(ANY)):
            assert is_subtype(ArrType(BOT), t)
            assert is_subtype(ArrType(BOT), t) == is_subtype_reference(ArrType(BOT), t)
        assert not is_subtype(ArrType(STR), ArrType(BOT))
        assert is_subtype(ArrType(BOT), ArrType(BOT))
        assert is_equivalent(ArrType(BOT), ArrType(BOT))

    def test_empty_array_against_unions(self):
        t = union2(ArrType(INT), STR)
        assert is_subtype(ArrType(BOT), t)
        assert matches([], t)


class TestNumSplitUnderMemoization:
    def test_num_below_int_plus_flt_repeatedly(self):
        split = union2(INT, FLT)
        for _ in range(3):  # cold cache, then warm, then warm again
            assert is_subtype(NUM, split)
            assert not is_subtype(split, INT)
            assert is_equivalent(NUM, split)

    def test_num_split_requires_both_halves(self):
        assert not is_subtype(NUM, union2(INT, STR))
        assert not is_subtype(NUM, union2(FLT, NULL))
        assert is_subtype(NUM, union((INT, FLT, STR)))

    def test_num_split_nested_in_containers(self):
        assert is_subtype(ArrType(NUM), ArrType(union2(INT, FLT)))
        left = RecType.of({"n": NUM})
        right = RecType.of({"n": union2(INT, FLT)})
        assert is_subtype(left, right) and is_subtype(right, left)
        assert is_equivalent(left, right)


class TestDuplicateFieldNames:
    def test_raw_constructor_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RecType((FieldType("a", INT), FieldType("a", STR)))

    def test_fused_constructor_rejects_duplicates(self):
        table = InternTable()
        f1 = table.field_of("a", table.intern(INT))
        f2 = table.field_of("a", table.intern(STR))
        with pytest.raises(ValueError):
            table.rec_of([f1, f2])

    def test_fused_and_seed_raise_the_same_error(self):
        fields = (FieldType("a", INT), FieldType("a", INT, required=False))
        with pytest.raises(ValueError) as seed_err:
            RecType(fields)
        table = InternTable()
        with pytest.raises(ValueError) as fused_err:
            table.rec_of(
                [
                    table.field_of("a", table.intern(INT)),
                    table.field_of("a", table.intern(INT), required=False),
                ]
            )
        assert str(seed_err.value) == str(fused_err.value)
