"""Tests for repro.jsonvalue.pointer (RFC 6901)."""

import pytest

from repro.jsonvalue.pointer import JsonPointer, JsonPointerError

# The worked example from RFC 6901 §5.
RFC_DOC = {
    "foo": ["bar", "baz"],
    "": 0,
    "a/b": 1,
    "c%d": 2,
    "e^f": 3,
    "g|h": 4,
    "i\\j": 5,
    'k"l': 6,
    " ": 7,
    "m~n": 8,
}


class TestRfcExamples:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("", RFC_DOC),
            ("/foo", ["bar", "baz"]),
            ("/foo/0", "bar"),
            ("/", 0),
            ("/a~1b", 1),
            ("/c%d", 2),
            ("/e^f", 3),
            ("/g|h", 4),
            ("/i\\j", 5),
            ('/k"l', 6),
            ("/ ", 7),
            ("/m~0n", 8),
        ],
    )
    def test_resolution(self, text, expected):
        assert JsonPointer.parse(text).resolve(RFC_DOC) == expected


class TestParsing:
    def test_must_start_with_slash(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("foo")

    def test_invalid_escape(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/a~2b")

    def test_trailing_tilde(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/a~")

    def test_str_roundtrip(self):
        for text in ("", "/a", "/a~0b~1c", "/a/0/b"):
            assert str(JsonPointer.parse(text)) == text

    def test_escape_order(self):
        # "~1" must decode to "/" and "~01" to "~1", not "/".
        assert JsonPointer.parse("/~01").tokens == ("~1",)
        assert JsonPointer.parse("/~1").tokens == ("/",)


class TestResolution:
    def test_missing_member(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/nope").resolve({"a": 1})

    def test_index_out_of_range(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/0").resolve([])

    def test_index_into_scalar(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/a/b").resolve({"a": 1})

    def test_leading_zero_index_rejected(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/01").resolve([1, 2])

    def test_nonnumeric_index_rejected(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/x").resolve([1])

    def test_dash_rejected(self):
        with pytest.raises(JsonPointerError):
            JsonPointer.parse("/-").resolve([1])

    def test_exists(self):
        assert JsonPointer.parse("/foo/1").exists(RFC_DOC)
        assert not JsonPointer.parse("/foo/2").exists(RFC_DOC)


class TestConstruction:
    def test_child_parent(self):
        p = JsonPointer().child("a").child(0)
        assert str(p) == "/a/0"
        assert str(p.parent()) == "/a"

    def test_root_has_no_parent(self):
        with pytest.raises(JsonPointerError):
            JsonPointer().parent()

    def test_from_path(self):
        p = JsonPointer.from_path(("a", 1, "b/c"))
        assert str(p) == "/a/1/b~1c"
        assert p.resolve({"a": [0, {"b/c": "hit"}]}) == "hit"

    def test_equality_and_hash(self):
        assert JsonPointer.parse("/a/b") == JsonPointer(("a", "b"))
        assert hash(JsonPointer.parse("/a")) == hash(JsonPointer(("a",)))
        assert JsonPointer.parse("/a") != JsonPointer.parse("/b")
