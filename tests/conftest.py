"""Test-suite configuration: deterministic hypothesis profiles.

CI runs the tier-1 suite with ``HYPOTHESIS_PROFILE=ci`` (see
``.github/workflows/ci.yml``): ``derandomize=True`` fixes the generation
seed so failures reproduce across runs, and the explicit deadline keeps a
pathological shrink from hanging the workflow instead of failing loudly.
Local runs keep hypothesis's default randomized exploration.
"""

from __future__ import annotations

import json
import os
import tempfile

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=1000,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# Pin the scheduler's machine calibration to a known profile for the
# whole session: plans stay deterministic, and no test run measures (or
# writes into) the real ~/.cache/repro/sched.json.  Tests that exercise
# the calibration machinery point REPRO_SCHED_PROFILE elsewhere.
if "REPRO_SCHED_PROFILE" not in os.environ:
    _profile = os.path.join(
        tempfile.mkdtemp(prefix="repro-sched-"), "sched.json"
    )
    with open(_profile, "w", encoding="utf-8") as _handle:
        json.dump(
            {"worker_startup_seconds": 0.08, "ship_bytes_per_second": 150e6},
            _handle,
        )
    os.environ["REPRO_SCHED_PROFILE"] = _profile
