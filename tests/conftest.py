"""Test-suite configuration: deterministic hypothesis profiles.

CI runs the tier-1 suite with ``HYPOTHESIS_PROFILE=ci`` (see
``.github/workflows/ci.yml``): ``derandomize=True`` fixes the generation
seed so failures reproduce across runs, and the explicit deadline keeps a
pathological shrink from hanging the workflow instead of failing loudly.
Local runs keep hypothesis's default randomized exploration.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=1000,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
