"""Tests for ML schema profiling and the distributed inference simulator."""

import pytest

from repro.errors import InferenceError
from repro.inference import (
    candidate_features,
    infer_distributed,
    infer_type,
    partition,
    train_profile,
)
from repro.types import Equivalence

K = Equivalence.KIND
L = Equivalence.LABEL

# A collection whose structure is *explained* by the "type" field value —
# the schema-profiling scenario of Gallinucci et al.
PROFILED = (
    [{"type": "user", "name": f"u{i}", "age": 20 + i} for i in range(5)]
    + [{"type": "post", "title": f"t{i}", "body": "..."} for i in range(5)]
    + [{"type": "like", "user": f"u{i}", "post": f"t{i}"} for i in range(5)]
)


class TestCandidateFeatures:
    def test_low_cardinality_strings_found(self):
        features = candidate_features(PROFILED)
        assert "type" in features

    def test_high_cardinality_excluded(self):
        features = candidate_features(PROFILED, max_cardinality=3)
        assert "name" not in features
        assert "age" not in features


class TestSchemaProfile:
    def test_perfect_discriminator(self):
        profile = train_profile(PROFILED)
        assert profile.accuracy(PROFILED) == 1.0

    def test_rules_mention_discriminator(self):
        profile = train_profile(PROFILED)
        rules = profile.rules()
        assert any("type = 'user'" in r for r in rules)
        assert len(rules) >= 3

    def test_classify_routes_new_documents(self):
        profile = train_profile(PROFILED)
        variant_user = profile.classify({"type": "user", "name": "new", "age": 1})
        variant_post = profile.classify({"type": "post", "title": "new", "body": "b"})
        assert variant_user != variant_post

    def test_no_discriminator_falls_back_to_majority(self):
        docs = [{"v": i} for i in range(3)] + [{"w": i} for i in range(2)]
        profile = train_profile(docs, max_cardinality=0)
        assert profile.accuracy(docs) == 0.6  # majority class

    def test_depth_bound_respected(self):
        profile = train_profile(PROFILED, max_depth=0)
        # Depth 0 → a single leaf → majority accuracy.
        assert profile.accuracy(PROFILED) == pytest.approx(1 / 3)

    def test_empty(self):
        with pytest.raises(InferenceError):
            train_profile([])


DOCS = (
    [{"id": i, "name": f"n{i}"} for i in range(20)]
    + [{"id": i, "tags": ["a"]} for i in range(10)]
    + [{"ref": f"r{i}"} for i in range(10)]
)


class TestPartition:
    def test_round_robin(self):
        buckets = partition([1, 2, 3, 4, 5], 2)
        assert buckets == [[1, 3, 5], [2, 4]]

    def test_more_partitions_than_docs(self):
        buckets = partition([1, 2], 5)
        assert buckets == [[1], [2]]

    def test_invalid(self):
        with pytest.raises(InferenceError):
            partition([1], 0)


class TestDistributedInference:
    @pytest.mark.parametrize("partitions", [1, 2, 4, 8])
    @pytest.mark.parametrize("eq", [K, L])
    def test_equals_sequential(self, partitions, eq):
        """The associativity pay-off: any partitioning gives the same type."""
        run = infer_distributed(DOCS, partitions, eq)
        assert run.result == infer_type(DOCS, eq)

    def test_reduce_rounds_logarithmic(self):
        assert infer_distributed(DOCS, 1).reduce_rounds == 0
        assert infer_distributed(DOCS, 2).reduce_rounds == 1
        assert infer_distributed(DOCS, 4).reduce_rounds == 2
        assert infer_distributed(DOCS, 8).reduce_rounds == 3

    def test_makespan_drops_with_parallelism(self):
        seq = infer_distributed(DOCS, 1)
        par = infer_distributed(DOCS, 8)
        assert par.makespan_units < seq.makespan_units

    def test_total_work_accounted(self):
        run = infer_distributed(DOCS, 4)
        assert run.total_work_units > 0
        assert run.total_shipped_bytes > 0
        assert run.stages[0].name == "map+combine"
        assert run.stages[0].tasks == 4

    def test_empty(self):
        with pytest.raises(InferenceError):
            infer_distributed([], 2)
