"""Translation fuzz tier: generated corpora through both pipelines.

The conformance tier pins the benchmark corpora; this tier turns
hypothesis loose on the same contracts:

- the interned streaming pipeline is byte-identical to the DOM reference
  on arbitrary generated document collections (rows and columns);
- the fused :class:`~repro.translation.avro.RowEncoder` produces exactly
  the bytes of the reference ``encode_rows``, and those bytes decode
  back to the encoded documents;
- feeding documents to a schema inferred from a *subset* (so unseen
  fields appear) fails with :class:`TranslationError`, never a leaked
  ``KeyError``;
- translating documents against an arbitrary unrelated schema — the
  adversarial case — raises nothing outside the :class:`ReproError`
  hierarchy.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, TranslationError
from repro.translation import (
    avro,
    column_store_json,
    resolve_type,
    schema_aware_translate,
    translate_interned,
)
from repro.types import Equivalence, merge_all, type_of
from tests.strategies import json_documents, json_objects


@given(json_documents(), st.sampled_from([Equivalence.KIND, Equivalence.LABEL]))
@settings(max_examples=60, deadline=None)
def test_interned_pipeline_matches_dom_reference(docs, equivalence):
    dom = schema_aware_translate(docs, equivalence=equivalence)
    interned = translate_interned(docs, equivalence=equivalence)
    assert interned.avro_rows == dom.avro_rows
    assert column_store_json(interned.columnar) == column_store_json(
        dom.columnar
    )
    assert interned.fallback_count == dom.fallback_count
    assert interned.typed_leaf_columns == dom.typed_leaf_columns


def _widened_equal(a, b):
    """Structural equality up to int→float widening (never bool↔number)."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(map(_widened_equal, a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _widened_equal(a[k], b[k]) for k in a
        )
    return type(a) is type(b) and a == b


@given(json_documents())
@settings(max_examples=60, deadline=None)
def test_row_encoder_matches_reference_and_round_trips(docs):
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    resolved, fallbacks = resolve_type(inferred)
    assume(not fallbacks)
    schema = avro.from_algebra(resolved)
    encoder = avro.RowEncoder(schema)
    rows = [encoder.encode_row(d) for d in docs]
    assert rows == avro.encode_rows(schema, docs)
    for doc, row in zip(docs, rows):
        # The wire format cannot tell an absent optional field from an
        # explicit null, so decode returns the null-filled document; a
        # leaf the resolver widened to num travels as a double, so
        # integers may come back float-typed (but value-equal).
        expected = avro._fill_missing(schema, doc)
        decoded = avro.decode(schema, row)
        assert _widened_equal(expected, decoded)


@given(json_documents(min_size=2))
@settings(max_examples=60, deadline=None)
def test_unseen_fields_raise_translation_error(docs):
    # Infer from a strict subset, then translate the full collection:
    # any field the subset never exhibited must surface as a
    # TranslationError (naming the path), not a KeyError.
    subset = docs[: len(docs) // 2]
    inferred = merge_all((type_of(d) for d in subset), Equivalence.KIND)
    subset_fields = set()
    for d in subset:
        subset_fields.update(d)
    assume(any(set(d) - subset_fields for d in docs))
    for pipeline in (schema_aware_translate, translate_interned):
        try:
            pipeline(docs, inferred)
        except TranslationError:
            pass


@given(json_documents(max_size=4), json_objects(max_leaves=8))
@settings(max_examples=60, deadline=None)
def test_mismatched_schema_never_leaks_internal_errors(docs, other):
    # The fully adversarial pairing: documents translated against the
    # schema of an unrelated document.  Any failure must stay inside the
    # ReproError hierarchy — no KeyError, no AssertionError.
    inferred = type_of(other)
    for pipeline in (schema_aware_translate, translate_interned):
        try:
            pipeline(docs, inferred)
        except ReproError:
            pass
