"""Differential property tests: the fused encoder vs the seed composition.

The contract of the fused map phase is exact:

    ``type_of_interned(v, table)  is  table.intern(type_of(v))``

for every JSON value — identical by *interned identity*, not merely
structurally equal.  These tests pin that law with hypothesis-generated
values (including deep nesting and repeated shapes), for the DOM encoder,
the global-table convenience, the streaming event path, and the engine's
``add``; plus the recursion-freedom the seed encoder cannot offer, and
the counted map phase against a recursive reference implementation.
"""

from __future__ import annotations

import json
import sys

import pytest
from hypothesis import given, settings

from repro.inference.counting import (
    CAtom,
    CArr,
    CField,
    CRec,
    CUnion,
    counted_type_of,
    merge_counted,
)
from repro.inference.engine import accumulate, accumulate_types
from repro.inference.streaming import type_of_text
from repro.jsonvalue.model import is_integer_value, kind_of, JsonKind
from repro.types import (
    Equivalence,
    InternTable,
    TypeEncoder,
    intern,
    type_of,
    type_of_interned,
)
from tests.strategies import json_documents, json_values


# ---------------------------------------------------------------------------
# the composition law
# ---------------------------------------------------------------------------


class TestFusedDifferential:
    @given(json_values())
    def test_private_table_identity_and_structure(self, value):
        table = InternTable()
        fused = type_of_interned(value, table)
        seed = table.intern(type_of(value))
        assert fused is seed
        assert fused == type_of(value)

    @given(json_values())
    def test_global_table_identity(self, value):
        assert type_of_interned(value) is intern(type_of(value))

    @given(json_values())
    def test_fused_output_is_canonical_fixpoint(self, value):
        table = InternTable()
        fused = type_of_interned(value, table)
        # Canonical and in normal form: re-canonicalizing is the identity.
        assert table.canonical(fused) is fused
        assert fused._normal

    @given(json_values())
    def test_encode_idempotent_identity(self, value):
        table = InternTable()
        encoder = TypeEncoder(table)
        assert encoder.encode(value) is encoder.encode(value)

    @given(json_values())
    def test_streaming_fused_matches_seed_composition(self, value):
        table = InternTable()
        text = json.dumps(value)
        fused = type_of_text(text, table=table)
        assert fused is table.intern(type_of(value))

    @given(json_documents(min_size=1, max_size=6))
    def test_engine_add_matches_type_then_add_type(self, documents):
        table_a = InternTable()
        table_b = InternTable()
        via_fused = accumulate(documents, Equivalence.KIND, table=table_a)
        via_seed = accumulate_types(
            (type_of(d) for d in documents), Equivalence.KIND, table=table_b
        )
        assert via_fused.result() == via_seed.result()


class TestRepeatedShapes:
    def test_scalar_record_shape_cache_shares_nodes(self):
        table = InternTable()
        encoder = TypeEncoder(table)
        a = encoder.encode({"id": 1, "name": "ada", "score": 2.5})
        b = encoder.encode({"id": 7, "name": "bob", "score": 0.5})
        assert a is b

    def test_field_order_does_not_matter(self):
        table = InternTable()
        encoder = TypeEncoder(table)
        assert encoder.encode({"x": 1, "y": "s"}) is encoder.encode({"y": "t", "x": 2})

    def test_nested_repeated_shapes_share_subterms(self):
        table = InternTable()
        encoder = TypeEncoder(table)
        a = encoder.encode({"user": {"id": 1}, "tags": ["a", "b"]})
        b = encoder.encode({"user": {"id": 2}, "tags": ["c"]})
        assert a is b

    def test_cache_survives_only_its_epoch(self):
        table = InternTable()
        encoder = TypeEncoder(table)
        before = encoder.encode({"a": 1})
        table.clear()
        after = encoder.encode({"a": 1})
        # New epoch: a fresh canonical node, still correct vs the seed
        # composition in the *current* epoch.
        assert after is not before
        assert after is table.intern(type_of({"a": 1}))


class TestDeepNesting:
    def test_deep_differential_within_recursion_limit(self):
        value = 0
        for i in range(200):
            value = [value] if i % 2 else {"n": value}
        table = InternTable()
        assert type_of_interned(value, table) is table.intern(type_of(value))

    def test_fused_encoder_is_recursion_free(self):
        value = 1
        for _ in range(sys.getrecursionlimit() * 3):
            value = [value]
        table = InternTable()
        fused = type_of_interned(value, table)  # must not raise
        with pytest.raises(RecursionError):
            type_of(value)
        # The result is its own canonical fixpoint even at this depth.
        assert table.canonical(fused) is fused


class TestEncoderStrictness:
    def test_non_json_values_raise_like_the_seed(self):
        for bad in ((1, 2), {1, 2}, object()):
            with pytest.raises(TypeError):
                type_of(bad)
            with pytest.raises(TypeError):
                type_of_interned(bad, InternTable())

    def test_scalar_subclasses_match_seed_classification(self):
        class MyInt(int):
            pass

        table = InternTable()
        value = {"n": MyInt(3)}
        assert type_of_interned(value, table) is table.intern(type_of(value))


# ---------------------------------------------------------------------------
# counted map phase vs a recursive reference
# ---------------------------------------------------------------------------


def _counted_reference(value, equivalence):
    """The seed's recursive counted_type_of, kept verbatim as an oracle."""
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return CUnion((CAtom("null", 1),))
    if kind is JsonKind.BOOLEAN:
        return CUnion((CAtom("bool", 1),))
    if kind is JsonKind.NUMBER:
        return CUnion((CAtom("int" if is_integer_value(value) else "flt", 1),))
    if kind is JsonKind.STRING:
        return CUnion((CAtom("str", 1),))
    if kind is JsonKind.ARRAY:
        items = merge_counted(
            (_counted_reference(v, equivalence) for v in value),
            equivalence,
            _empty_ok=True,
        )
        return CUnion((CArr(items, 1, len(value)),))
    fields = tuple(
        CField(name, _counted_reference(v, equivalence), 1)
        for name, v in value.items()
    )
    return CUnion((CRec(fields, 1),))


class TestCountedIterative:
    @given(json_values())
    @settings(max_examples=60)
    def test_iterative_counted_matches_recursive_reference(self, value):
        for equivalence in (Equivalence.KIND, Equivalence.LABEL):
            assert counted_type_of(value, equivalence) == _counted_reference(
                value, equivalence
            )

    def test_counted_deep_nesting_is_recursion_free(self):
        value = 1
        for _ in range(sys.getrecursionlimit() * 3):
            value = [value]
        counted = counted_type_of(value)  # must not raise
        assert counted.count == 1
