"""Shared hypothesis strategies for generating JSON values.

Used by property-based tests across the whole suite.  ``json_values``
generates arbitrary RFC 8259 values (finite floats only, text keys);
``json_objects`` restricts to top-level objects, the shape most schema
tools assume; ``json_documents`` generates collections of objects drawn
from a common "schema family" so that inference has structure to find.
"""

from __future__ import annotations

from hypothesis import strategies as st

# Text strategy kept modest: full Unicode but bounded length, so failures
# shrink to readable examples.
json_strings = st.text(max_size=20)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    json_strings,
)


def json_values(max_leaves: int = 25) -> st.SearchStrategy:
    """Arbitrary JSON values with bounded size."""
    return st.recursive(
        json_scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=6),
            st.dictionaries(st.text(max_size=8), children, max_size=6),
        ),
        max_leaves=max_leaves,
    )


def json_objects(max_leaves: int = 25) -> st.SearchStrategy:
    """JSON objects (documents), the input shape for schema inference."""
    return st.dictionaries(st.text(min_size=1, max_size=8), json_values(max_leaves), max_size=6)


def json_documents(min_size: int = 1, max_size: int = 8) -> st.SearchStrategy:
    """Small collections of objects for inference/soundness properties."""
    return st.lists(json_objects(max_leaves=12), min_size=min_size, max_size=max_size)
