"""Tests for the TypeScript-like type system."""

import pytest

from repro.pl import typescript as ts


class TestCheck:
    def test_primitives(self):
        assert ts.check(1, ts.NUMBER)
        assert ts.check(1.5, ts.NUMBER)  # one number type
        assert ts.check("x", ts.STRING)
        assert ts.check(True, ts.BOOLEAN)
        assert ts.check(None, ts.NULL)
        assert not ts.check(True, ts.NUMBER)
        assert not ts.check(1, ts.STRING)

    def test_undefined_matches_no_value(self):
        assert not ts.check(None, ts.UNDEFINED)
        assert not ts.check(0, ts.UNDEFINED)

    def test_any_unknown_never(self):
        assert ts.check({"x": 1}, ts.ANY)
        assert ts.check({"x": 1}, ts.UNKNOWN)
        assert not ts.check(0, ts.NEVER)

    def test_literals(self):
        assert ts.check("circle", ts.TSLiteral("circle"))
        assert not ts.check("square", ts.TSLiteral("circle"))
        assert ts.check(42, ts.TSLiteral(42))
        assert ts.check(42.0, ts.TSLiteral(42))  # JS numbers compare mathematically
        assert ts.check(True, ts.TSLiteral(True))
        assert not ts.check(1, ts.TSLiteral(True))

    def test_arrays(self):
        assert ts.check([1, 2], ts.TSArray(ts.NUMBER))
        assert not ts.check([1, "x"], ts.TSArray(ts.NUMBER))

    def test_tuples(self):
        t = ts.TSTuple((ts.NUMBER, ts.STRING))
        assert ts.check([1, "a"], t)
        assert not ts.check([1], t)
        assert not ts.check(["a", 1], t)

    def test_objects_structural_open(self):
        t = ts.TSObject.of({"a": ts.NUMBER})
        assert ts.check({"a": 1}, t)
        assert ts.check({"a": 1, "extra": "ok"}, t)  # structural: open
        assert not ts.check({"a": "x"}, t)
        assert not ts.check({}, t)

    def test_optional_properties(self):
        t = ts.TSObject.of({"a": ts.NUMBER}, optional=frozenset({"a"}))
        assert ts.check({}, t)
        assert ts.check({"a": 1}, t)
        assert not ts.check({"a": "x"}, t)

    def test_undefined_union_means_optional(self):
        t = ts.TSObject.of({"a": ts.union((ts.NUMBER, ts.UNDEFINED))})
        assert ts.check({}, t)

    def test_union(self):
        t = ts.union((ts.NUMBER, ts.STRING))
        assert ts.check(1, t) and ts.check("a", t)
        assert not ts.check(None, t)

    def test_discriminated_union(self):
        circle = ts.TSObject.of({"kind": ts.TSLiteral("circle"), "r": ts.NUMBER})
        square = ts.TSObject.of({"kind": ts.TSLiteral("square"), "w": ts.NUMBER})
        t = ts.union((circle, square))
        assert ts.check({"kind": "circle", "r": 1}, t)
        assert ts.check({"kind": "square", "w": 2}, t)
        assert not ts.check({"kind": "circle", "w": 2}, t)


class TestUnionConstruction:
    def test_flatten_dedupe(self):
        t = ts.union((ts.NUMBER, ts.union((ts.NUMBER, ts.STRING))))
        assert isinstance(t, ts.TSUnion)
        assert set(t.members) == {ts.NUMBER, ts.STRING}

    def test_literal_absorption(self):
        t = ts.union((ts.TSLiteral("a"), ts.STRING))
        assert t == ts.STRING

    def test_never_identity(self):
        assert ts.union((ts.NEVER, ts.NUMBER)) == ts.NUMBER

    def test_any_absorbs(self):
        assert ts.union((ts.ANY, ts.NUMBER)) == ts.ANY

    def test_singleton(self):
        assert ts.union((ts.STRING,)) == ts.STRING


class TestAssignability:
    def test_reflexive(self):
        for t in (ts.NUMBER, ts.TSArray(ts.STRING), ts.TSObject.of({"a": ts.NULL})):
            assert ts.is_assignable(t, t)

    def test_any_both_ways(self):
        assert ts.is_assignable(ts.ANY, ts.NUMBER)
        assert ts.is_assignable(ts.NUMBER, ts.ANY)

    def test_unknown_top(self):
        assert ts.is_assignable(ts.NUMBER, ts.UNKNOWN)
        assert not ts.is_assignable(ts.UNKNOWN, ts.NUMBER)

    def test_never_bottom(self):
        assert ts.is_assignable(ts.NEVER, ts.NUMBER)
        assert not ts.is_assignable(ts.NUMBER, ts.NEVER)

    def test_literal_widening(self):
        assert ts.is_assignable(ts.TSLiteral("a"), ts.STRING)
        assert not ts.is_assignable(ts.STRING, ts.TSLiteral("a"))

    def test_unions(self):
        ab = ts.union((ts.NUMBER, ts.STRING))
        assert ts.is_assignable(ts.NUMBER, ab)
        assert not ts.is_assignable(ab, ts.NUMBER)
        assert ts.is_assignable(ab, ts.union((ts.NUMBER, ts.STRING, ts.NULL)))

    def test_width_subtyping(self):
        wide = ts.TSObject.of({"a": ts.NUMBER, "b": ts.STRING})
        narrow = ts.TSObject.of({"a": ts.NUMBER})
        assert ts.is_assignable(wide, narrow)  # extra members OK
        assert not ts.is_assignable(narrow, wide)

    def test_optional_target(self):
        narrow = ts.TSObject.of({})
        opt = ts.TSObject.of({"a": ts.NUMBER}, optional=frozenset({"a"}))
        assert ts.is_assignable(narrow, opt)

    def test_optional_source_to_required_target(self):
        opt = ts.TSObject.of({"a": ts.NUMBER}, optional=frozenset({"a"}))
        req = ts.TSObject.of({"a": ts.NUMBER})
        assert not ts.is_assignable(opt, req)

    def test_tuple_to_array(self):
        t = ts.TSTuple((ts.NUMBER, ts.NUMBER))
        assert ts.is_assignable(t, ts.TSArray(ts.NUMBER))
        assert not ts.is_assignable(t, ts.TSArray(ts.STRING))

    def test_array_covariance(self):
        lit = ts.TSArray(ts.TSLiteral(1))
        assert ts.is_assignable(lit, ts.TSArray(ts.NUMBER))


class TestInference:
    def test_scalars_widen(self):
        assert ts.infer_type(3) == ts.NUMBER
        assert ts.infer_type(3.5) == ts.NUMBER
        assert ts.infer_type("x") == ts.STRING
        assert ts.infer_type(None) == ts.NULL

    def test_const_literals(self):
        assert ts.infer_type("x", widen_literals=False) == ts.TSLiteral("x")

    def test_object(self):
        t = ts.infer_type({"a": 1, "b": "x"})
        assert t == ts.TSObject.of({"a": ts.NUMBER, "b": ts.STRING})

    def test_empty_array(self):
        assert ts.infer_type([]) == ts.TSArray(ts.NEVER)

    def test_heterogeneous_array(self):
        t = ts.infer_type([1, "x"])
        assert t == ts.TSArray(ts.union((ts.NUMBER, ts.STRING)))

    def test_samples_merge_objects(self):
        t = ts.infer_from_samples([{"a": 1}, {"a": 2, "b": "x"}])
        expected = ts.TSObject(
            (
                ts.TSProperty("a", ts.NUMBER),
                ts.TSProperty("b", ts.STRING, optional=True),
            )
        )
        assert t == expected

    def test_samples_check_soundness(self):
        docs = [{"a": 1}, {"a": "s", "b": [1, 2]}, {"c": None}]
        t = ts.infer_from_samples(docs)
        for d in docs:
            assert ts.check(d, t)


class TestCodegen:
    def test_primitive_alias(self):
        assert ts.declaration(ts.union((ts.NUMBER, ts.NULL)), "MaybeNum") == (
            "type MaybeNum = null | number;\n"
        )

    def test_interface(self):
        t = ts.TSObject.of(
            {"id": ts.NUMBER, "tags": ts.TSArray(ts.STRING)},
            optional=frozenset({"tags"}),
        )
        source = ts.declaration(t, "Post")
        assert source.startswith("interface Post {")
        assert "id: number;" in source
        assert "tags?: string[];" in source

    def test_union_array_parenthesized(self):
        t = ts.TSArray(ts.union((ts.NUMBER, ts.STRING)))
        assert ts.render_type(t) == "(number | string)[]"

    def test_nested_object_indentation(self):
        t = ts.TSObject.of({"user": ts.TSObject.of({"name": ts.STRING})})
        source = ts.declaration(t, "Wrapper")
        assert "  user: {\n    name: string;\n  };" in source
