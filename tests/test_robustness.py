"""Failure injection: malformed inputs must fail loudly and precisely.

Every subsystem consumes untrusted JSON text or documents somewhere; these
tests check that corruption surfaces as the library's own exceptions (with
positions where applicable), never as silent misbehaviour or host-language
errors like ``RecursionError``/``KeyError``.
"""

import pytest

from repro.errors import JsonError, ReproError
from repro.jsonvalue.parser import parse
from repro.parsing import MisonParser, SpeculativeDecoder
from repro.parsing.structural import StructuralIndex

MALFORMED_TEXTS = [
    "",
    "{",
    "[1, 2",
    '{"a": }',
    '{"a": 1,}',
    '{"a" 1}',
    '{"a": "unterminated',
    "[1] trailing",
    '{"a": 01}',
    '{"a": tru}',
    "\x00",
]


class TestParserRobustness:
    @pytest.mark.parametrize("text", MALFORMED_TEXTS, ids=[repr(t)[:20] for t in MALFORMED_TEXTS])
    def test_parse_raises_json_error(self, text):
        with pytest.raises(JsonError):
            parse(text)

    def test_pathological_depth_is_bounded(self):
        attack = "[" * 100_000
        with pytest.raises(JsonError):
            parse(attack)

    def test_huge_flat_document_ok(self):
        text = "[" + ",".join(str(i) for i in range(50_000)) + "]"
        assert len(parse(text)) == 50_000


class TestMisonRobustness:
    @pytest.mark.parametrize(
        "text",
        ['{"a": 1', "[1, 2", '{"a": "x}', ""],
        ids=["unclosed-obj", "unclosed-arr", "unclosed-str", "empty"],
    )
    def test_projected_parse_raises(self, text):
        parser = MisonParser(["a"])
        with pytest.raises(ReproError):
            parser.parse_projected(text)

    def test_locally_invalid_but_balanced_is_callers_contract(self):
        # Mison (like the paper's system) assumes records are well-formed
        # JSON; balanced-but-invalid text is skipped, not validated.  The
        # guarantee is merely "no crash, no misattributed fields".
        parser = MisonParser(["a"])
        assert parser.parse_projected('{"a" 1}') == {}

    def test_index_rejects_unbalanced(self):
        with pytest.raises(JsonError):
            StructuralIndex.build('{"a": [1}', levels=2)

    def test_index_rejects_unbalanced_quotes(self):
        with pytest.raises(JsonError):
            StructuralIndex.build('{"a": "x}', levels=1)

    def test_stream_error_does_not_corrupt_pattern_cache(self):
        parser = MisonParser(["a"])
        good = '{"a": 1, "b": 2}'
        assert parser.parse_projected(good) == {"a": 1}
        with pytest.raises(ReproError):
            parser.parse_projected('{"a": ')
        # The cache still serves the stable shape correctly afterwards.
        assert parser.parse_projected(good) == {"a": 1}


class TestSpeculativeDecoderRobustness:
    def test_malformed_line_raises_not_matches(self):
        decoder = SpeculativeDecoder()
        decoder.decode('{"a": 1}')  # learn a shape
        with pytest.raises(JsonError):
            decoder.decode('{"a": }')

    def test_template_never_matches_malformed(self):
        # A template for {"a": <num>} must not "match" text with trailing junk.
        decoder = SpeculativeDecoder()
        decoder.decode('{"a": 1}')
        with pytest.raises(JsonError):
            decoder.decode('{"a": 1} extra')

    def test_decoder_survives_error_and_keeps_cache(self):
        decoder = SpeculativeDecoder()
        decoder.decode('{"a": 1}')
        with pytest.raises(JsonError):
            decoder.decode("{")
        assert decoder.decode('{"a": 2}') == {"a": 2}
        assert decoder.stats.fast_path_hits >= 1


class TestCliRobustness:
    def test_malformed_ndjson_reported(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.ndjson"
        bad.write_text('{"a": 1}\n{"broken\n')
        assert main(["infer", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_reported(self, capsys):
        from repro.cli import main

        assert main(["infer", "/does/not/exist.ndjson"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_schema_reported(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "d.ndjson"
        data.write_text('{"a": 1}\n')
        schema = tmp_path / "s.json"
        schema.write_text('{"type": "nonsense"}')
        assert main(["validate", str(data), "--schema", str(schema)]) == 2


class TestValidatorRobustness:
    def test_deep_schema_instance_pair(self):
        from repro.jsonschema import compile_schema

        depth = 200
        schema: dict = {"type": "integer"}
        for _ in range(depth):
            schema = {"type": "object", "properties": {"n": schema}}
        instance: object = 7
        for _ in range(depth):
            instance = {"n": instance}
        assert compile_schema(schema).is_valid(instance)

    def test_enum_with_weird_members(self):
        from repro.jsonschema import is_valid

        schema = {"enum": [{"$ref": "#/x"}, [None], ""]}
        assert is_valid(schema, {"$ref": "#/x"})  # data, not a reference
        assert is_valid(schema, [None])
        assert not is_valid(schema, [])
