"""Compression-differential fuzz: compressed fold ≡ plain-file fold.

The chunked decompression reader's contract is *exact equivalence* with
the uncompressed bytes fold: for any corpus bytes — multibyte UTF-8,
blank and whitespace-only lines (including the non-ASCII blanks the
str-parity path decides), CRLF/lone-CR terminators, huge single lines,
malformed JSON — compressed at any member layout and decoded at any
block size, the fold must produce the interned-identical type, the
identical document count, and the identical error (class and message)
the plain-file fold produces on the same decompressed bytes.

Damage is differential too: truncations and bit flips must yield the
same outcome from the serial route and the jobs route (whose speculative
parallel attempt backs off to the very same serial fold on any failure),
and any stream-level failure is a picklable offset-bearing
:class:`~repro.datasets.compressed.CompressedCorpusError`.
"""

from __future__ import annotations

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import open_corpus
from repro.datasets.compressed import (
    CompressedCorpusError,
    compress_member,
    iter_compressed_lines,
)
from repro.errors import ReproError
from repro.inference import (
    accumulate_ranges,
    fold_compressed,
    infer_compressed_parallel,
    infer_report_compressed,
)
from repro.types import Equivalence
from repro.types.intern import global_table

from tests.strategies import json_values

# Line payloads: serialized JSON (multibyte-heavy), whitespace-only
# lines (ASCII and the non-ASCII blanks str.isspace accepts), and the
# occasional malformed tail.
_json_lines = json_values(max_leaves=8).map(
    lambda v: json.dumps(v, ensure_ascii=False)
)
_blank_lines = st.sampled_from(["", " ", "\t \t", " ", "   "])
_broken_lines = st.sampled_from(['{"unclosed": [1, 2', "nope", '{"a": 01}'])
_huge_lines = st.integers(min_value=1_000, max_value=8_000).map(
    lambda n: '{"blob": "' + "é" * n + '"}'
)
_lines = st.lists(
    st.one_of(
        _json_lines,
        _json_lines,
        _json_lines,
        _blank_lines,
        _huge_lines,
    ),
    min_size=0,
    max_size=20,
)
_terminators = st.sampled_from(["\n", "\r\n", "\r"])


@st.composite
def corpora(draw, allow_broken: bool = False):
    """Raw corpus bytes with mixed terminators, maybe unterminated."""
    lines = draw(_lines)
    if allow_broken and lines and draw(st.booleans()):
        index = draw(st.integers(min_value=0, max_value=len(lines) - 1))
        lines[index] = draw(_broken_lines)
    parts = []
    for line in lines:
        parts.append(line)
        parts.append(draw(_terminators))
    if parts and draw(st.booleans()):
        parts.pop()  # no trailing terminator
    return "".join(parts).encode("utf-8")


@st.composite
def member_layouts(draw):
    """Cut points splitting raw bytes into gzip members (mid-line cuts
    and empty members included)."""
    return draw(
        st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=5)
    )


def _write_layout(path, raw: bytes, cuts) -> None:
    bounds = sorted({min(cut, len(raw)) for cut in cuts})
    payloads, last = [], 0
    for bound in bounds:
        payloads.append(raw[last:bound])
        last = bound
    payloads.append(raw[last:])
    with open(path, "wb") as handle:
        for payload in payloads:
            handle.write(compress_member(payload))


def _outcome(fn):
    """(error fingerprint | canonical type, document count)."""
    table = global_table()
    try:
        accumulator = fn()
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))
    except UnicodeDecodeError as exc:
        return ("unicode", exc.reason, exc.start)
    return (
        "ok",
        table.canonical(accumulator.result()),
        accumulator.document_count,
    )


@given(
    raw=corpora(allow_broken=True),
    cuts=member_layouts(),
    block=st.integers(min_value=16, max_value=4096),
)
@settings(max_examples=120, deadline=None)
def test_compressed_fold_differential(tmp_path_factory, raw, cuts, block):
    tmp = tmp_path_factory.mktemp("fuzz")
    plain = tmp / "corpus.ndjson"
    plain.write_bytes(raw)
    packed = tmp / "corpus.ndjson.gz"
    _write_layout(packed, raw, cuts)

    def plain_fold():
        with open_corpus(plain) as corpus:
            return accumulate_ranges(corpus.buffer(), corpus.spans)

    expected = _outcome(plain_fold)
    actual = _outcome(lambda: fold_compressed(packed, block_bytes=block))
    assert actual == expected
    if expected[0] == "ok":
        assert actual[1] is expected[1]  # interned identity, not equality


@given(raw=corpora(), cuts=member_layouts())
@settings(max_examples=60, deadline=None)
def test_compressed_lines_match_plain_lines(tmp_path_factory, raw, cuts):
    tmp = tmp_path_factory.mktemp("fuzz")
    plain = tmp / "corpus.ndjson"
    plain.write_bytes(raw)
    packed = tmp / "corpus.ndjson.gz"
    _write_layout(packed, raw, cuts)
    with open_corpus(plain) as corpus:
        assert list(iter_compressed_lines(packed)) == list(corpus)


@given(raw=corpora(), cuts=member_layouts())
@settings(max_examples=60, deadline=None)
def test_parallel_route_matches_serial(tmp_path_factory, raw, cuts):
    tmp = tmp_path_factory.mktemp("fuzz")
    packed = tmp / "corpus.ndjson.gz"
    _write_layout(packed, raw, cuts)
    serial = _outcome(lambda: fold_compressed(packed))
    run = infer_compressed_parallel(packed, Equivalence.KIND, processes=2)
    if run is not None:
        assert serial[0] == "ok"
        table = global_table()
        assert table.canonical(run.result) is serial[1]
        assert run.document_count == serial[2]


def _report_outcome(fn):
    try:
        report = fn()
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))
    table = global_table()
    return ("ok", table.canonical(report.inferred), report.document_count)


@given(
    raw=corpora(),
    cuts=member_layouts(),
    damage=st.one_of(
        st.tuples(st.just("truncate"), st.integers(min_value=0, max_value=1 << 16)),
        st.tuples(
            st.just("bitflip"),
            st.integers(min_value=0, max_value=1 << 16),
            st.integers(min_value=0, max_value=7),
        ),
    ),
)
@settings(max_examples=80, deadline=None)
def test_damaged_streams_same_outcome_serial_and_parallel(
    tmp_path_factory, raw, cuts, damage
):
    tmp = tmp_path_factory.mktemp("fuzz")
    packed = tmp / "corpus.ndjson.gz"
    _write_layout(packed, raw, cuts)
    data = bytearray(packed.read_bytes())
    if damage[0] == "truncate":
        data = data[: damage[1] % (len(data) + 1)]
    else:
        data[damage[1] % len(data)] ^= 1 << damage[2]
    packed.write_bytes(bytes(data))

    serial = _report_outcome(
        lambda: infer_report_compressed(packed, jobs=1, format="gzip")
    )
    routed = _report_outcome(
        lambda: infer_report_compressed(packed, jobs=2, format="gzip")
    )
    # The jobs route's speculative parallel attempt must either succeed
    # identically or fall back to the serial fold's exact outcome.
    assert routed == serial
    if serial[0] == "ok":
        assert routed[1] is serial[1]

    # Stream-level failures stay picklable with their offsets intact.
    try:
        fold_compressed(packed, format="gzip")
    except CompressedCorpusError as exc:
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert clone.offset == exc.offset
        assert str(clone) == str(exc)
    except (ReproError, UnicodeDecodeError):
        pass
