"""Tests for projected (Mison-style) parsing and the projection semantics."""

import pytest

from repro.errors import JsonError
from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import dumps
from repro.parsing import MisonParser, ProjectionTree, apply_projection, parse_projected

RECORD = {
    "id": 17,
    "user": {"name": "ada", "verified": True, "geo": {"lat": 1.5, "lon": 2.5}},
    "text": "hello, world: again",
    "entities": [{"tag": "x", "w": 1}, {"tag": "y", "w": 2}],
    "bulk": {"big": [1, 2, 3], "noise": "zzz"},
}
TEXT = dumps(RECORD)


class TestProjectionTree:
    def test_depth(self):
        tree = ProjectionTree.from_paths(["a.b.c", "d"])
        assert tree.max_depth == 3

    def test_terminal_subsumes_deeper(self):
        tree = ProjectionTree.from_paths(["a", "a.b"])
        assert tree.fields["a"].terminal
        assert tree.fields["a"].fields == {}

    def test_empty_projection_rejected(self):
        with pytest.raises(JsonError):
            ProjectionTree.from_paths([])


class TestReferenceProjection:
    def test_single_field(self):
        assert apply_projection(RECORD, ["id"]) == {"id": 17}

    def test_nested(self):
        assert apply_projection(RECORD, ["user.name"]) == {"user": {"name": "ada"}}

    def test_multiple_paths_merge(self):
        out = apply_projection(RECORD, ["user.name", "user.verified"])
        assert out == {"user": {"name": "ada", "verified": True}}

    def test_wildcard(self):
        out = apply_projection(RECORD, ["entities[*].tag"])
        assert out == {"entities": [{"tag": "x"}, {"tag": "y"}]}

    def test_index(self):
        out = apply_projection(RECORD, ["entities[0].tag"])
        assert out == {"entities": [{"tag": "x"}]}

    def test_missing_field_omitted(self):
        assert apply_projection(RECORD, ["nope"]) == {}

    def test_scalar_under_structure(self):
        assert apply_projection(RECORD, ["id.deeper"]) == {}

    def test_root_capture(self):
        assert apply_projection(RECORD, ["$"]) == RECORD


PROJECTIONS = [
    ["id"],
    ["user.name"],
    ["user.geo.lat"],
    ["id", "text"],
    ["user.name", "user.verified", "id"],
    ["entities[*].tag"],
    ["entities[*].tag", "entities[*].w"],
    ["entities[0].w"],
    ["bulk.big"],
    ["nope"],
    ["user.nope.deep"],
    ["id.not_a_record"],
    ["$"],
]


class TestMisonEquivalence:
    """DESIGN.md invariant 4: projected parse == parse then project."""

    @pytest.mark.parametrize("projection", PROJECTIONS, ids=[str(p) for p in PROJECTIONS])
    def test_equivalence(self, projection):
        expected = apply_projection(parse(TEXT), projection)
        assert parse_projected(TEXT, projection) == expected

    def test_tricky_strings(self):
        doc = {"a": 'x","y', "b": {"c": "}{][,:", "d": 1}, "e": "\\"}
        text = dumps(doc)
        for projection in (["a"], ["b.c"], ["b.d"], ["e"]):
            assert parse_projected(text, projection) == apply_projection(doc, projection)

    def test_whitespace_heavy(self):
        text = '  {  "a" : { "b" :  [ 1 , 2 ]  } , "c" : "s"  }  '
        doc = parse(text)
        for projectionin in (["a.b"], ["c"], ["a"]):
            assert parse_projected(text, projectionin) == apply_projection(doc, projectionin)

    def test_empty_containers(self):
        text = '{"a": {}, "b": [], "c": 1}'
        doc = parse(text)
        for projection in (["a.x"], ["b[*].y"], ["c"]):
            assert parse_projected(text, projection) == apply_projection(doc, projection)


class TestSpeculation:
    def test_stable_stream_hits(self):
        records = [dumps({"a": i, "b": str(i), "c": i * 2}) for i in range(50)]
        parser = MisonParser(["c"])
        results = list(parser.parse_stream(records))
        assert results == [{"c": i * 2} for i in range(50)]
        # After the first record establishes the pattern, all probes hit.
        assert parser.stats.speculation_hits >= 48
        assert parser.stats.hit_rate > 0.9

    def test_field_order_churn_misses(self):
        even = dumps({"a": 1, "c": 2})
        odd = dumps({"c": 2, "a": 1})
        parser = MisonParser(["c"])
        results = list(parser.parse_stream([even, odd] * 10))
        assert all(r == {"c": 2} for r in results)
        assert parser.stats.speculation_misses > 0

    def test_members_skipped_counted(self):
        parser = MisonParser(["id"])
        parser.parse_projected(TEXT)
        assert parser.stats.members_skipped == 4  # the other top-level fields

    def test_values_parsed_only_projected(self):
        parser = MisonParser(["id", "text"])
        parser.parse_projected(TEXT)
        assert parser.stats.values_parsed == 2
