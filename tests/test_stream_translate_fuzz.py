"""Stream-translate differential tier: the DOM-free machine is
byte-identical to the DOM path.

The stream engine (:mod:`repro.translation.stream`) emits Parquet column
entries and Avro row bytes straight from each document's byte span — no
DOM, no textify pass.  This tier turns hypothesis loose on the pin:

- on serializer-canonical corpora (lines produced by the repo's
  ``dumps``) the stream and interned engines produce identical Avro rows
  and identical canonical column-store renderings, across equivalences
  and through the gzip transport;
- unicode escapes (``\\uXXXX`` in strings *and* keys) decode to the same
  column values and the same row bytes as the DOM's decoded strings;
- structural shapes the fused scan cannot speculate (duplicate keys,
  exotic spellings) delegate per-document to the DOM path, keeping
  results exact;
- fallback (JSON-text) columns capture the **raw source slice
  verbatim** where the DOM engine re-serialises — identical on canonical
  corpora, source-preserving on non-canonical spellings (the one
  documented divergence);
- malformed documents raise the same error through either engine;
- the counted-parallel byte-range fold (:func:`infer_counted_parallel`
  over an mmap corpus) reproduces the serial counting fold exactly.
"""

from __future__ import annotations

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.ndjson import open_corpus
from repro.inference.distributed import infer_counted_parallel
from repro.inference.engine import CountingAccumulator
from repro.jsonvalue.serializer import dumps
from repro.translation import column_store_json, translate_report_path
from repro.types import Equivalence
from tests.strategies import json_documents

EQUIVALENCES = [Equivalence.KIND, Equivalence.LABEL]


def _write_corpus(tmp_path, lines, *, compress=False, name="corpus"):
    raw = "".join(lines)
    if compress:
        path = tmp_path / f"{name}.ndjson.gz"
        path.write_bytes(gzip.compress(raw.encode("utf-8")))
    else:
        path = tmp_path / f"{name}.ndjson"
        path.write_bytes(raw.encode("utf-8"))
    return str(path)


def _assert_engines_identical(path, equivalence=Equivalence.KIND):
    stream = translate_report_path(path, equivalence, engine="stream")
    dom = translate_report_path(path, equivalence, engine="interned")
    assert stream.translation.avro_rows == dom.translation.avro_rows
    assert column_store_json(stream.translation.columnar) == column_store_json(
        dom.translation.columnar
    )
    assert stream.translation.document_count == dom.translation.document_count
    assert stream.translation.fallback_count == dom.translation.fallback_count
    assert stream.translation.input_bytes == dom.translation.input_bytes
    return stream, dom


@given(
    json_documents(max_size=6),
    st.sampled_from(EQUIVALENCES),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_stream_matches_dom_on_generated_corpora(
    tmp_path_factory, docs, equivalence, compress
):
    tmp_path = tmp_path_factory.mktemp("fuzz")
    lines = [dumps(d) + "\n" for d in docs]
    path = _write_corpus(tmp_path, lines, compress=compress)
    _assert_engines_identical(path, equivalence)


@given(json_documents(min_size=2, max_size=5))
@settings(max_examples=20, deadline=None)
def test_stream_matches_dom_with_blank_interior_lines(tmp_path_factory, docs):
    tmp_path = tmp_path_factory.mktemp("blank")
    lines = [dumps(d) + "\n" for d in docs]
    # Interior blanks in every flavour the fold skips: empty, ASCII
    # whitespace, and a non-ASCII str.isspace line.
    lines[1:1] = ["\n", "   \t \n", "  \n"]
    path = _write_corpus(tmp_path, lines)
    stream, _ = _assert_engines_identical(path)
    assert stream.translation.document_count == len(docs)


def test_unicode_escape_spellings_match(tmp_path):
    # Escaped strings and *escaped keys*: the fused member scan decodes
    # the key slice through the real lexer, so "a" is the field a.
    lines = [
        '{"a":"caf\\u00e9","s":"\\n\\t\\"\\\\"}\n',
        '{"\\u0061":"\\ud83d\\ude00","s":"snow\\u2603"}\n',
        '{"a":"plain","s":""}\n',
    ]
    path = _write_corpus(tmp_path, lines)
    stream, dom = _assert_engines_identical(path)
    assert stream.translation.document_count == 3


@pytest.mark.parametrize(
    "line",
    [
        '{"a":1,"a":2}\n{"a":3}\n',  # duplicate key: DOM last-wins
        '{ "a" : 1 }\n{"a":2}\n',  # non-canonical whitespace
        '{"a":1e2}\n{"a":2.5}\n',  # exponent spelling of a double
        '{"a":-0}\n{"a":1}\n',  # negative zero int spelling
    ],
)
def test_unspeculable_spellings_delegate_identically(tmp_path, line):
    path = _write_corpus(tmp_path, [line])
    _assert_engines_identical(path)


def test_fallback_columns_capture_raw_slice_verbatim(tmp_path):
    # A heterogeneous position resolves to a JSON-text fallback column.
    # On non-canonical spellings the stream engine keeps the *source*
    # bytes where the DOM re-serialises — the documented divergence, and
    # the only one: rows/columns differ exactly by that column's text.
    lines = ['{"a": [1,  2]}\n', '{"a": "s"}\n', '{"a": true}\n']
    path = _write_corpus(tmp_path, lines)
    stream = translate_report_path(path, engine="stream")
    assert stream.translation.fallback_count == 1
    assert stream.translation.columnar.columns["a"].values == [
        "[1,  2]",  # verbatim, inner double space preserved
        '"s"',
        "true",
    ]
    dom = translate_report_path(path, engine="interned")
    assert dom.translation.columnar.columns["a"].values == [
        "[1,2]",  # the DOM re-serialisation
        '"s"',
        "true",
    ]


def test_canonical_fallback_is_byte_identical(tmp_path):
    docs = [{"a": [1, {"z": None}]}, {"a": "s"}, {"a": 2.5}, {"a": True}]
    path = _write_corpus(tmp_path, [dumps(d) + "\n" for d in docs])
    stream, dom = _assert_engines_identical(path)
    assert stream.translation.fallback_count == 1


@pytest.mark.parametrize(
    "bad",
    [
        '{"a":1}\n{"a":\n',  # truncated document
        '{"a":1}\n{"a":1}trailing\n',  # trailing garbage
        '{"a":tru}\n',  # bad literal
        '{"a":01}\n',  # leading zero
    ],
)
def test_malformed_documents_raise_identically(tmp_path, bad):
    path = _write_corpus(tmp_path, [bad])
    errors = {}
    for engine in ("stream", "interned"):
        try:
            translate_report_path(path, engine=engine)
        except Exception as exc:  # noqa: BLE001 - comparing error parity
            errors[engine] = (type(exc), str(exc))
        else:
            errors[engine] = None
    assert errors["stream"] == errors["interned"]
    assert errors["stream"] is not None


def test_invalid_utf8_raises_identically(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_bytes(b'{"a":"\xff\xfe"}\n')
    errors = {}
    for engine in ("stream", "interned"):
        try:
            translate_report_path(str(path), engine=engine)
        except Exception as exc:  # noqa: BLE001 - comparing error parity
            errors[engine] = (type(exc), str(exc))
        else:
            errors[engine] = None
    assert errors["stream"] == errors["interned"]
    assert errors["stream"] is not None


def test_unknown_engine_rejected(tmp_path):
    from repro.errors import TranslationError

    path = _write_corpus(tmp_path, ['{"a":1}\n'])
    with pytest.raises(TranslationError, match="unknown translate engine"):
        translate_report_path(path, engine="dom")


def test_stream_spill_matches_in_memory_artifacts(tmp_path):
    from repro.translation import write_artifacts

    docs = [{"a": i, "b": [f"s{i}"] * (i % 3)} for i in range(25)]
    path = _write_corpus(tmp_path, [dumps(d) + "\n" for d in docs])
    out = tmp_path / "out"
    run = translate_report_path(path, engine="stream", out=str(out))
    # Spilled run: rows live on disk only, sizes recorded exactly.
    assert run.translation.avro_rows is None
    assert run.translation.avro_bytes == run.translation.row_bytes > 0
    for artifact, size in run.artifacts.items():
        import os

        assert os.path.getsize(artifact) == size
    mem = translate_report_path(path, engine="interned")
    out2 = tmp_path / "out2"
    write_artifacts(mem, out2)
    for name in ("rows.avro", "columns.json", "schema.txt"):
        assert (out / name).read_bytes() == (out2 / name).read_bytes()


@given(json_documents(max_size=5), st.sampled_from(EQUIVALENCES))
@settings(max_examples=25, deadline=None)
def test_counted_parallel_corpus_matches_serial(
    tmp_path_factory, docs, equivalence
):
    tmp_path = tmp_path_factory.mktemp("counted")
    lines = [dumps(d) + "\n" for d in docs] + ["  \n"]
    path = _write_corpus(tmp_path, lines)
    corpus = open_corpus(path)
    try:
        serial = CountingAccumulator(equivalence)
        for d in docs:
            serial.add(d)
        run = infer_counted_parallel(
            corpus, partitions=3, equivalence=equivalence, processes=1
        )
        assert run.result == serial.result()
        assert run.document_count == len(docs)
    finally:
        corpus.close()


def test_counted_parallel_corpus_multiprocess(tmp_path):
    docs = [{"a": i % 3, "b": ["x"] * (i % 4)} for i in range(40)]
    path = _write_corpus(tmp_path, [dumps(d) + "\n" for d in docs])
    corpus = open_corpus(path)
    try:
        serial = CountingAccumulator(Equivalence.KIND)
        for d in docs:
            serial.add(d)
        run = infer_counted_parallel(corpus, partitions=4, processes=2)
        assert run.result == serial.result()
        assert run.document_count == len(docs)
        assert run.processes == 2
    finally:
        corpus.close()
