"""Tests for type-algebra witness generation."""

import pytest

from hypothesis import given, settings

from repro.types import (
    ANY,
    ArrType,
    BOT,
    Equivalence,
    FLT,
    INT,
    NULL,
    RecType,
    STR,
    matches,
    merge_all,
    type_of,
    union2,
)
from repro.types.generate import (
    TypeWitnessGenerator,
    UninhabitedTypeError,
    generate_witness,
    generate_witnesses,
)

from tests.strategies import json_documents


class TestBasics:
    @pytest.mark.parametrize(
        "t",
        [
            NULL,
            INT,
            FLT,
            STR,
            ANY,
            ArrType(INT),
            ArrType(BOT),
            RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"})),
            union2(INT, ArrType(STR)),
            union2(NULL, RecType.of({"x": FLT})),
        ],
    )
    def test_witness_matches_type(self, t):
        for seed in range(5):
            assert matches(generate_witness(t, seed=seed), t)

    def test_bot_uninhabited(self):
        with pytest.raises(UninhabitedTypeError):
            generate_witness(BOT)

    def test_empty_array_type(self):
        assert generate_witness(ArrType(BOT)) == []

    def test_deterministic(self):
        t = RecType.of({"a": union2(INT, STR)})
        assert generate_witnesses(t, 10, seed=4) == generate_witnesses(t, 10, seed=4)

    def test_flt_witness_is_strictly_float(self):
        for seed in range(10):
            v = generate_witness(FLT, seed=seed)
            assert isinstance(v, float) and not v.is_integer()

    def test_optional_probability_extremes(self):
        t = RecType.of({"a": INT}, optional=frozenset({"a"}))
        never = TypeWitnessGenerator(seed=1, optional_probability=0.0)
        always = TypeWitnessGenerator(seed=1, optional_probability=1.0)
        assert all(never.generate(t) == {} for _ in range(5))
        assert all("a" in always.generate(t) for _ in range(5))

    def test_union_covers_members(self):
        t = union2(INT, STR)
        kinds = {type(v) for v in generate_witnesses(t, 40, seed=2)}
        assert kinds == {int, str}


class TestRoundTrips:
    @given(json_documents())
    @settings(max_examples=40, deadline=None)
    def test_witnesses_of_inferred_types_validate(self, docs):
        """infer → generate → the witness inhabits the type and its schema."""
        from repro.jsonschema import compile_schema
        from repro.types import type_to_jsonschema

        for eq in (Equivalence.KIND, Equivalence.LABEL):
            inferred = merge_all((type_of(d) for d in docs), eq)
            compiled = compile_schema(type_to_jsonschema(inferred))
            for seed in range(3):
                witness = generate_witness(inferred, seed=seed)
                assert matches(witness, inferred)
                assert compiled.is_valid(witness)

    def test_witness_type_below_source_type(self):
        from repro.types import is_subtype

        docs = [{"a": 1, "b": [1.5]}, {"a": 2}]
        inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
        for seed in range(5):
            witness = generate_witness(inferred, seed=seed)
            assert is_subtype(type_of(witness), inferred)
