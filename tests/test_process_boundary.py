"""Process-boundary regressions: pickling, re-interning, parallel counts.

The multiprocessing modes ship interned terms over pipes.  Three
invariants keep that sound:

- pickling strips intern marks and caches (``Type.__getstate__``), so a
  rehydrated term is a plain structural term that cannot falsely alias
  canonical nodes of any table;
- re-interning a rehydrated term in the parent lands on the *identical*
  canonical node the original had — partial types from workers merge at
  full memo speed;
- the counting algebra's cardinalities survive the parallel reduce
  unchanged (counts add across partitions, document counts included).
"""

from __future__ import annotations

import pickle

from repro.datasets import github_events, ndjson_lines, tweets
from repro.inference import (
    field_presence_ratios,
    infer_counted,
    infer_counted_parallel,
    infer_distributed_parallel,
    infer_distributed_text,
    infer_type,
)
from repro.types import walk
from repro.types.intern import global_table


def test_pickled_interned_terms_strip_marks_and_reintern_to_identity():
    table = global_table()
    t = table.canonical(infer_type(tweets(60, seed=3)))
    assert t._interned is table.epoch()

    clone = pickle.loads(pickle.dumps(t))
    assert clone is not t
    assert clone == t  # structural equality survives
    for node in walk(clone):
        assert node._interned is None  # no mark crosses the boundary
        assert node._hash is None and node._size is None
    # The normal-form mark is structural, so it does survive: the clone
    # re-canonicalizes without a simplify walk.
    assert clone._normal

    assert table.intern(clone) is t
    assert table.canonical(clone) is t


def test_parallel_partials_reintern_to_the_serial_result():
    docs = github_events(150, seed=11)
    reference = infer_type(docs)
    run = infer_distributed_parallel(docs, partitions=4, processes=2)
    assert run.result is reference  # interned identity, not mere equality
    assert run.document_count == len(docs)
    assert run.processes == 2

    lines = ndjson_lines(docs)
    text_run = infer_distributed_text(lines, partitions=4, processes=2)
    assert text_run.result is reference
    assert text_run.document_count == len(docs)

    shm_run = infer_distributed_text(
        lines, partitions=4, processes=2, shared_memory=True
    )
    assert shm_run.result is reference
    assert shm_run.document_count == len(docs)


def test_shared_memory_feed_handles_embedded_newlines():
    """Multi-line JSON texts are legal inputs to the batched feed; the
    shared-memory transport cannot delimit them, so it must fall back to
    pickles and produce the identical result rather than mis-split."""
    lines = ['{"a":\n1}', '{"a": 2}'] * 3
    plain = infer_distributed_text(lines, partitions=2, processes=2)
    shm = infer_distributed_text(
        lines, partitions=2, processes=2, shared_memory=True
    )
    assert shm.result is plain.result
    assert shm.document_count == plain.document_count == len(lines)


def test_single_process_fallback_matches_pool_execution():
    docs = tweets(80, seed=9)
    lines = ndjson_lines(docs)
    reference = infer_type(docs)
    serial = infer_distributed_text(lines, partitions=3, processes=1)
    assert serial.processes == 1
    assert serial.result is reference
    assert serial.document_count == len(docs)


def test_counting_counts_survive_the_parallel_reduce():
    docs = tweets(120, seed=4)
    serial = infer_counted(docs)
    run = infer_counted_parallel(docs, partitions=4, processes=2)
    assert run.result == serial  # every cardinality identical
    assert run.result.count == serial.count == len(docs)
    assert run.document_count == len(docs)
    assert field_presence_ratios(run.result) == field_presence_ratios(serial)

    # The counted union itself crosses the boundary intact.
    clone = pickle.loads(pickle.dumps(serial))
    assert clone == serial and clone.count == serial.count


def test_parser_errors_cross_the_process_boundary_intact():
    """A malformed line in a worker must surface in the parent as the
    same error, not kill the pool's result handler (the default
    exception pickling would replay ``__init__`` with the formatted
    message and crash on the signature mismatch)."""
    import pytest

    from repro.errors import JsonError
    from repro.jsonvalue.lexer import JsonLexError
    from repro.jsonvalue.parser import JsonParseError, parse

    for text in ['{"broken', "[1, 2", "tru"]:
        try:
            parse(text)
        except JsonError as exc:
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            if isinstance(exc, JsonLexError):
                assert clone.offset == exc.offset
            else:
                assert isinstance(exc, JsonParseError)
                assert clone.token.offset == exc.token.offset
        else:  # pragma: no cover - all cases are malformed
            raise AssertionError(f"{text!r} parsed")

    lines = ['{"a": 1}'] * 6 + ['{"broken'] + ['{"a": 2}'] * 5
    with pytest.raises(JsonError) as caught:
        infer_distributed_text(lines, partitions=3, processes=2)
    assert "unterminated string" in str(caught.value)


def test_counting_parallel_single_process_fallback():
    docs = tweets(50, seed=13)
    run = infer_counted_parallel(docs, partitions=2, processes=1)
    assert run.processes == 1
    assert run.result == infer_counted(docs)
    assert run.document_count == len(docs)


def test_mmap_corpus_survives_the_process_boundary(tmp_path):
    """The zero-copy corpus feed — byte ranges into one shared-memory
    segment, workers re-splitting with the corpus line-break grammar —
    must land on the identical canonical node for every transport."""
    from repro.datasets import open_corpus, write_ndjson

    docs = tweets(90, seed=17)
    path = tmp_path / "corpus.ndjson"
    write_ndjson(path, docs)
    reference = infer_type(docs)
    with open_corpus(path) as corpus:
        for shared in (False, True):
            run = infer_distributed_text(
                corpus, partitions=3, processes=2, shared_memory=shared
            )
            assert run.result is reference
            assert run.document_count == len(docs)
            assert run.partitions == 3
        serial = infer_distributed_text(corpus, partitions=3, processes=1)
        assert serial.processes == 1
        assert serial.result is reference


def test_mmap_corpus_crlf_and_blanks_across_processes(tmp_path):
    """CRLF terminators and blank lines must survive the byte-range
    transport exactly as they do the in-memory line feed."""
    from repro.datasets import ndjson_lines, open_corpus

    docs = github_events(40, seed=19)
    lines = ndjson_lines(docs)
    content = "\r\n".join(lines[:20]) + "\r\n\r\n" + "\n".join(lines[20:])
    path = tmp_path / "crlf.ndjson"
    path.write_bytes(content.encode("utf-8"))
    reference = infer_type(docs)
    with open_corpus(path) as corpus:
        run = infer_distributed_text(
            corpus, partitions=4, processes=2, shared_memory=True
        )
    assert run.result is reference
    assert run.document_count == len(docs)


def test_adaptive_feed_is_identical_across_the_boundary(tmp_path):
    """infer_adaptive_text must produce the canonical node whether the
    scheduler lands on the serial fold or a worker pool."""
    from repro.datasets import ndjson_lines, open_corpus, write_ndjson
    from repro.inference import infer_adaptive_text

    docs = tweets(70, seed=29)
    lines = ndjson_lines(docs)
    reference = infer_type(docs)
    adaptive = infer_adaptive_text(lines, jobs=4)
    assert adaptive.result is reference
    assert adaptive.document_count == len(docs)
    assert adaptive.plan is not None and adaptive.plan.mode in ("serial", "parallel")

    path = tmp_path / "corpus.ndjson"
    write_ndjson(path, docs)
    with open_corpus(path) as corpus:
        from_corpus = infer_adaptive_text(corpus, jobs=None, shared_memory=True)
    assert from_corpus.result is reference
    assert from_corpus.document_count == len(docs)
