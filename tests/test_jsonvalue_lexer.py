"""Tests for repro.jsonvalue.lexer."""

import pytest

from repro.jsonvalue.lexer import JsonLexError, TokenType, tokenize


def tokens_of(text):
    return [t for t in tokenize(text) if t.type is not TokenType.EOF]


class TestPunctuation:
    def test_all_punctuation(self):
        types = [t.type for t in tokens_of("{}[]:,")]
        assert types == [
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.COLON,
            TokenType.COMMA,
        ]

    def test_offsets(self):
        toks = tokens_of("  { }")
        assert toks[0].offset == 2
        assert toks[1].offset == 4


class TestKeywords:
    def test_literals(self):
        toks = tokens_of("true false null")
        assert [t.value for t in toks] == [True, False, None]

    def test_bad_keyword(self):
        with pytest.raises(JsonLexError):
            tokens_of("tru")
        with pytest.raises(JsonLexError):
            tokens_of("nul")


class TestNumbers:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("-0", 0),
            ("7", 7),
            ("-12", -12),
            ("123456789012345678901234567890", 123456789012345678901234567890),
        ],
    )
    def test_integers(self, text, value):
        (tok,) = tokens_of(text)
        assert tok.type is TokenType.NUMBER
        assert tok.value == value
        assert isinstance(tok.value, int)

    @pytest.mark.parametrize(
        "text,value",
        [
            ("0.5", 0.5),
            ("-0.25", -0.25),
            ("1e3", 1000.0),
            ("1E+3", 1000.0),
            ("2e-2", 0.02),
            ("1.5e2", 150.0),
        ],
    )
    def test_floats(self, text, value):
        (tok,) = tokens_of(text)
        assert tok.value == value
        assert isinstance(tok.value, float)

    @pytest.mark.parametrize(
        "text", ["-", "01", "007", "-012", "1.", ".5", "1e", "1e+", "+1", "1.e3"]
    )
    def test_malformed_numbers(self, text):
        with pytest.raises(JsonLexError):
            tokens_of(text)


class TestStrings:
    def test_plain(self):
        (tok,) = tokens_of('"hello"')
        assert tok.value == "hello"

    def test_empty(self):
        (tok,) = tokens_of('""')
        assert tok.value == ""

    @pytest.mark.parametrize(
        "text,value",
        [
            (r'"\n"', "\n"),
            (r'"\t"', "\t"),
            (r'"\""', '"'),
            (r'"\\"', "\\"),
            (r'"\/"', "/"),
            (r'"\b\f\r"', "\b\f\r"),
        ],
    )
    def test_short_escapes(self, text, value):
        (tok,) = tokens_of(text)
        assert tok.value == value

    def test_unicode_escape(self):
        (tok,) = tokens_of(r'"é"')
        assert tok.value == "é"

    def test_surrogate_pair(self):
        (tok,) = tokens_of(r'"😀"')
        assert tok.value == "\U0001f600"

    def test_lone_high_surrogate_preserved(self):
        (tok,) = tokens_of(r'"\ud800x"')
        assert tok.value == "\ud800x"

    def test_unterminated(self):
        with pytest.raises(JsonLexError):
            tokens_of('"abc')

    def test_control_character_rejected(self):
        with pytest.raises(JsonLexError):
            tokens_of('"a\nb"')

    def test_bad_escape(self):
        with pytest.raises(JsonLexError):
            tokens_of(r'"\q"')

    def test_truncated_unicode_escape(self):
        with pytest.raises(JsonLexError):
            tokens_of(r'"\u00"')

    def test_invalid_unicode_hex(self):
        with pytest.raises(JsonLexError):
            tokens_of(r'"\uzzzz"')


class TestPositions:
    def test_line_column_tracking(self):
        text = '{\n  "a": 1\n}'
        toks = tokens_of(text)
        string_tok = next(t for t in toks if t.type is TokenType.STRING)
        assert string_tok.line == 2
        assert string_tok.column == 3

    def test_error_position(self):
        try:
            tokens_of('{\n  @')
        except JsonLexError as exc:
            assert exc.line == 2
            assert exc.column == 3
        else:
            pytest.fail("expected JsonLexError")

    def test_string_token_span(self):
        (tok,) = tokens_of('  "ab"  ')
        assert (tok.offset, tok.end_offset) == (2, 6)
