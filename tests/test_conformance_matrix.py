"""Cross-path conformance matrix: every inference route, one interned answer.

The paper's map/reduce design means there are many ways to compute "the
type of this collection" — DOM fold, fused batch, streaming text, event
stream, counting (stripped of counts), the distributed simulator, the
real multiprocessing modes (document pickles, batched text, shared
memory), and the schema repository's per-structure groups.  The monoid
laws say they must all agree; hash-consing sharpens "agree" to *object
identity* once each answer is canonicalized into one intern table.

This suite pins that: every route below, on shared corpora
(twitter/github/nyt generator samples) under both equivalences, yields
the interned-identical type.
"""

from __future__ import annotations

import pytest

from repro.datasets import github_events, ndjson_lines, nyt_articles, tweets
from repro.inference import (
    accumulate,
    accumulate_lines,
    accumulate_types,
    infer_adaptive_text,
    infer_counted,
    infer_counted_streaming,
    infer_distributed,
    infer_distributed_parallel,
    infer_distributed_text,
    infer_type,
    infer_type_streaming,
    type_from_events,
)
from repro.inference.engine import TypeAccumulator
from repro.jsonvalue.events import iter_line_events
from repro.repository import SchemaRepository
from repro.types import Equivalence, type_of, type_of_interned
from repro.types.intern import global_table
from repro.types.merge import merge_all

CORPORA = {
    "twitter": lambda: tweets(120, seed=7),
    "github": lambda: github_events(120, seed=7),
    "nyt": lambda: nyt_articles(120, seed=7),
}

EQUIVALENCES = [Equivalence.KIND, Equivalence.LABEL]


def _route_seed_merge_all(docs, lines, equivalence):
    """The seed oracle: raw per-document types, batch merge."""
    return merge_all([type_of(d) for d in docs], equivalence)


def _route_engine_fold(docs, lines, equivalence):
    """Incremental engine fold over documents (fused DOM encoder)."""
    return accumulate(docs, equivalence).result()


def _route_fused_batch(docs, lines, equivalence):
    """type_of_interned batch: canonical map phase, then the type fold."""
    return accumulate_types(
        (type_of_interned(d) for d in docs), equivalence
    ).result()


def _route_streaming_text(docs, lines, equivalence):
    """Fused lexer→type pipeline over NDJSON lines."""
    return infer_type_streaming(lines, equivalence)


def _route_engine_lines(docs, lines, equivalence):
    """TypeAccumulator.add_text fold (the engine's own text feed)."""
    return accumulate_lines(lines, equivalence).result()


def _route_event_stream(docs, lines, equivalence):
    """SAX events of every line through the event-driven encoder."""
    return accumulate_types(
        type_from_events(iter_line_events(lines)), equivalence
    ).result()


def _route_counting(docs, lines, equivalence):
    """Counting types (DBPL '17), counts stripped."""
    return infer_counted(docs, equivalence).plain()


def _route_counting_text(docs, lines, equivalence):
    """Counting types over raw lines, counts stripped."""
    return infer_counted_streaming(lines, equivalence).plain()


def _route_distributed_serial(docs, lines, equivalence):
    """The deterministic distributed simulator (map/combine/reduce tree)."""
    return infer_distributed(docs, partitions=4, equivalence=equivalence).result


def _route_distributed_parallel(docs, lines, equivalence):
    """Real multiprocessing over document pickles."""
    return infer_distributed_parallel(
        docs, partitions=3, equivalence=equivalence, processes=2
    ).result


def _route_distributed_text(docs, lines, equivalence):
    """Real multiprocessing over the batched raw-line feed."""
    return infer_distributed_text(
        lines, partitions=3, equivalence=equivalence, processes=2
    ).result


def _route_distributed_shm(docs, lines, equivalence):
    """Real multiprocessing over one shared-memory corpus buffer."""
    return infer_distributed_text(
        lines,
        partitions=3,
        equivalence=equivalence,
        processes=2,
        shared_memory=True,
    ).result


def _route_mmap_corpus(docs, lines, equivalence):
    """Zero-copy mmap corpus through the shared-memory byte-range feed."""
    import tempfile
    from pathlib import Path as _Path

    from repro.datasets import open_corpus

    with tempfile.TemporaryDirectory() as tmp:
        path = _Path(tmp) / "corpus.ndjson"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with open_corpus(path) as corpus:
            return infer_distributed_text(
                corpus,
                partitions=3,
                equivalence=equivalence,
                processes=2,
                shared_memory=True,
            ).result


def _route_adaptive(docs, lines, equivalence):
    """The adaptive scheduler (serial fallback or worker pool — the
    result must be identical either way)."""
    return infer_adaptive_text(lines, equivalence, jobs=2).result


def _with_corpus(lines, fn):
    import tempfile
    from pathlib import Path as _Path

    from repro.datasets import open_corpus

    with tempfile.TemporaryDirectory() as tmp:
        path = _Path(tmp) / "corpus.ndjson"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with open_corpus(path) as corpus:
            return fn(corpus)


def _route_bytes_serial(docs, lines, equivalence):
    """Bytes-native serial fold: undecoded mmap ranges through the
    batched line-shape cache + bytes scan (zero per-line str decode)."""
    from repro.inference import accumulate_ranges

    return _with_corpus(
        lines,
        lambda corpus: accumulate_ranges(
            corpus.buffer(), corpus.spans, equivalence
        ).result(),
    )


def _route_bytes_parallel(docs, lines, equivalence):
    """Bytes-native workers reading their own byte ranges from the file
    (no shared memory, no parent-side decode, no per-line pickles)."""
    return _with_corpus(
        lines,
        lambda corpus: infer_distributed_text(
            corpus,
            partitions=3,
            equivalence=equivalence,
            processes=2,
            shared_memory=False,
        ).result,
    )


def _route_subtree_serial(docs, lines, equivalence):
    """Intra-document splitter, in-process: every line over the split
    threshold is carved into top-level subtree ranges, typed chunk by
    chunk, and reassembled — identical to the serial bytes fold."""
    from repro.inference import infer_subtree_text

    return _with_corpus(
        lines,
        lambda corpus: infer_subtree_text(
            corpus, equivalence, processes=1, min_split_bytes=0
        ).result,
    )


def _route_subtree_parallel(docs, lines, equivalence):
    """Intra-document splitter with chunk groups shipped to workers
    (byte-range reads from the file, partials re-interned on merge)."""
    from repro.inference import infer_subtree_text

    return _with_corpus(
        lines,
        lambda corpus: infer_subtree_text(
            corpus, equivalence, processes=2, min_split_bytes=0
        ).result,
    )


def _route_counting_bytes(docs, lines, equivalence):
    """Counting types via the bytes-native counted scan, counts stripped."""
    from repro.inference import counted_type_of_bytes
    from repro.inference.engine import CountingAccumulator

    accumulator = CountingAccumulator(equivalence)
    for line in lines:
        if not line or line.isspace():
            continue
        accumulator.add_counted(counted_type_of_bytes(line.encode("utf-8"), equivalence=equivalence))
    return accumulator.result().plain()


def _route_repository(docs, lines, equivalence):
    """Schema repository: per-structure group types, re-merged.

    With ``k`` larger than the number of distinct structures every
    document lands in a group, and associativity makes the merge of the
    group merges equal the flat merge.
    """
    entry = SchemaRepository().register(
        "conformance", docs, k=10_000, equivalence=equivalence
    )
    accumulator = TypeAccumulator(equivalence)
    for group_type in entry.group_types.values():
        accumulator.add_type(group_type)
    assert accumulator.document_count == len(entry.group_types)
    return accumulator.result()


def _with_compressed(lines, fmt, fn):
    import tempfile
    from pathlib import Path as _Path

    from repro.datasets import compress_corpus

    suffix = "gz" if fmt == "gzip" else "zst"
    with tempfile.TemporaryDirectory() as tmp:
        path = _Path(tmp) / f"corpus.ndjson.{suffix}"
        # Small members so the parallel route has real member candidates
        # and every member boundary sits mid-corpus.
        compress_corpus(path, lines, format=fmt, member_lines=16)
        return fn(path)


def _croute_gzip_serial(lines, equivalence):
    """Chunked gzip decode into the bytes fold (the serial reader)."""
    from repro.inference import fold_compressed

    return _with_compressed(
        lines, "gzip", lambda p: fold_compressed(p, equivalence).result()
    )


def _croute_gzip_parallel(lines, equivalence):
    """Worker-parallel decompress+fold of independent gzip members."""
    from repro.inference import infer_compressed_parallel

    def fold(path):
        run = infer_compressed_parallel(path, equivalence, processes=2)
        assert run is not None, "multi-member corpus must parallelize"
        return run.result

    return _with_compressed(lines, "gzip", fold)


def _croute_gzip_report(lines, equivalence):
    """The magic-byte route: infer_report_path on a compressed file."""
    from repro.inference import infer_report_path

    return _with_compressed(
        lines,
        "gzip",
        lambda p: infer_report_path(str(p), equivalence, jobs=2).inferred,
    )


def _croute_gzip_counting(lines, equivalence):
    """Counting types off the compressed stream, counts stripped."""
    from repro.inference import infer_counted_compressed

    return _with_compressed(
        lines,
        "gzip",
        lambda p: infer_counted_compressed(p, equivalence).plain(),
    )


def _croute_zstd_serial(lines, equivalence):
    """Chunked zstd decode into the bytes fold (optional codec)."""
    from repro.inference import fold_compressed

    return _with_compressed(
        lines, "zstd", lambda p: fold_compressed(p, equivalence).result()
    )


def _zstd_missing() -> bool:
    from repro.datasets import zstd_available

    return not zstd_available()


COMPRESSED_ROUTES = {
    "gzip-serial": _croute_gzip_serial,
    "gzip-parallel": _croute_gzip_parallel,
    "gzip-report": _croute_gzip_report,
    "gzip-counting": _croute_gzip_counting,
    "zstd-serial": _croute_zstd_serial,
}


ROUTES = {
    "seed-merge-all": _route_seed_merge_all,
    "engine-fold": _route_engine_fold,
    "fused-batch": _route_fused_batch,
    "streaming-text": _route_streaming_text,
    "engine-lines": _route_engine_lines,
    "event-stream": _route_event_stream,
    "counting": _route_counting,
    "counting-text": _route_counting_text,
    "distributed-serial": _route_distributed_serial,
    "distributed-parallel": _route_distributed_parallel,
    "distributed-text": _route_distributed_text,
    "distributed-shm": _route_distributed_shm,
    "mmap-corpus": _route_mmap_corpus,
    "adaptive": _route_adaptive,
    "bytes-serial": _route_bytes_serial,
    "bytes-parallel": _route_bytes_parallel,
    "subtree-serial": _route_subtree_serial,
    "subtree-parallel": _route_subtree_parallel,
    "counting-bytes": _route_counting_bytes,
    "repository": _route_repository,
}


def test_matrix_covers_enough_routes():
    assert len(ROUTES) + len(COMPRESSED_ROUTES) >= 23


@pytest.mark.parametrize("equivalence", EQUIVALENCES, ids=lambda e: e.value)
@pytest.mark.parametrize("corpus", sorted(CORPORA), ids=str)
def test_every_route_yields_the_interned_identical_type(corpus, equivalence):
    docs = CORPORA[corpus]()
    lines = ndjson_lines(docs)
    table = global_table()
    reference = table.canonical(infer_type(docs, equivalence))
    for name, route in ROUTES.items():
        result = table.canonical(route(docs, lines, equivalence))
        assert result is reference, (
            f"route {name!r} diverged on {corpus}/{equivalence.value}: "
            f"{result} != {reference}"
        )


@pytest.mark.parametrize(
    "route",
    [
        pytest.param(
            name,
            marks=pytest.mark.skipif(
                name.startswith("zstd") and _zstd_missing(),
                reason="optional zstandard module not installed",
            ),
        )
        for name in sorted(COMPRESSED_ROUTES)
    ],
)
@pytest.mark.parametrize("equivalence", EQUIVALENCES, ids=lambda e: e.value)
@pytest.mark.parametrize("corpus", sorted(CORPORA), ids=str)
def test_compressed_routes_yield_the_interned_identical_type(
    corpus, equivalence, route
):
    """gzip/zstd ingestion is just another route into the same monoid:
    the decompressed fold must intern to the identical type object the
    in-memory oracle produces."""
    docs = CORPORA[corpus]()
    lines = ndjson_lines(docs)
    table = global_table()
    reference = table.canonical(infer_type(docs, equivalence))
    result = table.canonical(COMPRESSED_ROUTES[route](lines, equivalence))
    assert result is reference, (
        f"route {route!r} diverged on {corpus}/{equivalence.value}: "
        f"{result} != {reference}"
    )


@pytest.mark.parametrize("corpus", sorted(CORPORA), ids=str)
def test_counting_text_path_preserves_counts(corpus):
    """The counted text path must agree with the counted DOM path on the
    full counted structure, not just the stripped type."""
    docs = CORPORA[corpus]()
    lines = ndjson_lines(docs)
    for equivalence in EQUIVALENCES:
        assert infer_counted_streaming(lines, equivalence) == infer_counted(
            docs, equivalence
        )
