"""Tests for the Avro-like row codec."""

import pytest

from repro.errors import TranslationError
from repro.translation import avro
from repro.translation.avro import (
    AArray,
    AField,
    AMap,
    APrimitive,
    ARecord,
    AUnion,
    BOOLEAN,
    DOUBLE,
    LONG,
    NULL,
    STRING,
    decode,
    encode,
)


def roundtrip(schema, value):
    data = encode(schema, value)
    assert decode(schema, data) == value
    return data


class TestPrimitives:
    def test_null(self):
        assert roundtrip(NULL, None) == b""

    def test_boolean(self):
        assert roundtrip(BOOLEAN, True) == b"\x01"
        assert roundtrip(BOOLEAN, False) == b"\x00"

    @pytest.mark.parametrize("n", [0, 1, -1, 63, 64, -64, -65, 2**40, -(2**40)])
    def test_long_zigzag(self, n):
        roundtrip(LONG, n)

    def test_zigzag_small_values_one_byte(self):
        assert len(encode(LONG, 0)) == 1
        assert len(encode(LONG, -1)) == 1
        assert len(encode(LONG, 63)) == 1
        assert len(encode(LONG, 64)) == 2

    def test_double(self):
        roundtrip(DOUBLE, 2.5)
        assert len(encode(DOUBLE, 2.5)) == 8

    def test_double_accepts_int(self):
        assert decode(DOUBLE, encode(DOUBLE, 3)) == 3.0

    def test_string_utf8(self):
        roundtrip(STRING, "héllo 😀")

    @pytest.mark.parametrize(
        "schema,bad",
        [
            (NULL, 0),
            (BOOLEAN, 1),
            (LONG, 1.5),
            (LONG, True),
            (DOUBLE, "x"),
            (STRING, 3),
        ],
    )
    def test_type_mismatch(self, schema, bad):
        with pytest.raises(TranslationError):
            encode(schema, bad)

    def test_unknown_primitive(self):
        with pytest.raises(TranslationError):
            APrimitive("int32")


class TestContainers:
    def test_record(self):
        schema = ARecord("T", (AField("a", LONG), AField("b", STRING)))
        roundtrip(schema, {"a": 7, "b": "x"})

    def test_record_field_order_from_schema(self):
        schema = ARecord("T", (AField("a", LONG), AField("b", LONG)))
        assert encode(schema, {"b": 2, "a": 1}) == encode(schema, {"a": 1, "b": 2})

    def test_record_missing_field(self):
        schema = ARecord("T", (AField("a", LONG),))
        with pytest.raises(TranslationError):
            encode(schema, {})

    def test_array(self):
        roundtrip(AArray(LONG), [1, 2, 3])
        roundtrip(AArray(LONG), [])

    def test_nested_arrays(self):
        roundtrip(AArray(AArray(STRING)), [["a"], [], ["b", "c"]])

    def test_map(self):
        roundtrip(AMap(LONG), {"x": 1, "y": 2})
        roundtrip(AMap(LONG), {})

    def test_union(self):
        schema = AUnion((NULL, LONG, STRING))
        roundtrip(schema, None)
        roundtrip(schema, 42)
        roundtrip(schema, "s")

    def test_union_no_branch(self):
        schema = AUnion((NULL, LONG))
        with pytest.raises(TranslationError):
            encode(schema, "string")

    def test_empty_union_invalid(self):
        with pytest.raises(TranslationError):
            AUnion(())

    def test_trailing_bytes_rejected(self):
        data = encode(LONG, 1) + b"\x00"
        with pytest.raises(TranslationError):
            decode(LONG, data)

    def test_truncated_rejected(self):
        schema = ARecord("T", (AField("a", STRING),))
        data = encode(schema, {"a": "hello"})
        with pytest.raises(TranslationError):
            decode(schema, data[:-1])


class TestFromAlgebra:
    def test_record_with_optional(self):
        from repro.types import INT, RecType, STR

        t = RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"}))
        schema = avro.from_algebra(t)
        assert isinstance(schema, ARecord)
        field_b = {f.name: f.type for f in schema.fields}["b"]
        assert field_b == AUnion((NULL, STRING))

    def test_encode_rows_fills_optionals(self):
        from repro.types import Equivalence, merge_all, type_of

        docs = [{"a": 1, "b": "x"}, {"a": 2}]
        t = merge_all((type_of(d) for d in docs), Equivalence.KIND)
        schema = avro.from_algebra(t)
        rows = avro.encode_rows(schema, docs)
        assert decode(schema, rows[1]) == {"a": 2, "b": None}

    def test_union_type(self):
        from repro.types import INT, STR, union2

        schema = avro.from_algebra(union2(INT, STR))
        assert isinstance(schema, AUnion)
        roundtrip(schema, 1)
        roundtrip(schema, "x")

    def test_rows_smaller_than_json(self):
        from repro.jsonvalue.serializer import dumps
        from repro.types import Equivalence, merge_all, type_of

        docs = [{"id": i, "score": float(i), "name": f"user_{i}"} for i in range(50)]
        t = merge_all((type_of(d) for d in docs), Equivalence.KIND)
        schema = avro.from_algebra(t)
        avro_bytes = sum(len(r) for r in avro.encode_rows(schema, docs))
        json_bytes = sum(len(dumps(d).encode()) for d in docs)
        assert avro_bytes < json_bytes
