"""Cross-subsystem integration scenarios: the tutorial's arcs end to end.

Each test walks a full pipeline across several subsystems, checking the
handoffs — the places unit tests cannot see.
"""

import pytest

from repro.datasets import github_events, ndjson_lines, nyt_articles, tweets
from repro.inference import (
    build_skeleton,
    infer_type,
    infer_type_streaming,
    skinfer_infer_schema,
)
from repro.jsonschema import compile_schema, generate_instance
from repro.jsonvalue.model import sort_keys_deep, strict_equal
from repro.jsonvalue.parser import parse
from repro.parsing import MisonParser, SpeculativeDecoder, SpeculativeEncoder, apply_projection
from repro.pl import (
    algebra_to_swift_with_enums,
    algebra_to_typescript,
    jsonschema_to_typescript,
)
from repro.pl import swift as sw
from repro.pl import typescript as ts
from repro.repository import SchemaRepository
from repro.translation import assemble, schema_aware_translate
from repro.types import Equivalence, matches, type_to_jsonschema


class TestInferValidateLoop:
    """Part 4 → Part 2: inference output is a usable schema."""

    @pytest.mark.parametrize("generate", [tweets, github_events, nyt_articles])
    @pytest.mark.parametrize("eq", [Equivalence.KIND, Equivalence.LABEL])
    def test_inferred_schema_validates_collection(self, generate, eq):
        docs = generate(120, seed=31)
        inferred = infer_type(docs, eq)
        compiled = compile_schema(type_to_jsonschema(inferred))
        for doc in docs:
            assert compiled.is_valid(doc)

    def test_inferred_schema_generates_matching_witnesses(self, subtests=None):
        docs = nyt_articles(60, seed=32)
        inferred = infer_type(docs, Equivalence.KIND)
        schema = compile_schema(type_to_jsonschema(inferred))
        witness = generate_instance(schema, seed=3)
        # The generated witness inhabits the inferred type too (both views agree).
        assert matches(witness, inferred)


class TestInferTypesLoop:
    """Part 4 → Part 3: inference output becomes PL declarations."""

    def test_typescript_accepts_collection(self):
        docs = github_events(100, seed=33)
        inferred = infer_type(docs, Equivalence.KIND)
        ts_type = algebra_to_typescript(inferred)
        for doc in docs:
            assert ts.check(doc, ts_type)

    def test_swift_enums_decode_label_variants(self):
        docs = github_events(100, seed=34)
        inferred = infer_type(docs, Equivalence.LABEL)
        swift_type = algebra_to_swift_with_enums(inferred, "Event")
        for doc in docs[:30]:
            sw.decode(swift_type, doc)  # must not raise

    def test_skinfer_schema_to_typescript(self):
        """Part 4 (Skinfer) → Part 2 (JSON Schema) → Part 3 (TypeScript)."""
        docs = nyt_articles(60, seed=35)
        schema = skinfer_infer_schema(docs)
        ts_type = jsonschema_to_typescript(schema)
        for doc in docs:
            assert ts.check(doc, ts_type)


class TestParsingPipelines:
    """§4.2 parsers slot into analytics pipelines without changing results."""

    def test_mison_then_inference(self):
        docs = tweets(150, seed=36, delete_fraction=0.0)
        lines = ndjson_lines(docs)
        projection = ["user.screen_name", "retweet_count", "lang"]
        parser = MisonParser(projection)
        projected = list(parser.parse_stream(lines))
        # Inference over the projected stream: a smaller, still-sound type.
        t_projected = infer_type(projected, Equivalence.KIND)
        for p in projected:
            assert matches(p, t_projected)
        t_full = infer_type(docs, Equivalence.KIND)
        assert t_projected.size() < t_full.size()

    def test_decode_encode_identity_through_speculation(self):
        docs = [{"id": i, "v": f"s{i}", "ok": True} for i in range(200)]
        encoder = SpeculativeEncoder()
        decoder = SpeculativeDecoder()
        for doc in docs:
            line = encoder.encode(doc)
            assert strict_equal(decoder.decode(line), doc)
        assert encoder.stats.hit_rate > 0.9
        assert decoder.stats.hit_rate > 0.9

    def test_streaming_inference_equals_mison_fed_inference(self):
        docs = github_events(80, seed=37)
        lines = ndjson_lines(docs)
        assert infer_type_streaming(lines) == infer_type(docs, Equivalence.KIND)


class TestRepositoryAndTranslation:
    """§2 skeletons + §5 translation share the repository's view."""

    def test_classify_then_translate_per_flavor(self):
        docs = github_events(200, seed=38)
        repo = SchemaRepository()
        entry = repo.register("events", docs, k=4)
        # Translate each structure group with its own (tighter) schema.
        from repro.inference.skeleton import structure_of

        groups: dict = {}
        for doc in docs:
            s = structure_of(doc)
            if s in entry.group_types:
                groups.setdefault(s, []).append(doc)
        assert groups
        for structure, members in groups.items():
            report = schema_aware_translate(members, entry.group_types[structure])
            assert report.document_count == len(members)
            if report.fallback_count == 0:
                rebuilt = assemble(report.columnar)
                for original, back in zip(members, rebuilt):
                    assert strict_equal(sort_keys_deep(original), sort_keys_deep(back))

    def test_repository_paths_drive_projection(self):
        """Skeleton paths become a Mison projection for the same data."""
        docs = nyt_articles(80, seed=39)
        skeleton = build_skeleton(docs, k=1)
        # Project onto the top structure's first few scalar paths.
        paths = sorted(skeleton.structures[0].paths)[:3]
        projection = [".".join(p).replace(".[*]", "[*]") for p in paths]
        parser = MisonParser(projection)
        for line in ndjson_lines(docs)[:40]:
            assert parser.parse_projected(line) == apply_projection(
                parse(line), projection
            )
