"""Translation conformance tier: the interned pipeline is byte-identical
to the DOM reference.

Two independent implementations produce the translation artifacts — the
materialised reference (:func:`schema_aware_translate`) and the
interned-memoized streaming path (:func:`translate_interned`, plus the
single-pass file flow :func:`translate_report_path`).  This tier pins
them to each other: identical Avro row bytes and identical canonical
column-store renderings on the three benchmark corpora under both
equivalences, and through every corpus transport (in-memory documents,
plain NDJSON file, gzip file).

It also carries the regression contracts of the resolver rework:
explicit resolutions pickle, fallback relabeling is strict (the root
path included), nullable numeric and nullable record unions stay typed,
and unknown document fields raise :class:`TranslationError` naming the
offending path instead of leaking ``KeyError``.
"""

from __future__ import annotations

import gzip
import pickle

import pytest

from repro.datasets import github_events, nyt_articles, tweets
from repro.errors import TranslationError
from repro.jsonvalue.serializer import dumps
from repro.translation import (
    column_store_json,
    resolve_interned,
    resolve_type,
    schema_aware_translate,
    translate_interned,
    translate_report_path,
    write_artifacts,
)
from repro.types import Equivalence, merge_all, type_of

CORPORA = {
    "twitter": lambda: tweets(120),
    "github": lambda: github_events(120),
    "nyt": lambda: nyt_articles(120),
}


def _assert_identical(left, right):
    assert left.document_count == right.document_count
    assert left.fallback_count == right.fallback_count
    assert left.avro_rows == right.avro_rows
    assert column_store_json(left.columnar) == column_store_json(
        right.columnar
    )


@pytest.mark.parametrize("corpus", sorted(CORPORA))
@pytest.mark.parametrize("equivalence", [Equivalence.KIND, Equivalence.LABEL])
def test_interned_matches_dom_on_benchmark_corpora(corpus, equivalence):
    docs = CORPORA[corpus]()
    dom = schema_aware_translate(docs, equivalence=equivalence)
    interned = translate_interned(docs, equivalence=equivalence)
    _assert_identical(dom, interned)


@pytest.mark.parametrize("corpus", sorted(CORPORA))
@pytest.mark.parametrize("equivalence", [Equivalence.KIND, Equivalence.LABEL])
def test_stream_engine_matches_dom_on_benchmark_corpora(
    tmp_path, corpus, equivalence
):
    docs = CORPORA[corpus]()
    path = tmp_path / f"{corpus}.ndjson"
    path.write_text(
        "".join(dumps(d) + "\n" for d in docs), encoding="utf-8"
    )
    stream = translate_report_path(str(path), equivalence, engine="stream")
    dom = schema_aware_translate(docs, equivalence=equivalence)
    _assert_identical(dom, stream.translation)


@pytest.mark.parametrize("engine", ["stream", "interned"])
@pytest.mark.parametrize("compress", [False, True])
def test_translate_report_path_matches_in_memory(tmp_path, compress, engine):
    docs = tweets(80)
    raw = "".join(dumps(d) + "\n" for d in docs)
    # A blank interior line: skipped by inference and translation alike.
    raw = raw.replace("\n", "\n\n", 1)
    if compress:
        path = tmp_path / "tweets.ndjson.gz"
        path.write_bytes(gzip.compress(raw.encode("utf-8")))
    else:
        path = tmp_path / "tweets.ndjson"
        path.write_text(raw, encoding="utf-8")
    run = translate_report_path(str(path), engine=engine)
    reference = translate_interned(docs)
    assert run.translation.avro_rows == reference.avro_rows
    assert column_store_json(run.translation.columnar) == column_store_json(
        reference.columnar
    )
    assert run.translation.document_count == len(docs)
    # The file flow measures raw corpus bytes (blank line excluded).
    assert run.translation.input_bytes == sum(
        len(dumps(d).encode("utf-8")) for d in docs
    )


def test_write_artifacts_round_trip(tmp_path):
    run = _run_on_disk(tmp_path, nyt_articles(20))
    out = tmp_path / "out"
    written = write_artifacts(run, out)
    assert set(written) == {
        str(out / "rows.avro"),
        str(out / "columns.json"),
        str(out / "schema.txt"),
    }
    # The framed row file: length-prefixed rows concatenate back to the
    # report's rows.
    from repro.translation.avro import _Reader

    framed = (out / "rows.avro").read_bytes()
    reader = _Reader(framed)
    rows = []
    while reader.pos < len(framed):
        length = reader.read_long()
        rows.append(framed[reader.pos : reader.pos + length])
        reader.pos += length
    assert rows == run.translation.avro_rows
    assert (out / "columns.json").read_text(
        encoding="utf-8"
    ) == column_store_json(run.translation.columnar) + "\n"
    assert "resolved:" in (out / "schema.txt").read_text(encoding="utf-8")


def _run_on_disk(tmp_path, docs):
    path = tmp_path / "corpus.ndjson"
    path.write_text(
        "".join(dumps(d) + "\n" for d in docs), encoding="utf-8"
    )
    return translate_report_path(str(path))


# ---------------------------------------------------------------------------
# resolution contracts
# ---------------------------------------------------------------------------


def test_resolution_survives_pickling():
    inferred = merge_all(
        (type_of(d) for d in [{"a": 1, "b": [1, "x"]}, {"a": None}]),
        Equivalence.KIND,
    )
    resolution = resolve_interned(inferred)
    thawed = pickle.loads(pickle.dumps(resolution))
    assert thawed.fallbacks == resolution.fallbacks
    doc = {"a": 1, "b": [1, "x"]}
    assert thawed.textify(doc) == resolution.textify(doc)


def test_root_fallback_relabels_the_root_column():
    # Heterogeneous top-level values degrade the whole document to JSON
    # text; the escape-hatch column lives at the root path "" and the
    # strict relabel must find it there (the seed skipped it silently).
    report = schema_aware_translate([1, "x"])
    assert report.fallback_count == 1
    assert list(report.columnar.columns) == [""]
    assert report.columnar.columns[""].kind == "json"
    assert report.typed_fraction == 0.0


def test_nullable_numeric_union_stays_typed():
    docs = [{"v": 1.5}, {"v": 2}, {"v": None}]
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    resolved, fallbacks = resolve_type(inferred)
    assert fallbacks == []
    report = translate_interned(docs)
    assert report.fallback_count == 0
    assert report.columnar.columns["v"].kind != "json"
    assert report.columnar.columns["v"].values == [1.5, 2]


def test_nullable_record_union_keeps_leaves_typed():
    docs = [
        {"geo": {"lat": 1.5, "lon": 2.5}},
        {"geo": None},
        {"geo": {"lat": 3.0, "lon": 4.0}},
    ]
    report = translate_interned(docs)
    assert report.fallback_count == 0
    assert sorted(report.columnar.columns) == ["geo.lat", "geo.lon"]
    assert report.columnar.columns["geo.lat"].values == [1.5, 3.0]


def test_empty_field_name_fallback_path_matches_its_column():
    # A field literally named "" shreds to the column "parent." — the
    # resolver's relative-suffix join used "" as the node-itself sentinel
    # and collapsed the empty segment, so the strict relabel missed the
    # column (hypothesis counterexample: [{}, {"0": [{"": False},
    # {"": 0}]}]).  Suffixes are segment tuples now; the paths agree.
    docs = [{}, {"0": [{"": False}, {"": 0}]}]
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    _, fallbacks = resolve_type(inferred)
    assert fallbacks == ["0.[]."]
    dom = schema_aware_translate(docs)
    interned = translate_interned(docs)
    _assert_identical(dom, interned)
    assert dom.columnar.columns["0.[]."].kind == "json"


def test_tweets_coordinates_no_longer_fall_back():
    # The optional-object shape null | {…} used to degrade to JSON text;
    # on the tweets corpus that cost the coordinates subtrees.  The
    # resolver now types them, so the corpus translates fallback-free.
    docs = tweets(300)
    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    _, fallbacks = resolve_type(inferred)
    assert fallbacks == []


def test_unknown_field_raises_translation_error_with_path():
    inferred = merge_all(
        (type_of(d) for d in [{"a": {"x": 1}}]), Equivalence.KIND
    )
    with pytest.raises(TranslationError, match=r"a\.y"):
        translate_interned([{"a": {"x": 1, "y": 2}}], inferred)
    with pytest.raises(TranslationError, match=r"a\.y"):
        schema_aware_translate([{"a": {"x": 1, "y": 2}}], inferred)
