"""Tests for Swift enums with associated values (the union workaround)."""

import pytest

from repro.pl import SwiftEnum, SwiftEnumCase, algebra_to_swift_with_enums, render_enum
from repro.pl import swift as sw
from repro.pl.swift import SwiftDecodeError
from repro.pl.swift_enum import can_decode_enum, decode_enum
from repro.types import (
    ArrType,
    Equivalence,
    INT,
    FLT,
    NULL,
    RecType,
    STR,
    merge_all,
    type_of,
    union,
    union2,
)

NUM_OR_TEXT = SwiftEnum(
    "Value",
    (
        SwiftEnumCase("number", sw.DOUBLE),
        SwiftEnumCase("text", sw.STRING),
    ),
)


class TestEnumDecoding:
    def test_first_matching_case_wins(self):
        assert decode_enum(NUM_OR_TEXT, 3.5) == {"$case": "number", "value": 3.5}
        assert decode_enum(NUM_OR_TEXT, "x") == {"$case": "text", "value": "x"}

    def test_case_order_matters(self):
        # Double also decodes ints, so an int-first enum tags differently.
        reordered = SwiftEnum(
            "Value",
            (SwiftEnumCase("int", sw.INT), SwiftEnumCase("number", sw.DOUBLE)),
        )
        assert decode_enum(reordered, 3)["$case"] == "int"
        assert decode_enum(NUM_OR_TEXT, 3)["$case"] == "number"

    def test_no_case_matches(self):
        with pytest.raises(SwiftDecodeError):
            decode_enum(NUM_OR_TEXT, [1, 2])
        assert not can_decode_enum(NUM_OR_TEXT, None)

    def test_struct_payloads(self):
        shapes = SwiftEnum(
            "Shape",
            (
                SwiftEnumCase("circle", sw.SwiftStruct.of("Circle", {"r": sw.DOUBLE})),
                SwiftEnumCase("rect", sw.SwiftStruct.of("Rect", {"w": sw.DOUBLE, "h": sw.DOUBLE})),
            ),
        )
        decoded = decode_enum(shapes, {"r": 1.0})
        assert decoded == {"$case": "circle", "value": {"r": 1.0}}
        decoded = decode_enum(shapes, {"w": 1, "h": 2})
        assert decoded["$case"] == "rect"

    def test_enum_inside_struct_via_decode(self):
        holder = sw.SwiftStruct.of("Holder", {"v": NUM_OR_TEXT})
        out = sw.decode(holder, {"v": "hello"})
        assert out == {"v": {"$case": "text", "value": "hello"}}

    def test_enum_inside_array(self):
        t = sw.SwiftArray(NUM_OR_TEXT)
        out = sw.decode(t, [1, "two"])
        assert [o["$case"] for o in out] == ["number", "text"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SwiftEnum("E", ())
        with pytest.raises(ValueError):
            SwiftEnum("E", (SwiftEnumCase("a", sw.INT), SwiftEnumCase("a", sw.STRING)))


class TestAlgebraBridge:
    def test_union_becomes_enum(self):
        t = union2(INT, STR)
        result = algebra_to_swift_with_enums(t, "field")
        assert isinstance(result, SwiftEnum)
        assert {c.name for c in result.cases} == {"integer", "text"}

    def test_nullable_still_optional(self):
        assert algebra_to_swift_with_enums(union2(STR, NULL)) == sw.SwiftOptional(sw.STRING)

    def test_int_flt_still_double(self):
        assert algebra_to_swift_with_enums(union2(INT, FLT)) == sw.DOUBLE

    def test_record_variants_get_numbered_cases(self):
        t = union(
            (RecType.of({"a": INT}), RecType.of({"b": STR}), STR)
        )
        result = algebra_to_swift_with_enums(t, "v")
        names = [c.name for c in result.cases]
        assert "record" in names and "record2" in names and "text" in names

    def test_label_inference_decodes_through_enums(self):
        """The full pipeline: L-inferred union type → enum → decode all docs."""
        docs = [
            {"kind": "a", "x": 1},
            {"kind": "b", "y": "s"},
            {"kind": "a", "x": 2},
        ]
        inferred = merge_all((type_of(d) for d in docs), Equivalence.LABEL)
        swift_type = algebra_to_swift_with_enums(inferred, "Event")
        assert isinstance(swift_type, SwiftEnum)
        for doc in docs:
            tagged = sw.decode(swift_type, doc)
            assert tagged["$case"] in ("record", "record2")

    def test_plain_bridge_still_fails(self):
        from repro.pl import algebra_to_swift
        from repro.pl.swift import SwiftInferenceError

        with pytest.raises(SwiftInferenceError):
            algebra_to_swift(union2(INT, STR))


class TestCodegen:
    def test_render_enum(self):
        src = render_enum(NUM_OR_TEXT)
        assert "enum Value: Codable {" in src
        assert "case number(Double)" in src
        assert "case text(String)" in src
        assert "init(from decoder: Decoder) throws {" in src
        assert "try? container.decode(Double.self)" in src
        assert "func encode(to encoder: Encoder) throws {" in src

    def test_enum_renders_by_name_in_types(self):
        assert sw.render_type(sw.SwiftArray(NUM_OR_TEXT)) == "[Value]"

    def test_struct_with_enum_field_renders(self):
        holder = sw.SwiftStruct.of("Holder", {"v": NUM_OR_TEXT})
        src = sw.render_struct(holder)
        assert "let v: Value" in src
