"""Tests for the Joi-style schema language."""

import pytest

import repro.joi as joi
from repro.joi import JoiSchemaError


class TestPrimitives:
    def test_any(self):
        schema = joi.any_()
        for v in (None, 1, "x", [], {}):
            assert schema.is_valid(v)

    def test_string(self):
        assert joi.string().is_valid("hello")
        assert not joi.string().is_valid(42)

    def test_number(self):
        assert joi.number().is_valid(3)
        assert joi.number().is_valid(3.5)
        assert not joi.number().is_valid("3")
        assert not joi.number().is_valid(True)

    def test_boolean(self):
        assert joi.boolean().is_valid(False)
        assert not joi.boolean().is_valid(0)

    def test_null(self):
        assert joi.null().is_valid(None)
        assert not joi.null().is_valid(0)


class TestStringConstraints:
    def test_min_max(self):
        schema = joi.string().min(2).max(4)
        assert schema.is_valid("ab") and schema.is_valid("abcd")
        assert not schema.is_valid("a") and not schema.is_valid("abcde")

    def test_length(self):
        assert joi.string().length(3).is_valid("abc")
        assert not joi.string().length(3).is_valid("ab")

    def test_pattern(self):
        schema = joi.string().pattern(r"^\d+$")
        assert schema.is_valid("123")
        assert not schema.is_valid("12a")

    def test_bad_pattern_raises(self):
        with pytest.raises(JoiSchemaError):
            joi.string().pattern("(")

    def test_alphanum(self):
        assert joi.string().alphanum().is_valid("abc123")
        assert not joi.string().alphanum().is_valid("a b")

    def test_email(self):
        assert joi.string().email().is_valid("a@example.org")
        assert not joi.string().email().is_valid("nope")

    def test_lowercase(self):
        assert joi.string().lowercase().is_valid("abc")
        assert not joi.string().lowercase().is_valid("Abc")


class TestNumberConstraints:
    def test_bounds(self):
        schema = joi.number().min(0).max(10)
        assert schema.is_valid(0) and schema.is_valid(10)
        assert not schema.is_valid(-1) and not schema.is_valid(11)

    def test_strict_bounds(self):
        schema = joi.number().greater(0).less(1)
        assert schema.is_valid(0.5)
        assert not schema.is_valid(0) and not schema.is_valid(1)

    def test_integer(self):
        assert joi.number().integer().is_valid(5)
        assert not joi.number().integer().is_valid(5.5)

    def test_positive_negative(self):
        assert joi.number().positive().is_valid(1)
        assert not joi.number().positive().is_valid(0)
        assert joi.number().negative().is_valid(-1)

    def test_multiple(self):
        assert joi.number().multiple(3).is_valid(9)
        assert not joi.number().multiple(3).is_valid(10)

    def test_birth_year_example(self):
        schema = joi.number().integer().min(1900).max(2013)
        assert schema.is_valid(1985)
        assert not schema.is_valid(1850)
        assert not schema.is_valid(1985.5)


class TestValueSets:
    def test_valid_whitelist(self):
        schema = joi.string().valid("a", "b")
        assert schema.is_valid("a")
        assert not schema.is_valid("c")

    def test_allow_extends_type(self):
        schema = joi.string().allow(None)
        assert schema.is_valid("x")
        assert schema.is_valid(None)
        assert not schema.is_valid(3)

    def test_invalid_blacklist(self):
        schema = joi.string().invalid("root")
        assert schema.is_valid("user")
        assert not schema.is_valid("root")

    def test_strict_value_equality(self):
        assert not joi.any_().valid(1).is_valid(True)
        assert not joi.any_().valid(1).is_valid(1.0)


class TestArrays:
    def test_items_union(self):
        schema = joi.array().items(joi.string(), joi.number())
        assert schema.is_valid(["a", 1, 2.5])
        assert not schema.is_valid(["a", None])

    def test_counts(self):
        schema = joi.array().min(1).max(2)
        assert not schema.is_valid([])
        assert schema.is_valid([1])
        assert not schema.is_valid([1, 2, 3])

    def test_unique(self):
        assert joi.array().unique().is_valid([1, 2, "1"])
        assert not joi.array().unique().is_valid([1, 2, 1])

    def test_item_failure_path(self):
        result = joi.array().items(joi.number()).validate([1, "x"])
        assert not result.valid
        assert result.failures[0].path == (1,)


class TestObjects:
    def test_keys(self):
        schema = joi.object().keys({"a": joi.number(), "b": joi.string()})
        assert schema.is_valid({"a": 1, "b": "x"})
        assert schema.is_valid({"a": 1})  # optional by default
        assert not schema.is_valid({"a": "not a number"})

    def test_unknown_rejected_by_default(self):
        schema = joi.object().keys({"a": joi.number()})
        assert not schema.is_valid({"a": 1, "z": 2})
        assert schema.unknown().is_valid({"a": 1, "z": 2})

    def test_required(self):
        schema = joi.object().keys({"a": joi.number().required()})
        assert not schema.is_valid({})
        assert schema.is_valid({"a": 0})

    def test_forbidden(self):
        schema = joi.object().keys({"legacy": joi.any_().forbidden()})
        assert schema.is_valid({})
        assert not schema.is_valid({"legacy": 1})

    def test_pattern_keys(self):
        schema = joi.object().pattern(r"^meta_", joi.string())
        assert schema.is_valid({"meta_a": "x"})
        assert not schema.is_valid({"meta_a": 1})
        assert not schema.is_valid({"other": "x"})

    def test_min_max_keys(self):
        schema = joi.object().unknown().min(1).max(2)
        assert not schema.is_valid({})
        assert schema.is_valid({"a": 1})
        assert not schema.is_valid({"a": 1, "b": 2, "c": 3})

    def test_nested_paths(self):
        schema = joi.object().keys(
            {"user": joi.object().keys({"name": joi.string().required()})}
        )
        result = schema.validate({"user": {}})
        assert result.failures[0].path == ("user", "name")


class TestCoOccurrence:
    def test_and(self):
        schema = joi.object().unknown().and_("a", "b")
        assert schema.is_valid({})
        assert schema.is_valid({"a": 1, "b": 2})
        assert not schema.is_valid({"a": 1})

    def test_or(self):
        schema = joi.object().unknown().or_("a", "b")
        assert schema.is_valid({"a": 1})
        assert schema.is_valid({"b": 1})
        assert not schema.is_valid({"c": 1})

    def test_xor(self):
        schema = joi.object().unknown().xor("password", "token")
        assert schema.is_valid({"password": "x"})
        assert schema.is_valid({"token": "y"})
        assert not schema.is_valid({})
        assert not schema.is_valid({"password": "x", "token": "y"})

    def test_nand(self):
        schema = joi.object().unknown().nand("a", "b")
        assert schema.is_valid({"a": 1})
        assert schema.is_valid({})
        assert not schema.is_valid({"a": 1, "b": 2})

    def test_with(self):
        schema = joi.object().unknown().with_("username", "birth_year")
        assert schema.is_valid({})
        assert schema.is_valid({"birth_year": 1990})
        assert schema.is_valid({"username": "ada", "birth_year": 1990})
        assert not schema.is_valid({"username": "ada"})

    def test_without(self):
        schema = joi.object().unknown().without("guest", "password")
        assert schema.is_valid({"guest": True})
        assert schema.is_valid({"password": "x"})
        assert not schema.is_valid({"guest": True, "password": "x"})


class TestAlternativesAndWhen:
    def test_alternatives(self):
        schema = joi.alternatives(joi.string(), joi.number())
        assert schema.is_valid("x") and schema.is_valid(1)
        assert not schema.is_valid(None)

    def test_try_extends(self):
        schema = joi.alternatives(joi.string()).try_(joi.number())
        assert schema.is_valid(1)

    def test_when_value_dependent(self):
        schema = joi.object().keys(
            {
                "kind": joi.string().valid("circle", "square").required(),
                "size": joi.when(
                    "kind",
                    is_=joi.string().valid("circle"),
                    then=joi.number().required(),
                    otherwise=joi.string().required(),
                ),
            }
        )
        assert schema.is_valid({"kind": "circle", "size": 3.0})
        assert not schema.is_valid({"kind": "circle", "size": "big"})
        assert schema.is_valid({"kind": "square", "size": "big"})
        assert not schema.is_valid({"kind": "square", "size": 3.0})

    def test_when_presence_is_resolved(self):
        schema = joi.object().keys(
            {
                "mode": joi.string(),
                "extra": joi.when(
                    "mode",
                    is_=joi.string().valid("strict"),
                    then=joi.any_().required(),
                    otherwise=joi.any_(),
                ),
            }
        )
        assert not schema.is_valid({"mode": "strict"})
        assert schema.is_valid({"mode": "lax"})

    def test_when_at_top_level_fails(self):
        schema = joi.when("x", is_=joi.any_(), then=joi.any_(), otherwise=joi.any_())
        assert not schema.is_valid({"x": 1})


class TestImmutability:
    def test_builders_do_not_mutate(self):
        base = joi.string()
        longer = base.min(5)
        assert base.is_valid("ab")
        assert not longer.is_valid("ab")

    def test_shared_object_base(self):
        base = joi.object().keys({"a": joi.number()})
        strict = base.keys({"b": joi.string().required()})
        assert base.is_valid({"a": 1})
        assert not strict.is_valid({"a": 1})


class TestTutorialAccountExample:
    """The running example from the Joi README the tutorial points at."""

    @pytest.fixture()
    def schema(self):
        return (
            joi.object()
            .keys(
                {
                    "username": joi.string().alphanum().min(3).max(30).required(),
                    "password": joi.string().pattern(r"^[a-zA-Z0-9]{3,30}$"),
                    "access_token": joi.alternatives(joi.string(), joi.number()),
                    "birth_year": joi.number().integer().min(1900).max(2013),
                    "email": joi.string().email(),
                }
            )
            .with_("username", "birth_year")
            .xor("password", "access_token")
        )

    def test_accepts_password_variant(self, schema):
        assert schema.is_valid(
            {"username": "abc", "birth_year": 1994, "password": "passwd1"}
        )

    def test_accepts_token_variant(self, schema):
        assert schema.is_valid(
            {"username": "abc", "birth_year": 1994, "access_token": 123}
        )

    def test_rejects_both_credentials(self, schema):
        assert not schema.is_valid(
            {
                "username": "abc",
                "birth_year": 1994,
                "password": "passwd1",
                "access_token": "t",
            }
        )

    def test_rejects_missing_birth_year(self, schema):
        assert not schema.is_valid({"username": "abc", "password": "passwd1"})

    def test_rejects_bad_username(self, schema):
        assert not schema.is_valid(
            {"username": "a!", "birth_year": 1994, "password": "passwd1"}
        )
