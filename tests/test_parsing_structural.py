"""Tests for the Mison-style structural index."""

import pytest

from repro.errors import JsonError
from repro.parsing.structural import (
    StructuralIndex,
    _char_bitmap,
    _string_mask,
    _structural_quotes,
)


def bits(bitmap):
    out = []
    pos = 0
    while bitmap:
        if bitmap & 1:
            out.append(pos)
        bitmap >>= 1
        pos += 1
    return out


class TestBitmaps:
    def test_char_bitmap(self):
        assert bits(_char_bitmap("a:b:c", ":")) == [1, 3]

    def test_char_bitmap_empty(self):
        assert _char_bitmap("abc", ":") == 0

    def test_structural_quotes_plain(self):
        text = '"ab" "cd"'
        q = _char_bitmap(text, '"')
        assert _structural_quotes(q, _char_bitmap(text, "\\"), len(text)) == q

    def test_structural_quotes_escaped(self):
        text = r'"a\"b"'
        q = _char_bitmap(text, '"')
        structural = _structural_quotes(q, _char_bitmap(text, "\\"), len(text))
        assert bits(structural) == [0, 5]

    def test_structural_quotes_double_backslash(self):
        # "a\\" — the backslash is escaped, the quote is structural.
        text = '"a\\\\"'
        q = _char_bitmap(text, '"')
        structural = _structural_quotes(q, _char_bitmap(text, "\\"), len(text))
        assert bits(structural) == [0, 4]

    def test_string_mask(self):
        text = '{"a": "x:y"}'
        q = _char_bitmap(text, '"')
        mask = _string_mask(q, len(text))
        colon_in_string = text.index(":", 7)
        structural_colon = text.index(":")
        assert (mask >> colon_in_string) & 1
        assert not (mask >> structural_colon) & 1

    def test_unbalanced_quotes(self):
        with pytest.raises(JsonError):
            _string_mask(_char_bitmap('"abc', '"'), 4)


class TestStructuralIndex:
    TEXT = '{"a": 1, "b": {"c": [2, 3], "d": "x,y:z"}, "e": null}'

    @pytest.fixture()
    def index(self):
        return StructuralIndex.build(self.TEXT, levels=3)

    def test_level1_colons(self, index):
        colons = bits(index.colon_levels[0])
        keys = [index.key_before_colon(c) for c in colons]
        assert keys == ["a", "b", "e"]

    def test_level2_colons(self, index):
        colons = bits(index.colon_levels[1])
        keys = [index.key_before_colon(c) for c in colons]
        assert keys == ["c", "d"]

    def test_string_punctuation_masked(self, index):
        # The comma and colon inside "x,y:z" are not structural.
        in_string_comma = self.TEXT.index(",", self.TEXT.index("x"))
        assert in_string_comma not in bits(index.commas)

    def test_matching_close(self, index):
        open_pos = self.TEXT.index("{", 1)
        close_pos = index.matching_close(open_pos)
        assert self.TEXT[close_pos] == "}"
        assert self.TEXT[open_pos : close_pos + 1] == '{"c": [2, 3], "d": "x,y:z"}'

    def test_matching_close_brackets(self, index):
        open_pos = self.TEXT.index("[")
        close_pos = index.matching_close(open_pos)
        assert self.TEXT[open_pos : close_pos + 1] == "[2, 3]"

    def test_matching_close_requires_opener(self, index):
        with pytest.raises(JsonError):
            index.matching_close(0 if self.TEXT[0] != "{" else 1)

    def test_object_member_colons(self, index):
        close = index.matching_close(0)
        colons = index.object_member_colons(0, close, 1)
        assert [index.key_before_colon(c) for c in colons] == ["a", "b", "e"]

    def test_array_element_commas(self, index):
        open_pos = self.TEXT.index("[")
        close_pos = index.matching_close(open_pos)
        commas = index.array_element_commas(open_pos, close_pos, 3)
        assert len(commas) == 1

    def test_value_span(self, index):
        close = index.matching_close(0)
        colons = index.object_member_colons(0, close, 1)
        start, end = index.value_span(colons[0], close, 1)
        assert self.TEXT[start:end].strip() == "1"

    def test_level_limit_enforced(self):
        index = StructuralIndex.build(self.TEXT, levels=1)
        with pytest.raises(JsonError):
            index.object_member_colons(0, len(self.TEXT) - 1, 2)

    def test_unbalanced_document(self):
        with pytest.raises(JsonError):
            StructuralIndex.build('{"a": [1}', levels=2)

    def test_escaped_quote_in_key(self):
        text = r'{"a\"b": 1}'
        index = StructuralIndex.build(text, levels=1)
        colons = bits(index.colon_levels[0])
        assert index.key_before_colon(colons[0]) == 'a"b'
