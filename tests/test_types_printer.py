"""Tests for repro.types.printer and to_jsonschema."""

import pytest

from repro.types import (
    ANY,
    ArrType,
    BOT,
    FLT,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    TypeSyntaxError,
    parse_type,
    type_of,
    type_to_jsonschema,
    type_to_string,
    union2,
)


class TestPrinting:
    @pytest.mark.parametrize(
        "t,text",
        [
            (BOT, "Bot"),
            (ANY, "Any"),
            (NULL, "Null"),
            (INT, "Int"),
            (NUM, "Num"),
            (ArrType(STR), "[Str]"),
            (ArrType(BOT), "[Bot]"),
            (RecType(()), "{}"),
            (RecType.of({"a": INT}), "{a: Int}"),
            (
                RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"})),
                "{a: Int, b?: Str}",
            ),
        ],
    )
    def test_simple(self, t, text):
        assert type_to_string(t) == text

    def test_union(self):
        assert type_to_string(union2(INT, STR)) == "Int + Str"

    def test_union_inside_record(self):
        t = RecType.of({"a": union2(NULL, STR)})
        assert type_to_string(t) == "{a: Null + Str}"

    def test_odd_field_name_quoted(self):
        t = RecType.of({"a b": INT})
        assert type_to_string(t) == '{"a b": Int}'

    def test_str_dunder(self):
        assert str(INT) == "Int"


class TestParsing:
    @pytest.mark.parametrize(
        "text",
        [
            "Bot",
            "Any",
            "Null",
            "Int + Str",
            "[Num]",
            "{}",
            "{a: Int}",
            "{a: Int, b?: Str}",
            "{a: Null + Str}",
            '{"a b": Int}',
            "[{x?: [Int + Flt]}]",
        ],
    )
    def test_roundtrip(self, text):
        assert type_to_string(parse_type(text)) == text

    def test_parens(self):
        assert parse_type("(Int + Str)") == union2(INT, STR)

    def test_whitespace_tolerant(self):
        assert parse_type(" { a : Int } ") == RecType.of({"a": INT})

    @pytest.mark.parametrize("text", ["", "Intx", "{a}", "{a:}", "[Int", "Int +", "{a: Int,}"])
    def test_malformed(self, text):
        with pytest.raises(TypeSyntaxError):
            parse_type(text)

    def test_roundtrip_of_inferred_type(self):
        t = type_of({"a": [1, 2.5], "b": {"c": None}})
        assert parse_type(type_to_string(t)) == t


class TestJsonSchemaExport:
    def test_atoms(self):
        assert type_to_jsonschema(NULL) == {"type": "null"}
        assert type_to_jsonschema(INT) == {"type": "integer"}
        assert type_to_jsonschema(FLT) == {"type": "number"}
        assert type_to_jsonschema(STR) == {"type": "string"}

    def test_bot_any(self):
        assert type_to_jsonschema(BOT) == {"not": {}}
        assert type_to_jsonschema(ANY) == {}

    def test_array(self):
        assert type_to_jsonschema(ArrType(INT)) == {
            "type": "array",
            "items": {"type": "integer"},
        }

    def test_empty_array(self):
        assert type_to_jsonschema(ArrType(BOT)) == {"type": "array", "maxItems": 0}

    def test_record(self):
        t = RecType.of({"a": INT, "b": STR}, optional=frozenset({"b"}))
        schema = type_to_jsonschema(t)
        assert schema["type"] == "object"
        assert schema["required"] == ["a"]
        assert schema["additionalProperties"] is False
        assert schema["properties"]["b"] == {"type": "string"}

    def test_union(self):
        schema = type_to_jsonschema(union2(INT, STR))
        assert schema == {"anyOf": [{"type": "integer"}, {"type": "string"}]}
