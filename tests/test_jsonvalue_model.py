"""Tests for repro.jsonvalue.model."""

import pytest

from repro.jsonvalue.model import (
    JsonKind,
    StructuralStats,
    freeze,
    is_integer_value,
    is_json_value,
    iter_paths,
    kind_of,
    sort_keys_deep,
    strict_equal,
    structural_stats,
    unfreeze,
)


class TestKindOf:
    def test_null(self):
        assert kind_of(None) is JsonKind.NULL

    def test_booleans_are_not_numbers(self):
        assert kind_of(True) is JsonKind.BOOLEAN
        assert kind_of(False) is JsonKind.BOOLEAN

    def test_numbers(self):
        assert kind_of(0) is JsonKind.NUMBER
        assert kind_of(-3) is JsonKind.NUMBER
        assert kind_of(2.5) is JsonKind.NUMBER

    def test_string(self):
        assert kind_of("") is JsonKind.STRING

    def test_containers(self):
        assert kind_of([]) is JsonKind.ARRAY
        assert kind_of({}) is JsonKind.OBJECT

    def test_non_json_raises(self):
        with pytest.raises(TypeError):
            kind_of((1, 2))
        with pytest.raises(TypeError):
            kind_of({1, 2})


class TestIsIntegerValue:
    def test_int(self):
        assert is_integer_value(7)

    def test_bool_is_not_integer(self):
        assert not is_integer_value(True)

    def test_float_is_not_integer(self):
        assert not is_integer_value(7.0)


class TestIsJsonValue:
    def test_scalars(self):
        for v in (None, True, 0, 1.5, "x"):
            assert is_json_value(v)

    def test_nested(self):
        assert is_json_value({"a": [1, {"b": None}]})

    def test_nan_rejected(self):
        assert not is_json_value(float("nan"))
        assert not is_json_value({"a": float("inf")})

    def test_non_string_keys_rejected(self):
        assert not is_json_value({1: "x"})

    def test_host_types_rejected(self):
        assert not is_json_value((1, 2))
        assert not is_json_value({"a": {1, 2}})


class TestStrictEqual:
    def test_int_float_distinct(self):
        assert not strict_equal(1, 1.0)
        assert strict_equal(1, 1)
        assert strict_equal(1.0, 1.0)

    def test_bool_number_distinct(self):
        assert not strict_equal(True, 1)
        assert not strict_equal({"a": 1}, {"a": True})

    def test_object_key_order_irrelevant(self):
        assert strict_equal({"a": 1, "b": 2}, {"b": 2, "a": 1})

    def test_arrays_ordered(self):
        assert not strict_equal([1, 2], [2, 1])
        assert strict_equal([1, [2]], [1, [2]])

    def test_kind_mismatch(self):
        assert not strict_equal([], {})
        assert not strict_equal(None, False)
        assert not strict_equal("1", 1)

    def test_missing_key(self):
        assert not strict_equal({"a": 1}, {"a": 1, "b": 2})


class TestFreeze:
    def test_roundtrip_scalars(self):
        for v in (None, True, 3, 2.5, "s"):
            assert strict_equal(unfreeze(freeze(v)), v)

    def test_roundtrip_nested(self):
        v = {"a": [1, {"b": None}], "c": [True, 1.5]}
        assert strict_equal(unfreeze(freeze(v)), v)

    def test_hashable(self):
        values = [{"a": 1}, {"a": 1.0}, {"a": True}, [1], [1.0]]
        frozen = {freeze(v) for v in values}
        assert len(frozen) == len(values)

    def test_int_float_freeze_differently(self):
        assert freeze(1) != freeze(1.0)

    def test_key_order_canonicalized(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})


class TestStructuralStats:
    def test_scalar(self):
        stats = structural_stats(42)
        assert stats == StructuralStats(1, 1, 1, 0, 0, 0)

    def test_nested(self):
        stats = structural_stats({"a": [1, 2], "b": {"c": None}})
        assert stats.node_count == 6
        assert stats.max_depth == 3
        assert stats.leaf_count == 3
        assert stats.object_count == 2
        assert stats.array_count == 1
        assert stats.key_count == 3

    def test_add(self):
        a = structural_stats({"x": 1})
        b = structural_stats([1, 2, 3])
        combined = a + b
        assert combined.node_count == a.node_count + b.node_count
        assert combined.max_depth == max(a.max_depth, b.max_depth)

    def test_deep_nesting_does_not_recurse(self):
        value = 0
        for _ in range(5000):
            value = [value]
        stats = structural_stats(value)
        assert stats.max_depth == 5001


class TestIterPaths:
    def test_leaves(self):
        doc = {"a": {"b": 1}, "c": [2, 3]}
        got = dict(iter_paths(doc))
        assert got == {("a", "b"): 1, ("c", 0): 2, ("c", 1): 3}

    def test_all_nodes(self):
        doc = {"a": [1]}
        got = [p for p, _ in iter_paths(doc, leaves_only=False)]
        assert () in got and ("a",) in got and ("a", 0) in got

    def test_scalar_root(self):
        assert list(iter_paths(5)) == [((), 5)]

    def test_empty_containers_have_no_leaves(self):
        assert list(iter_paths({"a": [], "b": {}})) == []


class TestSortKeysDeep:
    def test_sorts_recursively(self):
        doc = {"b": {"d": 1, "c": 2}, "a": [{"z": 0, "y": 1}]}
        result = sort_keys_deep(doc)
        assert list(result.keys()) == ["a", "b"]
        assert list(result["b"].keys()) == ["c", "d"]
        assert list(result["a"][0].keys()) == ["y", "z"]

    def test_does_not_mutate(self):
        doc = {"b": 1, "a": 2}
        sort_keys_deep(doc)
        assert list(doc.keys()) == ["b", "a"]
