"""Tests for Skinfer-style and Studio-3T-style inference."""

import pytest

from repro.errors import InferenceError
from repro.inference import (
    jsonschema_size,
    schema_from_object,
    shape_of,
    skinfer_infer_schema,
    skinfer_merge_schemas,
    studio3t_analyze,
)
from repro.jsonschema import compile_schema


class TestSchemaFromObject:
    def test_scalars(self):
        assert schema_from_object(1) == {"type": "integer"}
        assert schema_from_object(1.5) == {"type": "number"}
        assert schema_from_object("x") == {"type": "string"}
        assert schema_from_object(None) == {"type": "null"}
        assert schema_from_object(True) == {"type": "boolean"}

    def test_object_all_required(self):
        schema = schema_from_object({"a": 1, "b": "x"})
        assert schema["required"] == ["a", "b"]

    def test_homogeneous_array(self):
        schema = schema_from_object([1, 2])
        assert schema == {"type": "array", "items": {"type": "integer"}}

    def test_heterogeneous_array_drops_items(self):
        schema = schema_from_object([1, "x"])
        assert schema == {"type": "array"}

    def test_document_validates_against_own_schema(self):
        doc = {"a": [1, 2], "b": {"c": None}}
        compiled = compile_schema(schema_from_object(doc))
        assert compiled.is_valid(doc)


class TestMergeSchemas:
    def test_identical(self):
        s = {"type": "string"}
        assert skinfer_merge_schemas(s, s) == s

    def test_integer_number_widen(self):
        assert skinfer_merge_schemas({"type": "integer"}, {"type": "number"}) == {
            "type": "number"
        }

    def test_cross_type_union_list(self):
        merged = skinfer_merge_schemas({"type": "string"}, {"type": "integer"})
        assert merged == {"type": ["integer", "string"]}

    def test_object_required_intersection(self):
        a = schema_from_object({"x": 1, "y": "s"})
        b = schema_from_object({"x": 2})
        merged = skinfer_merge_schemas(a, b)
        assert merged["required"] == ["x"]
        assert set(merged["properties"]) == {"x", "y"}

    def test_object_merge_is_recursive(self):
        a = schema_from_object({"u": {"n": 1}})
        b = schema_from_object({"u": {"n": 2.5}})
        merged = skinfer_merge_schemas(a, b)
        assert merged["properties"]["u"]["properties"]["n"] == {"type": "number"}

    def test_array_merge_is_not_recursive(self):
        """The documented Skinfer limitation: array items are not merged."""
        a = schema_from_object({"xs": [{"n": 1}]})
        b = schema_from_object({"xs": [{"n": 2.5}]})
        merged = skinfer_merge_schemas(a, b)
        # Items differed, so the merged array lost its item schema entirely.
        assert merged["properties"]["xs"] == {"type": "array"}

    def test_array_merge_keeps_identical_items(self):
        a = schema_from_object({"xs": [1]})
        b = schema_from_object({"xs": [2]})
        merged = skinfer_merge_schemas(a, b)
        assert merged["properties"]["xs"]["items"] == {"type": "integer"}


class TestSkinferInference:
    DOCS = [
        {"id": 1, "name": "a", "tags": ["x", "y"]},
        {"id": 2, "name": "b"},
        {"id": 3, "name": "c", "meta": {"lang": "en"}},
    ]

    def test_soundness(self):
        compiled = compile_schema(skinfer_infer_schema(self.DOCS))
        for doc in self.DOCS:
            assert compiled.is_valid(doc)

    def test_required_only_common_fields(self):
        schema = skinfer_infer_schema(self.DOCS)
        assert schema["required"] == ["id", "name"]

    def test_empty_collection(self):
        with pytest.raises(InferenceError):
            skinfer_infer_schema([])

    def test_schema_size(self):
        schema = skinfer_infer_schema(self.DOCS)
        assert jsonschema_size(schema) > 10


class TestStudio3T:
    def test_shape_of(self):
        assert shape_of({"a": 1, "b": [1.5, "x"]}) == {
            "a": "integer",
            "b": ["double", "string"],
        }

    def test_distinct_shapes_counted(self):
        docs = [{"a": 1}, {"a": 2}, {"a": "s"}, {"b": True}]
        analysis = studio3t_analyze(docs)
        assert analysis.document_count == 4
        assert analysis.distinct_shapes() == 3

    def test_no_merging_blows_up(self):
        """Schema size grows with variant count — the documented problem."""
        homogeneous = studio3t_analyze([{"a": i} for i in range(50)])
        heterogeneous = studio3t_analyze(
            [{f"field_{i}": i} for i in range(50)]
        )
        assert homogeneous.distinct_shapes() == 1
        assert heterogeneous.distinct_shapes() == 50
        assert heterogeneous.schema_size() > 10 * homogeneous.schema_size()

    def test_result_sorted_by_frequency(self):
        docs = [{"a": 1}] * 3 + [{"b": "x"}]
        result = studio3t_analyze(docs).result()
        assert result[0]["count"] == 3
        assert result[0]["probability"] == 0.75

    def test_array_positions_kept(self):
        # Studio-3T-like shapes keep positional array structure.
        analysis = studio3t_analyze([{"xs": [1, "a"]}, {"xs": ["a", 1]}])
        assert analysis.distinct_shapes() == 2

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            studio3t_analyze([])
