"""Keyword-by-keyword tests for the JSON Schema validator."""

import pytest

from repro.jsonschema import (
    InstanceValidationError,
    SchemaCompileError,
    compile_schema,
    is_valid,
    json_schema_equal,
    validate,
)


class TestBooleanSchemas:
    def test_true_accepts_everything(self):
        for v in (None, 1, "x", [], {}):
            assert is_valid(True, v)

    def test_false_rejects_everything(self):
        for v in (None, 1, "x", [], {}):
            assert not is_valid(False, v)

    def test_empty_schema_accepts(self):
        assert is_valid({}, {"anything": [1, 2]})


class TestTypeKeyword:
    @pytest.mark.parametrize(
        "name,good,bad",
        [
            ("null", None, 0),
            ("boolean", True, "true"),
            ("string", "s", 1),
            ("array", [1], {"a": 1}),
            ("object", {}, []),
            ("number", 1.5, "1.5"),
        ],
    )
    def test_basic(self, name, good, bad):
        schema = {"type": name}
        assert is_valid(schema, good)
        assert not is_valid(schema, bad)

    def test_integer_accepts_integral_float(self):
        schema = {"type": "integer"}
        assert is_valid(schema, 3)
        assert is_valid(schema, 3.0)  # draft 6+ semantics
        assert not is_valid(schema, 3.5)

    def test_bool_is_not_number(self):
        assert not is_valid({"type": "number"}, True)
        assert not is_valid({"type": "integer"}, False)

    def test_type_union(self):
        schema = {"type": ["string", "null"]}
        assert is_valid(schema, "x")
        assert is_valid(schema, None)
        assert not is_valid(schema, 1)

    def test_unknown_type_rejected_at_compile(self):
        with pytest.raises(SchemaCompileError):
            compile_schema({"type": "float"})


class TestEnumConst:
    def test_enum(self):
        schema = {"enum": [1, "a", [2], {"b": None}]}
        assert is_valid(schema, 1)
        assert is_valid(schema, [2])
        assert is_valid(schema, {"b": None})
        assert not is_valid(schema, 2)

    def test_enum_numeric_equality(self):
        assert is_valid({"enum": [1]}, 1.0)

    def test_enum_bool_not_number(self):
        assert not is_valid({"enum": [1]}, True)
        assert not is_valid({"enum": [True]}, 1)

    def test_const(self):
        schema = {"const": {"a": [1]}}
        assert is_valid(schema, {"a": [1]})
        assert is_valid(schema, {"a": [1.0]})
        assert not is_valid(schema, {"a": [2]})

    def test_empty_enum_rejected(self):
        with pytest.raises(SchemaCompileError):
            compile_schema({"enum": []})


class TestNumericKeywords:
    def test_bounds(self):
        schema = {"minimum": 0, "maximum": 10}
        assert is_valid(schema, 0) and is_valid(schema, 10)
        assert not is_valid(schema, -1) and not is_valid(schema, 11)

    def test_exclusive_bounds(self):
        schema = {"exclusiveMinimum": 0, "exclusiveMaximum": 10}
        assert is_valid(schema, 5)
        assert not is_valid(schema, 0) and not is_valid(schema, 10)

    def test_multiple_of_int(self):
        schema = {"multipleOf": 3}
        assert is_valid(schema, 9) and not is_valid(schema, 10)

    def test_multiple_of_float(self):
        schema = {"multipleOf": 0.5}
        assert is_valid(schema, 1.5)
        assert is_valid(schema, 2)
        assert not is_valid(schema, 1.3)

    def test_non_numbers_ignored(self):
        assert is_valid({"minimum": 5}, "str")

    def test_bad_multiple_of(self):
        with pytest.raises(SchemaCompileError):
            compile_schema({"multipleOf": 0})


class TestStringKeywords:
    def test_lengths(self):
        schema = {"minLength": 2, "maxLength": 4}
        assert is_valid(schema, "ab") and is_valid(schema, "abcd")
        assert not is_valid(schema, "a") and not is_valid(schema, "abcde")

    def test_length_counts_codepoints(self):
        assert is_valid({"maxLength": 1}, "😀")

    def test_pattern_unanchored(self):
        schema = {"pattern": "b+c"}
        assert is_valid(schema, "abbbcd")
        assert not is_valid(schema, "acb")

    def test_invalid_pattern_compile_error(self):
        with pytest.raises(SchemaCompileError):
            compile_schema({"pattern": "("})


class TestArrayKeywords:
    def test_items_schema(self):
        schema = {"items": {"type": "integer"}}
        assert is_valid(schema, [1, 2])
        assert not is_valid(schema, [1, "x"])
        assert is_valid(schema, [])

    def test_items_tuple(self):
        schema = {"items": [{"type": "integer"}, {"type": "string"}]}
        assert is_valid(schema, [1, "a"])
        assert is_valid(schema, [1])
        assert not is_valid(schema, ["a", 1])

    def test_additional_items_false(self):
        schema = {"items": [{"type": "integer"}], "additionalItems": False}
        assert is_valid(schema, [1])
        assert not is_valid(schema, [1, 2])

    def test_additional_items_schema(self):
        schema = {"items": [{}], "additionalItems": {"type": "string"}}
        assert is_valid(schema, [0, "a", "b"])
        assert not is_valid(schema, [0, 1])

    def test_item_counts(self):
        schema = {"minItems": 1, "maxItems": 2}
        assert not is_valid(schema, [])
        assert is_valid(schema, [1])
        assert not is_valid(schema, [1, 2, 3])

    def test_unique_items(self):
        schema = {"uniqueItems": True}
        assert is_valid(schema, [1, 2, "1"])
        assert not is_valid(schema, [1, 2, 1])
        assert not is_valid(schema, [{"a": 1}, {"a": 1}])

    def test_unique_items_numeric_equality(self):
        assert not is_valid({"uniqueItems": True}, [1, 1.0])
        assert is_valid({"uniqueItems": True}, [True, 1])

    def test_contains(self):
        schema = {"contains": {"type": "string"}}
        assert is_valid(schema, [1, "x"])
        assert not is_valid(schema, [1, 2])
        assert not is_valid(schema, [])


class TestObjectKeywords:
    def test_properties(self):
        schema = {"properties": {"a": {"type": "integer"}}}
        assert is_valid(schema, {"a": 1})
        assert not is_valid(schema, {"a": "x"})
        assert is_valid(schema, {"b": "anything"})

    def test_required(self):
        schema = {"required": ["a", "b"]}
        assert is_valid(schema, {"a": 1, "b": 2})
        assert not is_valid(schema, {"a": 1})

    def test_property_counts(self):
        schema = {"minProperties": 1, "maxProperties": 2}
        assert not is_valid(schema, {})
        assert is_valid(schema, {"a": 1})
        assert not is_valid(schema, {"a": 1, "b": 2, "c": 3})

    def test_pattern_properties(self):
        schema = {"patternProperties": {"^x_": {"type": "integer"}}}
        assert is_valid(schema, {"x_a": 1, "other": "s"})
        assert not is_valid(schema, {"x_a": "s"})

    def test_additional_properties_false(self):
        schema = {"properties": {"a": {}}, "additionalProperties": False}
        assert is_valid(schema, {"a": 1})
        assert not is_valid(schema, {"a": 1, "b": 2})

    def test_additional_properties_respects_patterns(self):
        schema = {
            "properties": {"a": {}},
            "patternProperties": {"^x_": {}},
            "additionalProperties": False,
        }
        assert is_valid(schema, {"a": 1, "x_b": 2})
        assert not is_valid(schema, {"y": 3})

    def test_additional_properties_schema(self):
        schema = {"additionalProperties": {"type": "string"}}
        assert is_valid(schema, {"a": "x"})
        assert not is_valid(schema, {"a": 1})

    def test_property_names(self):
        schema = {"propertyNames": {"pattern": "^[a-z]+$"}}
        assert is_valid(schema, {"abc": 1})
        assert not is_valid(schema, {"Abc": 1})

    def test_property_dependencies(self):
        schema = {"dependencies": {"credit_card": ["billing_address"]}}
        assert is_valid(schema, {"credit_card": "1234", "billing_address": "x"})
        assert not is_valid(schema, {"credit_card": "1234"})
        assert is_valid(schema, {"billing_address": "x"})

    def test_schema_dependencies(self):
        schema = {"dependencies": {"a": {"required": ["b"]}}}
        assert not is_valid(schema, {"a": 1})
        assert is_valid(schema, {"a": 1, "b": 2})


class TestCombinators:
    def test_all_of(self):
        schema = {"allOf": [{"type": "integer"}, {"minimum": 5}]}
        assert is_valid(schema, 7)
        assert not is_valid(schema, 3)
        assert not is_valid(schema, "7")

    def test_any_of(self):
        schema = {"anyOf": [{"type": "string"}, {"type": "integer"}]}
        assert is_valid(schema, "x") and is_valid(schema, 3)
        assert not is_valid(schema, None)

    def test_one_of(self):
        schema = {"oneOf": [{"type": "integer"}, {"type": "number", "minimum": 5}]}
        assert is_valid(schema, 3)  # integer only
        assert is_valid(schema, 5.5)  # minimum only
        assert not is_valid(schema, 7)  # both branches
        assert not is_valid(schema, "x")  # neither

    def test_one_of_vacuous_branch(self):
        # Numeric keywords ignore non-numbers, so {"minimum": 5} accepts "x";
        # exactly one branch matches and oneOf holds.  (Spec subtlety.)
        schema = {"oneOf": [{"type": "integer"}, {"minimum": 5}]}
        assert is_valid(schema, "x")

    def test_not(self):
        schema = {"not": {"type": "string"}}
        assert is_valid(schema, 1)
        assert not is_valid(schema, "s")

    def test_nested_negation(self):
        schema = {"not": {"not": {"type": "string"}}}
        assert is_valid(schema, "s")
        assert not is_valid(schema, 1)

    def test_if_then_else(self):
        schema = {
            "if": {"properties": {"kind": {"const": "circle"}}, "required": ["kind"]},
            "then": {"required": ["radius"]},
            "else": {"required": ["width"]},
        }
        assert is_valid(schema, {"kind": "circle", "radius": 1})
        assert not is_valid(schema, {"kind": "circle"})
        assert is_valid(schema, {"kind": "square", "width": 2})
        assert not is_valid(schema, {"kind": "square"})

    def test_if_without_branches(self):
        assert is_valid({"if": {"type": "string"}}, 42)

    def test_empty_combinator_rejected(self):
        with pytest.raises(SchemaCompileError):
            compile_schema({"anyOf": []})


class TestFailureReporting:
    def test_paths_reported(self):
        schema = {
            "properties": {"a": {"items": {"type": "integer"}}},
        }
        result = validate(schema, {"a": [1, "x"]})
        assert not result.valid
        (failure,) = result.failures
        assert str(failure.instance_path) == "/a/1"
        assert failure.keyword == "type"

    def test_multiple_failures_collected(self):
        schema = {
            "properties": {
                "a": {"type": "integer"},
                "b": {"type": "string"},
            },
            "required": ["c"],
        }
        result = validate(schema, {"a": "no", "b": 1})
        keywords = sorted(f.keyword for f in result.failures)
        assert keywords == ["required", "type", "type"]

    def test_validate_or_raise(self):
        compiled = compile_schema({"type": "integer"})
        compiled.validate_or_raise(4)
        with pytest.raises(InstanceValidationError):
            compiled.validate_or_raise("x")


class TestJsonSchemaEqual:
    def test_numbers(self):
        assert json_schema_equal(1, 1.0)
        assert not json_schema_equal(1, True)

    def test_containers(self):
        assert json_schema_equal({"a": [1]}, {"a": [1.0]})
        assert not json_schema_equal({"a": [1]}, {"a": [1, 2]})
