"""Property tests for the fast parsers (DESIGN.md invariants 4 and 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsonvalue.model import strict_equal
from repro.jsonvalue.parser import parse
from repro.jsonvalue.serializer import dumps
from repro.parsing import SpeculativeDecoder, apply_projection, parse_projected

from tests.strategies import json_objects, json_values

# Paths that exercise fields likely/unlikely to exist in generated objects.
field_names = st.text(min_size=1, max_size=8).filter(
    lambda s: all(ch not in s for ch in ".[]$")
)


@st.composite
def objects_and_projections(draw):
    obj = draw(json_objects(max_leaves=15))
    known = [k for k in obj.keys() if k and all(ch not in k for ch in ".[]$")]
    names = draw(
        st.lists(
            st.one_of(st.sampled_from(known) if known else field_names, field_names),
            min_size=1,
            max_size=3,
        )
    )
    return obj, names


@given(objects_and_projections())
@settings(max_examples=100, deadline=None)
def test_mison_equals_parse_then_project(case):
    obj, projection = case
    text = dumps(obj)
    expected = apply_projection(parse(text), projection)
    assert parse_projected(text, projection) == expected


@given(st.lists(json_objects(max_leaves=10), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_speculative_decode_equals_parse(docs):
    decoder = SpeculativeDecoder()
    for doc in docs:
        text = dumps(doc)
        assert strict_equal(decoder.decode(text), parse(text))


@given(json_values(max_leaves=15))
@settings(max_examples=60, deadline=None)
def test_root_projection_is_identity(value):
    text = dumps(value)
    assert strict_equal(parse_projected(text, ["$"]), parse(text))
