"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import github_events, ndjson_lines


@pytest.fixture()
def data_file(tmp_path):
    path = tmp_path / "data.ndjson"
    path.write_text("\n".join(ndjson_lines(github_events(40, seed=1))) + "\n")
    return str(path)


@pytest.fixture()
def schema_file(tmp_path):
    path = tmp_path / "schema.json"
    path.write_text(
        '{"type": "object", "required": ["type", "actor"],'
        ' "properties": {"public": {"const": true}}}'
    )
    return str(path)


class TestInfer:
    def test_type_output(self, data_file, capsys):
        assert main(["infer", data_file]) == 0
        out = capsys.readouterr().out
        assert "40 documents" in out
        assert "{" in out and "actor" in out

    def test_label_equivalence(self, data_file, capsys):
        assert main(["infer", data_file, "--equivalence", "label"]) == 0
        out = capsys.readouterr().out
        assert " + " in out  # union of event variants

    def test_jsonschema_output(self, data_file, capsys):
        assert main(["infer", data_file, "--format", "jsonschema"]) == 0
        out = capsys.readouterr().out
        assert '"type": "object"' in out

    def test_typescript_output(self, data_file, capsys):
        assert main(["infer", data_file, "--format", "typescript", "--name", "Ev"]) == 0
        out = capsys.readouterr().out
        assert "interface Ev {" in out

    def test_swift_union_error_is_clean(self, tmp_path, capsys):
        path = tmp_path / "mixed.ndjson"
        path.write_text('{"v": 1}\n{"v": "x"}\n')
        assert main(["infer", str(path), "--format", "swift"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_jobs_routes_through_the_adaptive_scheduler(self, data_file, capsys):
        """--jobs N on a small corpus must produce the serial output
        (the scheduler falls back rather than paying for a pool)."""
        assert main(["infer", data_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["infer", data_file, "--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial_out
        assert main(["infer", data_file, "--jobs", "auto", "--shared-memory"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_jobs_rejects_non_numeric_values(self, data_file, capsys):
        with pytest.raises(SystemExit):
            main(["infer", data_file, "--jobs", "fast"])
        with pytest.raises(SystemExit):
            main(["infer", data_file, "--jobs", "0"])

    def test_jobs_help_documents_the_heuristic(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        help_text = subparsers.choices["infer"].format_help()
        # argparse wraps help across lines; normalise before asserting.
        flat = " ".join(help_text.split())
        assert "adaptive scheduler" in flat
        assert "falls back to the serial fold" in flat
        assert "mmap" in flat


class TestValidate:
    def test_all_valid(self, data_file, schema_file, capsys):
        assert main(["validate", data_file, "--schema", schema_file]) == 0
        assert "40/40 valid" in capsys.readouterr().out

    def test_invalid_counted_in_exit_code(self, tmp_path, schema_file, capsys):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type": "x", "actor": {}}\n{"nope": 1}\n{"public": false}\n')
        code = main(["validate", str(path), "--schema", schema_file])
        assert code == 2
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "1/3 valid" in out

    def test_missing_schema_file(self, data_file, capsys):
        assert main(["validate", data_file, "--schema", "/nope.json"]) == 2


class TestSkeleton:
    def test_structures_printed(self, data_file, capsys):
        assert main(["skeleton", data_file, "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "skeleton of order 3" in out
        assert "structure #0" in out
        assert "document coverage" in out


class TestTranslate:
    def test_size_report(self, data_file, capsys):
        assert main(["translate", data_file]) == 0
        out = capsys.readouterr().out
        assert "columnar bytes" in out
        assert "typed columns" in out

    def test_engines_print_identical_reports(self, data_file, capsys):
        assert main(["translate", data_file]) == 0
        stream_out = capsys.readouterr().out
        assert main(["translate", data_file, "--engine", "dom"]) == 0
        assert capsys.readouterr().out == stream_out

    def test_out_with_dom_engine_rejected_before_translating(
        self, data_file, tmp_path, capsys
    ):
        out_dir = tmp_path / "artifacts"
        code = main(
            ["translate", data_file, "--engine", "dom", "--out", str(out_dir)]
        )
        assert code == 2
        captured = capsys.readouterr()
        # Rejected upfront: no report printed, no artifacts written.
        assert captured.out == ""
        assert "--out requires" in captured.err
        assert not out_dir.exists()

    def test_out_writes_artifacts(self, data_file, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["translate", data_file, "--out", str(out_dir)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (out_dir / "rows.avro").exists()
        assert (out_dir / "columns.json").exists()
        assert (out_dir / "schema.txt").exists()


class TestMatrix:
    def test_matrix_printed(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "union types" in out and "JSound" in out


class TestStdin:
    def test_dash_reads_stdin(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO('{"a": 1}\n{"a": 2}\n'))
        assert main(["infer", "-"]) == 0
        assert "{a: Int}" in capsys.readouterr().out
