#!/usr/bin/env python
"""Quickstart: parse JSON, validate it, infer a schema, generate types.

Walks the tutorial's arc in one page:

1. parse a document with the from-scratch parser;
2. validate it against a JSON Schema and a Joi schema;
3. infer a type for a small collection (both equivalences);
4. export the inferred type as JSON Schema, TypeScript, and Swift.

Run:  python examples/quickstart.py
"""

from repro.jsonvalue import dumps, parse
from repro.jsonschema import compile_schema
import repro.joi as joi
from repro.inference import infer
from repro.types import Equivalence, type_to_string, type_to_jsonschema
from repro.pl import typescript_declaration_for, swift_declaration_for


def main() -> None:
    # -- 1. parsing ------------------------------------------------------
    text = '{"id": 17, "name": "ada", "tags": ["pioneer", "math"], "active": true}'
    doc = parse(text)
    print("parsed:", doc)
    print("re-serialized:", dumps(doc))

    # -- 2. validation ----------------------------------------------------
    json_schema = compile_schema(
        {
            "type": "object",
            "properties": {
                "id": {"type": "integer", "minimum": 1},
                "name": {"type": "string", "minLength": 1},
                "tags": {"type": "array", "items": {"type": "string"}},
                "active": {"type": "boolean"},
            },
            "required": ["id", "name"],
        }
    )
    print("\nJSON Schema says:", json_schema.validate(doc))
    print("JSON Schema rejects bad doc:", json_schema.validate({"id": 0, "name": ""}))

    account = joi.object().keys(
        {
            "id": joi.number().integer().positive().required(),
            "name": joi.string().min(1).required(),
            "tags": joi.array().items(joi.string()),
            "active": joi.boolean(),
        }
    )
    print("Joi says:", "valid" if account.is_valid(doc) else "invalid")

    # -- 3. inference -----------------------------------------------------
    collection = [
        doc,
        {"id": 18, "name": "grace", "active": False},
        {"id": 19, "name": "edsger", "tags": ["structured"], "email": "e@tue.nl"},
    ]
    for eq in (Equivalence.KIND, Equivalence.LABEL):
        report = infer(collection, eq)
        print(f"\ninferred [{eq.value}] (size {report.schema_size}):")
        print("  ", type_to_string(report.inferred))

    # -- 4. export --------------------------------------------------------
    inferred = infer(collection, Equivalence.KIND).inferred
    print("\nas JSON Schema:", dumps(type_to_jsonschema(inferred))[:100], "...")
    print("\nas TypeScript:")
    print(typescript_declaration_for(collection, "Person"))
    print("as Swift:")
    print(swift_declaration_for(collection, "Person"))


if __name__ == "__main__":
    main()
