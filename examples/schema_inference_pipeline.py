#!/usr/bin/env python
"""Every schema-inference tool of the tutorial on one GitHub-events stream.

Generates a discriminated-variant collection (GitHub-like events), then
runs the full §4.1 tool lineup and prints what each one sees:

- parametric inference (KIND vs LABEL), with sizes;
- counting types with field-presence ratios;
- Spark-style inference (watch fields collapse to string under noise);
- mongodb-schema streaming summary (top-level fields);
- Skinfer-like JSON Schema;
- Studio-3T-like shape catalogue (no merging — count the blow-up);
- Couchbase-like flavors;
- skeleton + coverage;
- ML schema profile (decision tree over the `type` field).

Run:  python examples/schema_inference_pipeline.py
"""

from repro.datasets import github_events
from repro.inference import (
    build_skeleton,
    discover_flavors,
    document_coverage,
    field_presence_ratios,
    infer,
    infer_counted,
    infer_spark_schema,
    jsonschema_size,
    mongodb_analyze,
    render_spark_schema,
    skinfer_infer_schema,
    studio3t_analyze,
    train_profile,
)
from repro.types import Equivalence, type_to_string


def main() -> None:
    docs = github_events(400, seed=42, kind_noise=0.02)
    print(f"collection: {len(docs)} GitHub-like events\n")

    # -- parametric -------------------------------------------------------
    for eq in (Equivalence.KIND, Equivalence.LABEL):
        report = infer(docs, eq)
        text = type_to_string(report.inferred)
        print(f"parametric [{eq.value}]: size {report.schema_size}")
        print("  ", text[:160], "..." if len(text) > 160 else "")

    # -- counting ---------------------------------------------------------
    counted = infer_counted(docs, Equivalence.KIND)
    print("\ncounting types, top-level field presence:")
    for name, ratio in sorted(field_presence_ratios(counted).items()):
        print(f"   {name:12s} {ratio:6.1%}")

    # -- spark ------------------------------------------------------------
    print("\nSpark-style schema:")
    print(render_spark_schema(infer_spark_schema(docs)))

    # -- mongodb-schema ----------------------------------------------------
    summary = mongodb_analyze(docs)
    print("\nmongodb-schema summary (top-level):")
    for field in summary["fields"]:
        types = "/".join(t["name"] for t in field["types"])
        print(f"   {field['name']:12s} p={field['probability']:<6} types={types}")

    # -- skinfer ------------------------------------------------------------
    schema = skinfer_infer_schema(docs)
    print(f"\nSkinfer-like JSON Schema: {jsonschema_size(schema)} nodes,"
          f" required={schema.get('required')}")

    # -- studio 3t ----------------------------------------------------------
    catalogue = studio3t_analyze(docs)
    print(
        f"Studio-3T-like catalogue: {catalogue.distinct_shapes()} distinct shapes,"
        f" total size {catalogue.schema_size()} nodes (no merging!)"
    )

    # -- couchbase flavors ----------------------------------------------------
    flavors = discover_flavors(docs, threshold=0.5)
    print(f"\nCouchbase-like flavors ({len(flavors)}):")
    for flavor in flavors[:4]:
        print("   ", flavor.describe()[:110])

    # -- skeleton -------------------------------------------------------------
    for k in (1, 2, 4, 8):
        skeleton = build_skeleton(docs, k)
        coverage = document_coverage(skeleton, docs)
        print(f"skeleton k={k}: document coverage {coverage:6.1%}")

    # -- profiling --------------------------------------------------------------
    profile = train_profile(docs)
    print(f"\nschema profile (accuracy {profile.accuracy(docs):.1%}):")
    for rule in profile.rules()[:6]:
        print("   ", rule)


if __name__ == "__main__":
    main()
