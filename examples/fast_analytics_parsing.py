#!/usr/bin/env python
"""Type-aware fast parsing on a Twitter-like stream (tutorial §4.2).

An analytics task that reads two fields out of wide tweet records, three
ways:

1. baseline — full generic parse, then project;
2. Mison-style — structural index + projection pushdown + speculation;
3. Fad.js-style — speculative shape-cached decoding of the whole record.

Prints wall-clock times, speedups, and the speculation statistics.

Run:  python examples/fast_analytics_parsing.py
"""

import time

from repro.datasets import ndjson_lines, tweets
from repro.jsonvalue.parser import parse
from repro.parsing import MisonParser, SpeculativeDecoder, apply_projection

PROJECTION = ["user.screen_name", "retweet_count"]


def main() -> None:
    docs = tweets(2000, seed=7, delete_fraction=0.0)
    lines = ndjson_lines(docs)
    print(f"stream: {len(lines)} tweets, {sum(map(len, lines)) // 1024} KiB")
    print(f"projection: {PROJECTION}\n")

    # -- 1. full parse + project -----------------------------------------
    start = time.perf_counter()
    baseline = [apply_projection(parse(line), PROJECTION) for line in lines]
    t_baseline = time.perf_counter() - start
    print(f"full parse + project: {t_baseline * 1000:8.1f} ms")

    # -- 2. Mison-style projected parsing ----------------------------------
    parser = MisonParser(PROJECTION)
    start = time.perf_counter()
    projected = list(parser.parse_stream(lines))
    t_mison = time.perf_counter() - start
    stats = parser.stats
    print(
        f"Mison projected:      {t_mison * 1000:8.1f} ms "
        f"(speedup {t_baseline / t_mison:4.1f}x, "
        f"speculation hit-rate {stats.hit_rate:5.1%}, "
        f"{stats.members_skipped} members skipped)"
    )
    assert projected == baseline, "projection must match parse-then-project"

    # -- 3. Fad.js-style speculative decoding -------------------------------
    start = time.perf_counter()
    full = [parse(line) for line in lines]
    t_full = time.perf_counter() - start

    decoder = SpeculativeDecoder()
    start = time.perf_counter()
    decoded = list(decoder.decode_stream(lines))
    t_fad = time.perf_counter() - start
    fstats = decoder.stats
    print(
        f"\nfull decode:          {t_full * 1000:8.1f} ms"
        f"\nFad.js speculative:   {t_fad * 1000:8.1f} ms "
        f"(hit-rate {fstats.hit_rate:5.1%}, {fstats.deopts} deopts — tweets nest "
        f"arrays, so templates only cover flat shapes)"
    )
    assert decoded == full, "speculation must never change results"

    # Flat records are where Fad.js shines: constant shape, no arrays.
    flat_lines = [
        line for line in ndjson_lines(
            {"id": d["id"], "name": d["user"]["screen_name"], "rt": d["retweet_count"]}
            for d in docs
        )
    ]
    start = time.perf_counter()
    flat_full = [parse(line) for line in flat_lines]
    t_flat_full = time.perf_counter() - start
    decoder = SpeculativeDecoder()
    start = time.perf_counter()
    flat_decoded = list(decoder.decode_stream(flat_lines))
    t_flat_fad = time.perf_counter() - start
    assert flat_decoded == flat_full
    print(
        f"flat projected rows:  {t_flat_full * 1000:8.1f} ms generic vs "
        f"{t_flat_fad * 1000:8.1f} ms speculative "
        f"(speedup {t_flat_full / t_flat_fad:4.1f}x, "
        f"hit-rate {decoder.stats.hit_rate:5.1%})"
    )

    # Narrow-projection sweep: the Mison speedup curve (E7's shape).
    print("\nprojection-width sweep (Mison speedup vs number of fields):")
    widths = [
        ["id"],
        ["id", "lang"],
        ["id", "lang", "user.screen_name"],
        ["id", "lang", "user.screen_name", "entities.hashtags[*].text"],
    ]
    for projection in widths:
        start = time.perf_counter()
        for line in lines:
            parse(line)
        t_base = time.perf_counter() - start
        parser = MisonParser(projection)
        start = time.perf_counter()
        for line in lines:
            parser.parse_projected(line)
        t_proj = time.perf_counter() - start
        print(f"   {len(projection)} field(s): {t_base / t_proj:4.1f}x")


if __name__ == "__main__":
    main()
