#!/usr/bin/env python
"""Schema-aware data translation into a data lake (tutorial §5 + E9).

Takes three heterogeneous collections (NYT-like articles, open-data
catalog, GitHub events), registers them in the schema repository, and
translates each to the Avro-like row format and the Parquet-like columnar
format — once schema-aware, once schema-oblivious — printing the size and
quality numbers side by side.

Run:  python examples/data_lake_translation.py
"""

from repro.datasets import github_events, nyt_articles, opendata_catalog
from repro.repository import SchemaRepository
from repro.translation import (
    assemble,
    schema_aware_translate,
    schema_oblivious_translate,
)


def main() -> None:
    collections = {
        "nyt_articles": nyt_articles(300, seed=1),
        "opendata_catalog": opendata_catalog(300, seed=2),
        "github_events": github_events(300, seed=3),
    }

    # -- register everything in the schema repository ---------------------
    repo = SchemaRepository()
    for name, docs in collections.items():
        repo.register(name, docs, k=8)
    print("schema repository:")
    for entry in repo.summary():
        print(
            f"   {entry['collection']:18s} {entry['documents']:4d} docs, "
            f"{entry['structures']:2d} structures, top support {entry['top_structure_support']}"
        )
    print(
        "   collections with path 'keyword.[*]':",
        repo.find_collections_with_path("keyword.[*]"),
    )

    # -- translate ----------------------------------------------------------
    print(
        f"\n{'collection':18s} | {'JSON text':>10s} | {'columnar':>10s} | "
        f"{'avro rows':>10s} | {'typed cols':>10s} | fallbacks"
    )
    print("-" * 84)
    for name, docs in collections.items():
        aware = schema_aware_translate(docs)
        oblivious = schema_oblivious_translate(docs)
        print(
            f"{name:18s} | {oblivious.total_bytes:9d}B | "
            f"{aware.columnar_bytes:9d}B | {aware.avro_bytes:9d}B | "
            f"{aware.typed_fraction:9.1%} | {aware.fallback_count}"
        )
        # Safety: the columnar form must reconstruct the collection when no
        # field needed the JSON-text escape hatch.
        if aware.fallback_count == 0:
            rebuilt = assemble(aware.columnar)
            assert len(rebuilt) == len(docs)

    print(
        "\nThe schema makes the difference: typed columns shrink the data"
        "\nand stay queryable; without a schema everything stays JSON text."
    )


if __name__ == "__main__":
    main()
