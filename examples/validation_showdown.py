#!/usr/bin/env python
"""All five schema/type systems validating the same documents (Parts 2+3).

Builds equivalent schemas in JSON Schema, Joi, JSound, TypeScript and
Swift for a small "account" document family, runs the same valid and
invalid instances through each, and prints the E1 feature matrix that
explains the differences in what they can catch.

Run:  python examples/validation_showdown.py
"""

from repro.jsonschema import compile_schema
import repro.joi as joi
from repro.jsound import compile_jsound
from repro.pl import feature_matrix, render_matrix
from repro.pl import swift as sw
from repro.pl import typescript as ts

JSON_SCHEMA = compile_schema(
    {
        "type": "object",
        "properties": {
            "username": {"type": "string", "pattern": "^[a-z0-9]{3,30}$"},
            "birth_year": {"type": "integer", "minimum": 1900, "maximum": 2013},
            "email": {"type": "string", "format": "email"},
        },
        "required": ["username"],
        "additionalProperties": False,
        # xor(password, access_token) encoded with combinators:
        "oneOf": [
            {"required": ["password"], "not": {"required": ["access_token"]}},
            {"required": ["access_token"], "not": {"required": ["password"]}},
        ],
    }
)
# The xor branches mention fields that additionalProperties must admit:
JSON_SCHEMA = compile_schema(
    {
        **JSON_SCHEMA.document,
        "properties": {
            **JSON_SCHEMA.document["properties"],
            "password": {"type": "string"},
            "access_token": {"type": ["string", "number"]},
        },
    }
)

JOI_SCHEMA = (
    joi.object()
    .keys(
        {
            "username": joi.string().pattern(r"^[a-z0-9]{3,30}$").required(),
            "birth_year": joi.number().integer().min(1900).max(2013),
            "email": joi.string().email(),
            "password": joi.string(),
            "access_token": joi.alternatives(joi.string(), joi.number()),
        }
    )
    .xor("password", "access_token")
)

JSOUND_SCHEMA = compile_jsound(
    {
        "username": "string",
        "birth_year?": "integer",
        "email?": "string",
        "password?": "string",
        "access_token?": "string",  # JSound has no unions: string only!
    }
)

TS_TYPE = ts.TSObject(
    (
        ts.TSProperty("username", ts.STRING),
        ts.TSProperty("birth_year", ts.NUMBER, optional=True),
        ts.TSProperty("email", ts.STRING, optional=True),
        ts.TSProperty("password", ts.STRING, optional=True),
        ts.TSProperty("access_token", ts.union((ts.STRING, ts.NUMBER)), optional=True),
    )
)

SWIFT_TYPE = sw.SwiftStruct.of(
    "Account",
    {
        "username": sw.STRING,
        "birth_year": sw.SwiftOptional(sw.INT),
        "email": sw.SwiftOptional(sw.STRING),
        "password": sw.SwiftOptional(sw.STRING),
        "access_token": sw.SwiftOptional(sw.STRING),  # no unions in Swift
    },
)

INSTANCES = [
    ("password variant", {"username": "ada99", "birth_year": 1994, "password": "pw1"}),
    ("token variant", {"username": "ada99", "access_token": "tok"}),
    ("numeric token", {"username": "ada99", "access_token": 123}),
    ("both credentials", {"username": "ada99", "password": "p", "access_token": "t"}),
    ("neither credential", {"username": "ada99"}),
    ("bad username", {"username": "ADA!", "password": "p"}),
    ("float birth year", {"username": "ada99", "birth_year": 1994.5, "password": "p"}),
]


def main() -> None:
    checks = {
        "JSON Schema": lambda v: JSON_SCHEMA.is_valid(v),
        "Joi": lambda v: JOI_SCHEMA.is_valid(v),
        "JSound": lambda v: JSOUND_SCHEMA.is_valid(v),
        "TypeScript": lambda v: ts.check(v, TS_TYPE),
        "Swift": lambda v: sw.can_decode(SWIFT_TYPE, v),
    }
    header = f"{'instance':22s} | " + " | ".join(f"{n:11s}" for n in checks)
    print(header)
    print("-" * len(header))
    for label, instance in INSTANCES:
        cells = " | ".join(
            f"{'accept' if check(instance) else 'REJECT':11s}" for check in checks.values()
        )
        print(f"{label:22s} | {cells}")

    print(
        "\nNote how only JSON Schema and Joi catch 'both credentials' /"
        " 'neither credential' (xor), and only Swift/JSound/Joi/JSON-Schema"
        " reject the float birth year.\n"
    )
    print(render_matrix(feature_matrix()))


if __name__ == "__main__":
    main()
