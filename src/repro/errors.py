"""Common exception hierarchy for the ``repro`` library.

Every subsystem raises exceptions derived from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems refine
the hierarchy further (for instance :class:`repro.jsonvalue.parser.JsonParseError`
derives from :class:`JsonError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class JsonError(ReproError):
    """Base class for errors in the JSON substrate (lexing, parsing, paths)."""


class SchemaError(ReproError):
    """Base class for malformed schemas in any schema language."""


class ValidationError(ReproError):
    """Base class for instance-does-not-match-schema failures.

    Validators normally *collect* failures into result objects rather than
    raising, but raising APIs (``validate_or_raise``) use this class.
    """


class InferenceError(ReproError):
    """Base class for schema-inference failures (empty input, bad params)."""


class TranslationError(ReproError):
    """Base class for schema-aware translation/codec failures."""


class DecodeError(ReproError):
    """Base class for typed-decoding failures (Swift-like Codable decode)."""
