"""Streaming (SAX-style) event parser.

``iter_events`` walks a JSON document and yields :class:`JsonEvent` items
without materialising a DOM; memory use is bounded by nesting depth.  This
is the substrate used by the streaming schema-inference tools (the tutorial
highlights that mongodb-schema "processes objects in a streaming fashion")
and by projection-based parsing.

``values_from_events`` is the inverse: it rebuilds values from an event
stream, and is used by tests to prove the two representations agree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

from repro.errors import JsonError
from repro.jsonvalue.lexer import TokenType, _Scanner
from repro.jsonvalue.parser import JsonParseError


class JsonEventType(enum.Enum):
    START_OBJECT = "start_object"
    END_OBJECT = "end_object"
    START_ARRAY = "start_array"
    END_ARRAY = "end_array"
    KEY = "key"
    VALUE = "value"


@dataclass(frozen=True)
class JsonEvent:
    """One parse event.

    ``value`` is the member name for ``KEY`` events, the scalar for ``VALUE``
    events, and ``None`` otherwise.  ``offset`` is the source position where
    the event begins, enabling downstream tools to slice raw text.
    """

    type: JsonEventType
    value: Any
    offset: int
    depth: int


_SCALARS = frozenset(
    (
        TokenType.STRING,
        TokenType.NUMBER,
        TokenType.TRUE,
        TokenType.FALSE,
        TokenType.NULL,
    )
)

# Parser phases: about to read a value / an object key / the punctuation
# that follows a completed value.
_PHASE_VALUE = 0
_PHASE_KEY = 1
_PHASE_AFTER = 2


def iter_events(text: str, *, max_depth: int = 512) -> Iterator[JsonEvent]:
    """Yield the event stream of one JSON document.

    Raises :class:`JsonParseError` on malformed documents, including
    trailing garbage after the top-level value.
    """
    scanner = _Scanner(text)
    stack: list[str] = []
    token = scanner.next_token()
    phase = _PHASE_VALUE

    while True:
        if phase == _PHASE_VALUE:
            ttype = token.type
            if ttype is TokenType.LBRACE:
                yield JsonEvent(JsonEventType.START_OBJECT, None, token.offset, len(stack))
                stack.append("object")
                if len(stack) > max_depth:
                    raise JsonParseError(
                        f"maximum nesting depth of {max_depth} exceeded", token
                    )
                token = scanner.next_token()
                if token.type is TokenType.RBRACE:
                    stack.pop()
                    yield JsonEvent(JsonEventType.END_OBJECT, None, token.offset, len(stack))
                    token = scanner.next_token()
                    phase = _PHASE_AFTER
                else:
                    phase = _PHASE_KEY
            elif ttype is TokenType.LBRACKET:
                yield JsonEvent(JsonEventType.START_ARRAY, None, token.offset, len(stack))
                stack.append("array")
                if len(stack) > max_depth:
                    raise JsonParseError(
                        f"maximum nesting depth of {max_depth} exceeded", token
                    )
                token = scanner.next_token()
                if token.type is TokenType.RBRACKET:
                    stack.pop()
                    yield JsonEvent(JsonEventType.END_ARRAY, None, token.offset, len(stack))
                    token = scanner.next_token()
                    phase = _PHASE_AFTER
                # else: stay in _PHASE_VALUE for the first element.
            elif ttype in _SCALARS:
                yield JsonEvent(JsonEventType.VALUE, token.value, token.offset, len(stack))
                token = scanner.next_token()
                phase = _PHASE_AFTER
            else:
                raise JsonParseError("expected a JSON value", token)
        elif phase == _PHASE_KEY:
            if token.type is not TokenType.STRING:
                raise JsonParseError("expected object key string", token)
            yield JsonEvent(JsonEventType.KEY, token.value, token.offset, len(stack))
            token = scanner.next_token()
            if token.type is not TokenType.COLON:
                raise JsonParseError("expected ':'", token)
            token = scanner.next_token()
            phase = _PHASE_VALUE
        else:  # _PHASE_AFTER: a value has just been completed.
            if not stack:
                if token.type is not TokenType.EOF:
                    raise JsonParseError("trailing data after JSON document", token)
                return
            top = stack[-1]
            if token.type is TokenType.COMMA:
                token = scanner.next_token()
                phase = _PHASE_KEY if top == "object" else _PHASE_VALUE
            elif top == "object" and token.type is TokenType.RBRACE:
                stack.pop()
                yield JsonEvent(JsonEventType.END_OBJECT, None, token.offset, len(stack))
                token = scanner.next_token()
            elif top == "array" and token.type is TokenType.RBRACKET:
                stack.pop()
                yield JsonEvent(JsonEventType.END_ARRAY, None, token.offset, len(stack))
                token = scanner.next_token()
            else:
                raise JsonParseError("expected ',' or closing bracket", token)


def iter_line_events(
    lines: Iterable[str], *, max_depth: int = 512
) -> Iterator[JsonEvent]:
    """Yield the concatenated event streams of NDJSON lines.

    One document per non-blank line (blank lines are skipped), so the
    stream feeds the multi-document consumers —
    :func:`values_from_events` and the streaming typer — without ever
    holding more than one line of text.
    """
    for line in lines:
        if not line or line.isspace():
            continue
        yield from iter_events(line, max_depth=max_depth)


def values_from_events(events: Iterable[JsonEvent]) -> Iterator[Any]:
    """Rebuild JSON values from an event stream.

    Yields one value per complete top-level document found in ``events``;
    raises :class:`JsonError` if the stream is truncated or ill-formed.
    """
    stack: list[Any] = []
    key_stack: list[Optional[str]] = []
    pending_key: Optional[str] = None

    def attach(value: Any) -> bool:
        """Attach ``value`` to the innermost container; True if it was top-level."""
        nonlocal pending_key
        if not stack:
            return True
        container = stack[-1]
        if isinstance(container, dict):
            if pending_key is None:
                raise JsonError("object value without a preceding key event")
            container[pending_key] = value
            pending_key = None
        else:
            container.append(value)
        return False

    for event in events:
        etype = event.type
        if etype is JsonEventType.KEY:
            if pending_key is not None:
                raise JsonError("two key events without an intervening value")
            if not isinstance(event.value, str):
                raise JsonError(f"key event with non-string value {event.value!r}")
            pending_key = event.value
        elif etype is JsonEventType.VALUE:
            if attach(event.value):
                yield event.value
        elif etype is JsonEventType.START_OBJECT:
            key_stack.append(pending_key)
            pending_key = None
            stack.append({})
        elif etype is JsonEventType.START_ARRAY:
            key_stack.append(pending_key)
            pending_key = None
            stack.append([])
        elif etype in (JsonEventType.END_OBJECT, JsonEventType.END_ARRAY):
            if not stack:
                raise JsonError("container end event without matching start")
            completed = stack.pop()
            pending_key = key_stack.pop()
            if attach(completed):
                yield completed
        else:  # pragma: no cover - exhaustive enum
            raise JsonError(f"unknown event type {etype!r}")
    if stack:
        raise JsonError("event stream ended inside an unclosed container")
