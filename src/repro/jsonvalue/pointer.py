"""JSON Pointer (RFC 6901).

JSON Schema's ``$ref`` mechanism addresses schema fragments with JSON
Pointers, so the validator needs a complete implementation: parsing with
``~0``/``~1`` unescaping, resolution against a document, and construction
from path tuples.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import JsonError


class JsonPointerError(JsonError):
    """Raised for syntactically invalid pointers or failed resolution."""


class JsonPointer:
    """An immutable parsed JSON Pointer.

    ``JsonPointer.parse("/a/b~1c/0")`` has tokens ``("a", "b/c", "0")``.
    Tokens are kept as strings; array indexing converts on resolution, per
    the RFC.  The empty pointer ``""`` designates the whole document.
    """

    __slots__ = ("tokens",)

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self.tokens: tuple[str, ...] = tuple(tokens)
        for token in self.tokens:
            if not isinstance(token, str):
                raise JsonPointerError(f"pointer tokens must be strings, got {token!r}")

    @classmethod
    def parse(cls, text: str) -> "JsonPointer":
        """Parse the RFC 6901 string representation."""
        if text == "":
            return cls(())
        if not text.startswith("/"):
            raise JsonPointerError(f"pointer must start with '/': {text!r}")
        tokens = []
        for raw in text[1:].split("/"):
            tokens.append(cls._unescape(raw))
        return cls(tokens)

    @staticmethod
    def _unescape(raw: str) -> str:
        # ~1 first would corrupt "~01" (which must decode to "~1"), so the
        # RFC mandates replacing ~1 then ~0 — on split parts, scanning once.
        out = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch == "~":
                if i + 1 >= len(raw) or raw[i + 1] not in "01":
                    raise JsonPointerError(f"invalid escape in pointer token {raw!r}")
                out.append("/" if raw[i + 1] == "1" else "~")
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)

    @staticmethod
    def _escape(token: str) -> str:
        return token.replace("~", "~0").replace("/", "~1")

    def __str__(self) -> str:
        return "".join("/" + self._escape(t) for t in self.tokens)

    def __repr__(self) -> str:
        return f"JsonPointer({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, JsonPointer) and self.tokens == other.tokens

    def __hash__(self) -> int:
        return hash(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[str]:
        return iter(self.tokens)

    def child(self, token: str | int) -> "JsonPointer":
        """Return this pointer extended with one more reference token."""
        return JsonPointer(self.tokens + (str(token),))

    def parent(self) -> "JsonPointer":
        """Return the pointer with the last token removed."""
        if not self.tokens:
            raise JsonPointerError("the root pointer has no parent")
        return JsonPointer(self.tokens[:-1])

    @classmethod
    def from_path(cls, path: Iterable[object]) -> "JsonPointer":
        """Build a pointer from a model path tuple (strs and ints)."""
        return cls(str(step) for step in path)

    def resolve(self, document: Any) -> Any:
        """Return the value this pointer designates within ``document``.

        Raises :class:`JsonPointerError` if any step is missing or has the
        wrong container kind.
        """
        current = document
        for token in self.tokens:
            if isinstance(current, dict):
                if token not in current:
                    raise JsonPointerError(f"member {token!r} not found ({self})")
                current = current[token]
            elif isinstance(current, list):
                index = self._array_index(token)
                if index >= len(current):
                    raise JsonPointerError(f"index {index} out of range ({self})")
                current = current[index]
            else:
                raise JsonPointerError(
                    f"cannot index {type(current).__name__} with {token!r} ({self})"
                )
        return current

    def exists(self, document: Any) -> bool:
        """True if :meth:`resolve` would succeed on ``document``."""
        try:
            self.resolve(document)
        except JsonPointerError:
            return False
        return True

    @staticmethod
    def _array_index(token: str) -> int:
        if token == "-":
            raise JsonPointerError("'-' (past-the-end) cannot be resolved")
        if token == "0":
            return 0
        if not token or token[0] == "0" or not token.isdigit():
            raise JsonPointerError(f"invalid array index {token!r}")
        return int(token)
