"""Iterative DOM parser for JSON text.

``parse`` turns a JSON document into plain Python values using the tokens
produced by :mod:`repro.jsonvalue.lexer`.  The parser is *iterative* (an
explicit container stack rather than recursion) so the configurable
``max_depth`` limit is the only nesting bound — adversarially deep inputs
raise :class:`JsonParseError`, never ``RecursionError``.

Behaviour is controlled by :class:`ParseOptions`:

- ``max_depth`` guards against unbounded nesting;
- ``duplicate_keys`` selects the policy for repeated object members
  (``"last"`` wins by default, matching the stdlib; ``"first"`` and
  ``"error"`` are available because schema tools care about duplicates);
- ``require_top_level_container`` enforces the old RFC 4627 restriction
  some systems still assume.

``parse_lines`` parses newline-delimited JSON (NDJSON), the usual shape of
the datasets the tutorial's inference tools consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Literal, Optional

from repro.errors import JsonError
from repro.jsonvalue.lexer import Token, TokenType, _Scanner

DuplicatePolicy = Literal["last", "first", "error"]


class JsonParseError(JsonError):
    """Raised on structurally malformed JSON documents."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(
            f"{message} at line {token.line}, column {token.column} "
            f"(offset {token.offset})"
        )
        self.raw_message = message
        self.token = token

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` (the
        # one formatted string), which does not match this signature —
        # rebuild from (raw message, token) so parse errors raised in
        # worker processes cross the pipe intact instead of killing the
        # pool's result handler.
        return (type(self), (self.raw_message, self.token))


@dataclass(frozen=True)
class ParseOptions:
    """Knobs for :func:`parse`. The defaults accept any RFC 8259 document."""

    max_depth: int = 512
    duplicate_keys: DuplicatePolicy = "last"
    require_top_level_container: bool = False


DEFAULT_OPTIONS = ParseOptions()

# Parser phases: about to read a value / an object key / the punctuation
# following a completed value.
_PHASE_VALUE = 0
_PHASE_KEY = 1
_PHASE_AFTER = 2

_SCALARS = frozenset(
    (
        TokenType.STRING,
        TokenType.NUMBER,
        TokenType.TRUE,
        TokenType.FALSE,
        TokenType.NULL,
    )
)

_MISSING = object()  # distinguishes "no result yet" from a parsed None


def parse(text: str, options: ParseOptions = DEFAULT_OPTIONS) -> Any:
    """Parse one JSON document from ``text`` and return its value.

    Raises :class:`JsonParseError` (or :class:`~repro.jsonvalue.lexer.JsonLexError`)
    on malformed input, including trailing garbage.
    """
    scanner = _Scanner(text)
    token = scanner.next_token()

    if options.require_top_level_container and token.type not in (
        TokenType.LBRACE,
        TokenType.LBRACKET,
    ):
        raise JsonParseError("top-level value must be an object or array", token)

    duplicate_policy = options.duplicate_keys
    max_depth = options.max_depth

    stack: list[Any] = []  # enclosing containers (dicts and lists)
    key_stack: list[Optional[str]] = []  # pending member name per object frame
    pending_key: Optional[str] = None
    pending_key_token: Optional[Token] = None
    result: Any = _MISSING
    phase = _PHASE_VALUE

    def attach(value: Any) -> None:
        """Store a completed value into the innermost container (or the result)."""
        nonlocal pending_key, result
        if not stack:
            result = value
            return
        container = stack[-1]
        if isinstance(container, dict):
            key = pending_key
            assert key is not None and pending_key_token is not None
            if key in container:
                if duplicate_policy == "error":
                    raise JsonParseError(f"duplicate object key {key!r}", pending_key_token)
                if duplicate_policy == "last":
                    container[key] = value
                # "first": keep the existing binding.
            else:
                container[key] = value
            pending_key = None
        else:
            container.append(value)

    while True:
        if phase == _PHASE_VALUE:
            ttype = token.type
            if ttype is TokenType.LBRACE:
                if len(stack) >= max_depth:
                    raise JsonParseError(
                        f"maximum nesting depth of {max_depth} exceeded", token
                    )
                stack.append({})
                key_stack.append(pending_key)
                pending_key = None
                token = scanner.next_token()
                if token.type is TokenType.RBRACE:
                    completed = stack.pop()
                    pending_key = key_stack.pop()
                    attach(completed)
                    token = scanner.next_token()
                    phase = _PHASE_AFTER
                else:
                    phase = _PHASE_KEY
            elif ttype is TokenType.LBRACKET:
                if len(stack) >= max_depth:
                    raise JsonParseError(
                        f"maximum nesting depth of {max_depth} exceeded", token
                    )
                stack.append([])
                key_stack.append(pending_key)
                pending_key = None
                token = scanner.next_token()
                if token.type is TokenType.RBRACKET:
                    completed = stack.pop()
                    pending_key = key_stack.pop()
                    attach(completed)
                    token = scanner.next_token()
                    phase = _PHASE_AFTER
                # else: stay in _PHASE_VALUE for the first element.
            elif ttype in _SCALARS:
                attach(token.value)
                token = scanner.next_token()
                phase = _PHASE_AFTER
            else:
                raise JsonParseError("expected a JSON value", token)
        elif phase == _PHASE_KEY:
            if token.type is not TokenType.STRING:
                raise JsonParseError("expected object key string", token)
            pending_key = token.value  # type: ignore[assignment]
            pending_key_token = token
            token = scanner.next_token()
            if token.type is not TokenType.COLON:
                raise JsonParseError("expected ':'", token)
            token = scanner.next_token()
            phase = _PHASE_VALUE
        else:  # _PHASE_AFTER: a value has just been completed.
            if not stack:
                if token.type is not TokenType.EOF:
                    raise JsonParseError("trailing data after JSON document", token)
                assert result is not _MISSING
                return result
            top = stack[-1]
            if token.type is TokenType.COMMA:
                token = scanner.next_token()
                phase = _PHASE_KEY if isinstance(top, dict) else _PHASE_VALUE
            elif isinstance(top, dict) and token.type is TokenType.RBRACE:
                completed = stack.pop()
                pending_key = key_stack.pop()
                attach(completed)
                token = scanner.next_token()
            elif isinstance(top, list) and token.type is TokenType.RBRACKET:
                completed = stack.pop()
                pending_key = key_stack.pop()
                attach(completed)
                token = scanner.next_token()
            else:
                raise JsonParseError("expected ',' or closing bracket", token)


def parse_lines(
    lines: Iterable[str], options: ParseOptions = DEFAULT_OPTIONS, *, skip_blank: bool = True
) -> Iterator[Any]:
    """Parse newline-delimited JSON: one document per input line.

    ``lines`` may be any iterable of strings (e.g. an open file).  Blank
    lines are skipped unless ``skip_blank`` is false, in which case they
    raise.
    """
    for line in lines:
        if skip_blank and not line.strip():
            continue
        yield parse(line, options)
