"""A small JSONPath dialect: dotted fields, numeric indexes, and wildcards.

The fast-parsing tools (Mison-style projection) and skeleton mining both
speak in terms of *paths* like ``user.entities.urls[*].expanded_url``.  This
module provides a parsed representation (:class:`JsonPath`), evaluation
against documents, and conversion to/from the tuple paths produced by
:func:`repro.jsonvalue.model.iter_paths`.

Grammar (no quoting — field names here are identifier-like, which covers
the datasets this library generates)::

    path   := step ("." step)*
    step   := field index*
    field  := [^.\\[\\]]+
    index  := "[" (digits | "*") "]"

The root path is written ``$`` (or the empty string).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Union

from repro.errors import JsonError


class JsonPathError(JsonError):
    """Raised for unparsable path expressions."""


@dataclass(frozen=True)
class Field:
    """Select object member ``name``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Index:
    """Select array element ``position``."""

    position: int

    def __str__(self) -> str:
        return f"[{self.position}]"


@dataclass(frozen=True)
class Wildcard:
    """Select every element of an array."""

    def __str__(self) -> str:
        return "[*]"


PathStep = Union[Field, Index, Wildcard]


class JsonPath:
    """A parsed path expression."""

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[PathStep] = ()) -> None:
        self.steps: tuple[PathStep, ...] = tuple(steps)

    @classmethod
    def parse(cls, text: str) -> "JsonPath":
        """Parse ``text`` into a :class:`JsonPath`.

        ``"$"`` and ``""`` denote the root.  A leading ``$.`` is accepted
        and stripped, so both ``a.b`` and ``$.a.b`` work.
        """
        if text in ("", "$"):
            return cls(())
        if text.startswith("$."):
            text = text[2:]
        elif text.startswith("$["):
            text = text[1:]
        steps: list[PathStep] = []
        i = 0
        n = len(text)
        while i < n:
            if text[i] == "[":
                end = text.find("]", i)
                if end < 0:
                    raise JsonPathError(f"unclosed '[' in path {text!r}")
                inner = text[i + 1 : end]
                if inner == "*":
                    steps.append(Wildcard())
                elif inner.isdigit():
                    steps.append(Index(int(inner)))
                else:
                    raise JsonPathError(f"invalid index {inner!r} in path {text!r}")
                i = end + 1
                if i < n and text[i] == ".":
                    i += 1
            else:
                j = i
                while j < n and text[j] not in ".[":
                    j += 1
                name = text[i:j]
                if not name:
                    raise JsonPathError(f"empty field name in path {text!r}")
                steps.append(Field(name))
                i = j
                if i < n and text[i] == ".":
                    i += 1
                    if i >= n:
                        raise JsonPathError(f"path {text!r} ends with '.'")
        return cls(steps)

    @classmethod
    def from_tuple(cls, path: Iterable[object], *, generalize_indexes: bool = False) -> "JsonPath":
        """Convert a tuple path (strs and ints) from ``iter_paths``.

        With ``generalize_indexes`` every concrete array position becomes a
        wildcard — the abstraction skeleton mining applies.
        """
        steps: list[PathStep] = []
        for step in path:
            if isinstance(step, str):
                steps.append(Field(step))
            elif isinstance(step, int):
                steps.append(Wildcard() if generalize_indexes else Index(step))
            else:
                raise JsonPathError(f"invalid path step {step!r}")
        return cls(steps)

    def __str__(self) -> str:
        parts: list[str] = []
        for step in self.steps:
            if isinstance(step, Field):
                if parts:
                    parts.append(".")
                parts.append(step.name)
            else:
                parts.append(str(step))
        return "".join(parts) if parts else "$"

    def __repr__(self) -> str:
        return f"JsonPath({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, JsonPath) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def child(self, step: PathStep) -> "JsonPath":
        return JsonPath(self.steps + (step,))

    def is_prefix_of(self, other: "JsonPath") -> bool:
        """True if every step of ``self`` matches the start of ``other``.

        A :class:`Wildcard` in ``self`` matches both wildcards and concrete
        indexes in ``other`` (the projection-pushdown containment rule).
        """
        if len(self.steps) > len(other.steps):
            return False
        for mine, theirs in zip(self.steps, other.steps):
            if isinstance(mine, Wildcard):
                if not isinstance(theirs, (Wildcard, Index)):
                    return False
            elif mine != theirs:
                return False
        return True

    def evaluate(self, document: Any) -> list[Any]:
        """Return every value ``document`` holds at this path.

        Missing members and out-of-range indexes yield no results (rather
        than raising) — paths are queries, not assertions.
        """
        current = [document]
        for step in self.steps:
            next_values: list[Any] = []
            if isinstance(step, Field):
                for value in current:
                    if isinstance(value, dict) and step.name in value:
                        next_values.append(value[step.name])
            elif isinstance(step, Index):
                for value in current:
                    if isinstance(value, list) and step.position < len(value):
                        next_values.append(value[step.position])
            else:  # Wildcard
                for value in current:
                    if isinstance(value, list):
                        next_values.extend(value)
            current = next_values
            if not current:
                return []
        return current

    def first(self, document: Any, default: Any = None) -> Any:
        """Return the first match or ``default``."""
        matches = self.evaluate(document)
        return matches[0] if matches else default


def parse_many(texts: Iterable[str]) -> list[JsonPath]:
    """Parse several path expressions (convenience for projection specs)."""
    return [JsonPath.parse(t) for t in texts]


def leaf_paths(document: Any) -> Iterator[JsonPath]:
    """Yield the generalized (wildcarded) path of every scalar leaf."""
    from repro.jsonvalue.model import iter_paths

    for path, _ in iter_paths(document, leaves_only=True):
        yield JsonPath.from_tuple(path, generalize_indexes=True)
