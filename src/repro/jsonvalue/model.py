"""JSON value model: kinds, equality, freezing, and structural statistics.

JSON values are plain Python objects (``dict``/``list``/``str``/``int``/
``float``/``bool``/``None``).  This module provides the operations the rest
of the library needs on top of that representation:

- :func:`kind_of` maps a value to its :class:`JsonKind`, treating ``bool``
  correctly (``bool`` is a subclass of ``int`` in Python, which silently
  corrupts naive ``isinstance`` chains);
- :func:`strict_equal` distinguishes ``1`` from ``1.0`` and ``True`` from
  ``1``, which ordinary ``==`` does not;
- :func:`freeze` converts a value into a hashable form so values can be used
  as dictionary keys (needed by speculative parsers and skeleton mining);
- :func:`structural_stats` computes depth/size statistics used throughout
  the benchmarks;
- :func:`iter_paths` enumerates root-to-leaf paths, the core primitive of
  skeleton extraction.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Iterator, Tuple


class JsonKind(enum.Enum):
    """The six JSON kinds, plus nothing at all is not represented here.

    ``NUMBER`` covers both ints and floats; use :func:`is_integer_value`
    when the distinction matters (type inference keeps them separate).
    """

    NULL = "null"
    BOOLEAN = "boolean"
    NUMBER = "number"
    STRING = "string"
    ARRAY = "array"
    OBJECT = "object"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def kind_of(value: Any) -> JsonKind:
    """Return the :class:`JsonKind` of ``value``.

    Raises ``TypeError`` for non-JSON values (e.g. tuples, sets, datetimes),
    making accidental leakage of host types an immediate error rather than
    a silent mis-classification.
    """
    # bool must be tested before int: isinstance(True, int) is True.
    if value is None:
        return JsonKind.NULL
    if isinstance(value, bool):
        return JsonKind.BOOLEAN
    if isinstance(value, (int, float)):
        return JsonKind.NUMBER
    if isinstance(value, str):
        return JsonKind.STRING
    if isinstance(value, list):
        return JsonKind.ARRAY
    if isinstance(value, dict):
        return JsonKind.OBJECT
    raise TypeError(f"not a JSON value: {type(value).__name__}")


def is_integer_value(value: Any) -> bool:
    """True for ``int`` (but not ``bool``) values."""
    return isinstance(value, int) and not isinstance(value, bool)


def is_json_value(value: Any, *, _depth: int = 0, max_depth: int = 1000) -> bool:
    """Check recursively that ``value`` is representable in JSON.

    Floats must be finite (RFC 8259 has no NaN/Infinity); object keys must
    be strings.
    """
    if _depth > max_depth:
        return False
    if value is None or isinstance(value, bool) or isinstance(value, str):
        return True
    if isinstance(value, int):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    if isinstance(value, list):
        return all(is_json_value(v, _depth=_depth + 1, max_depth=max_depth) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and is_json_value(v, _depth=_depth + 1, max_depth=max_depth)
            for k, v in value.items()
        )
    return False


def strict_equal(left: Any, right: Any) -> bool:
    """Equality that distinguishes ``1``/``1.0``/``True``.

    Python's ``==`` conflates numeric types and booleans, so
    ``{"a": 1} == {"a": True}`` — which is wrong for schema work where
    ``boolean`` and ``number`` are different kinds.  Object key *order* is
    not significant.
    """
    lk = kind_of(left)
    rk = kind_of(right)
    if lk is not rk:
        return False
    if lk is JsonKind.NUMBER:
        if is_integer_value(left) is not is_integer_value(right):
            return False
        return left == right
    if lk is JsonKind.ARRAY:
        if len(left) != len(right):
            return False
        return all(strict_equal(a, b) for a, b in zip(left, right))
    if lk is JsonKind.OBJECT:
        if left.keys() != right.keys():
            return False
        return all(strict_equal(v, right[k]) for k, v in left.items())
    return left == right


# Sentinel wrappers used by freeze() so frozen objects/arrays cannot collide
# with string or tuple scalars that happen to look the same.
_OBJ_TAG = "$obj"
_ARR_TAG = "$arr"
_NUM_TAG = "$num"


def freeze(value: Any) -> Any:
    """Convert ``value`` into a hashable, canonical form.

    Objects become ``("$obj", ((k, frozen_v), ...))`` with keys sorted,
    arrays become ``("$arr", (frozen_v, ...))``, and numbers are tagged with
    their concrete Python type so ``1`` and ``1.0`` freeze differently.
    ``freeze`` is injective on JSON values up to :func:`strict_equal`.
    """
    k = kind_of(value)
    if k is JsonKind.OBJECT:
        return (_OBJ_TAG, tuple((key, freeze(v)) for key, v in sorted(value.items())))
    if k is JsonKind.ARRAY:
        return (_ARR_TAG, tuple(freeze(v) for v in value))
    if k is JsonKind.NUMBER:
        return (_NUM_TAG, "int" if is_integer_value(value) else "float", value)
    return value


def unfreeze(frozen: Any) -> Any:
    """Inverse of :func:`freeze` (object key order becomes sorted order)."""
    if isinstance(frozen, tuple):
        tag = frozen[0]
        if tag == _OBJ_TAG:
            return {k: unfreeze(v) for k, v in frozen[1]}
        if tag == _ARR_TAG:
            return [unfreeze(v) for v in frozen[1]]
        if tag == _NUM_TAG:
            return frozen[2]
        raise ValueError(f"not a frozen JSON value: {frozen!r}")
    return frozen


@dataclass(frozen=True)
class StructuralStats:
    """Aggregate structural measurements of a JSON value.

    ``node_count`` counts every value (scalars, arrays, objects);
    ``max_depth`` is 1 for scalars; ``leaf_count`` counts scalars only.
    """

    node_count: int
    max_depth: int
    leaf_count: int
    object_count: int
    array_count: int
    key_count: int

    def __add__(self, other: "StructuralStats") -> "StructuralStats":
        return StructuralStats(
            node_count=self.node_count + other.node_count,
            max_depth=max(self.max_depth, other.max_depth),
            leaf_count=self.leaf_count + other.leaf_count,
            object_count=self.object_count + other.object_count,
            array_count=self.array_count + other.array_count,
            key_count=self.key_count + other.key_count,
        )


def structural_stats(value: Any) -> StructuralStats:
    """Compute :class:`StructuralStats` for ``value`` iteratively.

    Iterative (explicit stack) so that deeply nested values measured by the
    benchmarks do not hit Python's recursion limit.
    """
    node_count = 0
    leaf_count = 0
    object_count = 0
    array_count = 0
    key_count = 0
    max_depth = 0
    stack: list[tuple[Any, int]] = [(value, 1)]
    while stack:
        current, depth = stack.pop()
        node_count += 1
        max_depth = max(max_depth, depth)
        kind = kind_of(current)
        if kind is JsonKind.OBJECT:
            object_count += 1
            key_count += len(current)
            for child in current.values():
                stack.append((child, depth + 1))
        elif kind is JsonKind.ARRAY:
            array_count += 1
            for child in current:
                stack.append((child, depth + 1))
        else:
            leaf_count += 1
    return StructuralStats(
        node_count=node_count,
        max_depth=max_depth,
        leaf_count=leaf_count,
        object_count=object_count,
        array_count=array_count,
        key_count=key_count,
    )


PathTuple = Tuple[object, ...]


def iter_paths(value: Any, *, leaves_only: bool = True) -> Iterator[tuple[PathTuple, Any]]:
    """Yield ``(path, subvalue)`` pairs in document order.

    A path is a tuple of object keys (``str``) and array positions (``int``).
    With ``leaves_only`` (the default) only scalar leaves are yielded, which
    is what skeleton mining and projection need; otherwise every node is
    yielded, including the root under the empty path.
    """
    stack: list[tuple[PathTuple, Any]] = [((), value)]
    while stack:
        path, current = stack.pop()
        kind = kind_of(current)
        container = kind in (JsonKind.OBJECT, JsonKind.ARRAY)
        if not container or not leaves_only:
            yield path, current
        if kind is JsonKind.OBJECT:
            for key in reversed(list(current.keys())):
                stack.append((path + (key,), current[key]))
        elif kind is JsonKind.ARRAY:
            for index in range(len(current) - 1, -1, -1):
                stack.append((path + (index,), current[index]))


def sort_keys_deep(value: Any) -> Any:
    """Return a copy of ``value`` with all object keys sorted recursively.

    Useful for canonical output and stable diffing in tests.
    """
    kind = kind_of(value)
    if kind is JsonKind.OBJECT:
        return {k: sort_keys_deep(value[k]) for k in sorted(value.keys())}
    if kind is JsonKind.ARRAY:
        return [sort_keys_deep(v) for v in value]
    return value
