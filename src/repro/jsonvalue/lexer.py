"""Tokenizer for RFC 8259 JSON text.

Produces :class:`Token` objects carrying byte offsets and line/column
positions, which the DOM parser, the streaming event parser, and the
Mison-style structural index all consume.  The lexer is strict by default
(no NaN/Infinity, no comments, no trailing garbage is its caller's concern)
and decodes string escapes including surrogate pairs.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import JsonError


class JsonLexError(JsonError):
    """Raised on malformed input at the token level."""

    def __init__(self, message: str, offset: int, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column} (offset {offset})")
        self.raw_message = message
        self.offset = offset
        self.line = line
        self.column = column

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` (the
        # one formatted string); rebuild from the real signature instead
        # so lexer errors survive the worker→parent pipe intact.
        return (type(self), (self.raw_message, self.offset, self.line, self.column))


class TokenType(enum.Enum):
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    COMMA = ","
    STRING = "string"
    NUMBER = "number"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` is the decoded Python value for STRING/NUMBER/TRUE/FALSE/NULL
    tokens and ``None`` for punctuation. ``offset``/``end_offset`` index into
    the source text (useful for raw-slice tricks in the fast parsers).
    """

    type: TokenType
    value: object
    offset: int
    end_offset: int
    line: int
    column: int


_WHITESPACE = " \t\n\r"
_PUNCT = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
}
_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}
_NUMBER_START = set("-0123456789")
_DIGITS = set("0123456789")

# --------------------------------------------------------------------------
# Shared token patterns.
#
# The lexer's own fast paths and the regex-vectorized structural scan of
# :mod:`repro.types.build` compose these fragments, so there is exactly one
# definition of "a simple string" / "an RFC 8259 number" in the system.
#
# - SIMPLE_STRING_PATTERN matches a string literal with no escapes and no
#   unescaped control characters — the overwhelmingly common case, which
#   needs no decoding at all (its value is the raw slice between the
#   quotes).  Strings containing ``\`` or a control character fail the
#   pattern *entirely* (the character class cannot match them), so a match
#   is always a complete, valid literal.
# - FLOAT_PATTERN / INT_PATTERN split the number grammar by whether the
#   literal has a fraction or exponent; FLOAT must be tried first (regex
#   alternation is first-match, and every float starts with a valid int).
#   Both match *maximally*, but a match followed by one of
#   NUMBER_BOUNDARY_CHARS (".", "e", "E", a digit) may extend into a
#   malformed literal ("01", "1.e5", "1e+") — callers must defer those to
#   the character-level scan for the exact error.
# --------------------------------------------------------------------------

STRING_BODY_PATTERN = r'[^"\\\x00-\x1f]*'
SIMPLE_STRING_PATTERN = '"' + STRING_BODY_PATTERN + '"'
INT_PATTERN = r"-?(?:0|[1-9][0-9]*)"
FLOAT_PATTERN = (
    r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+(?:[eE][+-]?[0-9]+)?|[eE][+-]?[0-9]+)"
)
WHITESPACE_PATTERN = r"[ \t\n\r]*"
NUMBER_BOUNDARY_CHARS = ".eE0123456789"
# The possibly-empty fraction/exponent tail after an INT_PATTERN match.
# ``INT_PATTERN + "(" + NUMBER_TAIL_PATTERN + ")"`` matches every valid
# number maximally while exposing "was it an int" as "is the tail group
# empty" — the shape the fused scan machines key their dispatch on.  The
# boundary caveat above applies unchanged: a match followed by one of
# NUMBER_BOUNDARY_CHARS may extend into a malformed literal.
NUMBER_TAIL_PATTERN = r"(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"

# --------------------------------------------------------------------------
# Bytes mirrors of the shared fragments.
#
# The bytes-native structural scan (`EventTypeEncoder.encode_bytes`) runs
# the same grammar directly over mmap / shared-memory buffers.  Every
# fragment mirrors its str twin by plain ASCII encoding — including the
# string body: in bytes mode the very same class ``[^"\\\x00-\x1f]``
# matches any byte ``\x20``–``\xff`` except ``"`` and ``\``, which skips
# UTF-8 multibyte content *structurally* (multibyte sequences contain no
# bytes below ``\x80``, so they can never hide a quote or backslash and
# the byte-level string extent agrees with the char-level one whenever
# the bytes are valid UTF-8).  Validity itself is checked separately and
# lazily with UTF8_VALIDATION_PATTERN — strict RFC 3629 (no overlongs,
# no surrogates, nothing above U+10FFFF, exactly the sequences
# ``bytes.decode("utf-8")`` accepts), laid out as "ASCII runs separated
# by single multibyte sequences" so every alternative is disjoint on its
# first byte and the backtracking engine scans in one forward pass.
# --------------------------------------------------------------------------

INT_PATTERN_BYTES = INT_PATTERN.encode("ascii")
FLOAT_PATTERN_BYTES = FLOAT_PATTERN.encode("ascii")
WHITESPACE_PATTERN_BYTES = WHITESPACE_PATTERN.encode("ascii")
NUMBER_BOUNDARY_BYTES = NUMBER_BOUNDARY_CHARS.encode("ascii")
NUMBER_TAIL_PATTERN_BYTES = NUMBER_TAIL_PATTERN.encode("ascii")
STRING_BODY_PATTERN_BYTES = STRING_BODY_PATTERN.encode("ascii")

# One valid escape sequence.  Any \uXXXX is lexically valid (the lexer
# preserves lone surrogates), so four hex digits suffice.
STRING_ESCAPE_PATTERN_BYTES = rb'\\(?:["\\/bfnrt]|u[0-9a-fA-F]{4})'
# A whole string-literal body, escapes included — used by the bytes
# scan's per-token tier, where a match is a complete literal whose
# decoded content would lex identically (escape validity included; only
# UTF-8 validity remains for the lazy document-level check).
FULL_STRING_BODY_PATTERN_BYTES = (
    STRING_BODY_PATTERN_BYTES
    + rb"(?:(?:"
    + STRING_ESCAPE_PATTERN_BYTES
    + rb")"
    + STRING_BODY_PATTERN_BYTES
    + rb")*"
)

# One well-formed multibyte UTF-8 sequence (RFC 3629 table).
UTF8_MULTIBYTE_PATTERN = (
    rb"[\xc2-\xdf][\x80-\xbf]"
    rb"|\xe0[\xa0-\xbf][\x80-\xbf]"
    rb"|[\xe1-\xec][\x80-\xbf][\x80-\xbf]"
    rb"|\xed[\x80-\x9f][\x80-\xbf]"
    rb"|[\xee-\xef][\x80-\xbf][\x80-\xbf]"
    rb"|\xf0[\x90-\xbf][\x80-\xbf][\x80-\xbf]"
    rb"|[\xf1-\xf3][\x80-\xbf][\x80-\xbf][\x80-\xbf]"
    rb"|\xf4[\x80-\x8f][\x80-\xbf][\x80-\xbf]"
)
# Maximal well-formed UTF-8 prefix: a match ending before the region's
# end pinpoints the first invalid sequence.
UTF8_VALIDATION_PATTERN = (
    rb"[\x00-\x7f]*(?:(?:" + UTF8_MULTIBYTE_PATTERN + rb")[\x00-\x7f]*)*"
)

_SIMPLE_STRING_RE = re.compile(SIMPLE_STRING_PATTERN)
# One capturing group around the float alternative: ``lastindex`` is 1
# exactly when the literal has a fraction or exponent.
_NUMBER_RE = re.compile("(" + FLOAT_PATTERN + ")|" + INT_PATTERN)
_WHITESPACE_RE = re.compile(WHITESPACE_PATTERN)
_NUMBER_BOUNDARY = frozenset(NUMBER_BOUNDARY_CHARS)


class _Scanner:
    """Mutable cursor over the source text with line/column tracking."""

    __slots__ = ("text", "length", "pos", "line", "line_start")

    def __init__(self, text: str) -> None:
        self.text = text
        self.length = len(text)
        self.pos = 0
        self.line = 1
        self.line_start = 0

    @property
    def column(self) -> int:
        return self.pos - self.line_start + 1

    def error(self, message: str, offset: Optional[int] = None) -> JsonLexError:
        pos = self.pos if offset is None else offset
        return JsonLexError(message, pos, self.line, pos - self.line_start + 1)

    def skip_whitespace(self) -> None:
        pos = self.pos
        end = _WHITESPACE_RE.match(self.text, pos).end()
        if end != pos:
            # One C-speed match consumes the whole run; newlines are
            # re-counted only when the run contains any.
            newlines = self.text.count("\n", pos, end)
            if newlines:
                self.line += newlines
                self.line_start = self.text.rfind("\n", pos, end) + 1
            self.pos = end

    def scan_string(self) -> Token:
        """Scan a string literal; ``pos`` must sit on the opening quote."""
        text = self.text
        start = self.pos
        simple = _SIMPLE_STRING_RE.match(text, start)
        if simple is not None:
            # No escapes, no control characters: the value is the raw
            # slice (and cannot contain a newline, so line bookkeeping
            # is untouched).
            end = simple.end()
            token = Token(
                TokenType.STRING, text[start + 1 : end - 1], start, end,
                self.line, self.column,
            )
            self.pos = end
            return token
        line = self.line
        column = self.column
        pos = start + 1
        length = self.length
        # Fast path: no escapes — find the closing quote in one scan.
        chunks: list[str] = []
        chunk_start = pos
        while True:
            if pos >= length:
                raise self.error("unterminated string", start)
            ch = text[pos]
            if ch == '"':
                chunks.append(text[chunk_start:pos])
                pos += 1
                break
            if ch == "\\":
                chunks.append(text[chunk_start:pos])
                pos += 1
                if pos >= length:
                    raise self.error("unterminated escape sequence", start)
                esc = text[pos]
                if esc in _ESCAPES:
                    chunks.append(_ESCAPES[esc])
                    pos += 1
                elif esc == "u":
                    code, pos = self._scan_unicode_escape(pos + 1)
                    chunks.append(code)
                else:
                    raise self.error(f"invalid escape character {esc!r}", pos)
                chunk_start = pos
            elif ch < "\x20":
                raise self.error(
                    f"unescaped control character 0x{ord(ch):02x} in string", pos
                )
            else:
                pos += 1
        self.pos = pos
        return Token(TokenType.STRING, "".join(chunks), start, pos, line, column)

    def _scan_unicode_escape(self, pos: int) -> tuple[str, int]:
        """Decode ``\\uXXXX`` starting after the ``u``; handles surrogate pairs."""
        text = self.text
        if pos + 4 > self.length:
            raise self.error("truncated \\u escape", pos - 2)
        hex_digits = text[pos : pos + 4]
        try:
            code = int(hex_digits, 16)
        except ValueError:
            raise self.error(f"invalid \\u escape {hex_digits!r}", pos - 2) from None
        pos += 4
        if 0xD800 <= code <= 0xDBFF:
            # High surrogate: must be followed by \uDC00-\uDFFF.
            if text[pos : pos + 2] == "\\u":
                try:
                    low = int(text[pos + 2 : pos + 6], 16)
                except ValueError:
                    low = -1
                if 0xDC00 <= low <= 0xDFFF:
                    combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                    return chr(combined), pos + 6
            # Lone surrogate: preserved as-is (matches stdlib json behaviour).
            return chr(code), pos
        return chr(code), pos

    def scan_number(self) -> Token:
        """Scan a number literal per the RFC 8259 grammar."""
        text = self.text
        start = self.pos
        line = self.line
        column = self.column
        pos = start
        length = self.length
        fast = _NUMBER_RE.match(text, start)
        if fast is not None:
            end = fast.end()
            if end >= length or text[end] not in _NUMBER_BOUNDARY:
                # Maximal valid literal with a clean boundary; a trailing
                # ".", "e"/"E" or digit could extend into a malformed
                # literal ("01", "1.e5", "1e+"), which the character walk
                # below rejects with the exact error.
                literal = text[start:end]
                value = float(literal) if fast.lastindex else int(literal)
                self.pos = end
                return Token(TokenType.NUMBER, value, start, end, line, column)
        if text[pos] == "-":
            pos += 1
            if pos >= length or text[pos] not in _DIGITS:
                raise self.error("minus sign must be followed by digits", start)
        if text[pos] == "0":
            pos += 1
            if pos < length and text[pos] in _DIGITS:
                raise self.error("leading zeros are not allowed", start)
        else:
            while pos < length and text[pos] in _DIGITS:
                pos += 1
        is_float = False
        if pos < length and text[pos] == ".":
            is_float = True
            pos += 1
            if pos >= length or text[pos] not in _DIGITS:
                raise self.error("decimal point must be followed by digits", pos)
            while pos < length and text[pos] in _DIGITS:
                pos += 1
        if pos < length and text[pos] in "eE":
            is_float = True
            pos += 1
            if pos < length and text[pos] in "+-":
                pos += 1
            if pos >= length or text[pos] not in _DIGITS:
                raise self.error("exponent must contain digits", pos)
            while pos < length and text[pos] in _DIGITS:
                pos += 1
        literal = text[start:pos]
        value: object = float(literal) if is_float else int(literal)
        self.pos = pos
        return Token(TokenType.NUMBER, value, start, pos, line, column)

    def scan_keyword(self) -> Token:
        text = self.text
        start = self.pos
        line = self.line
        column = self.column
        for word, token_type, value in (
            ("true", TokenType.TRUE, True),
            ("false", TokenType.FALSE, False),
            ("null", TokenType.NULL, None),
        ):
            if text.startswith(word, start):
                self.pos = start + len(word)
                return Token(token_type, value, start, self.pos, line, column)
        raise self.error(f"unexpected character {text[start]!r}", start)

    def next_token(self) -> Token:
        self.skip_whitespace()
        if self.pos >= self.length:
            return Token(TokenType.EOF, None, self.pos, self.pos, self.line, self.column)
        ch = self.text[self.pos]
        punct = _PUNCT.get(ch)
        if punct is not None:
            token = Token(punct, None, self.pos, self.pos + 1, self.line, self.column)
            self.pos += 1
            return token
        if ch == '"':
            return self.scan_string()
        if ch in _NUMBER_START:
            return self.scan_number()
        return self.scan_keyword()


def tokenize(text: str) -> Iterator[Token]:
    """Yield every token of ``text`` including a final EOF token."""
    scanner = _Scanner(text)
    while True:
        token = scanner.next_token()
        yield token
        if token.type is TokenType.EOF:
            return
