"""JSON substrate: data model, parser, serializer, pointers, and paths.

This package is the foundation every other subsystem builds on.  It
implements, from scratch:

- a tokenizer and recursive-descent parser for RFC 8259 JSON
  (:mod:`repro.jsonvalue.lexer`, :mod:`repro.jsonvalue.parser`),
- a constant-memory streaming event parser (:mod:`repro.jsonvalue.events`),
- a serializer with compact and pretty modes (:mod:`repro.jsonvalue.serializer`),
- JSON Pointer, RFC 6901 (:mod:`repro.jsonvalue.pointer`),
- a small JSONPath dialect used by projections and skeleton mining
  (:mod:`repro.jsonvalue.path`),
- model helpers: kinds, strict equality, freezing, structural statistics
  (:mod:`repro.jsonvalue.model`).

JSON values are represented as plain Python objects: ``dict`` (objects,
insertion-ordered), ``list`` (arrays), ``str``, ``int``, ``float``, ``bool``
and ``None``.  ``int`` and ``float`` are deliberately kept distinct, and
``bool`` is never conflated with numbers.
"""

from repro.jsonvalue.model import (
    JsonKind,
    kind_of,
    is_json_value,
    strict_equal,
    freeze,
    unfreeze,
    structural_stats,
    StructuralStats,
    iter_paths,
    sort_keys_deep,
)
from repro.jsonvalue.lexer import JsonLexError, Token, TokenType, tokenize
from repro.jsonvalue.parser import JsonParseError, ParseOptions, parse, parse_lines
from repro.jsonvalue.events import JsonEvent, JsonEventType, iter_events, values_from_events
from repro.jsonvalue.serializer import DumpOptions, dumps, dump_lines
from repro.jsonvalue.pointer import JsonPointer, JsonPointerError
from repro.jsonvalue.path import JsonPath, JsonPathError, PathStep, Field, Index, Wildcard

__all__ = [
    "JsonKind",
    "kind_of",
    "is_json_value",
    "strict_equal",
    "freeze",
    "unfreeze",
    "structural_stats",
    "StructuralStats",
    "iter_paths",
    "sort_keys_deep",
    "JsonLexError",
    "Token",
    "TokenType",
    "tokenize",
    "JsonParseError",
    "ParseOptions",
    "parse",
    "parse_lines",
    "JsonEvent",
    "JsonEventType",
    "iter_events",
    "values_from_events",
    "DumpOptions",
    "dumps",
    "dump_lines",
    "JsonPointer",
    "JsonPointerError",
    "JsonPath",
    "JsonPathError",
    "PathStep",
    "Field",
    "Index",
    "Wildcard",
]
