"""JSON serializer.

``dumps`` renders a JSON value to text, with compact and pretty modes.
It refuses non-JSON values loudly (tuples, sets, NaN/Infinity by default),
because a serializer that guesses is how host-language artifacts leak into
datasets.  ``dump_lines`` writes NDJSON, the dataset format used throughout
the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import JsonError

# Characters that must be escaped inside JSON strings, mapped to their
# two-character escape where one exists.
_SHORT_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


@dataclass(frozen=True)
class DumpOptions:
    """Knobs for :func:`dumps`.

    ``indent=None`` yields compact output with no insignificant whitespace;
    an integer yields pretty-printed output.  ``ensure_ascii`` escapes all
    non-ASCII characters with ``\\uXXXX``.  ``allow_nan`` permits the
    JavaScript extensions ``NaN``/``Infinity`` (off by default: RFC 8259
    forbids them).
    """

    indent: int | None = None
    sort_keys: bool = False
    ensure_ascii: bool = False
    allow_nan: bool = False


DEFAULT_DUMP_OPTIONS = DumpOptions()
COMPACT = DEFAULT_DUMP_OPTIONS
PRETTY = DumpOptions(indent=2)
CANONICAL = DumpOptions(sort_keys=True, ensure_ascii=True)


def escape_string(value: str, *, ensure_ascii: bool = False) -> str:
    """Return ``value`` quoted and escaped as a JSON string literal."""
    parts: list[str] = ['"']
    for ch in value:
        escape = _SHORT_ESCAPES.get(ch)
        if escape is not None:
            parts.append(escape)
        elif ch < "\x20":
            parts.append(f"\\u{ord(ch):04x}")
        elif ensure_ascii and ord(ch) > 0x7F:
            code = ord(ch)
            if code > 0xFFFF:
                # Encode as a surrogate pair.
                code -= 0x10000
                high = 0xD800 + (code >> 10)
                low = 0xDC00 + (code & 0x3FF)
                parts.append(f"\\u{high:04x}\\u{low:04x}")
            else:
                parts.append(f"\\u{code:04x}")
        else:
            parts.append(ch)
    parts.append('"')
    return "".join(parts)


def _format_number(value: Any, allow_nan: bool) -> str:
    if isinstance(value, int):
        return str(value)
    if not math.isfinite(value):
        if not allow_nan:
            raise JsonError(f"non-finite float {value!r} is not valid JSON")
        if math.isnan(value):
            return "NaN"
        return "Infinity" if value > 0 else "-Infinity"
    # repr() gives the shortest round-tripping representation in Python 3.
    text = repr(value)
    return text


def dumps(value: Any, options: DumpOptions = DEFAULT_DUMP_OPTIONS) -> str:
    """Serialize ``value`` to a JSON text string.

    Raises :class:`~repro.errors.JsonError` for values outside the JSON data
    model (non-string keys, host containers, non-finite floats unless
    ``allow_nan``).
    """
    parts: list[str] = []
    _write(value, options, parts, 0)
    return "".join(parts)


def _write(value: Any, options: DumpOptions, parts: list[str], depth: int) -> None:
    if value is None:
        parts.append("null")
        return
    if isinstance(value, bool):
        parts.append("true" if value else "false")
        return
    if isinstance(value, (int, float)):
        parts.append(_format_number(value, options.allow_nan))
        return
    if isinstance(value, str):
        parts.append(escape_string(value, ensure_ascii=options.ensure_ascii))
        return
    if isinstance(value, list):
        _write_array(value, options, parts, depth)
        return
    if isinstance(value, dict):
        _write_object(value, options, parts, depth)
        return
    raise JsonError(f"cannot serialize {type(value).__name__} as JSON")


def _newline_indent(options: DumpOptions, depth: int) -> str:
    assert options.indent is not None
    return "\n" + " " * (options.indent * depth)


def _write_array(value: list, options: DumpOptions, parts: list[str], depth: int) -> None:
    if not value:
        parts.append("[]")
        return
    parts.append("[")
    pretty = options.indent is not None
    for i, item in enumerate(value):
        if i:
            parts.append(",")
        if pretty:
            parts.append(_newline_indent(options, depth + 1))
        _write(item, options, parts, depth + 1)
    if pretty:
        parts.append(_newline_indent(options, depth))
    parts.append("]")


def _write_object(value: dict, options: DumpOptions, parts: list[str], depth: int) -> None:
    if not value:
        parts.append("{}")
        return
    keys = sorted(value.keys()) if options.sort_keys else list(value.keys())
    parts.append("{")
    pretty = options.indent is not None
    for i, key in enumerate(keys):
        if not isinstance(key, str):
            raise JsonError(f"object keys must be strings, got {type(key).__name__}")
        if i:
            parts.append(",")
        if pretty:
            parts.append(_newline_indent(options, depth + 1))
        parts.append(escape_string(key, ensure_ascii=options.ensure_ascii))
        parts.append(": " if pretty else ":")
        _write(value[key], options, parts, depth + 1)
    if pretty:
        parts.append(_newline_indent(options, depth))
    parts.append("}")


def dump_lines(values: Iterable[Any], options: DumpOptions = DEFAULT_DUMP_OPTIONS) -> Iterator[str]:
    """Yield one compact JSON text per value (NDJSON lines, no newline)."""
    if options.indent is not None:
        raise JsonError("NDJSON lines must be compact; indent is not allowed")
    for value in values:
        yield dumps(value, options)
