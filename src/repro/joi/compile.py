"""Compile Joi schemas into JSON Schema documents.

This is the expressiveness bridge the tutorial draws between Part 2's two
schema languages: everything Joi can state about JSON objects can be
encoded in JSON Schema, but the co-occurrence constraints require boolean
combinators:

- ``a.and_(x, y)``   → all present or none: ``anyOf([required both, not anyOf required-each])``
- ``a.or_(x, y)``    → ``anyOf([required x], [required y])``
- ``a.xor(x, y)``    → ``oneOf`` over "this one present, the others absent"
- ``a.nand(x, y)``   → ``not(allOf required-each)``
- ``with_(k, p...)`` → ``anyOf([not required k], [required p...])``
- ``without(k, p…)`` → ``anyOf([not required k], [none of p present])``
- ``when(ref, is, then, otherwise)`` → ``if``/``then``/``else``

The output validates identically on the supported fragment — a property
test generates witnesses from the compiled schema and replays them through
the original Joi schema.
"""

from __future__ import annotations

from typing import Any

from repro.joi.schema import (
    AlternativesSchema,
    AnySchema,
    ArraySchema,
    BooleanSchema,
    JoiSchemaError,
    NumberSchema,
    ObjectSchema,
    Schema,
    StringSchema,
    WhenSchema,
    _Dependency,
)


def compile_to_jsonschema(schema: Schema) -> dict[str, Any]:
    """Translate ``schema`` into an equivalent JSON Schema document."""
    return _compile(schema)


def _compile(schema: Schema) -> dict[str, Any]:
    base = _compile_base(schema)

    # valid() whitelist: enum of the allowed values replaces everything else.
    if schema._only_allowed:
        return {"enum": list(schema._allowed)}

    clauses: list[dict[str, Any]] = []
    if schema._invalid:
        clauses.append({"not": {"enum": list(schema._invalid)}})
    if clauses:
        base = {"allOf": [base, *clauses]} if base else {"allOf": clauses}

    # allow() extras: accepted even when the base type says no.
    if schema._allowed:
        return {"anyOf": [base if base else {}, {"enum": list(schema._allowed)}]}
    return base


def _compile_base(schema: Schema) -> dict[str, Any]:
    if isinstance(schema, StringSchema):
        return _compile_string(schema)
    if isinstance(schema, NumberSchema):
        return _compile_number(schema)
    if isinstance(schema, BooleanSchema):
        return {"type": "boolean"}
    if isinstance(schema, ArraySchema):
        return _compile_array(schema)
    if isinstance(schema, ObjectSchema):
        return _compile_object(schema)
    if isinstance(schema, AlternativesSchema):
        alts = schema.alternatives_list
        if not alts:
            return {"not": {}}
        return {"anyOf": [_compile(alt) for alt in alts]}
    if isinstance(schema, WhenSchema):
        raise JoiSchemaError(
            "when() schemas are compiled in their object context, not standalone"
        )
    if isinstance(schema, (AnySchema, Schema)):
        return {}
    raise JoiSchemaError(f"cannot compile {type(schema).__name__}")  # pragma: no cover


def _compile_string(schema: StringSchema) -> dict[str, Any]:
    out: dict[str, Any] = {"type": "string"}
    patterns: list[str] = []
    for check in schema._checks:
        if check.code == "min":
            out["minLength"] = check.param
        elif check.code == "max":
            out["maxLength"] = check.param
        elif check.code == "length":
            out["minLength"] = out["maxLength"] = check.param
        elif check.code == "pattern":
            patterns.append(check.param)
        elif check.code == "alphanum":
            patterns.append(r"^[a-zA-Z0-9]+$")
        elif check.code == "email":
            out["format"] = "email"
        elif check.code == "uri":
            out["format"] = "uri"
        elif check.code == "lowercase":
            patterns.append(r"^[^A-Z]*$")
        else:
            raise JoiSchemaError(f"cannot compile string check {check.code!r}")
    if len(patterns) == 1:
        out["pattern"] = patterns[0]
    elif patterns:
        out["allOf"] = [{"pattern": p} for p in patterns]
    return out


def _compile_number(schema: NumberSchema) -> dict[str, Any]:
    out: dict[str, Any] = {"type": "number"}
    for check in schema._checks:
        if check.code == "min":
            out["minimum"] = check.param
        elif check.code == "max":
            out["maximum"] = check.param
        elif check.code == "greater":
            out["exclusiveMinimum"] = check.param
        elif check.code == "less":
            out["exclusiveMaximum"] = check.param
        elif check.code == "integer":
            out["type"] = "integer"
        elif check.code == "positive":
            out["exclusiveMinimum"] = 0
        elif check.code == "negative":
            out["exclusiveMaximum"] = 0
        elif check.code == "multiple":
            out["multipleOf"] = check.param
        else:
            raise JoiSchemaError(f"cannot compile number check {check.code!r}")
    return out


def _compile_array(schema: ArraySchema) -> dict[str, Any]:
    out: dict[str, Any] = {"type": "array"}
    for check in schema._checks:
        if check.code == "min":
            out["minItems"] = check.param
        elif check.code == "max":
            out["maxItems"] = check.param
        elif check.code == "length":
            out["minItems"] = out["maxItems"] = check.param
        elif check.code == "unique":
            out["uniqueItems"] = True
        else:
            raise JoiSchemaError(f"cannot compile array check {check.code!r}")
    items = schema._items
    if items:
        if len(items) == 1:
            out["items"] = _compile(items[0])
        else:
            out["items"] = {"anyOf": [_compile(s) for s in items]}
    return out


def _compile_object(schema: ObjectSchema) -> dict[str, Any]:
    out: dict[str, Any] = {"type": "object"}
    properties: dict[str, Any] = {}
    required: list[str] = []
    conditionals: list[dict[str, Any]] = []

    for name, declared in schema._keys.items():
        if isinstance(declared, WhenSchema):
            conditionals.append(_compile_when_field(name, declared))
            properties.setdefault(name, {})
            continue
        if declared.presence == "forbidden":
            properties[name] = False
            continue
        properties[name] = _compile(declared)
        if declared.presence == "required":
            required.append(name)

    if properties:
        out["properties"] = properties
    if required:
        out["required"] = sorted(required)

    pattern_props = {regex: _compile(sub) for regex, _, sub in schema._patterns}
    if pattern_props:
        out["patternProperties"] = pattern_props
    if not schema._unknown:
        out["additionalProperties"] = False

    for check in schema._checks:
        if check.code == "min":
            out["minProperties"] = check.param
        elif check.code == "max":
            out["maxProperties"] = check.param
        else:
            raise JoiSchemaError(f"cannot compile object check {check.code!r}")

    dependency_clauses = [_compile_dependency(d) for d in schema._dependencies]
    clauses = conditionals + dependency_clauses
    if clauses:
        existing = out.pop("allOf", [])
        out["allOf"] = existing + clauses
    return out


def _compile_when_field(name: str, when: WhenSchema) -> dict[str, Any]:
    condition = {
        "properties": {when.ref: _compile(when.is_)},
        "required": [when.ref],
    }
    return {
        "if": condition,
        "then": _field_schema_clause(name, when.then),
        "else": _field_schema_clause(name, when.otherwise),
    }


def _field_schema_clause(name: str, schema: Schema) -> dict[str, Any]:
    clause: dict[str, Any] = {"properties": {name: _compile(schema)}}
    if schema.presence == "required":
        clause["required"] = [name]
    if schema.presence == "forbidden":
        clause = {"not": {"required": [name]}}
    return clause


def _required(name: str) -> dict[str, Any]:
    return {"required": [name]}


def _absent(name: str) -> dict[str, Any]:
    return {"not": {"required": [name]}}


def _compile_dependency(dep: _Dependency) -> dict[str, Any]:
    peers = list(dep.peers)
    if dep.kind == "and":
        return {
            "anyOf": [
                {"required": peers},
                {"allOf": [_absent(p) for p in peers]},
            ]
        }
    if dep.kind == "or":
        return {"anyOf": [_required(p) for p in peers]}
    if dep.kind == "xor":
        return {
            "oneOf": [
                {"allOf": [_required(p)] + [_absent(q) for q in peers if q != p]}
                for p in peers
            ]
        }
    if dep.kind == "nand":
        return {"not": {"required": peers}}
    if dep.kind == "with":
        assert dep.key is not None
        return {"anyOf": [_absent(dep.key), {"required": peers}]}
    if dep.kind == "without":
        assert dep.key is not None
        return {
            "anyOf": [
                _absent(dep.key),
                {"allOf": [_absent(p) for p in peers]},
            ]
        }
    raise JoiSchemaError(f"cannot compile dependency {dep.kind!r}")  # pragma: no cover
