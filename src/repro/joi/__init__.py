"""Joi-style schemas for JSON objects (tutorial Part 2).

Factory functions mirror the hapi/joi API::

    import repro.joi as joi

    schema = (
        joi.object().keys({
            "username": joi.string().alphanum().min(3).max(30).required(),
            "password": joi.string().pattern(r"^[a-zA-Z0-9]{3,30}$"),
            "access_token": joi.alternatives(joi.string(), joi.number()),
            "birth_year": joi.number().integer().min(1900).max(2013),
        })
        .with_("username", "birth_year")
        .xor("password", "access_token")
    )
    schema.is_valid({...})

``compile_to_jsonschema`` translates Joi schemas into JSON Schema documents
(co-occurrence constraints become ``oneOf``/``anyOf``/``not`` combinations),
demonstrating the expressiveness comparison the tutorial walks through.
"""

from repro.joi.schema import (
    AlternativesSchema,
    AnySchema,
    ArraySchema,
    BooleanSchema,
    JoiFailure,
    JoiResult,
    JoiSchemaError,
    NumberSchema,
    ObjectSchema,
    Schema,
    StringSchema,
    WhenSchema,
)
from repro.joi.compile import compile_to_jsonschema


def any_() -> AnySchema:
    """Any JSON value."""
    return AnySchema()


def string() -> StringSchema:
    """A string value."""
    return StringSchema()


def number() -> NumberSchema:
    """A numeric value (int or float; booleans excluded)."""
    return NumberSchema()


def boolean() -> BooleanSchema:
    """A boolean value."""
    return BooleanSchema()


def array() -> ArraySchema:
    """An array value."""
    return ArraySchema()


def object() -> ObjectSchema:  # noqa: A001 - mirrors the Joi API name
    """An object value (closed by default, like Joi)."""
    return ObjectSchema()


def alternatives(*schemas: Schema) -> AlternativesSchema:
    """A union: the value must match one of ``schemas``."""
    return AlternativesSchema(*schemas)


def when(ref: str, is_: Schema, then: Schema, otherwise: Schema) -> WhenSchema:
    """Value-dependent field schema.

    When the sibling field ``ref`` matches ``is_``, the field follows
    ``then``; otherwise it follows ``otherwise``.  Only meaningful inside
    ``object().keys({...})``.
    """
    return WhenSchema(ref, is_, then, otherwise)


def null() -> AnySchema:
    """Exactly the JSON ``null`` value."""
    return AnySchema().valid(None)


__all__ = [
    "AlternativesSchema",
    "AnySchema",
    "ArraySchema",
    "BooleanSchema",
    "JoiFailure",
    "JoiResult",
    "JoiSchemaError",
    "NumberSchema",
    "ObjectSchema",
    "Schema",
    "StringSchema",
    "WhenSchema",
    "any_",
    "string",
    "number",
    "boolean",
    "array",
    "object",
    "alternatives",
    "when",
    "null",
    "compile_to_jsonschema",
]
