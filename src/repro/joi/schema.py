"""Joi-style schema builders and validation.

Walmart Labs' Joi gives JavaScript "a powerful schema language for JSON
objects by means of JavaScript function calls" (tutorial, §1).  This module
reproduces that design in Python: immutable fluent builders

>>> import repro.joi as joi
>>> account = (
...     joi.object().keys({
...         "username": joi.string().alphanum().min(3).max(30).required(),
...         "password": joi.string().pattern(r"^[a-zA-Z0-9]{3,30}$"),
...         "access_token": joi.alternatives(joi.string(), joi.number()),
...     })
...     .xor("password", "access_token")
... )
>>> account.is_valid({"username": "ada", "password": "secret1"})
True

Joi's distinguishing features — the tutorial highlights them against JSON
Schema — are all here:

- *co-occurrence and mutual-exclusion constraints on fields*:
  :meth:`ObjectSchema.and_`, :meth:`ObjectSchema.or_`,
  :meth:`ObjectSchema.xor`, :meth:`ObjectSchema.nand`,
  :meth:`ObjectSchema.with_`, :meth:`ObjectSchema.without`;
- *union types*: :func:`alternatives <repro.joi.alternatives>`;
- *value-dependent types*: :func:`when <repro.joi.when>`, which selects a
  field's schema based on a sibling field's value.

Every builder method returns a **new** schema; instances are never mutated,
so schemas are safely shareable.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import SchemaError
from repro.jsonvalue.model import is_integer_value, strict_equal
from repro.jsonschema.formats import check_email, check_uri


class JoiSchemaError(SchemaError):
    """Raised for ill-formed Joi schemas (bad builder arguments)."""


@dataclass(frozen=True)
class JoiFailure:
    """One validation failure: where, which rule, and why."""

    path: tuple[object, ...]
    code: str
    message: str

    def __str__(self) -> str:
        where = ".".join(str(p) for p in self.path) or "<root>"
        return f"{where}: {self.message} [{self.code}]"


@dataclass
class JoiResult:
    """Outcome of validating one value."""

    failures: list[JoiFailure] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.valid


# A constraint check: (code, predicate, message).  Predicates see the value
# only after the base type test succeeded.
@dataclass(frozen=True)
class _Check:
    code: str
    predicate: Callable[[Any], bool]
    message: str
    param: Any = None


class Schema:
    """Base of all Joi builders (the ``any`` type)."""

    _type_name = "any"

    def __init__(self) -> None:
        self.presence: str = "optional"  # optional | required | forbidden
        self._allowed: tuple[Any, ...] = ()
        self._only_allowed: bool = False
        self._invalid: tuple[Any, ...] = ()
        self._checks: tuple[_Check, ...] = ()
        self._default: Any = None
        self._has_default: bool = False

    # -- cloning fluent core -------------------------------------------

    def _clone(self) -> "Schema":
        clone = copy.copy(self)
        return clone

    def _with_check(
        self, code: str, predicate: Callable[[Any], bool], message: str, param: Any = None
    ) -> "Schema":
        clone = self._clone()
        clone._checks = self._checks + (_Check(code, predicate, message, param),)
        return clone

    # -- presence and value sets ----------------------------------------

    def required(self) -> "Schema":
        """The key must be present (when used as an object field)."""
        clone = self._clone()
        clone.presence = "required"
        return clone

    def optional(self) -> "Schema":
        clone = self._clone()
        clone.presence = "optional"
        return clone

    def forbidden(self) -> "Schema":
        """The key must be absent."""
        clone = self._clone()
        clone.presence = "forbidden"
        return clone

    def allow(self, *values: Any) -> "Schema":
        """Additional values accepted regardless of type checks (e.g. ``None``)."""
        clone = self._clone()
        clone._allowed = self._allowed + values
        return clone

    def valid(self, *values: Any) -> "Schema":
        """Restrict to an explicit whitelist of values."""
        clone = self._clone()
        clone._allowed = self._allowed + values
        clone._only_allowed = True
        return clone

    def invalid(self, *values: Any) -> "Schema":
        """Blacklist specific values."""
        clone = self._clone()
        clone._invalid = self._invalid + values
        return clone

    def default(self, value: Any) -> "Schema":
        """Annotation only: the value a consumer would fill in when absent."""
        clone = self._clone()
        clone._default = value
        clone._has_default = True
        return clone

    # -- validation ------------------------------------------------------

    def validate(self, value: Any) -> JoiResult:
        """Validate a present value; returns all failures."""
        result = JoiResult()
        self._validate(value, (), result.failures)
        return result

    def is_valid(self, value: Any) -> bool:
        return self.validate(value).valid

    def _validate(self, value: Any, path: tuple, failures: list[JoiFailure]) -> None:
        if any(strict_equal(value, v) for v in self._allowed):
            return
        if self._only_allowed:
            failures.append(
                JoiFailure(path, "any.only", "value is not one of the allowed values")
            )
            return
        if any(strict_equal(value, v) for v in self._invalid):
            failures.append(JoiFailure(path, "any.invalid", "value is blacklisted"))
            return
        type_error = self._check_type(value)
        if type_error is not None:
            failures.append(JoiFailure(path, f"{self._type_name}.base", type_error))
            return
        for check in self._checks:
            if not check.predicate(value):
                failures.append(
                    JoiFailure(path, f"{self._type_name}.{check.code}", check.message)
                )
        self._validate_structure(value, path, failures)

    def _check_type(self, value: Any) -> Optional[str]:
        """Return an error message if the base type does not match."""
        return None  # any

    def _validate_structure(self, value: Any, path: tuple, failures: list[JoiFailure]) -> None:
        """Hook for container schemas."""


class AnySchema(Schema):
    """Accepts any JSON value (modulo valid/invalid sets)."""


class StringSchema(Schema):
    _type_name = "string"

    def _check_type(self, value: Any) -> Optional[str]:
        if not isinstance(value, str):
            return f"expected a string, got {type(value).__name__}"
        return None

    def min(self, length: int) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "min", lambda v: len(v) >= length, f"length must be at least {length}", param=length
        )

    def max(self, length: int) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "max", lambda v: len(v) <= length, f"length must be at most {length}", param=length
        )

    def length(self, length: int) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "length", lambda v: len(v) == length, f"length must be exactly {length}", param=length
        )

    def pattern(self, regex: str) -> "StringSchema":
        try:
            compiled = re.compile(regex)
        except re.error as exc:
            raise JoiSchemaError(f"invalid pattern {regex!r}: {exc}") from exc
        return self._with_check(  # type: ignore[return-value]
            "pattern",
            lambda v: compiled.search(v) is not None,
            f"value does not match pattern {regex!r}",
            param=regex,
        )

    def alphanum(self) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "alphanum", lambda v: v.isalnum(), "value must be alphanumeric"
        )

    def email(self) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "email", check_email, "value must be a valid email address"
        )

    def uri(self) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "uri", check_uri, "value must be a valid URI"
        )

    def lowercase(self) -> "StringSchema":
        return self._with_check(  # type: ignore[return-value]
            "lowercase", lambda v: v == v.lower(), "value must be lowercase"
        )


class NumberSchema(Schema):
    _type_name = "number"

    def _check_type(self, value: Any) -> Optional[str]:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"expected a number, got {type(value).__name__}"
        return None

    def min(self, bound: float) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "min", lambda v: v >= bound, f"value must be >= {bound}", param=bound
        )

    def max(self, bound: float) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "max", lambda v: v <= bound, f"value must be <= {bound}", param=bound
        )

    def greater(self, bound: float) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "greater", lambda v: v > bound, f"value must be > {bound}", param=bound
        )

    def less(self, bound: float) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "less", lambda v: v < bound, f"value must be < {bound}", param=bound
        )

    def integer(self) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "integer", is_integer_value, "value must be an integer"
        )

    def positive(self) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "positive", lambda v: v > 0, "value must be positive"
        )

    def negative(self) -> "NumberSchema":
        return self._with_check(  # type: ignore[return-value]
            "negative", lambda v: v < 0, "value must be negative"
        )

    def multiple(self, base: int) -> "NumberSchema":
        if base <= 0:
            raise JoiSchemaError("multiple() base must be positive")
        return self._with_check(  # type: ignore[return-value]
            "multiple", lambda v: v % base == 0, f"value must be a multiple of {base}", param=base
        )


class BooleanSchema(Schema):
    _type_name = "boolean"

    def _check_type(self, value: Any) -> Optional[str]:
        if not isinstance(value, bool):
            return f"expected a boolean, got {type(value).__name__}"
        return None


class ArraySchema(Schema):
    _type_name = "array"

    def __init__(self) -> None:
        super().__init__()
        self._items: tuple[Schema, ...] = ()

    def _check_type(self, value: Any) -> Optional[str]:
        if not isinstance(value, list):
            return f"expected an array, got {type(value).__name__}"
        return None

    def items(self, *schemas: Schema) -> "ArraySchema":
        """Each element must match at least one of the item schemas."""
        clone = self._clone()
        clone._items = self._items + schemas
        return clone  # type: ignore[return-value]

    def min(self, count: int) -> "ArraySchema":
        return self._with_check(  # type: ignore[return-value]
            "min", lambda v: len(v) >= count, f"array must have at least {count} items", param=count
        )

    def max(self, count: int) -> "ArraySchema":
        return self._with_check(  # type: ignore[return-value]
            "max", lambda v: len(v) <= count, f"array must have at most {count} items", param=count
        )

    def length(self, count: int) -> "ArraySchema":
        return self._with_check(  # type: ignore[return-value]
            "length", lambda v: len(v) == count, f"array must have exactly {count} items", param=count
        )

    def unique(self) -> "ArraySchema":
        from repro.jsonvalue.model import freeze

        def all_unique(values: list) -> bool:
            frozen = [freeze(v) for v in values]
            return len(set(frozen)) == len(frozen)

        return self._with_check(  # type: ignore[return-value]
            "unique", all_unique, "array items must be unique"
        )

    def _validate_structure(self, value: list, path: tuple, failures: list[JoiFailure]) -> None:
        if not self._items:
            return
        for i, item in enumerate(value):
            if not any(schema.is_valid(item) for schema in self._items):
                failures.append(
                    JoiFailure(
                        path + (i,),
                        "array.items",
                        "item does not match any of the allowed item types",
                    )
                )


@dataclass(frozen=True)
class _Dependency:
    """A co-occurrence rule over object keys."""

    kind: str  # and | or | xor | nand | with | without
    key: Optional[str]
    peers: tuple[str, ...]


class WhenSchema(Schema):
    """Value-dependent field schema: chooses based on a sibling's value.

    Usable only as an object field; resolution happens inside
    :class:`ObjectSchema`.
    """

    _type_name = "when"

    def __init__(self, ref: str, is_: Schema, then: Schema, otherwise: Schema) -> None:
        super().__init__()
        self.ref = ref
        self.is_ = is_
        self.then = then
        self.otherwise = otherwise

    def resolve(self, parent: Mapping[str, Any]) -> Schema:
        """Pick the effective schema given the parent object."""
        if self.ref in parent and self.is_.is_valid(parent[self.ref]):
            return self.then
        return self.otherwise

    def _validate(self, value: Any, path: tuple, failures: list[JoiFailure]) -> None:
        failures.append(
            JoiFailure(
                path,
                "when.context",
                "when() schemas can only be used as object fields",
            )
        )


class ObjectSchema(Schema):
    _type_name = "object"

    def __init__(self) -> None:
        super().__init__()
        self._keys: dict[str, Schema] = {}
        self._patterns: tuple[tuple[str, re.Pattern[str], Schema], ...] = ()
        self._dependencies: tuple[_Dependency, ...] = ()
        self._unknown: bool = False

    def _check_type(self, value: Any) -> Optional[str]:
        if not isinstance(value, dict):
            return f"expected an object, got {type(value).__name__}"
        return None

    # -- structure builders ----------------------------------------------

    def keys(self, mapping: Mapping[str, Schema]) -> "ObjectSchema":
        for name, schema in mapping.items():
            if not isinstance(schema, Schema):
                raise JoiSchemaError(f"key {name!r} is not a Joi schema: {schema!r}")
        clone = self._clone()
        clone._keys = {**self._keys, **mapping}
        return clone  # type: ignore[return-value]

    def pattern(self, regex: str, schema: Schema) -> "ObjectSchema":
        """Keys matching ``regex`` must satisfy ``schema``."""
        try:
            compiled = re.compile(regex)
        except re.error as exc:
            raise JoiSchemaError(f"invalid pattern {regex!r}: {exc}") from exc
        clone = self._clone()
        clone._patterns = self._patterns + ((regex, compiled, schema),)
        return clone  # type: ignore[return-value]

    def unknown(self, allow: bool = True) -> "ObjectSchema":
        """Permit keys not declared in :meth:`keys` (Joi rejects them by default)."""
        clone = self._clone()
        clone._unknown = allow
        return clone  # type: ignore[return-value]

    def min(self, count: int) -> "ObjectSchema":
        return self._with_check(  # type: ignore[return-value]
            "min", lambda v: len(v) >= count, f"object must have at least {count} keys", param=count
        )

    def max(self, count: int) -> "ObjectSchema":
        return self._with_check(  # type: ignore[return-value]
            "max", lambda v: len(v) <= count, f"object must have at most {count} keys", param=count
        )

    # -- co-occurrence constraints ----------------------------------------

    def _with_dependency(self, dep: _Dependency) -> "ObjectSchema":
        clone = self._clone()
        clone._dependencies = self._dependencies + (dep,)
        return clone  # type: ignore[return-value]

    def and_(self, *peers: str) -> "ObjectSchema":
        """All of ``peers`` must appear together, or none of them."""
        return self._with_dependency(_Dependency("and", None, peers))

    def or_(self, *peers: str) -> "ObjectSchema":
        """At least one of ``peers`` must be present."""
        return self._with_dependency(_Dependency("or", None, peers))

    def xor(self, *peers: str) -> "ObjectSchema":
        """Exactly one of ``peers`` must be present (mutual exclusion)."""
        return self._with_dependency(_Dependency("xor", None, peers))

    def nand(self, *peers: str) -> "ObjectSchema":
        """Not all of ``peers`` may be present simultaneously."""
        return self._with_dependency(_Dependency("nand", None, peers))

    def with_(self, key: str, *peers: str) -> "ObjectSchema":
        """If ``key`` is present, all ``peers`` must be present too."""
        return self._with_dependency(_Dependency("with", key, peers))

    def without(self, key: str, *peers: str) -> "ObjectSchema":
        """If ``key`` is present, none of ``peers`` may be present."""
        return self._with_dependency(_Dependency("without", key, peers))

    # -- validation --------------------------------------------------------

    def _validate_structure(self, value: dict, path: tuple, failures: list[JoiFailure]) -> None:
        present = set(value.keys())

        for name, declared in self._keys.items():
            schema = declared.resolve(value) if isinstance(declared, WhenSchema) else declared
            if name in value:
                if schema.presence == "forbidden":
                    failures.append(
                        JoiFailure(path + (name,), "any.unknown", f"{name!r} is forbidden")
                    )
                else:
                    schema._validate(value[name], path + (name,), failures)
            elif schema.presence == "required":
                failures.append(
                    JoiFailure(path + (name,), "any.required", f"{name!r} is required")
                )

        for name in present - set(self._keys):
            matched = False
            for _, compiled, schema in self._patterns:
                if compiled.search(name) is not None:
                    matched = True
                    schema._validate(value[name], path + (name,), failures)
            if not matched and not self._unknown:
                failures.append(
                    JoiFailure(path + (name,), "object.unknown", f"{name!r} is not allowed")
                )

        for dep in self._dependencies:
            self._check_dependency(dep, present, path, failures)

    @staticmethod
    def _check_dependency(
        dep: _Dependency, present: set[str], path: tuple, failures: list[JoiFailure]
    ) -> None:
        peers_present = [p for p in dep.peers if p in present]
        if dep.kind == "and":
            if peers_present and len(peers_present) != len(dep.peers):
                missing = sorted(set(dep.peers) - present)
                failures.append(
                    JoiFailure(
                        path,
                        "object.and",
                        f"fields {sorted(peers_present)} require {missing} as well",
                    )
                )
        elif dep.kind == "or":
            if not peers_present:
                failures.append(
                    JoiFailure(
                        path,
                        "object.missing",
                        f"at least one of {sorted(dep.peers)} is required",
                    )
                )
        elif dep.kind == "xor":
            if len(peers_present) != 1:
                failures.append(
                    JoiFailure(
                        path,
                        "object.xor",
                        f"exactly one of {sorted(dep.peers)} is required, "
                        f"found {len(peers_present)}",
                    )
                )
        elif dep.kind == "nand":
            if len(peers_present) == len(dep.peers):
                failures.append(
                    JoiFailure(
                        path,
                        "object.nand",
                        f"fields {sorted(dep.peers)} must not all be present",
                    )
                )
        elif dep.kind == "with":
            assert dep.key is not None
            if dep.key in present and len(peers_present) != len(dep.peers):
                missing = sorted(set(dep.peers) - present)
                failures.append(
                    JoiFailure(
                        path,
                        "object.with",
                        f"{dep.key!r} requires {missing}",
                    )
                )
        elif dep.kind == "without":
            assert dep.key is not None
            if dep.key in present and peers_present:
                failures.append(
                    JoiFailure(
                        path,
                        "object.without",
                        f"{dep.key!r} conflicts with {sorted(peers_present)}",
                    )
                )
        else:  # pragma: no cover
            raise JoiSchemaError(f"unknown dependency kind {dep.kind!r}")


class AlternativesSchema(Schema):
    """Union: the value must match at least one alternative."""

    _type_name = "alternatives"

    def __init__(self, *schemas: Schema) -> None:
        super().__init__()
        self._alternatives: tuple[Schema, ...] = tuple(schemas)

    def try_(self, *schemas: Schema) -> "AlternativesSchema":
        clone = self._clone()
        clone._alternatives = self._alternatives + schemas
        return clone  # type: ignore[return-value]

    @property
    def alternatives_list(self) -> tuple[Schema, ...]:
        return self._alternatives

    def _validate_structure(self, value: Any, path: tuple, failures: list[JoiFailure]) -> None:
        if not self._alternatives:
            failures.append(
                JoiFailure(path, "alternatives.base", "no alternatives declared")
            )
            return
        if not any(alt.is_valid(value) for alt in self._alternatives):
            failures.append(
                JoiFailure(
                    path,
                    "alternatives.match",
                    "value does not match any of the alternatives",
                )
            )
