"""The schema-language / type-system feature matrix (experiment E1).

The tutorial's Parts 2 and 3 compare JSON Schema, Joi, JSound, TypeScript
and Swift feature by feature.  Instead of hard-coding the comparison, each
cell here is a **probe**: a small program that tries to *express* the
feature in the corresponding implementation and then checks the resulting
artifact accepts/rejects the right instances.  A cell is ``True`` only if
the feature is actually expressible and behaves correctly — so the matrix
is regenerated from the implementations every time the benchmark runs.
"""

from __future__ import annotations

from typing import Callable

import repro.joi as joi
from repro.jsonschema import is_valid as js_valid
from repro.jsound import JSoundSchemaError, compile_jsound
from repro.pl import swift as sw
from repro.pl import typescript as ts

SYSTEMS = ("JSON Schema", "Joi", "JSound", "TypeScript", "Swift")

FEATURES = (
    "union types",
    "negation types",
    "co-occurrence constraints",
    "mutual exclusion (xor)",
    "value-dependent types",
    "optional fields",
    "closed records",
    "int/float distinction",
    "numeric ranges",
    "string patterns",
    "enumerations",
)


def _accepts_rejects(valid_fn: Callable, good: list, bad: list) -> bool:
    return all(valid_fn(v) for v in good) and not any(valid_fn(v) for v in bad)


# ---------------------------------------------------------------------------
# probes, one function per (feature, system) that is expressible
# ---------------------------------------------------------------------------


def _probe_jsonschema(feature: str) -> bool:
    if feature == "union types":
        schema = {"anyOf": [{"type": "integer"}, {"type": "string"}]}
        return _accepts_rejects(lambda v: js_valid(schema, v), [1, "a"], [None, 1.5])
    if feature == "negation types":
        schema = {"not": {"type": "string"}}
        return _accepts_rejects(lambda v: js_valid(schema, v), [1, None], ["a"])
    if feature == "co-occurrence constraints":
        schema = {"dependencies": {"a": ["b"]}}
        return _accepts_rejects(
            lambda v: js_valid(schema, v), [{"a": 1, "b": 2}, {"b": 2}, {}], [{"a": 1}]
        )
    if feature == "mutual exclusion (xor)":
        schema = {
            "oneOf": [
                {"required": ["a"], "not": {"required": ["b"]}},
                {"required": ["b"], "not": {"required": ["a"]}},
            ]
        }
        return _accepts_rejects(
            lambda v: js_valid(schema, v),
            [{"a": 1}, {"b": 2}],
            [{}, {"a": 1, "b": 2}],
        )
    if feature == "value-dependent types":
        schema = {
            "if": {"properties": {"kind": {"const": "circle"}}, "required": ["kind"]},
            "then": {"properties": {"size": {"type": "number"}}, "required": ["size"]},
            "else": {"properties": {"size": {"type": "string"}}, "required": ["size"]},
        }
        return _accepts_rejects(
            lambda v: js_valid(schema, v),
            [{"kind": "circle", "size": 1}, {"kind": "square", "size": "big"}],
            [{"kind": "circle", "size": "big"}],
        )
    if feature == "optional fields":
        schema = {"properties": {"a": {"type": "integer"}}, "required": []}
        return _accepts_rejects(lambda v: js_valid(schema, v), [{}, {"a": 1}], [{"a": "x"}])
    if feature == "closed records":
        schema = {"properties": {"a": {}}, "additionalProperties": False}
        return _accepts_rejects(lambda v: js_valid(schema, v), [{"a": 1}], [{"b": 2}])
    if feature == "int/float distinction":
        schema = {"type": "integer"}
        return _accepts_rejects(lambda v: js_valid(schema, v), [3], [3.5])
    if feature == "numeric ranges":
        schema = {"minimum": 0, "maximum": 10}
        return _accepts_rejects(lambda v: js_valid(schema, v), [0, 10], [-1, 11])
    if feature == "string patterns":
        schema = {"type": "string", "pattern": "^a+$"}
        return _accepts_rejects(lambda v: js_valid(schema, v), ["aa"], ["b"])
    if feature == "enumerations":
        schema = {"enum": ["x", "y"]}
        return _accepts_rejects(lambda v: js_valid(schema, v), ["x"], ["z"])
    return False


def _probe_joi(feature: str) -> bool:
    if feature == "union types":
        schema = joi.alternatives(joi.number().integer(), joi.string())
        return _accepts_rejects(schema.is_valid, [1, "a"], [None, 1.5])
    if feature == "negation types":
        return False  # invalid()/forbidden() blacklist values, not schemas
    if feature == "co-occurrence constraints":
        schema = joi.object().unknown().with_("a", "b")
        return _accepts_rejects(
            schema.is_valid, [{"a": 1, "b": 2}, {"b": 2}, {}], [{"a": 1}]
        )
    if feature == "mutual exclusion (xor)":
        schema = joi.object().unknown().xor("a", "b")
        return _accepts_rejects(schema.is_valid, [{"a": 1}, {"b": 2}], [{}, {"a": 1, "b": 2}])
    if feature == "value-dependent types":
        schema = joi.object().keys(
            {
                "kind": joi.string().required(),
                "size": joi.when(
                    "kind",
                    is_=joi.string().valid("circle"),
                    then=joi.number().required(),
                    otherwise=joi.string().required(),
                ),
            }
        )
        return _accepts_rejects(
            schema.is_valid,
            [{"kind": "circle", "size": 1}, {"kind": "square", "size": "big"}],
            [{"kind": "circle", "size": "big"}],
        )
    if feature == "optional fields":
        schema = joi.object().keys({"a": joi.number()})
        return _accepts_rejects(schema.is_valid, [{}, {"a": 1}], [{"a": "x"}])
    if feature == "closed records":
        schema = joi.object().keys({"a": joi.any_()})
        return _accepts_rejects(schema.is_valid, [{"a": 1}], [{"b": 2}])
    if feature == "int/float distinction":
        schema = joi.number().integer()
        return _accepts_rejects(schema.is_valid, [3], [3.5])
    if feature == "numeric ranges":
        schema = joi.number().min(0).max(10)
        return _accepts_rejects(schema.is_valid, [0, 10], [-1, 11])
    if feature == "string patterns":
        schema = joi.string().pattern("^a+$")
        return _accepts_rejects(schema.is_valid, ["aa"], ["b"])
    if feature == "enumerations":
        schema = joi.any_().valid("x", "y")
        return _accepts_rejects(schema.is_valid, ["x"], ["z"])
    return False


def _probe_jsound(feature: str) -> bool:
    if feature == "union types":
        try:
            compile_jsound(["integer", "string"])
        except JSoundSchemaError:
            return False
        return True
    if feature in (
        "negation types",
        "co-occurrence constraints",
        "mutual exclusion (xor)",
        "value-dependent types",
        "numeric ranges",
        "enumerations",
    ):
        return False
    if feature == "optional fields":
        schema = compile_jsound({"a?": "integer"})
        return _accepts_rejects(schema.is_valid, [{}, {"a": 1}], [{"a": "x"}])
    if feature == "closed records":
        schema = compile_jsound({"a": "integer"})
        return _accepts_rejects(schema.is_valid, [{"a": 1}], [{"a": 1, "b": 2}])
    if feature == "int/float distinction":
        schema = compile_jsound("integer")
        return _accepts_rejects(schema.is_valid, [3], [3.5])
    if feature == "string patterns":
        return False  # only the fixed lexical spaces (hexBinary, date, ...)
    return False


def _probe_typescript(feature: str) -> bool:
    if feature == "union types":
        t = ts.union((ts.NUMBER, ts.STRING))
        return _accepts_rejects(lambda v: ts.check(v, t), [1, "a"], [None, [1]])
    if feature == "negation types":
        return False
    if feature == "co-occurrence constraints":
        # The `{a: T; b?: never} | {…}` idiom expresses co-occurrence.
        both = ts.TSObject(
            (ts.TSProperty("a", ts.NUMBER), ts.TSProperty("b", ts.NUMBER))
        )
        neither = ts.TSObject(
            (
                ts.TSProperty("a", ts.NEVER, optional=True),
                ts.TSProperty("b", ts.NEVER, optional=True),
            )
        )
        t = ts.union((both, neither))
        return _accepts_rejects(
            lambda v: ts.check(v, t), [{"a": 1, "b": 2}, {}], [{"a": 1}]
        )
    if feature == "mutual exclusion (xor)":
        only_a = ts.TSObject(
            (ts.TSProperty("a", ts.NUMBER), ts.TSProperty("b", ts.NEVER, optional=True))
        )
        only_b = ts.TSObject(
            (ts.TSProperty("b", ts.NUMBER), ts.TSProperty("a", ts.NEVER, optional=True))
        )
        t = ts.union((only_a, only_b))
        return _accepts_rejects(
            lambda v: ts.check(v, t), [{"a": 1}, {"b": 2}], [{}, {"a": 1, "b": 2}]
        )
    if feature == "value-dependent types":
        # Discriminated unions: the idiomatic TS encoding.
        circle = ts.TSObject(
            (ts.TSProperty("kind", ts.TSLiteral("circle")), ts.TSProperty("size", ts.NUMBER))
        )
        square = ts.TSObject(
            (ts.TSProperty("kind", ts.TSLiteral("square")), ts.TSProperty("size", ts.STRING))
        )
        t = ts.union((circle, square))
        return _accepts_rejects(
            lambda v: ts.check(v, t),
            [{"kind": "circle", "size": 1}, {"kind": "square", "size": "big"}],
            [{"kind": "circle", "size": "big"}],
        )
    if feature == "optional fields":
        t = ts.TSObject((ts.TSProperty("a", ts.NUMBER, optional=True),))
        return _accepts_rejects(lambda v: ts.check(v, t), [{}, {"a": 1}], [{"a": "x"}])
    if feature == "closed records":
        t = ts.TSObject((ts.TSProperty("a", ts.NUMBER),))
        # Structural typing: extra members are accepted, so NOT closed.
        return not ts.check({"a": 1, "b": 2}, t)
    if feature == "int/float distinction":
        return not ts.check(3.5, ts.NUMBER)  # number admits both → False
    if feature == "numeric ranges":
        return False
    if feature == "string patterns":
        return False
    if feature == "enumerations":
        t = ts.union((ts.TSLiteral("x"), ts.TSLiteral("y")))
        return _accepts_rejects(lambda v: ts.check(v, t), ["x", "y"], ["z", 1])
    return False


def _probe_swift(feature: str) -> bool:
    if feature == "union types":
        return False  # infer_struct raises SwiftInferenceError on Int|Str
    if feature in (
        "negation types",
        "co-occurrence constraints",
        "mutual exclusion (xor)",
        "value-dependent types",
        "numeric ranges",
        "string patterns",
        "enumerations",
    ):
        return False
    if feature == "optional fields":
        t = sw.SwiftStruct.of("S", {"a": sw.SwiftOptional(sw.INT)})
        return (
            sw.can_decode(t, {})
            and sw.can_decode(t, {"a": 1})
            and not sw.can_decode(t, {"a": "x"})
        )
    if feature == "closed records":
        t = sw.SwiftStruct.of("S", {"a": sw.INT})
        return not sw.can_decode(t, {"a": 1, "b": 2})  # extras ignored → open
    if feature == "int/float distinction":
        t = sw.SwiftStruct.of("S", {"a": sw.INT})
        return sw.can_decode(t, {"a": 3}) and not sw.can_decode(t, {"a": 3.5})
    return False


_PROBES: dict[str, Callable[[str], bool]] = {
    "JSON Schema": _probe_jsonschema,
    "Joi": _probe_joi,
    "JSound": _probe_jsound,
    "TypeScript": _probe_typescript,
    "Swift": _probe_swift,
}


def feature_matrix() -> dict[str, dict[str, bool]]:
    """Evaluate every probe: ``matrix[feature][system] -> bool``."""
    return {
        feature: {system: _PROBES[system](feature) for system in SYSTEMS}
        for feature in FEATURES
    }


def render_matrix(matrix: dict[str, dict[str, bool]] | None = None) -> str:
    """Format the matrix as the comparison table from the tutorial slides."""
    if matrix is None:
        matrix = feature_matrix()
    width = max(len(f) for f in FEATURES) + 2
    header = "feature".ljust(width) + " | " + " | ".join(s.center(11) for s in SYSTEMS)
    rule = "-" * len(header)
    lines = [header, rule]
    for feature in FEATURES:
        cells = " | ".join(
            ("yes" if matrix[feature][s] else "no").center(11) for s in SYSTEMS
        )
        lines.append(feature.ljust(width) + " | " + cells)
    return "\n".join(lines)
