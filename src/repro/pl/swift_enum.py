"""Swift enums with associated values: the manual union workaround.

The tutorial's Part 3 point is that Swift has **no union types** — but
Swift developers *do* decode heterogeneous JSON, by hand-writing an
``enum`` with associated values whose ``init(from:)`` tries each case in
turn::

    enum Value: Codable {
        case number(Double)
        case text(String)
        init(from decoder: Decoder) throws {
            let c = try decoder.singleValueContainer()
            if let v = try? c.decode(Double.self) { self = .number(v); return }
            if let v = try? c.decode(String.self) { self = .text(v); return }
            throw DecodingError.typeMismatch(...)
        }
    }

This module reproduces that idiom as a first-class descriptor:

- :class:`SwiftEnum` — ordered cases, each wrapping a payload type;
  :func:`repro.pl.swift.decode` handles it with exactly the
  try-each-case-in-order semantics above (first match wins);
- :func:`algebra_to_swift_with_enums` — the
  :func:`repro.pl.codegen.algebra_to_swift` bridge, except union types
  become enums instead of failing;
- :func:`render_enum` — emits the Swift source, including the hand-written
  ``init(from:)``/``encode(to:)`` the workaround requires (which is itself
  the tutorial's argument: the language makes you write this).

Decoded enum values are tagged: ``{"$case": name, "value": payload}``, so
round-trips and tests can see which case matched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.pl import swift as sw
from repro.pl.swift import SwiftDecodeError


@dataclass(frozen=True)
class SwiftEnumCase:
    name: str
    payload: sw.SwiftType

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"case {self.name}({self.payload!r})"


@dataclass(frozen=True)
class SwiftEnum(sw.SwiftType):
    """A Swift enum with associated values (ordered, first match wins)."""

    name: str
    cases: Tuple[SwiftEnumCase, ...]

    def __post_init__(self) -> None:
        if not self.cases:
            raise ValueError("a Swift enum needs at least one case")
        names = [c.name for c in self.cases]
        if len(set(names)) != len(names):
            raise ValueError("duplicate enum case names")

    def __repr__(self) -> str:
        return self.name

    def decode_value(self, json_value: Any, path: tuple = ()) -> dict[str, Any]:
        """Hook used by :func:`repro.pl.swift.decode`."""
        return decode_enum(self, json_value, path)


def decode_enum(enum: SwiftEnum, json_value: Any, path: tuple = ()) -> dict[str, Any]:
    """Try each case in order; return the tagged value of the first match."""
    for case in enum.cases:
        try:
            payload = sw.decode(case.payload, json_value, path)
        except SwiftDecodeError:
            continue
        return {"$case": case.name, "value": payload}
    raise SwiftDecodeError(
        "typeMismatch",
        path,
        f"no case of {enum.name} decodes the value",
    )


def can_decode_enum(enum: SwiftEnum, json_value: Any) -> bool:
    try:
        decode_enum(enum, json_value)
    except SwiftDecodeError:
        return False
    return True


# ---------------------------------------------------------------------------
# algebra bridge: unions become enums
# ---------------------------------------------------------------------------


def algebra_to_swift_with_enums(t: "Type", name: str = "Root") -> sw.SwiftType:  # noqa: F821
    """Like ``algebra_to_swift`` but union types become :class:`SwiftEnum`.

    The Swift-representable union shapes still take their idiomatic forms
    (``T + Null`` → ``T?``, ``Int + Flt`` → ``Double``); anything else gets
    an enum with one case per member, named after the member's shape.
    """
    from repro.pl.codegen import _camel
    from repro.types.terms import ArrType, AtomType, RecType, UnionType

    if isinstance(t, UnionType):
        members = list(t.members)
        null_members = [m for m in members if isinstance(m, AtomType) and m.tag == "null"]
        rest = [m for m in members if m not in null_members]
        if null_members and len(rest) == 1:
            return sw.SwiftOptional(algebra_to_swift_with_enums(rest[0], name))
        tags = {m.tag for m in members if isinstance(m, AtomType)}
        if tags == {"int", "flt"} and len(members) == 2:
            return sw.DOUBLE
        cases = []
        for member in members:
            case_name = _case_name_for(member)
            payload = algebra_to_swift_with_enums(member, _camel(name, case_name))
            cases.append(SwiftEnumCase(case_name, payload))
        # Deduplicate case names (e.g. two record variants) by suffixing.
        seen: dict[str, int] = {}
        unique_cases = []
        for case in cases:
            count = seen.get(case.name, 0)
            seen[case.name] = count + 1
            unique_cases.append(
                case if count == 0 else SwiftEnumCase(f"{case.name}{count + 1}", case.payload)
            )
        return SwiftEnum(_camel(name), tuple(unique_cases))
    if isinstance(t, RecType):
        fields = []
        for f in t.fields:
            ftype = algebra_to_swift_with_enums(f.type, _camel(name, f.name))
            if not f.required and not isinstance(ftype, sw.SwiftOptional):
                ftype = sw.SwiftOptional(ftype)
            fields.append(sw.SwiftField(f.name, ftype))
        return sw.SwiftStruct(_camel(name), tuple(fields))
    if isinstance(t, ArrType):
        from repro.types.terms import BotType

        if isinstance(t.item, BotType):
            return sw.SwiftArray(sw.STRING)
        return sw.SwiftArray(algebra_to_swift_with_enums(t.item, _camel(name, "element")))
    from repro.pl.codegen import algebra_to_swift as plain_bridge

    return plain_bridge(t, name)


def _case_name_for(member: "Type") -> str:  # noqa: F821
    from repro.types.terms import ArrType, AtomType, RecType

    if isinstance(member, AtomType):
        return {
            "null": "none",
            "bool": "flag",
            "int": "integer",
            "flt": "floating",
            "num": "number",
            "str": "text",
        }[member.tag]
    if isinstance(member, ArrType):
        return "list"
    if isinstance(member, RecType):
        return "record"
    return "value"


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def render_enum(enum: SwiftEnum) -> str:
    """Emit the Swift source for the enum, with the manual Codable dance."""
    lines = [f"enum {enum.name}: Codable {{"]
    for case in enum.cases:
        lines.append(f"    case {case.name}({sw.render_type(case.payload)})")
    lines.append("")
    lines.append("    init(from decoder: Decoder) throws {")
    lines.append("        let container = try decoder.singleValueContainer()")
    for case in enum.cases:
        payload = sw.render_type(case.payload)
        lines.append(
            f"        if let value = try? container.decode({payload}.self) "
            f"{{ self = .{case.name}(value); return }}"
        )
    lines.append(
        "        throw DecodingError.typeMismatch("
        f"{enum.name}.self, .init(codingPath: decoder.codingPath, "
        'debugDescription: "no case matched"))'
    )
    lines.append("    }")
    lines.append("")
    lines.append("    func encode(to encoder: Encoder) throws {")
    lines.append("        var container = encoder.singleValueContainer()")
    lines.append("        switch self {")
    for case in enum.cases:
        lines.append(
            f"        case .{case.name}(let value): try container.encode(value)"
        )
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"
