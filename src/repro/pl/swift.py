"""A Swift-like ``Codable`` layer for JSON (tutorial Part 3).

Swift consumes JSON through *typed decoding*: the developer declares
``struct``s conforming to ``Codable`` and ``JSONDecoder`` either produces a
fully typed value or throws a precise error (``typeMismatch``,
``keyNotFound``, ``valueNotFound``).  The important contrasts with
TypeScript that the tutorial draws:

- Swift **distinguishes Int from Double** (decoding ``3.5`` into an ``Int``
  field throws), where TypeScript has a single ``number``;
- there are **no union types** — heterogeneity must be modelled with
  ``enum`` + associated values by hand, so ``decode`` simply fails on
  union-shaped data;
- optionality is explicit via ``Optional<T>``; missing keys decode to
  ``nil`` only for optional fields;
- unknown JSON members are ignored (``JSONDecoder``'s default).

``decode`` returns plain Python values normalised to the declared types;
``render_struct``/``infer_struct`` generate Swift source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from repro.errors import DecodeError
from repro.jsonvalue.model import is_integer_value


class SwiftDecodeError(DecodeError):
    """A Swift ``DecodingError``: carries the coding path and the case."""

    def __init__(self, case: str, coding_path: tuple, message: str) -> None:
        path = ".".join(str(p) for p in coding_path) or "<root>"
        super().__init__(f"{case} at {path}: {message}")
        self.case = case
        self.coding_path = coding_path


class SwiftType:
    """Base class for Swift type descriptors."""

    __slots__ = ()

    def __str__(self) -> str:
        return render_type(self)


@dataclass(frozen=True, repr=False)
class SwiftPrimitive(SwiftType):
    """``String`` | ``Int`` | ``Double`` | ``Bool``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in ("String", "Int", "Double", "Bool"):
            raise ValueError(f"unknown Swift primitive {self.name!r}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class SwiftOptional(SwiftType):
    wrapped: SwiftType

    def __repr__(self) -> str:
        return f"{self.wrapped!r}?"


@dataclass(frozen=True, repr=False)
class SwiftArray(SwiftType):
    element: SwiftType

    def __repr__(self) -> str:
        return f"[{self.element!r}]"


@dataclass(frozen=True, repr=False)
class SwiftDictionary(SwiftType):
    """``[String: T]`` — JSON objects with uniform values."""

    value: SwiftType

    def __repr__(self) -> str:
        return f"[String: {self.value!r}]"


@dataclass(frozen=True, repr=False)
class SwiftField(SwiftType):
    name: str
    type: SwiftType

    def __repr__(self) -> str:
        return f"let {self.name}: {self.type!r}"


@dataclass(frozen=True, repr=False)
class SwiftStruct(SwiftType):
    name: str
    fields: Tuple[SwiftField, ...]

    def field_map(self) -> dict[str, SwiftField]:
        return {f.name: f for f in self.fields}

    @classmethod
    def of(cls, name: str, mapping: dict[str, SwiftType]) -> "SwiftStruct":
        return cls(name, tuple(SwiftField(k, v) for k, v in mapping.items()))

    def __repr__(self) -> str:
        return self.name


STRING = SwiftPrimitive("String")
INT = SwiftPrimitive("Int")
DOUBLE = SwiftPrimitive("Double")
BOOL = SwiftPrimitive("Bool")


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def decode(t: SwiftType, json_value: Any, _path: tuple = ()) -> Any:
    """Decode ``json_value`` as ``t`` or raise :class:`SwiftDecodeError`.

    Returns plain Python values: structs decode to dicts keyed by field
    name (with every declared field present; optional misses become
    ``None``), ``Double`` normalises ints to ``float``.
    """
    if isinstance(t, SwiftOptional):
        if json_value is None:
            return None
        return decode(t.wrapped, json_value, _path)
    if json_value is None:
        raise SwiftDecodeError(
            "valueNotFound", _path, f"expected {t} but found null"
        )
    if isinstance(t, SwiftPrimitive):
        return _decode_primitive(t, json_value, _path)
    if isinstance(t, SwiftArray):
        if not isinstance(json_value, list):
            raise SwiftDecodeError(
                "typeMismatch", _path, f"expected an array of {t.element}, got {_describe(json_value)}"
            )
        return [decode(t.element, v, _path + (i,)) for i, v in enumerate(json_value)]
    if isinstance(t, SwiftDictionary):
        if not isinstance(json_value, dict):
            raise SwiftDecodeError(
                "typeMismatch", _path, f"expected a dictionary, got {_describe(json_value)}"
            )
        return {k: decode(t.value, v, _path + (k,)) for k, v in json_value.items()}
    if isinstance(t, SwiftStruct):
        if not isinstance(json_value, dict):
            raise SwiftDecodeError(
                "typeMismatch", _path, f"expected {t.name}, got {_describe(json_value)}"
            )
        out: dict[str, Any] = {}
        for field in t.fields:
            if field.name in json_value:
                out[field.name] = decode(field.type, json_value[field.name], _path + (field.name,))
            elif isinstance(field.type, SwiftOptional):
                out[field.name] = None  # missing key decodes to nil
            else:
                raise SwiftDecodeError(
                    "keyNotFound", _path, f"no value associated with key {field.name!r}"
                )
        return out  # unknown JSON members are ignored, as JSONDecoder does
    # Extension point: descriptors (e.g. SwiftEnum) may decode themselves.
    custom = getattr(t, "decode_value", None)
    if custom is not None:
        return custom(json_value, _path)
    raise TypeError(f"unknown Swift type {t!r}")  # pragma: no cover


def _decode_primitive(t: SwiftPrimitive, value: Any, path: tuple) -> Any:
    if t.name == "Bool":
        if isinstance(value, bool):
            return value
    elif t.name == "String":
        if isinstance(value, str):
            return value
    elif t.name == "Int":
        # Swift decodes 3.0 into Int? JSONDecoder rejects any Double-typed
        # JSON number for Int unless it is exactly integral; NSNumber
        # bridging accepts integral doubles, so we accept 3.0 but not 3.5.
        if is_integer_value(value):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
    elif t.name == "Double":
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    raise SwiftDecodeError(
        "typeMismatch", path, f"expected {t.name}, got {_describe(value)}"
    )


def _describe(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "a boolean"
    if isinstance(value, int):
        return "an integer"
    if isinstance(value, float):
        return "a double"
    if isinstance(value, str):
        return "a string"
    if isinstance(value, list):
        return "an array"
    return "an object"


def can_decode(t: SwiftType, json_value: Any) -> bool:
    """Boolean convenience around :func:`decode`."""
    try:
        decode(t, json_value)
    except SwiftDecodeError:
        return False
    return True


# ---------------------------------------------------------------------------
# inference and code generation
# ---------------------------------------------------------------------------


class SwiftInferenceError(DecodeError):
    """Raised when sample data needs union types Swift does not have."""


def infer_struct(name: str, samples: Iterable[Any]) -> SwiftStruct:
    """Infer a ``Codable`` struct from sample objects.

    Fields missing in some samples become ``Optional``; ``Int`` samples
    joined with ``Double`` samples widen to ``Double``; genuinely
    heterogeneous fields (string vs number, record vs array) raise
    :class:`SwiftInferenceError` — Swift has no unions, and surfacing that
    limitation is the tutorial's comparison point.
    """
    samples = list(samples)
    if not samples:
        raise SwiftInferenceError("cannot infer a struct from zero samples")
    for sample in samples:
        if not isinstance(sample, dict):
            raise SwiftInferenceError(f"expected object samples, got {_describe(sample)}")
    names: list[str] = []
    for sample in samples:
        for key in sample:
            if key not in names:
                names.append(key)
    fields = []
    total = len(samples)
    for key in names:
        present = [s[key] for s in samples if key in s]
        t = _join_all(f"{name}_{key}", present)
        if len(present) < total:
            t = t if isinstance(t, SwiftOptional) else SwiftOptional(t)
        fields.append(SwiftField(key, t))
    return SwiftStruct(name, tuple(fields))


def _infer_value(name: str, value: Any) -> SwiftType:
    if value is None:
        # Type of a bare null is unknowable; Optional<String> is the
        # conventional strawman and joins with anything nullable.
        return SwiftOptional(STRING)
    if isinstance(value, bool):
        return BOOL
    if is_integer_value(value):
        return INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    if isinstance(value, list):
        if not value:
            return SwiftArray(STRING)  # elementless arrays default to [String]
        return SwiftArray(_join_all(name, value))
    return infer_struct(_struct_case(name), [value])


def _join_all(name: str, values: list) -> SwiftType:
    structs = [v for v in values if isinstance(v, dict)]
    if structs and len(structs) == sum(1 for v in values if v is not None):
        t: SwiftType = infer_struct(_struct_case(name), structs)
        if len(structs) < len(values):
            t = SwiftOptional(t)
        return t
    joined: Optional[SwiftType] = None
    for v in values:
        t = _infer_value(name, v)
        joined = t if joined is None else _join(joined, t)
    assert joined is not None
    return joined


def _join(a: SwiftType, b: SwiftType) -> SwiftType:
    if a == b:
        return a
    if isinstance(a, SwiftOptional) or isinstance(b, SwiftOptional):
        inner_a = a.wrapped if isinstance(a, SwiftOptional) else a
        inner_b = b.wrapped if isinstance(b, SwiftOptional) else b
        return SwiftOptional(_join(inner_a, inner_b))
    if {a, b} == {INT, DOUBLE}:
        return DOUBLE
    if isinstance(a, SwiftArray) and isinstance(b, SwiftArray):
        return SwiftArray(_join(a.element, b.element))
    raise SwiftInferenceError(
        f"cannot represent {a} | {b}: Swift has no union types"
    )


def _struct_case(name: str) -> str:
    cleaned = "".join(part.capitalize() for part in name.replace("-", "_").split("_") if part)
    return cleaned or "Anonymous"


def render_type(t: SwiftType) -> str:
    """Render a Swift type expression."""
    if isinstance(t, SwiftPrimitive):
        return t.name
    if isinstance(t, SwiftOptional):
        return f"{render_type(t.wrapped)}?"
    if isinstance(t, SwiftArray):
        return f"[{render_type(t.element)}]"
    if isinstance(t, SwiftDictionary):
        return f"[String: {render_type(t.value)}]"
    if isinstance(t, SwiftStruct):
        return t.name
    # Custom named descriptors (e.g. SwiftEnum) render by their name.
    name = getattr(t, "name", None)
    if isinstance(name, str):
        return name
    raise TypeError(f"unknown Swift type {t!r}")


def render_struct(t: SwiftStruct) -> str:
    """Emit Swift source for a struct and every nested struct it uses."""
    nested: list[SwiftStruct] = []

    def collect(inner: SwiftType) -> None:
        if isinstance(inner, SwiftStruct):
            nested.append(inner)
            for f in inner.fields:
                collect(f.type)
        elif isinstance(inner, SwiftOptional):
            collect(inner.wrapped)
        elif isinstance(inner, SwiftArray):
            collect(inner.element)
        elif isinstance(inner, SwiftDictionary):
            collect(inner.value)

    for f in t.fields:
        collect(f.type)

    lines = [f"struct {t.name}: Codable {{"]
    for f in t.fields:
        lines.append(f"    let {f.name}: {render_type(f.type)}")
    for inner in nested:
        inner_src = render_struct(inner)
        for line in inner_src.rstrip().splitlines():
            lines.append("    " + line)
    lines.append("}")
    return "\n".join(lines) + "\n"
