"""Programming-language type systems for JSON (tutorial Part 3).

:mod:`repro.pl.typescript` — structural types with unions and literals;
:mod:`repro.pl.swift` — ``Codable``-style typed decoding;
:mod:`repro.pl.codegen` — from the inference algebra to declarations;
:mod:`repro.pl.features` — the E1 capability matrix, probe-generated.
"""

from repro.pl import swift, typescript
from repro.pl.codegen import (
    algebra_to_swift,
    algebra_to_typescript,
    swift_declaration_for,
    typescript_declaration_for,
)
from repro.pl.features import FEATURES, SYSTEMS, feature_matrix, render_matrix
from repro.pl.swift_enum import (
    SwiftEnum,
    SwiftEnumCase,
    algebra_to_swift_with_enums,
    render_enum,
)
from repro.pl.from_jsonschema import (
    JsonSchemaTranslationError,
    declaration_from_jsonschema,
    jsonschema_to_typescript,
)

__all__ = [
    "swift",
    "typescript",
    "SwiftEnum",
    "SwiftEnumCase",
    "algebra_to_swift_with_enums",
    "render_enum",
    "JsonSchemaTranslationError",
    "declaration_from_jsonschema",
    "jsonschema_to_typescript",
    "algebra_to_swift",
    "algebra_to_typescript",
    "swift_declaration_for",
    "typescript_declaration_for",
    "FEATURES",
    "SYSTEMS",
    "feature_matrix",
    "render_matrix",
]
