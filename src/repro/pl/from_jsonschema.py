"""JSON Schema → TypeScript types (the `json-schema-to-typescript` bridge).

The tutorial's Parts 2 and 3 are two views of the same discipline; real
toolchains connect them with generators like ``json-schema-to-typescript``.
This module translates the structural fragment of JSON Schema into the
TypeScript model of :mod:`repro.pl.typescript`:

- ``type`` (string or list) → primitives / unions;
- ``enum`` / ``const`` → literal-type unions (non-scalar members widen);
- ``properties`` + ``required`` → object types with optional members;
- ``items`` (schema or tuple) → arrays / tuples;
- ``anyOf`` / ``oneOf`` → unions;
- ``allOf`` → a conservative intersection (object members merged,
  otherwise the most specific branch);
- local ``$ref`` (``#/definitions/…``) resolved with cycle cut-off to
  ``unknown`` (TypeScript's own generators do the same for untyped
  recursion unless asked to emit named interfaces).

The guarantee tests pin down: for the supported fragment, a value accepted
by the schema is accepted by the translated type (the translation may be
*wider*, never narrower).
"""

from __future__ import annotations

from typing import Any

from repro.errors import SchemaError
from repro.jsonschema.refs import SchemaRegistry
from repro.pl import typescript as ts

_PRIMITIVES = {
    "null": ts.NULL,
    "boolean": ts.BOOLEAN,
    "integer": ts.NUMBER,  # TS has one number type
    "number": ts.NUMBER,
    "string": ts.STRING,
}


class JsonSchemaTranslationError(SchemaError):
    """Raised for schema constructs outside the supported fragment."""


def jsonschema_to_typescript(
    schema: Any, *, _document: Any = None, _depth: int = 0
) -> ts.TSType:
    """Translate a raw JSON Schema document into a TypeScript type."""
    document = schema if _document is None else _document
    if _depth > 32:
        return ts.UNKNOWN  # recursion cut-off
    if schema is True or schema == {}:
        return ts.UNKNOWN
    if schema is False:
        return ts.NEVER
    if not isinstance(schema, dict):
        raise JsonSchemaTranslationError(f"not a schema: {schema!r}")

    if "$ref" in schema:
        registry = SchemaRegistry()
        target, target_doc = registry.resolve(schema["$ref"], document)
        return jsonschema_to_typescript(
            target, _document=target_doc, _depth=_depth + 1
        )

    if "const" in schema:
        return _literal_or_widened(schema["const"])
    if "enum" in schema:
        return ts.union(_literal_or_widened(v) for v in schema["enum"])

    for combinator in ("anyOf", "oneOf"):
        if combinator in schema:
            return ts.union(
                jsonschema_to_typescript(sub, _document=document, _depth=_depth + 1)
                for sub in schema[combinator]
            )
    if "allOf" in schema:
        branches = [
            jsonschema_to_typescript(sub, _document=document, _depth=_depth + 1)
            for sub in schema["allOf"]
        ]
        rest = {k: v for k, v in schema.items() if k != "allOf"}
        if rest:
            branches.append(
                jsonschema_to_typescript(rest, _document=document, _depth=_depth + 1)
            )
        return _intersect_all(branches)

    t = schema.get("type")
    if isinstance(t, list):
        return ts.union(
            _translate_typed(schema, name, document, _depth) for name in t
        )
    if isinstance(t, str):
        return _translate_typed(schema, t, document, _depth)

    # No type keyword: infer from structural keywords, else unknown.
    if "properties" in schema or "required" in schema:
        return _translate_typed(schema, "object", document, _depth)
    if "items" in schema:
        return _translate_typed(schema, "array", document, _depth)
    return ts.UNKNOWN


def _literal_or_widened(value: Any) -> ts.TSType:
    if isinstance(value, (bool, str)) or (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    ):
        return ts.TSLiteral(value)
    if value is None:
        return ts.NULL
    if isinstance(value, list):
        return ts.TSArray(ts.UNKNOWN)
    return ts.TSObject(())  # object literal: widest structural object


def _translate_typed(schema: dict, type_name: str, document: Any, depth: int) -> ts.TSType:
    if type_name in _PRIMITIVES:
        return _PRIMITIVES[type_name]
    if type_name == "array":
        items = schema.get("items")
        if isinstance(items, list):
            return ts.TSTuple(
                tuple(
                    jsonschema_to_typescript(sub, _document=document, _depth=depth + 1)
                    for sub in items
                )
            )
        if items is None:
            return ts.TSArray(ts.UNKNOWN)
        return ts.TSArray(
            jsonschema_to_typescript(items, _document=document, _depth=depth + 1)
        )
    if type_name == "object":
        properties = schema.get("properties", {})
        required = set(schema.get("required", ()))
        props = []
        for name, sub in properties.items():
            props.append(
                ts.TSProperty(
                    name,
                    jsonschema_to_typescript(sub, _document=document, _depth=depth + 1),
                    optional=name not in required,
                )
            )
        # Required members without a property schema are unknown-typed.
        for name in sorted(required - set(properties)):
            props.append(ts.TSProperty(name, ts.UNKNOWN))
        return ts.TSObject(tuple(props))
    raise JsonSchemaTranslationError(f"unknown type name {type_name!r}")


def _intersect_all(branches: list[ts.TSType]) -> ts.TSType:
    result = branches[0]
    for branch in branches[1:]:
        result = _intersect(result, branch)
    return result


def _intersect(a: ts.TSType, b: ts.TSType) -> ts.TSType:
    """A conservative intersection: exact where easy, widest-safe otherwise."""
    if isinstance(a, ts.TSUnknown):
        return b
    if isinstance(b, ts.TSUnknown):
        return a
    if a == b:
        return a
    if isinstance(a, ts.TSObject) and isinstance(b, ts.TSObject):
        amap, bmap = a.property_map(), b.property_map()
        names = sorted(set(amap) | set(bmap))
        props = []
        for name in names:
            pa, pb = amap.get(name), bmap.get(name)
            if pa is not None and pb is not None:
                props.append(
                    ts.TSProperty(
                        name,
                        _intersect(pa.type, pb.type),
                        optional=pa.optional and pb.optional,
                    )
                )
            else:
                present = pa if pa is not None else pb
                assert present is not None
                props.append(present)
        return ts.TSObject(tuple(props))
    # Literal ∩ its base primitive = the literal.
    if isinstance(a, ts.TSLiteral) and ts.is_assignable(a, b):
        return a
    if isinstance(b, ts.TSLiteral) and ts.is_assignable(b, a):
        return b
    if ts.is_assignable(a, b):
        return a
    if ts.is_assignable(b, a):
        return b
    return ts.NEVER


def declaration_from_jsonschema(schema: Any, name: str) -> str:
    """Translate and emit a TypeScript declaration in one step."""
    return ts.declaration(jsonschema_to_typescript(schema), name)
