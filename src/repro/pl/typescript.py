"""A TypeScript-like structural type system for JSON (tutorial Part 3).

TypeScript treats JSON as a first-class citizen: object literals are typed
structurally, union types are ordinary types, and literal types refine
primitives.  This module models the fragment relevant to JSON data:

- primitives ``number`` ``string`` ``boolean`` ``null`` ``undefined``
  (note: **one** ``number`` type — TypeScript does not split int/float,
  unlike Swift or the inference algebra; the feature matrix highlights this);
- literal types (``"circle"``, ``42``, ``true``);
- arrays ``T[]`` and tuples ``[T1, T2]``;
- structural object types with optional members ``{x: number, y?: string}``;
- unions ``A | B``; ``any``, ``unknown``, ``never``.

Operations: :func:`check` (does a JSON value inhabit a type),
:func:`is_assignable` (TS assignability), :func:`infer_type` /
:func:`infer_from_samples` (the type a developer would get from pasting a
sample into an editor), and :func:`declaration` (emit TypeScript source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from repro.jsonvalue.model import JsonKind, kind_of


class TSType:
    """Base class for TypeScript-like types."""

    __slots__ = ()

    def __str__(self) -> str:
        return render_type(self)


@dataclass(frozen=True, repr=False)
class TSAny(TSType):
    def __repr__(self) -> str:
        return "any"


@dataclass(frozen=True, repr=False)
class TSUnknown(TSType):
    def __repr__(self) -> str:
        return "unknown"


@dataclass(frozen=True, repr=False)
class TSNever(TSType):
    def __repr__(self) -> str:
        return "never"


@dataclass(frozen=True, repr=False)
class TSPrimitive(TSType):
    """``number`` | ``string`` | ``boolean`` | ``null`` | ``undefined``."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in ("number", "string", "boolean", "null", "undefined"):
            raise ValueError(f"unknown primitive {self.name!r}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class TSLiteral(TSType):
    """A literal type: a specific string, number, or boolean."""

    value: object

    @property
    def base(self) -> TSPrimitive:
        if isinstance(self.value, bool):
            return BOOLEAN
        if isinstance(self.value, (int, float)):
            return NUMBER
        if isinstance(self.value, str):
            return STRING
        raise TypeError(f"invalid literal {self.value!r}")

    def __repr__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True, repr=False)
class TSArray(TSType):
    element: TSType

    def __repr__(self) -> str:
        return f"Array<{self.element!r}>"


@dataclass(frozen=True, repr=False)
class TSTuple(TSType):
    elements: Tuple[TSType, ...]

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(e) for e in self.elements) + "]"


@dataclass(frozen=True, repr=False)
class TSProperty(TSType):
    name: str
    type: TSType
    optional: bool = False

    def __repr__(self) -> str:
        mark = "?" if self.optional else ""
        return f"{self.name}{mark}: {self.type!r}"


@dataclass(frozen=True, repr=False)
class TSObject(TSType):
    """A structural object type (an anonymous interface).

    TypeScript object types are *open* for assignability (width subtyping)
    but excess-property-checked for fresh literals; :func:`check` follows
    the permissive runtime view: extra members are allowed.
    """

    properties: Tuple[TSProperty, ...]

    def __post_init__(self) -> None:
        names = [p.name for p in self.properties]
        if names != sorted(names):
            object.__setattr__(
                self, "properties", tuple(sorted(self.properties, key=lambda p: p.name))
            )
        if len(set(names)) != len(names):
            raise ValueError("duplicate property names")

    def property_map(self) -> dict[str, TSProperty]:
        return {p.name: p for p in self.properties}

    @classmethod
    def of(cls, mapping: dict[str, TSType], optional: frozenset[str] = frozenset()) -> "TSObject":
        return cls(
            tuple(
                TSProperty(name, t, optional=name in optional)
                for name, t in mapping.items()
            )
        )

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(p) for p in self.properties) + "}"


@dataclass(frozen=True, repr=False)
class TSUnion(TSType):
    members: Tuple[TSType, ...]

    def __repr__(self) -> str:
        return " | ".join(repr(m) for m in self.members)


ANY = TSAny()
UNKNOWN = TSUnknown()
NEVER = TSNever()
NUMBER = TSPrimitive("number")
STRING = TSPrimitive("string")
BOOLEAN = TSPrimitive("boolean")
NULL = TSPrimitive("null")
UNDEFINED = TSPrimitive("undefined")


def union(members: Iterable[TSType]) -> TSType:
    """Canonical union: flattened, deduplicated, literal-absorbing.

    A literal member is absorbed by its base primitive if that primitive is
    also in the union (``"a" | string`` = ``string``), matching TypeScript's
    subtype reduction.
    """
    flat: list[TSType] = []
    seen: set[TSType] = set()

    def add(t: TSType) -> None:
        if isinstance(t, TSUnion):
            for m in t.members:
                add(m)
        elif isinstance(t, TSNever):
            return
        elif t not in seen:
            seen.add(t)
            flat.append(t)

    for member in members:
        add(member)
    if any(isinstance(t, TSAny) for t in flat):
        return ANY
    if any(isinstance(t, TSUnknown) for t in flat):
        return UNKNOWN
    primitives = {t.name for t in flat if isinstance(t, TSPrimitive)}
    flat = [
        t
        for t in flat
        if not (isinstance(t, TSLiteral) and t.base.name in primitives)
    ]
    if not flat:
        return NEVER
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=repr)
    return TSUnion(tuple(flat))


# ---------------------------------------------------------------------------
# runtime conformance
# ---------------------------------------------------------------------------


def check(value: Any, t: TSType) -> bool:
    """Does the JSON ``value`` inhabit ``t``?  (``undefined`` never matches a
    present value — it models *absence* of an object member.)"""
    if isinstance(t, (TSAny, TSUnknown)):
        return True
    if isinstance(t, TSNever):
        return False
    if isinstance(t, TSUnion):
        return any(check(value, m) for m in t.members)
    if isinstance(t, TSLiteral):
        lit = t.value
        if isinstance(lit, bool) or isinstance(value, bool):
            return value is lit
        if isinstance(lit, (int, float)):
            # Number literals compare mathematically, as JS numbers do.
            return isinstance(value, (int, float)) and value == lit
        return isinstance(value, str) and value == lit
    if isinstance(t, TSPrimitive):
        kind = kind_of(value)
        if t.name == "null":
            return kind is JsonKind.NULL
        if t.name == "boolean":
            return kind is JsonKind.BOOLEAN
        if t.name == "number":
            return kind is JsonKind.NUMBER
        if t.name == "string":
            return kind is JsonKind.STRING
        return False  # undefined: a present value is never undefined
    if isinstance(t, TSArray):
        return isinstance(value, list) and all(check(v, t.element) for v in value)
    if isinstance(t, TSTuple):
        return (
            isinstance(value, list)
            and len(value) == len(t.elements)
            and all(check(v, e) for v, e in zip(value, t.elements))
        )
    if isinstance(t, TSObject):
        if not isinstance(value, dict):
            return False
        for prop in t.properties:
            if prop.name in value:
                if not check(value[prop.name], prop.type):
                    return False
            elif not prop.optional and not _allows_undefined(prop.type):
                return False
        return True  # structural: extra members are fine
    raise TypeError(f"unknown TS type {t!r}")


def _allows_undefined(t: TSType) -> bool:
    if isinstance(t, TSPrimitive) and t.name == "undefined":
        return True
    if isinstance(t, TSUnion):
        return any(_allows_undefined(m) for m in t.members)
    return isinstance(t, (TSAny, TSUnknown))


# ---------------------------------------------------------------------------
# assignability
# ---------------------------------------------------------------------------


def is_assignable(source: TSType, target: TSType) -> bool:
    """TypeScript assignability (``source`` usable where ``target`` expected).

    Implements the structural rules for the JSON fragment: ``any`` is
    assignable both ways, ``unknown`` is a top type, ``never`` a bottom
    type, literals are assignable to their base primitive, arrays are
    covariant, objects use width+depth subtyping with optionality.
    """
    if source == target:
        return True
    if isinstance(source, TSAny) or isinstance(target, TSAny):
        return True
    if isinstance(target, TSUnknown):
        return True
    if isinstance(source, TSNever):
        return True
    if isinstance(source, TSUnknown) or isinstance(target, TSNever):
        return False
    if isinstance(source, TSUnion):
        return all(is_assignable(m, target) for m in source.members)
    if isinstance(target, TSUnion):
        return any(is_assignable(source, m) for m in target.members)
    if isinstance(source, TSLiteral):
        if isinstance(target, TSLiteral):
            return source == target
        return is_assignable(source.base, target)
    if isinstance(source, TSPrimitive) and isinstance(target, TSPrimitive):
        return source.name == target.name
    if isinstance(source, TSTuple):
        if isinstance(target, TSTuple):
            return len(source.elements) == len(target.elements) and all(
                is_assignable(s, t) for s, t in zip(source.elements, target.elements)
            )
        if isinstance(target, TSArray):
            return all(is_assignable(e, target.element) for e in source.elements)
        return False
    if isinstance(source, TSArray) and isinstance(target, TSArray):
        return is_assignable(source.element, target.element)
    if isinstance(source, TSObject) and isinstance(target, TSObject):
        source_props = source.property_map()
        for prop in target.properties:
            sp = source_props.get(prop.name)
            if sp is None:
                if prop.optional or _allows_undefined(prop.type):
                    continue
                return False
            if sp.optional and not prop.optional:
                return False
            if not is_assignable(sp.type, prop.type):
                return False
        return True  # width subtyping: extra source members are fine
    return False


# ---------------------------------------------------------------------------
# inference from samples
# ---------------------------------------------------------------------------


def infer_type(value: Any, *, widen_literals: bool = True) -> TSType:
    """The type TypeScript would infer for a JSON sample.

    With ``widen_literals`` (default) scalars infer to their primitive
    (``number``), as ``let``-bound values do; without it they infer to
    literal types, as ``const``-bound values do.
    """
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return NULL
    if kind in (JsonKind.BOOLEAN, JsonKind.NUMBER, JsonKind.STRING):
        if widen_literals:
            return {
                JsonKind.BOOLEAN: BOOLEAN,
                JsonKind.NUMBER: NUMBER,
                JsonKind.STRING: STRING,
            }[kind]
        return TSLiteral(value)
    if kind is JsonKind.ARRAY:
        if not value:
            return TSArray(NEVER)
        return TSArray(union(infer_type(v, widen_literals=widen_literals) for v in value))
    return TSObject.of(
        {name: infer_type(v, widen_literals=widen_literals) for name, v in value.items()}
    )


def infer_from_samples(values: Iterable[Any], *, widen_literals: bool = True) -> TSType:
    """Infer a common type for several samples: object types with the same
    property sets merge member-wise, everything else joins by union."""
    inferred = [infer_type(v, widen_literals=widen_literals) for v in values]
    merged: list[TSType] = []
    for t in inferred:
        for i, existing in enumerate(merged):
            combined = _try_merge_objects(existing, t)
            if combined is not None:
                merged[i] = combined
                break
        else:
            merged.append(t)
    return union(merged)


def _try_merge_objects(a: TSType, b: TSType) -> Optional[TSType]:
    if not (isinstance(a, TSObject) and isinstance(b, TSObject)):
        return None
    names = {p.name for p in a.properties} | {p.name for p in b.properties}
    amap, bmap = a.property_map(), b.property_map()
    props = []
    for name in sorted(names):
        pa, pb = amap.get(name), bmap.get(name)
        if pa is not None and pb is not None:
            props.append(
                TSProperty(name, union((pa.type, pb.type)), pa.optional or pb.optional)
            )
        else:
            present = pa if pa is not None else pb
            assert present is not None
            props.append(TSProperty(name, present.type, optional=True))
    return TSObject(tuple(props))


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def render_type(t: TSType, *, indent: int = 0) -> str:
    """Render a type expression as TypeScript source."""
    if isinstance(t, TSAny):
        return "any"
    if isinstance(t, TSUnknown):
        return "unknown"
    if isinstance(t, TSNever):
        return "never"
    if isinstance(t, TSPrimitive):
        return t.name
    if isinstance(t, TSLiteral):
        return repr(t)
    if isinstance(t, TSArray):
        inner = render_type(t.element, indent=indent)
        if isinstance(t.element, (TSUnion,)):
            return f"({inner})[]"
        return f"{inner}[]"
    if isinstance(t, TSTuple):
        return "[" + ", ".join(render_type(e, indent=indent) for e in t.elements) + "]"
    if isinstance(t, TSObject):
        if not t.properties:
            return "{}"
        pad = "  " * (indent + 1)
        lines = []
        for p in t.properties:
            mark = "?" if p.optional else ""
            lines.append(f"{pad}{p.name}{mark}: {render_type(p.type, indent=indent + 1)};")
        return "{\n" + "\n".join(lines) + "\n" + "  " * indent + "}"
    if isinstance(t, TSUnion):
        return " | ".join(render_type(m, indent=indent) for m in t.members)
    raise TypeError(f"unknown TS type {t!r}")


def declaration(t: TSType, name: str) -> str:
    """Emit a TypeScript declaration: ``interface`` for object types,
    ``type`` alias otherwise."""
    if isinstance(t, TSObject):
        body = render_type(t)
        return f"interface {name} {body}\n"
    return f"type {name} = {render_type(t)};\n"
