"""Bridges from the inference type algebra to PL type declarations.

This closes the tutorial's loop between Part 4 (inference produces types)
and Part 3 (programming languages consume them): a type inferred from a
JSON collection becomes a TypeScript declaration (unions survive) or a
Swift ``Codable`` struct (unions fail loudly — Swift cannot express them,
which is exactly the comparison the tutorial makes).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.pl import swift as sw
from repro.pl import typescript as ts
from repro.pl.swift import SwiftInferenceError
from repro.types.terms import (
    AnyType,
    ArrType,
    AtomType,
    BotType,
    RecType,
    Type,
    UnionType,
)


def algebra_to_typescript(t: Type) -> ts.TSType:
    """Translate a type-algebra term into a TypeScript type (total)."""
    if isinstance(t, BotType):
        return ts.NEVER
    if isinstance(t, AnyType):
        return ts.UNKNOWN
    if isinstance(t, AtomType):
        if t.tag == "null":
            return ts.NULL
        if t.tag == "bool":
            return ts.BOOLEAN
        if t.tag == "str":
            return ts.STRING
        return ts.NUMBER  # int/flt/num all collapse: TS has one number type
    if isinstance(t, ArrType):
        return ts.TSArray(algebra_to_typescript(t.item))
    if isinstance(t, RecType):
        return ts.TSObject(
            tuple(
                ts.TSProperty(f.name, algebra_to_typescript(f.type), optional=not f.required)
                for f in t.fields
            )
        )
    if isinstance(t, UnionType):
        return ts.union(algebra_to_typescript(m) for m in t.members)
    raise TypeError(f"cannot translate {t!r} to TypeScript")


def algebra_to_swift(t: Type, name: str = "Root") -> sw.SwiftType:
    """Translate a type-algebra term into a Swift type (partial).

    Raises :class:`SwiftInferenceError` for union types other than the two
    Swift-representable shapes ``T + Null`` (→ ``T?``) and ``Int + Flt``
    (→ ``Double``).
    """
    if isinstance(t, AtomType):
        if t.tag == "null":
            return sw.SwiftOptional(sw.STRING)
        if t.tag == "bool":
            return sw.BOOL
        if t.tag == "int":
            return sw.INT
        if t.tag in ("flt", "num"):
            return sw.DOUBLE
        return sw.STRING
    if isinstance(t, ArrType):
        if isinstance(t.item, BotType):
            return sw.SwiftArray(sw.STRING)
        return sw.SwiftArray(algebra_to_swift(t.item, name + "Element"))
    if isinstance(t, RecType):
        fields = tuple(
            sw.SwiftField(
                f.name,
                _optionalize(
                    algebra_to_swift(f.type, _camel(name, f.name)), optional=not f.required
                ),
            )
            for f in t.fields
        )
        return sw.SwiftStruct(_camel(name), fields)
    if isinstance(t, UnionType):
        members = list(t.members)
        null_members = [m for m in members if isinstance(m, AtomType) and m.tag == "null"]
        rest = [m for m in members if m not in null_members]
        if null_members and len(rest) == 1:
            return sw.SwiftOptional(algebra_to_swift(rest[0], name))
        tags = {m.tag for m in members if isinstance(m, AtomType)}
        if tags == {"int", "flt"} and len(members) == 2:
            return sw.DOUBLE
        raise SwiftInferenceError(
            f"cannot represent union {t} in Swift (no union types)"
        )
    if isinstance(t, (BotType, AnyType)):
        raise SwiftInferenceError(f"cannot represent {t} in Swift")
    raise TypeError(f"cannot translate {t!r} to Swift")


def _optionalize(t: sw.SwiftType, *, optional: bool) -> sw.SwiftType:
    if optional and not isinstance(t, sw.SwiftOptional):
        return sw.SwiftOptional(t)
    return t


def _camel(*parts: str) -> str:
    out = []
    for part in parts:
        for piece in part.replace("-", "_").split("_"):
            if piece:
                out.append(piece[0].upper() + piece[1:])
    return "".join(out) or "Anonymous"


def typescript_declaration_for(docs: Iterable[Any], name: str = "Root") -> str:
    """Infer a type from sample documents and emit a TypeScript declaration."""
    from repro.types import Equivalence, merge_all, type_of

    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    return ts.declaration(algebra_to_typescript(inferred), name)


def swift_declaration_for(docs: Iterable[Any], name: str = "Root") -> str:
    """Infer a struct from sample documents and emit Swift source.

    Raises :class:`SwiftInferenceError` when the data is too heterogeneous
    for Swift's type system.
    """
    from repro.types import Equivalence, merge_all, type_of

    inferred = merge_all((type_of(d) for d in docs), Equivalence.KIND)
    swift_type = algebra_to_swift(inferred, name)
    if isinstance(swift_type, sw.SwiftStruct):
        return sw.render_struct(swift_type)
    return f"typealias {name} = {sw.render_type(swift_type)}\n"
