"""Chunked decompression reader: compressed NDJSON straight into the fold.

Real log pipelines ship NDJSON gzip- or zstd-compressed, and the paper's
motivating workload is exactly those massive collections.  This module
makes compressed corpora first-class inputs to the bytes-native
inference pipeline without ever materialising a decompressed corpus:

- :func:`detect_compression` sniffs the container by magic bytes
  (``\\x1f\\x8b`` for gzip, ``\\x28\\xb5\\x2f\\xfd`` for zstd frames);
- :func:`iter_line_blocks` decompresses in bounded chunks and yields
  **line-aligned byte blocks** — each block ends at a line break (a
  partial trailing line is carried over into the next block), so every
  block can be handed to
  :func:`repro.inference.engine.accumulate_ranges` /
  :class:`~repro.inference.engine.RangeFolder` with
  :func:`repro.datasets.ndjson.iter_line_spans` and the fold sees
  exactly the lines an uncompressed file would produce;
- :func:`member_candidates` scans the *compressed* bytes for member /
  frame starts (gzip members and zstd frames are independently
  decompressible), which
  :func:`repro.inference.distributed.infer_compressed_parallel` turns
  into per-worker byte ranges;
- :class:`CompressedCorpus` is the lazy ``Sequence[str]`` view
  :func:`repro.datasets.ndjson.open_corpus` returns for compressed
  paths, line-index-identical to :class:`~repro.datasets.ndjson.MmapCorpus`
  over the decompressed bytes.

``zstandard`` is an **optional** dependency: detection works from magic
bytes alone, but decoding a zstd corpus without the module raises a
:class:`CompressedCorpusError` explaining the degradation — gzip decode
rides the stdlib ``zlib`` and always works.

Error model: truncated and corrupt streams raise picklable,
offset-bearing errors (:class:`TruncatedStreamError` /
:class:`CorruptStreamError`, offsets into the *compressed* file).  The
serial fold owns all error ordering — the parallel member path treats
any worker failure as "fall back to serial", exactly like the subtree
splitter.
"""

from __future__ import annotations

import gzip
import operator
import os
import re
import zlib
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.errors import ReproError

from repro.datasets.ndjson import iter_line_spans

MAGIC_GZIP = b"\x1f\x8b"
MAGIC_ZSTD = b"\x28\xb5\x2f\xfd"

# Decompressed block target: large enough to amortise per-block Python
# overhead, small enough that block + carry stays far under corpus size.
DEFAULT_BLOCK_BYTES = 1 << 20
_READ_BYTES = 256 << 10

try:  # optional dependency — gzip-only degradation without it
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - exercised by the gzip-only CI leg
    _zstandard = None


def zstd_available() -> bool:
    """Whether the optional ``zstandard`` codec is importable."""
    return _zstandard is not None


class CompressedCorpusError(ReproError):
    """Base error for compressed-corpus decoding.

    Carries the corpus ``path`` and the ``offset`` into the *compressed*
    file where decoding failed, and stays picklable across the worker
    pool (``multiprocessing`` ships exceptions by pickle; a lost
    ``__init__`` signature would turn a precise diagnostic into a
    ``TypeError`` on the way home, as the parser errors learned first).
    """

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.raw_message = message
        self.path = path
        self.offset = offset
        suffix = ""
        if path is not None:
            suffix = f" [{path}"
            if offset is not None:
                suffix += f" @ compressed byte {offset}"
            suffix += "]"
        elif offset is not None:
            suffix = f" [compressed byte {offset}]"
        super().__init__(message + suffix)

    def __reduce__(self):
        return (type(self), (self.raw_message, self.path, self.offset))


class TruncatedStreamError(CompressedCorpusError):
    """The compressed stream ended mid-member (missing trailer/frames)."""


class CorruptStreamError(CompressedCorpusError):
    """The compressed bytes are damaged (bad CRC, bad header, garbage)."""


def detect_compression(path: Union[str, Path]) -> Optional[str]:
    """Sniff a file's compression container from its magic bytes.

    Returns ``"gzip"``, ``"zstd"``, or ``None`` for anything else
    (including empty and unreadably short files, which are treated as
    plain corpora).  Detection never needs the optional codec module.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(4)
    except OSError:
        return None
    if head[:2] == MAGIC_GZIP:
        return "gzip"
    if head == MAGIC_ZSTD or _is_skippable_magic(head):
        return "zstd"
    return None


def _is_skippable_magic(head: bytes) -> bool:
    """zstd skippable-frame magic: ``0x184D2A50`` through ``0x184D2A5F``
    (little-endian on disk), legal at any frame boundary."""
    return len(head) >= 4 and 0x50 <= head[0] <= 0x5F and head[1:4] == b"\x2a\x4d\x18"


class _GzipEngine:
    """gzip member decoding on stdlib ``zlib`` (wbits=31 reads the gzip
    wrapper and verifies CRC32 + ISIZE at each member end)."""

    name = "gzip"
    magic_len = 2
    probe_bytes = 3
    errors = (zlib.error,)

    def new_decompressor(self):
        return zlib.decompressobj(31)

    def is_member_start(self, buf) -> bool:
        # Magic plus the only defined compression method (deflate=8):
        # rejects trailing garbage that merely starts with \x1f\x8b.
        return buf[:2] == MAGIC_GZIP and (len(buf) < 3 or buf[2] == 8)

    def is_magic_prefix(self, buf) -> bool:
        return MAGIC_GZIP.startswith(bytes(buf[: self.magic_len]))

    def skippable_size(self, buf) -> Optional[int]:
        return None

    def decompress(self, decomp, data, max_out: int):
        out = decomp.decompress(data, max_out)
        return out, decomp.unconsumed_tail

    def at_eof(self, decomp) -> bool:
        return decomp.eof

    def unused_data(self, decomp) -> bytes:
        return decomp.unused_data


class _ZstdEngine:
    """zstd frame decoding on the optional ``zstandard`` module."""

    name = "zstd"
    magic_len = 4
    probe_bytes = 8

    def __init__(self) -> None:
        if _zstandard is None:
            raise CompressedCorpusError(
                "zstd corpus detected but the optional 'zstandard' module is "
                "not installed; install the repro[zstd] extra or decompress "
                "the file first (gzip corpora need no extras)"
            )
        self.errors = (_zstandard.ZstdError,)

    def new_decompressor(self):
        return _zstandard.ZstdDecompressor().decompressobj()

    def is_member_start(self, buf) -> bool:
        return bytes(buf[:4]) == MAGIC_ZSTD

    def is_magic_prefix(self, buf) -> bool:
        return MAGIC_ZSTD.startswith(bytes(buf[: self.magic_len]))

    def skippable_size(self, buf) -> Optional[int]:
        """Whole on-disk size of a skippable frame at ``buf[0:]``, or
        ``None`` — skippable frames carry no data and are skipped here
        so the decompressor only ever sees content frames."""
        if not _is_skippable_magic(bytes(buf[:4])):
            return None
        if len(buf) < 8:
            return -1  # magic matched but the size field is cut off
        return 8 + int.from_bytes(bytes(buf[4:8]), "little")

    def decompress(self, decomp, data, max_out: int):
        # zstandard's decompressobj has no max_length cap; frames are
        # decoded as the input arrives, so output stays ~input-sized
        # times the frame ratio per call.
        return decomp.decompress(bytes(data)), b""

    def at_eof(self, decomp) -> bool:
        return getattr(decomp, "eof", False)

    def unused_data(self, decomp) -> bytes:
        return getattr(decomp, "unused_data", b"")


def _engine_for(fmt: str):
    if fmt == "gzip":
        return _GzipEngine()
    if fmt == "zstd":
        return _ZstdEngine()
    raise CompressedCorpusError(f"unknown compression format {fmt!r}")


def _iter_decompressed(
    path: Union[str, Path],
    fmt: str,
    start: int = 0,
    end: Optional[int] = None,
    *,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    stats: Optional[dict] = None,
) -> Iterator[bytes]:
    """Decompress the compressed byte range ``[start, end)`` of ``path``,
    yielding raw decompressed chunks (NOT line-aligned — that is
    :func:`iter_line_blocks`' job).

    The range must begin at a member/frame boundary and end exactly at
    one: a range cut mid-member raises :class:`TruncatedStreamError`,
    damaged bytes raise :class:`CorruptStreamError`, and non-member
    bytes between members raise :class:`CorruptStreamError` at their
    offset.  This is both the serial whole-file reader (``start=0``,
    ``end=None``) and the worker-side range validator of the parallel
    member fold — a speculative range that is *not* member-aligned
    fails here and sends the run back to serial.

    ``stats``, when given, tracks ``compressed_consumed`` (bytes of
    compressed input consumed so far) for the scheduler's ratio probe.
    """
    engine = _engine_for(fmt)
    path = str(path)
    if end is None:
        end = os.path.getsize(path)
    with open(path, "rb") as handle:
        handle.seek(start)
        remaining = end - start
        read_total = 0
        buffered = b""

        def refill() -> bool:
            nonlocal buffered, remaining, read_total
            raw = handle.read(min(_READ_BYTES, remaining))
            if not raw:
                remaining = 0
                return False
            remaining -= len(raw)
            read_total += len(raw)
            buffered += raw
            return True

        decomp = None
        member_offset = start
        while True:
            if decomp is None:
                # Between members: probe for the next member start,
                # skip skippable frames, or finish cleanly at range end.
                while len(buffered) < engine.probe_bytes and remaining > 0:
                    refill()
                if not buffered:
                    if stats is not None:
                        stats["compressed_consumed"] = read_total
                    return
                member_offset = start + read_total - len(buffered)
                skip = engine.skippable_size(buffered)
                if skip is not None:
                    if skip < 0:
                        raise TruncatedStreamError(
                            "truncated zstd skippable frame", path, end
                        )
                    while len(buffered) < skip and remaining > 0:
                        refill()
                    if len(buffered) < skip:
                        raise TruncatedStreamError(
                            "truncated zstd skippable frame", path, end
                        )
                    buffered = buffered[skip:]
                    continue
                if not engine.is_member_start(buffered):
                    if (
                        len(buffered) < engine.magic_len
                        and engine.is_magic_prefix(buffered)
                    ):
                        raise TruncatedStreamError(
                            f"truncated {fmt} stream: member header cut off",
                            path,
                            end,
                        )
                    raise CorruptStreamError(
                        f"invalid {fmt} member header",
                        path,
                        member_offset,
                    )
                decomp = engine.new_decompressor()
            if not buffered and not refill():
                raise TruncatedStreamError(
                    f"truncated {fmt} stream: member at compressed byte "
                    f"{member_offset} has no trailer",
                    path,
                    end,
                )
            try:
                out, leftover = engine.decompress(decomp, buffered, block_bytes)
            except engine.errors as exc:
                raise CorruptStreamError(
                    f"corrupt {fmt} stream: {exc}", path, member_offset
                ) from None
            buffered = leftover
            if engine.at_eof(decomp):
                # At stream end zlib reports the remaining input in BOTH
                # unused_data and unconsumed_tail when the same call hit
                # the max_length cap; unused_data alone is the remainder
                # (concatenating the two would replay it).
                buffered = engine.unused_data(decomp)
                decomp = None
            if stats is not None:
                stats["compressed_consumed"] = read_total - len(buffered)
            if out:
                yield out


def _line_aligned_cut(data: bytes) -> Optional[int]:
    """Index one past the last *complete* line break in ``data``.

    A lone ``\\r`` as the final byte is not complete — its ``\\n`` half
    may arrive in the next decompressed chunk (the corpus grammar treats
    ``\\r\\n`` as one break) — so it stays in the carry.  ``None`` when
    no complete break exists.
    """
    limit = len(data)
    if data.endswith(b"\r"):
        limit -= 1
    cut = max(data.rfind(b"\n", 0, limit), data.rfind(b"\r", 0, limit))
    if cut == -1:
        return None
    return cut + 1


def iter_line_blocks(
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[bytes]:
    """Yield the decompressed corpus as line-aligned byte blocks.

    Every block but the last ends exactly at a line break; a partial
    trailing line is carried into the next block, so the concatenation
    of all blocks is the decompressed file and no line ever spans two
    blocks.  Peak memory is one block plus the longest line — never the
    whole corpus.  Feed each block through
    :func:`repro.datasets.ndjson.iter_line_spans` (dropping the final
    empty segment, which belongs to the next block) to recover exactly
    the lines :class:`~repro.datasets.ndjson.MmapCorpus` would index in
    the decompressed bytes.
    """
    fmt = format or detect_compression(path)
    if fmt is None:
        raise CompressedCorpusError(
            "not a recognized compressed corpus (no gzip/zstd magic)",
            str(path),
            0,
        )
    # The carry never contains a complete break (at most a trailing lone
    # ``\r`` awaiting its possible ``\n``), so only the new chunk needs
    # searching — keeping the loop O(total bytes) even when a line spans
    # thousands of tiny chunks.
    carry = bytearray()
    for chunk in _iter_decompressed(path, fmt, block_bytes=block_bytes):
        cut = _line_aligned_cut(chunk)
        if cut is None:
            # No complete break in the chunk.  The chunk cannot start
            # with ``\n`` here (that would be a complete break at index
            # 0), so a trailing ``\r`` in the carry is now known to be a
            # lone-CR break — flush through it.
            if carry and carry[-1] == 0x0D:
                block = bytes(carry)
                carry = bytearray(chunk)
                yield block
            else:
                carry += chunk
            continue
        yield bytes(carry) + chunk[:cut]
        carry = bytearray(chunk[cut:])
    if carry:
        yield bytes(carry)


def iter_block_line_spans(block: bytes) -> Iterator[tuple]:
    """Line spans of one line-aligned block, MmapCorpus-identical.

    Blocks from :func:`iter_line_blocks` end at a break (where the final
    split segment is empty and belongs to the *next* block's first line)
    or at true EOF without a terminator (where a final empty segment
    would be the phantom line after a trailing newline that
    :class:`~repro.datasets.ndjson.MmapCorpus` never indexes).  Either
    way the final *empty* segment is dropped; a non-empty final segment
    (unterminated last line of the corpus) is kept.
    """
    spans = list(iter_line_spans(block))
    last_start, last_end = spans[-1]
    if last_end > last_start:
        return iter(spans)
    return iter(spans[:-1])


def iter_compressed_lines(
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> Iterator[str]:
    """Yield the decoded lines of a compressed NDJSON corpus.

    Exactly what :func:`repro.datasets.ndjson.iter_ndjson_lines` yields
    for the decompressed file: universal newlines, terminators stripped,
    blank lines preserved.
    """
    for block in iter_line_blocks(path, format=format, block_bytes=block_bytes):
        for start, end in iter_block_line_spans(block):
            yield block[start:end].decode("utf-8")


class CompressedCorpus(Sequence[str]):
    """A compressed NDJSON corpus as a lazy ``Sequence[str]``.

    The compressed twin of :class:`~repro.datasets.ndjson.MmapCorpus`,
    returned by :func:`repro.datasets.ndjson.open_corpus` for gzip/zstd
    paths: identical line-index semantics over the *decompressed* bytes
    (universal newlines, terminators stripped, blank lines preserved, no
    phantom line after a trailing newline), pinned by the regression
    tests in ``tests/test_datasets_ndjson.py``.

    Iteration streams (one block in memory); ``len`` streams once and
    caches; random access streams to the index — compressed containers
    have no line index, so prefer iteration, or the inference entry
    points which never random-access.  ``close`` exists for
    ``with``-parity with :class:`~repro.datasets.ndjson.MmapCorpus` and
    holds no resources between calls.
    """

    __slots__ = ("path", "format", "_length", "_closed")

    def __init__(self, path: Union[str, Path], format: Optional[str] = None) -> None:
        self.path = str(path)
        fmt = format or detect_compression(self.path)
        if fmt is None:
            raise CompressedCorpusError(
                "not a recognized compressed corpus (no gzip/zstd magic)",
                self.path,
                0,
            )
        self.format = fmt
        self._length: Optional[int] = None
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("I/O operation on closed CompressedCorpus")

    def __iter__(self) -> Iterator[str]:
        self._check_open()
        return iter_compressed_lines(self.path, format=self.format)

    def __len__(self) -> int:
        self._check_open()
        if self._length is None:
            count = 0
            for _ in self:
                count += 1
            self._length = count
        return self._length

    def __getitem__(self, index):
        self._check_open()
        if isinstance(index, slice):
            wanted = range(*index.indices(len(self)))
            if not len(wanted):
                return []
            want = set(wanted)
            found: dict = {}
            for i, line in enumerate(self):
                if i in want:
                    found[i] = line
                    if len(found) == len(want):
                        break
            return [found[i] for i in wanted]
        index = operator.index(index)
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("corpus line index out of range")
        for i, line in enumerate(self):
            if i == index:
                return line
        raise IndexError("corpus line index out of range")  # pragma: no cover

    @property
    def compressed_bytes(self) -> int:
        """Size of the compressed file on disk."""
        return os.path.getsize(self.path)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "CompressedCorpus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counted = self._length if self._length is not None else "?"
        return (
            f"CompressedCorpus({self.path!r}, format={self.format!r}, "
            f"lines={counted})"
        )


# gzip member start: magic + deflate method + a FLG byte with the
# reserved bits (5-7) clear — RFC 1952 requires them zero, so the
# 4-byte probe rejects most of the random \x1f\x8b pairs that occur
# inside compressed payloads.  Candidates are still *speculative*:
# a worker whose range starts at a false candidate fails to decode and
# the run falls back to serial.
_GZIP_CANDIDATE = re.compile(b"\x1f\x8b\x08[\x00-\x1f]")
_ZSTD_CANDIDATE = re.compile(re.escape(MAGIC_ZSTD))
_MAX_CANDIDATES = 1 << 16


def member_candidates(
    path: Union[str, Path],
    format: Optional[str] = None,
    *,
    limit: int = _MAX_CANDIDATES,
) -> list[int]:
    """Compressed-byte offsets that *look like* member/frame starts.

    Offset 0 is always included.  gzip candidates are filtered by
    header plausibility (method + reserved flag bits), zstd by frame
    magic; both can still be payload-byte coincidences, which the
    parallel member fold detects by decode failure and resolves by
    serial fallback.  At most ``limit`` offsets are returned — more
    members than that are far past the point of diminishing parallelism.
    """
    fmt = format or detect_compression(path)
    pattern = {"gzip": _GZIP_CANDIDATE, "zstd": _ZSTD_CANDIDATE}.get(fmt)
    if pattern is None:
        return []
    offsets = [0]
    with open(path, "rb") as handle:
        data = handle.read()
    for match in pattern.finditer(data):
        if match.start() == 0:
            continue
        offsets.append(match.start())
        if len(offsets) >= limit:
            break
    return offsets


def compress_member(payload: bytes, *, format: str = "gzip", level: int = 6) -> bytes:
    """Compress one payload as a single member/frame.

    Concatenating the results of several calls produces a valid
    multi-member gzip file / multi-frame zstd file — the independently
    decompressible units :func:`member_candidates` finds.  ``mtime`` is
    pinned to zero so gzip output is deterministic.
    """
    if format == "gzip":
        return gzip.compress(payload, compresslevel=level, mtime=0)
    if format == "zstd":
        if _zstandard is None:
            raise CompressedCorpusError(
                "cannot write zstd: the optional 'zstandard' module is not "
                "installed (install the repro[zstd] extra)"
            )
        return _zstandard.ZstdCompressor(level=level).compress(payload)
    raise CompressedCorpusError(f"unknown compression format {format!r}")


def compress_corpus(
    path: Union[str, Path],
    lines: Iterable[str],
    *,
    format: str = "gzip",
    member_lines: Optional[int] = None,
    level: int = 6,
) -> int:
    """Write lines as a compressed NDJSON corpus; returns the member count.

    ``member_lines`` starts a fresh gzip member / zstd frame every that
    many lines, producing the multi-member layout real log rotation
    concatenation yields (and the one the parallel member fold
    exploits); ``None`` writes one member.  Lines are written
    ``"\\n"``-terminated, matching :func:`~repro.datasets.ndjson.write_ndjson`.
    """
    members = 0
    with open(path, "wb") as handle:
        payload: list[str] = []
        for line in lines:
            payload.append(line)
            if member_lines is not None and len(payload) >= member_lines:
                handle.write(
                    compress_member(
                        ("\n".join(payload) + "\n").encode("utf-8"),
                        format=format,
                        level=level,
                    )
                )
                members += 1
                payload = []
        if payload or members == 0:
            data = ("\n".join(payload) + "\n").encode("utf-8") if payload else b""
            handle.write(compress_member(data, format=format, level=level))
            members += 1
    return members


def estimate_ratio(
    path: Union[str, Path],
    format: Optional[str] = None,
    *,
    probe_bytes: int = 1 << 20,
) -> float:
    """Decompressed/compressed expansion ratio, from a bounded probe.

    Decompresses roughly the first ``probe_bytes`` of output and divides
    by the compressed input consumed — the scheduler's cost model needs
    the *decompressed* corpus size, which no container header states
    reliably (gzip's ISIZE covers only the last member, mod 2**32).
    Unreadable or damaged streams report 1.0 and leave the real error to
    the fold.
    """
    fmt = format or detect_compression(path)
    if fmt is None:
        return 1.0
    stats: dict = {}
    produced = 0
    try:
        for chunk in _iter_decompressed(path, fmt, stats=stats):
            produced += len(chunk)
            if produced >= probe_bytes:
                break
    except CompressedCorpusError:
        return 1.0
    consumed = stats.get("compressed_consumed", 0)
    if consumed <= 0 or produced <= 0:
        return 1.0
    return max(1.0, produced / consumed)
