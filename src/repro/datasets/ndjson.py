"""Line-oriented NDJSON loaders: raw lines in, documents or types out.

The inference stack's fastest paths consume *raw lines*, not parsed
documents — the fused text→type pipeline
(:class:`repro.types.build.EventTypeEncoder`) goes straight from a line
to a canonical interned type, and the batched parallel feed
(:func:`repro.inference.distributed.infer_distributed_text`) ships line
slices to workers.  These helpers normalise the usual sources (paths,
``-`` for stdin, open handles, in-memory iterables) into that shape.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Union

from repro.types import Type
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable

LineSource = Union[str, Path, Iterable[str]]


def iter_ndjson_lines(source: LineSource) -> Iterator[str]:
    """Yield the raw lines of an NDJSON source, newline-stripped.

    ``source`` may be a file path, ``"-"`` for stdin, an open handle, or
    any iterable of strings.  Blank lines are preserved (the consumers
    skip them), so line numbers stay meaningful for error reporting.
    """
    if isinstance(source, Path):
        source = str(source)
    if isinstance(source, str):
        if source == "-":
            for line in sys.stdin:
                yield line.rstrip("\r\n")
            return
        with open(source, "r", encoding="utf-8") as handle:
            for line in handle:
                yield line.rstrip("\r\n")
        return
    for line in source:
        yield line.rstrip("\r\n")


def read_ndjson_lines(source: LineSource) -> list[str]:
    """The raw lines of an NDJSON source as a list (the parallel feed's
    input shape — slices of it are shipped to workers)."""
    return list(iter_ndjson_lines(source))


def stream_documents(source: LineSource) -> Iterator[Any]:
    """Parse an NDJSON source one document at a time (DOM path)."""
    from repro.jsonvalue.parser import parse_lines

    return parse_lines(iter_ndjson_lines(source))


def stream_types(
    source: LineSource, *, table: Optional[InternTable] = None
) -> Iterator[Type]:
    """The canonical interned type of each document in an NDJSON source.

    Zero-materialization: every line runs the fused lexer→type pipeline;
    no document DOM is ever built.  Blank lines are skipped.
    """
    encoder = EventTypeEncoder(table)
    encode_text = encoder.encode_text
    for line in iter_ndjson_lines(source):
        if not line or line.isspace():
            continue
        yield encode_text(line)


def write_ndjson(path: Union[str, Path], documents: Iterable[Any]) -> int:
    """Serialize documents to an NDJSON file; returns the line count."""
    from repro.jsonvalue.serializer import dumps

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for document in documents:
            handle.write(dumps(document))
            handle.write("\n")
            count += 1
    return count
