"""Line-oriented NDJSON loaders: raw lines in, documents or types out.

The inference stack's fastest paths consume *raw lines*, not parsed
documents — the fused text→type pipeline
(:class:`repro.types.build.EventTypeEncoder`) goes straight from a line
to a canonical interned type, and the batched parallel feed
(:func:`repro.inference.distributed.infer_distributed_text`) ships line
slices to workers.  These helpers normalise the usual sources (paths,
``-`` for stdin, open handles, in-memory iterables) into that shape.
"""

from __future__ import annotations

import mmap
import os
import re
import sys
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from repro.types import Type
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable

LineSource = Union[str, Path, Iterable[str]]

# Line-break grammar shared by the byte-range index and the worker-side
# re-split of shared-memory byte ranges: "\r\n" first (one break, not
# two), then the universal-newline singles — matching the translation
# Python's text mode applies in :func:`iter_ndjson_lines`.
LINE_BREAK_PATTERN = r"\r\n|\r|\n"
_LINE_BREAK_BYTES = re.compile(LINE_BREAK_PATTERN.encode("ascii"))
_LINE_BREAK_STR = re.compile(LINE_BREAK_PATTERN)


def split_corpus_lines(text: str) -> list[str]:
    """Split a decoded corpus byte range back into its lines.

    Inverse of the byte-range index: for any contiguous range of corpus
    lines (original separators included), returns exactly those lines —
    the worker-side step of the zero-copy shared-memory feed.
    """
    return _LINE_BREAK_STR.split(text)


def split_corpus_bytes(data: bytes) -> list[bytes]:
    """Split an *undecoded* corpus byte range into its line bytes.

    The bytes twin of :func:`split_corpus_lines`: same line-break
    grammar, no decode — each returned item is the raw UTF-8 bytes of
    one corpus line, ready for the bytes-native fold
    (:func:`repro.inference.engine.accumulate_ranges` /
    :meth:`~repro.types.build.EventTypeEncoder.encode_lines`).
    """
    return _LINE_BREAK_BYTES.split(data)


def iter_line_spans(data, start: int = 0, end: Optional[int] = None):
    """Yield the ``(start, end)`` byte span of every line in a range.

    The in-place form of :func:`split_corpus_bytes` for buffers that
    should not be sliced up front (mmap, shared memory): spans exclude
    the separators, blank segments are preserved, and the final segment
    is yielded even when empty — exactly the segments the split
    functions return for the same bytes.
    """
    if end is None:
        end = len(data)
    pos = start
    for match in _LINE_BREAK_BYTES.finditer(data, start, end):
        yield pos, match.start()
        pos = match.end()
    yield pos, end


class MmapCorpus(Sequence[str]):
    """An NDJSON corpus as an mmap-backed byte buffer plus a line index.

    ``open_corpus`` maps the file read-only and builds a byte-range
    index of its lines in one C-speed scan — no line is decoded, split,
    or copied until something asks for it.  The corpus then behaves as a
    lazy ``Sequence[str]`` whose items are exactly what
    :func:`iter_ndjson_lines` would yield for the same file (universal
    newlines, terminators stripped, blank lines preserved), which the
    round-trip tests pin.

    The raw buffer and the index are what the distributed text feed
    consumes: :func:`repro.inference.distributed.infer_distributed_text`
    copies the bytes *once* into a ``multiprocessing.shared_memory``
    segment and ships ``(start, end)`` line-aligned byte ranges to the
    workers, so the parent process never splits, decodes, or pickles the
    corpus line-by-line.
    """

    __slots__ = ("path", "_file", "_mm", "_spans")

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self._file = open(self.path, "rb")
        try:
            size = os.fstat(self._file.fileno()).st_size
            # mmap rejects empty files; an empty corpus has no lines.
            self._mm: Optional[mmap.mmap] = (
                mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
                if size
                else None
            )
            data = self._mm if self._mm is not None else b""
            spans: list[tuple[int, int]] = []
            pos = 0
            if size and data.find(b"\r") == -1:
                # LF-only corpus (the overwhelmingly common case): a
                # bare C find loop, no match objects.
                find = data.find
                while True:
                    newline = find(b"\n", pos)
                    if newline == -1:
                        break
                    spans.append((pos, newline))
                    pos = newline + 1
            else:
                for match in _LINE_BREAK_BYTES.finditer(data):
                    spans.append((pos, match.start()))
                    pos = match.end()
            if pos < size:
                spans.append((pos, size))  # final line without a terminator
            self._spans = spans
        except BaseException:
            self._file.close()
            raise

    # -- the lazy Sequence[str] view ------------------------------------
    #
    # __getitem__ deliberately caches nothing: every access decodes
    # straight from the mapped bytes, so a corpus holds O(index) memory
    # no matter how it is iterated.  Indexing follows Sequence semantics
    # exactly — negative indices, slices (step and negative step
    # included, returning lists), ``__index__``-bearing index objects,
    # IndexError past either end, TypeError on non-indices — pinned by
    # the regression tests in ``tests/test_datasets_ndjson.py``.

    def __len__(self) -> int:
        return len(self._spans)

    def _mapped(self):
        """The live map; a closed corpus fails loudly, not with the
        confusing ``TypeError`` of subscripting ``None``."""
        mm = self._mm
        if mm is None and self._file.closed:
            raise ValueError("I/O operation on closed MmapCorpus")
        return mm

    def __getitem__(self, index):
        if isinstance(index, slice):
            spans = self._spans[index]
            mm = self._mapped() if spans else None
            return [
                mm[start:end].decode("utf-8") if end > start else ""
                for start, end in spans
            ]
        start, end = self._spans[index]
        if end <= start:
            return ""
        return self._mapped()[start:end].decode("utf-8")

    def __iter__(self) -> Iterator[str]:
        mm = self._mapped() if self._spans else None
        for start, end in self._spans:
            yield mm[start:end].decode("utf-8") if end > start else ""

    # -- the zero-copy byte view ----------------------------------------

    @property
    def spans(self) -> list[tuple[int, int]]:
        """Byte range of every line (terminators excluded), in order."""
        return self._spans

    @property
    def size_bytes(self) -> int:
        """Size of the backing file in bytes."""
        return len(self._mm) if self._mm is not None else 0

    @property
    def max_line_bytes(self) -> int:
        """Size of the longest line — the adaptive scheduler's shape
        probe: a corpus dominated by one huge line wants the subtree
        (intra-document) mode, not line parallelism."""
        return max((end - start for start, end in self._spans), default=0)

    def buffer(self):
        """The raw file bytes as a buffer (``b""`` for an empty file)."""
        return self._mm if self._mm is not None else b""

    def byte_range(self, start_line: int, stop_line: int) -> tuple[int, int]:
        """Byte range covering lines ``[start_line, stop_line)`` with
        their original separators in between — re-splittable with
        :func:`split_corpus_lines` into exactly those lines."""
        if not 0 <= start_line < stop_line <= len(self._spans):
            raise IndexError(
                f"line range [{start_line}, {stop_line}) out of bounds "
                f"for a corpus of {len(self._spans)} lines"
            )
        return self._spans[start_line][0], self._spans[stop_line - 1][1]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "MmapCorpus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MmapCorpus({self.path!r}, lines={len(self._spans)}, "
            f"bytes={self.size_bytes})"
        )


def open_corpus(path: Union[str, Path]):
    """Open an NDJSON corpus as a lazy ``Sequence[str]``.

    Plain files map as a zero-copy :class:`MmapCorpus`; gzip/zstd files
    (detected by magic bytes) open as a
    :class:`~repro.datasets.compressed.CompressedCorpus` with identical
    line-index semantics over the decompressed bytes — the same
    universal-newline grammar, terminators stripped, blank lines
    preserved, no phantom line after a trailing terminator, and an
    empty (or empty-decompressing) corpus has zero lines.
    """
    from repro.datasets.compressed import CompressedCorpus, detect_compression

    fmt = detect_compression(path)
    if fmt is not None:
        return CompressedCorpus(path, fmt)
    return MmapCorpus(path)


def iter_ndjson_lines(source: LineSource) -> Iterator[str]:
    """Yield the raw lines of an NDJSON source, newline-stripped.

    ``source`` may be a file path, ``"-"`` for stdin, an open handle, or
    any iterable of strings.  Blank lines are preserved (the consumers
    skip them), so line numbers stay meaningful for error reporting.
    """
    if isinstance(source, Path):
        source = str(source)
    if isinstance(source, str):
        if source == "-":
            for line in sys.stdin:
                yield line.rstrip("\r\n")
            return
        from repro.datasets.compressed import (
            detect_compression,
            iter_compressed_lines,
        )

        if os.path.isfile(source) and detect_compression(source) is not None:
            yield from iter_compressed_lines(source)
            return
        with open(source, "r", encoding="utf-8") as handle:
            for line in handle:
                yield line.rstrip("\r\n")
        return
    for line in source:
        yield line.rstrip("\r\n")


def read_ndjson_lines(source: LineSource) -> list[str]:
    """The raw lines of an NDJSON source as a list (the parallel feed's
    input shape — slices of it are shipped to workers)."""
    return list(iter_ndjson_lines(source))


def stream_documents(source: LineSource) -> Iterator[Any]:
    """Parse an NDJSON source one document at a time (DOM path)."""
    from repro.jsonvalue.parser import parse_lines

    return parse_lines(iter_ndjson_lines(source))


def stream_types(
    source: LineSource, *, table: Optional[InternTable] = None
) -> Iterator[Type]:
    """The canonical interned type of each document in an NDJSON source.

    Zero-materialization: every line runs the fused lexer→type pipeline;
    no document DOM is ever built.  Blank lines are skipped.
    """
    encoder = EventTypeEncoder(table)
    encode_text = encoder.encode_text
    for line in iter_ndjson_lines(source):
        if not line or line.isspace():
            continue
        yield encode_text(line)


def write_ndjson(path: Union[str, Path], documents: Iterable[Any]) -> int:
    """Serialize documents to an NDJSON file; returns the line count."""
    from repro.jsonvalue.serializer import dumps

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for document in documents:
            handle.write(dumps(document))
            handle.write("\n")
            count += 1
    return count
