"""Core synthetic-collection machinery.

The tutorial's running examples come "from publicly available datasets"
(Twitter, GitHub, NYT, data.gov).  Those corpora cannot ship with a
reproduction, so this package generates synthetic collections whose
*structural statistics* — the properties every surveyed algorithm is
actually sensitive to — are controllable:

- ``optional_probability`` — how often optional fields appear
  (drives optionality marks, counting types, nullable columns);
- ``variant_weights`` — the mix of structural variants
  (drives K-vs-L precision, skeleton coverage, flavor discovery);
- ``kind_noise`` — probability that a field's value flips to another kind
  (drives Spark's string-collapse and union growth);
- deterministic seeding throughout, so benchmarks are reproducible.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

_WORDS = (
    "json schema type data record array union tutorial edbt inference "
    "parser column spark mongo couch skeleton swift script query value"
).split()


class Rng:
    """A seeded random helper with JSON-flavoured primitives."""

    def __init__(self, seed: int) -> None:
        self.random = random.Random(seed)

    def word(self) -> str:
        return self.random.choice(_WORDS)

    def sentence(self, words: int = 6) -> str:
        return " ".join(self.random.choice(_WORDS) for _ in range(words))

    def identifier(self, length: int = 8) -> str:
        alphabet = string.ascii_lowercase + string.digits
        return "".join(self.random.choice(alphabet) for _ in range(length))

    def timestamp(self) -> str:
        y = self.random.randint(2015, 2019)
        mo = self.random.randint(1, 12)
        d = self.random.randint(1, 28)
        h = self.random.randint(0, 23)
        mi = self.random.randint(0, 59)
        s = self.random.randint(0, 59)
        return f"{y:04d}-{mo:02d}-{d:02d}T{h:02d}:{mi:02d}:{s:02d}Z"

    def maybe(self, probability: float) -> bool:
        return self.random.random() < probability

    def pick_weighted(self, weights: Sequence[tuple[str, float]]) -> str:
        names = [n for n, _ in weights]
        values = [w for _, w in weights]
        return self.random.choices(names, weights=values, k=1)[0]

    def scalar_of_other_kind(self, value: Any) -> Any:
        """A value of a different JSON kind (for kind-noise injection)."""
        candidates: list[Any] = [None, True, 17, 2.5, "noise"]
        kind = type(value)
        filtered = [c for c in candidates if type(c) is not kind]
        return self.random.choice(filtered)


@dataclass
class CollectionSpec:
    """Declarative description of a synthetic collection.

    ``variants`` maps a variant name to a factory ``(Rng) -> dict``;
    ``variant_weights`` gives the mixture.  ``kind_noise`` flips a scalar
    field's kind with the given probability after generation.
    """

    variants: dict
    variant_weights: list = field(default_factory=list)
    kind_noise: float = 0.0
    discriminator: str | None = "type"  # field carrying the variant name


def generate_collection(spec: CollectionSpec, count: int, *, seed: int = 0) -> list[dict]:
    """Generate ``count`` documents from a :class:`CollectionSpec`."""
    rng = Rng(seed)
    weights = spec.variant_weights or [(name, 1.0) for name in spec.variants]
    docs = []
    for _ in range(count):
        variant = rng.pick_weighted(weights)
        doc = spec.variants[variant](rng)
        if spec.discriminator and spec.discriminator not in doc:
            doc = {spec.discriminator: variant, **doc}
        if spec.kind_noise:
            doc = _inject_kind_noise(doc, rng, spec.kind_noise)
        docs.append(doc)
    return docs


def _inject_kind_noise(doc: Any, rng: Rng, probability: float) -> Any:
    if isinstance(doc, dict):
        return {k: _inject_kind_noise(v, rng, probability) for k, v in doc.items()}
    if isinstance(doc, list):
        return [_inject_kind_noise(v, rng, probability) for v in doc]
    if rng.maybe(probability):
        return rng.scalar_of_other_kind(doc)
    return doc


def heterogeneous_collection(
    count: int,
    *,
    variants: int = 4,
    optional_probability: float = 0.5,
    kind_noise: float = 0.0,
    seed: int = 0,
) -> list[dict]:
    """A generic heterogeneous collection with ``variants`` record shapes.

    Variant *i* has ``i + 2`` base fields plus per-document optional
    fields; used by the inference-precision experiments (E3, E10) where
    the structure mix is the independent variable.
    """
    rng = Rng(seed)
    docs = []
    for _ in range(count):
        v = rng.random.randrange(variants)
        doc: dict[str, Any] = {"variant": f"v{v}"}
        for i in range(v + 2):
            field_name = f"f{v}_{i}"
            roll = rng.random.random()
            if roll < 0.4:
                doc[field_name] = rng.random.randint(0, 10_000)
            elif roll < 0.7:
                doc[field_name] = rng.sentence(3)
            elif roll < 0.85:
                doc[field_name] = rng.random.random() * 100
            else:
                doc[field_name] = [rng.word() for _ in range(rng.random.randint(0, 3))]
        if rng.maybe(optional_probability):
            doc["opt_note"] = rng.sentence(2)
        if rng.maybe(optional_probability / 2):
            doc["opt_meta"] = {"source": rng.word(), "rank": rng.random.randint(0, 9)}
        if kind_noise:
            doc = _inject_kind_noise(doc, rng, kind_noise)
        docs.append(doc)
    return docs


def ndjson_lines(documents: Iterable[Any]) -> list[str]:
    """Serialize documents to NDJSON lines (the parsers' input format)."""
    from repro.jsonvalue.serializer import dumps

    return [dumps(d) for d in documents]
