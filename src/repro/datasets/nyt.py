"""Synthetic New-York-Times-like article metadata.

Models the Article Search API shape: deeply *regular* records with
optional multimedia and variable-length keyword lists — the workload where
schema-aware columnar translation shines (E9) and where denormalised
byline/section data carries functional dependencies for the relational
experiment (E11).
"""

from __future__ import annotations

from typing import Any

from repro.datasets.generator import Rng

_SECTIONS = [
    ("Politics", "A", "Washington"),
    ("Science", "D", "Science Desk"),
    ("Sports", "S", "Sports Desk"),
    ("Arts", "C", "Culture Desk"),
]


def _article(rng: Rng) -> dict[str, Any]:
    section, print_page, desk = rng.random.choice(_SECTIONS)
    doc: dict[str, Any] = {
        "_id": rng.identifier(24),
        "headline": {"main": rng.sentence(7), "kicker": rng.word()},
        "byline": {
            "original": f"By {rng.sentence(2).title()}",
            "person": [
                {
                    "firstname": rng.word().title(),
                    "lastname": rng.word().title(),
                    "rank": 1,
                }
            ],
        },
        "pub_date": rng.timestamp(),
        "section_name": section,
        "print_page": print_page,
        "news_desk": desk,
        "word_count": rng.random.randint(100, 3000),
        "keywords": [
            {"name": "subject", "value": rng.sentence(2), "rank": i + 1}
            for i in range(rng.random.randint(0, 4))
        ],
    }
    if rng.maybe(0.55):
        doc["multimedia"] = [
            {
                "url": f"images/{rng.identifier()}.jpg",
                "height": rng.random.choice([75, 150, 600]),
                "width": rng.random.choice([75, 150, 600]),
                "subtype": rng.random.choice(["thumbnail", "xlarge"]),
            }
            for _ in range(rng.random.randint(1, 3))
        ]
    if rng.maybe(0.3):
        doc["snippet"] = rng.sentence(12)
    return doc


def articles(count: int, *, seed: int = 0) -> list[dict]:
    """Generate an NYT-like article-metadata collection."""
    rng = Rng(seed)
    return [_article(rng) for _ in range(count)]
