"""Synthetic open-data catalog (data.gov-style DCAT entries).

The tutorial's §1 names the U.S. Government's open data platform as a
JSON publishing venue.  DCAT catalog entries are *bureaucratically
heterogeneous*: publisher hierarchies, variable distribution lists,
free-form "extras" — a good stress test for skeleton mining and for the
repository's cross-collection path queries.
"""

from __future__ import annotations

from typing import Any

from repro.datasets.generator import Rng

_FORMATS = ["CSV", "JSON", "XML", "PDF", "API"]
_AGENCIES = [
    ("Department of Data", "DoD"),
    ("Bureau of Schemas", "BoS"),
    ("Agency of Types", "AoT"),
]


def _dataset(rng: Rng) -> dict[str, Any]:
    agency, acronym = rng.random.choice(_AGENCIES)
    doc: dict[str, Any] = {
        "identifier": rng.identifier(12),
        "title": rng.sentence(5).title(),
        "description": rng.sentence(15),
        "modified": rng.timestamp()[:10],
        "publisher": {
            "name": agency,
            "subOrganizationOf": {"name": f"{acronym} Parent Office"},
        },
        "keyword": [rng.word() for _ in range(rng.random.randint(1, 5))],
        "accessLevel": rng.random.choice(["public", "restricted public"]),
        "distribution": [
            {
                "format": rng.random.choice(_FORMATS),
                "downloadURL": f"https://data.example.gov/{rng.identifier()}",
                "mediaType": "text/csv",
            }
            for _ in range(rng.random.randint(1, 3))
        ],
    }
    if rng.maybe(0.4):
        doc["temporal"] = f"{rng.timestamp()[:10]}/{rng.timestamp()[:10]}"
    if rng.maybe(0.3):
        doc["spatial"] = rng.sentence(2)
    if rng.maybe(0.25):
        doc["extras"] = {rng.word(): rng.sentence(2) for _ in range(rng.random.randint(1, 3))}
    return doc


def catalog(count: int, *, seed: int = 0) -> list[dict]:
    """Generate a data.gov-like catalog of dataset descriptions."""
    rng = Rng(seed)
    return [_dataset(rng) for _ in range(count)]
