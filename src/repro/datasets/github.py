"""Synthetic GitHub-events-like collection.

GitHub's public event stream is the canonical *discriminated-variant*
dataset: every document carries a ``type`` field (``PushEvent``,
``IssuesEvent``, …) and the ``payload`` structure depends on it.  That
value-dependence is exactly what

- LABEL-equivalence inference preserves and KIND-equivalence loses (E3),
- schema profiling must *discover* from values (Gallinucci et al.),
- Joi's ``when`` / JSON Schema's ``if``/``then`` can express.
"""

from __future__ import annotations

from typing import Any

from repro.datasets.generator import CollectionSpec, Rng, generate_collection


def _actor(rng: Rng) -> dict[str, Any]:
    return {
        "id": rng.random.randint(1, 10**7),
        "login": rng.identifier(),
        "url": f"https://api.github.com/users/{rng.identifier()}",
    }


def _repo(rng: Rng) -> dict[str, Any]:
    return {
        "id": rng.random.randint(1, 10**8),
        "name": f"{rng.word()}/{rng.word()}",
    }


def _base(rng: Rng) -> dict[str, Any]:
    return {
        "id": str(rng.random.randint(10**9, 10**10)),
        "actor": _actor(rng),
        "repo": _repo(rng),
        "public": True,
        "created_at": rng.timestamp(),
    }


def _push_event(rng: Rng) -> dict[str, Any]:
    doc = _base(rng)
    doc["type"] = "PushEvent"
    doc["payload"] = {
        "push_id": rng.random.randint(1, 10**9),
        "size": rng.random.randint(1, 20),
        "ref": "refs/heads/main",
        "commits": [
            {
                "sha": rng.identifier(40),
                "message": rng.sentence(5),
                "author": {"name": rng.sentence(2), "email": f"{rng.identifier()}@example.org"},
            }
            for _ in range(rng.random.randint(1, 3))
        ],
    }
    return doc


def _issues_event(rng: Rng) -> dict[str, Any]:
    doc = _base(rng)
    doc["type"] = "IssuesEvent"
    doc["payload"] = {
        "action": rng.random.choice(["opened", "closed", "reopened"]),
        "issue": {
            "number": rng.random.randint(1, 5000),
            "title": rng.sentence(4),
            "labels": [{"name": rng.word()} for _ in range(rng.random.randint(0, 3))],
            "comments": rng.random.randint(0, 50),
        },
    }
    return doc


def _watch_event(rng: Rng) -> dict[str, Any]:
    doc = _base(rng)
    doc["type"] = "WatchEvent"
    doc["payload"] = {"action": "started"}
    return doc


def _fork_event(rng: Rng) -> dict[str, Any]:
    doc = _base(rng)
    doc["type"] = "ForkEvent"
    doc["payload"] = {
        "forkee": {
            "id": rng.random.randint(1, 10**8),
            "full_name": f"{rng.identifier()}/{rng.word()}",
            "private": False,
        }
    }
    return doc


EVENT_SPEC = CollectionSpec(
    variants={
        "PushEvent": _push_event,
        "IssuesEvent": _issues_event,
        "WatchEvent": _watch_event,
        "ForkEvent": _fork_event,
    },
    variant_weights=[
        ("PushEvent", 0.5),
        ("IssuesEvent", 0.2),
        ("WatchEvent", 0.2),
        ("ForkEvent", 0.1),
    ],
    discriminator=None,  # the factories set "type" themselves
)


def events(count: int, *, seed: int = 0, kind_noise: float = 0.0) -> list[dict]:
    """Generate a GitHub-events-like collection."""
    spec = CollectionSpec(
        variants=EVENT_SPEC.variants,
        variant_weights=EVENT_SPEC.variant_weights,
        kind_noise=kind_noise,
        discriminator=None,
    )
    return generate_collection(spec, count, seed=seed)
