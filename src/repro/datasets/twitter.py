"""Synthetic Twitter-like stream.

Models the structural traits of the real Twitter statuses API that the
surveyed systems stumble on:

- wide, stable records (Mison/Fad.js speed comes from this);
- optional members (``coordinates`` null-or-object, ``retweeted_status``
  present only for retweets — a *nested full tweet*);
- a fraction of **delete notices** ``{"delete": {...}}`` interleaved with
  statuses, exactly the heterogeneity that breaks union-free inference;
- ``entities`` with arrays of records (hashtags, urls).
"""

from __future__ import annotations

from typing import Any

from repro.datasets.generator import Rng


def _user(rng: Rng) -> dict[str, Any]:
    user = {
        "id": rng.random.randint(1, 10**9),
        "screen_name": rng.identifier(),
        "name": rng.sentence(2),
        "followers_count": rng.random.randint(0, 100_000),
        "verified": rng.maybe(0.1),
        "lang": rng.random.choice(["en", "fr", "it", "de", None]),
    }
    if rng.maybe(0.6):
        user["location"] = rng.sentence(2)
    return user


def _entities(rng: Rng) -> dict[str, Any]:
    return {
        "hashtags": [
            {"text": rng.word(), "indices": [i, i + 5]}
            for i in range(rng.random.randint(0, 3))
        ],
        "urls": [
            {
                "url": f"https://t.co/{rng.identifier(6)}",
                "expanded_url": f"https://example.org/{rng.word()}",
            }
            for _ in range(rng.random.randint(0, 2))
        ],
    }


def _status(rng: Rng, *, allow_retweet: bool = True) -> dict[str, Any]:
    tweet: dict[str, Any] = {
        "id": rng.random.randint(1, 10**15),
        "created_at": rng.timestamp(),
        "text": rng.sentence(8),
        "user": _user(rng),
        "entities": _entities(rng),
        "retweet_count": rng.random.randint(0, 5000),
        "favorite_count": rng.random.randint(0, 5000),
        "lang": rng.random.choice(["en", "fr", "it", "und"]),
        "coordinates": (
            {"type": "Point", "coordinates": [rng.random.uniform(-180, 180), rng.random.uniform(-90, 90)]}
            if rng.maybe(0.15)
            else None
        ),
    }
    if rng.maybe(0.3):
        tweet["in_reply_to_status_id"] = rng.random.randint(1, 10**15)
    if allow_retweet and rng.maybe(0.25):
        tweet["retweeted_status"] = _status(rng, allow_retweet=False)
    return tweet


def _delete_notice(rng: Rng) -> dict[str, Any]:
    return {
        "delete": {
            "status": {
                "id": rng.random.randint(1, 10**15),
                "user_id": rng.random.randint(1, 10**9),
            },
            "timestamp_ms": str(rng.random.randint(10**12, 10**13)),
        }
    }


def tweets(count: int, *, seed: int = 0, delete_fraction: float = 0.05) -> list[dict]:
    """Generate a Twitter-like stream with interleaved delete notices."""
    rng = Rng(seed)
    docs = []
    for _ in range(count):
        if rng.maybe(delete_fraction):
            docs.append(_delete_notice(rng))
        else:
            docs.append(_status(rng))
    return docs
