"""Synthetic dataset generators with controllable structural statistics.

Substitutes for the public corpora the tutorial's examples use (Twitter,
GitHub, NYT, data.gov) — see DESIGN.md §1 for the substitution argument.
All generators are deterministic under ``seed``.
"""

from repro.datasets.generator import (
    CollectionSpec,
    Rng,
    generate_collection,
    heterogeneous_collection,
    ndjson_lines,
)
from repro.datasets.compressed import (
    CompressedCorpus,
    CompressedCorpusError,
    CorruptStreamError,
    TruncatedStreamError,
    compress_corpus,
    compress_member,
    detect_compression,
    iter_compressed_lines,
    iter_line_blocks,
    member_candidates,
    zstd_available,
)
from repro.datasets.ndjson import (
    MmapCorpus,
    iter_line_spans,
    iter_ndjson_lines,
    open_corpus,
    read_ndjson_lines,
    split_corpus_bytes,
    split_corpus_lines,
    stream_documents,
    stream_types,
    write_ndjson,
)
from repro.datasets.twitter import tweets
from repro.datasets.github import events as github_events
from repro.datasets.nyt import articles as nyt_articles
from repro.datasets.opendata import catalog as opendata_catalog

__all__ = [
    "CollectionSpec",
    "Rng",
    "generate_collection",
    "heterogeneous_collection",
    "ndjson_lines",
    "CompressedCorpus",
    "CompressedCorpusError",
    "CorruptStreamError",
    "TruncatedStreamError",
    "compress_corpus",
    "compress_member",
    "detect_compression",
    "iter_compressed_lines",
    "iter_line_blocks",
    "member_candidates",
    "zstd_available",
    "MmapCorpus",
    "iter_line_spans",
    "iter_ndjson_lines",
    "open_corpus",
    "read_ndjson_lines",
    "split_corpus_bytes",
    "split_corpus_lines",
    "stream_documents",
    "stream_types",
    "write_ndjson",
    "tweets",
    "github_events",
    "nyt_articles",
    "opendata_catalog",
]
