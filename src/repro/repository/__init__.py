"""Skeleton-based schema repository (Wang et al., VLDB '15) — see
:mod:`repro.repository.store`."""

from repro.repository.store import RegisteredCollection, SchemaRepository

__all__ = ["RegisteredCollection", "SchemaRepository"]
