"""Schema repository for JSON document stores (Wang et al., VLDB '15).

The skeleton paper's system is a *repository*: skeletons of many
collections are stored centrally so that applications can (a) discover
what structures a collection contains, (b) answer **containment queries**
("which collections have documents with path ``user.geo.lat``?"), and
(c) fetch a compact summary instead of scanning data.

:class:`SchemaRepository` offers exactly that surface:

- :meth:`register` mines a collection's structures and stores its skeleton
  of order *k* plus the parametric type of each structure group;
- :meth:`find_collections_with_path` — reverse path index across
  collections;
- :meth:`containing_structures` — structure-containment queries (sub-set
  on generalized path sets, the eSiBu-tree containment test);
- :meth:`classify` — route a new document to the structure group of a
  registered collection (or report it as unknown — skeletons may miss
  structures, faithfully to the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import InferenceError
from repro.inference.engine import TypeAccumulator
from repro.inference.skeleton import (
    PathKey,
    Skeleton,
    build_skeleton,
    structure_of,
)
from repro.types import Equivalence, Type


@dataclass
class RegisteredCollection:
    """Repository entry for one collection."""

    name: str
    skeleton: Skeleton
    document_count: int
    # structure paths -> inferred type of the documents in that group
    group_types: dict

    def structure_count(self) -> int:
        return self.skeleton.order


class SchemaRepository:
    """An in-memory multi-collection schema repository."""

    def __init__(self) -> None:
        self._collections: dict[str, RegisteredCollection] = {}
        # reverse index: generalized path -> set of collection names
        self._path_index: dict[PathKey, set[str]] = {}

    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        documents: Iterable[Any],
        *,
        k: int = 10,
        equivalence: Equivalence = Equivalence.KIND,
    ) -> RegisteredCollection:
        """Mine and store the skeleton of ``documents`` under ``name``."""
        if name in self._collections:
            raise InferenceError(f"collection {name!r} is already registered")
        docs = list(documents)
        skeleton = build_skeleton(docs, k)

        # One streaming accumulator per structure group: the documents of
        # a group are folded as they are seen, never re-materialized.
        groups: dict[frozenset, TypeAccumulator] = {}
        skeleton_structures = {s.paths for s in skeleton.structures}
        for doc in docs:
            s = structure_of(doc)
            if s in skeleton_structures:
                accumulator = groups.get(s)
                if accumulator is None:
                    accumulator = groups[s] = TypeAccumulator(equivalence)
                accumulator.add(doc)
        group_types = {
            paths: accumulator.result() for paths, accumulator in groups.items()
        }

        entry = RegisteredCollection(
            name=name,
            skeleton=skeleton,
            document_count=len(docs),
            group_types=group_types,
        )
        self._collections[name] = entry
        for path in skeleton.all_paths():
            self._path_index.setdefault(path, set()).add(name)
        return entry

    def collection(self, name: str) -> RegisteredCollection:
        if name not in self._collections:
            raise InferenceError(f"unknown collection {name!r}")
        return self._collections[name]

    def collections(self) -> list[str]:
        return sorted(self._collections)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def find_collections_with_path(self, path: PathKey | str) -> list[str]:
        """Which registered collections exhibit this leaf path?"""
        key = _normalize_path(path)
        return sorted(self._path_index.get(key, ()))

    def containing_structures(
        self, partial: Iterable[PathKey | str], *, within: Optional[str] = None
    ) -> list[tuple[str, frozenset]]:
        """Structures whose path sets contain every path in ``partial``.

        Returns ``(collection, structure)`` pairs; ``within`` restricts to
        one collection.
        """
        wanted = frozenset(_normalize_path(p) for p in partial)
        names = [within] if within is not None else self.collections()
        out = []
        for name in names:
            entry = self.collection(name)
            for structure in entry.skeleton.structures:
                if wanted <= structure.paths:
                    out.append((name, structure.paths))
        return out

    def classify(self, name: str, document: Any) -> Optional[Type]:
        """The inferred type of the document's structure group, if known.

        Returns ``None`` for structures the skeleton missed — a skeleton
        "may totally miss information about paths that can be traversed in
        some of the JSON objects".
        """
        entry = self.collection(name)
        return entry.group_types.get(structure_of(document))

    def summary(self) -> list[dict[str, Any]]:
        """A compact human-readable overview of the repository."""
        out = []
        for name in self.collections():
            entry = self._collections[name]
            out.append(
                {
                    "collection": name,
                    "documents": entry.document_count,
                    "structures": entry.structure_count(),
                    "top_structure_support": (
                        entry.skeleton.structures[0].count
                        if entry.skeleton.structures
                        else 0
                    ),
                }
            )
        return out


def _normalize_path(path: PathKey | str) -> PathKey:
    if isinstance(path, tuple):
        return path
    # Accept dotted syntax with [*] segments: "user.tags.[*]" or "user.tags[*]".
    parts: list[str] = []
    for raw in path.replace("[*]", ".[*]").split("."):
        if raw:
            parts.append(raw)
    return tuple(parts)
