"""repro — Schemas and Types for JSON Data.

A comprehensive reproduction of the systems surveyed by the EDBT 2019
tutorial *"Schemas And Types For JSON Data"* (Baazizi, Colazzo, Ghelli,
Sartiani): JSON schema languages, programming-language type systems for
JSON, schema-inference algorithms, and type-aware fast parsers — all built
on a common from-scratch JSON substrate.

Subpackages
-----------
``repro.jsonvalue``
    JSON data model, parser, streaming events, serializer, pointers, paths.
``repro.jsonschema``
    JSON Schema (Draft-07 core) validator with ``$ref`` support.
``repro.joi``
    Joi-style fluent schema builder with co-occurrence constraints.
``repro.jsound``
    JSound compact schema language.
``repro.types``
    The internal type algebra: terms, merging, subtyping, export.
``repro.inference``
    Schema inference: parametric (kind/label equivalence), counting types,
    Spark-style, mongodb-schema-like, Skinfer-like, Studio-3T-like,
    Couchbase-like discovery, skeletons, relational normalisation,
    ML profiling, and a distributed map/reduce harness.
``repro.pl``
    TypeScript-like structural types and Swift-like Codable decoding.
``repro.parsing``
    Mison-style structural index + projected parsing; Fad.js-style
    speculative decoding.
``repro.translation``
    Avro-like row codec, Parquet-like columnar shredder, schema-aware
    translation pipelines.
``repro.repository``
    Skeleton-based schema repository with containment queries.
``repro.datasets``
    Synthetic dataset generators with controllable heterogeneity.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
