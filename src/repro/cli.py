"""Command-line interface: the tutorial's tools on NDJSON files.

::

    python -m repro infer data.ndjson --equivalence label --format typescript
    python -m repro validate data.ndjson --schema schema.json
    python -m repro skeleton data.ndjson --k 4
    python -m repro translate data.ndjson
    python -m repro matrix

Every command reads newline-delimited JSON (``-`` = stdin) and prints a
human-readable report; ``validate`` sets the exit code to the number of
invalid documents (capped at 125), so it composes with shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.errors import ReproError


def _read_documents(path: str) -> list[Any]:
    # stream_documents routes "-" to stdin and gzip/zstd paths through
    # the chunked decompression reader, so every subcommand accepts
    # compressed corpora.
    from repro.datasets.ndjson import stream_documents

    return list(stream_documents(path))


def _read_lines(path: str) -> list[str]:
    from repro.datasets.ndjson import read_ndjson_lines

    return read_ndjson_lines(path)


def _jobs_arg(value: str):
    """Parse ``--jobs``: a positive worker count, or ``auto`` (None) to
    size the pool from CPU affinity."""
    if value == "auto":
        return None
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects a positive integer or 'auto', got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be at least 1")
    return jobs


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.inference import infer_report_path, infer_report_streaming
    from repro.jsonvalue.serializer import PRETTY, dumps
    from repro.pl import swift_declaration_for, typescript_declaration_for
    from repro.types import Equivalence, type_to_string

    # Both routes below run the fused text→type pipeline on raw lines:
    # no document DOM is built for the type/jsonschema outputs.  The
    # corpus is materialised as a line list only when codegen needs the
    # documents whole; the serial route streams the file in O(nesting)
    # memory, and the parallel route maps it as a zero-copy corpus and
    # routes through the adaptive scheduler (see --jobs in --help).
    from repro.datasets.ndjson import iter_ndjson_lines

    equivalence = Equivalence(args.equivalence)
    needs_documents = args.format in ("typescript", "swift")
    lines = _read_lines(args.data) if needs_documents else None
    shared_memory = {"always": True, "never": False}.get(
        args.shared_memory, "auto"
    )
    if lines is not None and args.jobs == 1:
        # Codegen already pulled the corpus into memory: stream it.
        report = infer_report_streaming(lines, equivalence)
    else:
        # When codegen already pulled the corpus into memory, reuse it
        # (re-reading the file — or a consumed pipe — would be worse);
        # otherwise hand the path over so regular files take the
        # zero-copy mmap route — the bytes fold when serial, byte-range
        # workers when parallel.
        report = infer_report_path(
            lines if lines is not None else args.data,
            equivalence,
            jobs=args.jobs,
            shared_memory=shared_memory,
        )
    print(f"# {report.document_count} documents, schema size {report.schema_size}")
    if args.format == "type":
        print(type_to_string(report.inferred))
    elif args.format == "jsonschema":
        print(dumps(report.to_jsonschema(), PRETTY))
    else:
        # Codegen renders from the documents; parse them only here.
        from repro.jsonvalue.parser import parse_lines

        docs = list(parse_lines(lines))
        if args.format == "typescript":
            print(typescript_declaration_for(docs, args.name), end="")
        else:  # swift
            print(swift_declaration_for(docs, args.name), end="")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.jsonschema import compile_schema
    from repro.jsonvalue.parser import parse

    with open(args.schema, "r", encoding="utf-8") as handle:
        schema_doc = parse(handle.read())
    compiled = compile_schema(schema_doc)
    docs = _read_documents(args.data)
    invalid = 0
    for i, doc in enumerate(docs):
        result = compiled.validate(doc)
        if not result.valid:
            invalid += 1
            first = result.failures[0]
            print(f"line {i + 1}: INVALID — {first}")
        elif args.verbose:
            print(f"line {i + 1}: valid")
    print(f"# {len(docs) - invalid}/{len(docs)} valid")
    return min(invalid, 125)


def _cmd_skeleton(args: argparse.Namespace) -> int:
    from repro.inference import build_skeleton, document_coverage, path_coverage

    docs = _read_documents(args.data)
    skeleton = build_skeleton(docs, args.k)
    print(
        f"# skeleton of order {skeleton.order} over {skeleton.document_count} documents"
    )
    print(f"# document coverage {document_coverage(skeleton, docs):6.1%}, "
          f"path coverage {path_coverage(skeleton, docs):6.1%}")
    for i, structure in enumerate(skeleton.structures):
        paths = ", ".join(".".join(p) for p in sorted(structure.paths)[:6])
        more = len(structure.paths) - 6
        suffix = f" (+{more} paths)" if more > 0 else ""
        print(f"structure #{i}: {structure.count} docs — {paths}{suffix}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from repro.types import Equivalence

    equivalence = Equivalence(args.equivalence)
    if args.out is not None and args.engine not in ("stream", "interned"):
        print(
            "error: --out requires --engine stream or interned",
            file=sys.stderr,
        )
        return 2
    if args.engine in ("stream", "interned"):
        from repro.translation import translate_report_path, write_artifacts

        run = translate_report_path(
            args.data,
            equivalence,
            jobs=args.jobs,
            engine=args.engine,
            out=args.out,
        )
        aware = run.translation
        # The interned pipeline measured the corpus as it streamed —
        # raw NDJSON bytes are exactly what the no-schema baseline
        # stores, so no second schema-oblivious pass is needed.
        source_bytes = aware.input_bytes
    else:
        from repro.translation import (
            schema_aware_translate,
            schema_oblivious_translate,
        )

        run = None
        docs = _read_documents(args.data)
        aware = schema_aware_translate(docs, equivalence=equivalence)
        source_bytes = schema_oblivious_translate(docs).total_bytes
    print(f"documents:        {aware.document_count}")
    print(f"JSON text bytes:  {source_bytes}")
    ratio = source_bytes / aware.columnar_bytes
    print(f"columnar bytes:   {aware.columnar_bytes} ({ratio:.2f}x smaller)")
    print(f"avro row bytes:   {aware.avro_bytes}")
    print(f"typed columns:    {aware.typed_fraction:6.1%}")
    print(f"union fallbacks:  {aware.fallback_count}")
    if args.out is not None:
        # The stream/interned path spilled the artifacts while
        # translating (run.artifacts); nothing is re-encoded here.
        written = run.artifacts or write_artifacts(run, args.out)
        for path in sorted(written):
            print(f"wrote {path} ({written[path]} bytes)")
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.pl import feature_matrix, render_matrix

    print(render_matrix(feature_matrix()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Schemas and types for JSON data (EDBT 2019 tutorial reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer", help="infer a schema from NDJSON data")
    p_infer.add_argument(
        "data",
        help="NDJSON file (plain, gzip, or zstd — detected by magic "
        "bytes), or - for stdin",
    )
    p_infer.add_argument(
        "--equivalence", choices=["kind", "label"], default="kind",
        help="fusion parameter (default: kind)",
    )
    p_infer.add_argument(
        "--format",
        choices=["type", "jsonschema", "typescript", "swift"],
        default="type",
        help="output notation (default: the papers' type syntax)",
    )
    p_infer.add_argument("--name", default="Root", help="declaration name for codegen")
    p_infer.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="worker processes for the parallel merge (default: 1, serial — "
        "regular files then fold as undecoded mmap byte ranges). "
        "'auto' sizes the pool from CPU affinity; N and 'auto' both route "
        "through the adaptive scheduler, which picks one of three modes: "
        "'serial' (the mmap bytes fold), 'parallel' (line-parallel — "
        "byte-range line batches to workers), or 'subtree' (intra-document "
        "parallel — a corpus dominated by one huge single-line document is "
        "split into top-level subtree byte ranges, typed by workers, and "
        "merged through the same monoid, yielding the identical interned "
        "type). The scheduler times a small sample of the corpus (adjusted "
        "by the measured line-shape-cache hit rate), models each mode "
        "(per-worker startup + the fold split across usable CPUs + corpus "
        "shipping or splitting, with the constants loaded from the "
        "per-machine calibration profile at ~/.cache/repro/sched.json — "
        "measured once, REPRO_SCHED_PROFILE overrides the path), and falls "
        "back to the serial fold whenever the modeled win is negative — so "
        "small corpora and single-CPU machines never pay for a worker pool. "
        "File inputs are mapped as a zero-copy mmap corpus. Compressed "
        "files (gzip, or zstd with the optional zstandard module) instead "
        "stream through the chunked decompression fold; with jobs, a "
        "multi-member container lets workers decompress and fold "
        "independent member byte ranges in parallel, priced by a "
        "decompress-rate calibration constant "
        "(REPRO_DECOMPRESS_BYTES_PER_SECOND overrides) — single-member "
        "streams are inherently sequential and stay serial.",
    )
    p_infer.add_argument(
        "--shared-memory", nargs="?", const="always", default="auto",
        choices=["auto", "always", "never"],
        help="with --jobs: corpus transport to the workers. 'always' ships "
        "one shared-memory buffer (for mmap corpora, one memcpy of the "
        "raw file bytes plus per-worker byte ranges; workers fold the "
        "shared bytes directly) instead of per-batch pickles; 'never' "
        "keeps pickles (or, for mapped files, per-worker byte-range "
        "reads). The default 'auto' lets the scheduler decide from "
        "corpus size and worker count: shared memory when in-memory "
        "lines total at least 4 MiB with more than one worker (batch "
        "pickles would dominate), never for mapped files (their workers "
        "already read byte ranges straight from the file, shipping "
        "nothing). Bare --shared-memory means 'always'.",
    )
    p_infer.set_defaults(func=_cmd_infer)

    p_validate = sub.add_parser("validate", help="validate NDJSON against a JSON Schema")
    p_validate.add_argument("data", help="NDJSON file, or - for stdin")
    p_validate.add_argument("--schema", required=True, help="JSON Schema document")
    p_validate.add_argument("--verbose", action="store_true", help="also print valid lines")
    p_validate.set_defaults(func=_cmd_validate)

    p_skeleton = sub.add_parser("skeleton", help="mine the top-k structures")
    p_skeleton.add_argument("data", help="NDJSON file, or - for stdin")
    p_skeleton.add_argument("--k", type=int, default=5, help="skeleton order (default 5)")
    p_skeleton.set_defaults(func=_cmd_skeleton)

    p_translate = sub.add_parser(
        "translate", help="schema-aware translation size report"
    )
    p_translate.add_argument(
        "data",
        help="NDJSON file (plain, gzip, or zstd — detected by magic "
        "bytes), or - for stdin",
    )
    p_translate.add_argument(
        "--equivalence", choices=["kind", "label"], default="kind",
        help="fusion parameter for the inferred schema (default: kind)",
    )
    p_translate.add_argument(
        "--engine", choices=["stream", "interned", "dom"], default="stream",
        help="translation pipeline: 'stream' (default) drives the "
        "shredder and row encoder straight from each document's byte "
        "span — no DOM on clean subtrees; 'interned' is the PR 8 DOM "
        "loop through the memoized infer→translate flow; 'dom' runs the "
        "materialised reference path (byte-identical artifacts, kept "
        "for cross-checking)",
    )
    p_translate.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="worker processes for the inference pass (stream/interned "
        "engines only; see 'infer --help' for the scheduler)",
    )
    p_translate.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write the artifacts (rows.avro, columns.json, "
        "schema.txt) under DIR; the stream/interned engines spill "
        "rows.avro incrementally while translating",
    )
    p_translate.set_defaults(func=_cmd_translate)

    p_matrix = sub.add_parser("matrix", help="print the schema-language feature matrix")
    p_matrix.set_defaults(func=_cmd_matrix)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro matrix | head`); exit
        # quietly like well-behaved Unix tools.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
