"""Streaming schema inference: types straight from text, zero DOM.

The tutorial emphasises streaming operation twice — mongodb-schema
"processes them in a streaming fashion", and the parametric inference is
built for "massive JSON datasets" where materialising documents is the
wrong plan.  This module runs the *fully fused* text→type pipeline of
:class:`repro.types.build.EventTypeEncoder`: the lexer's tokens (or a
SAX-style event stream) drive the intern table's shape caches directly,
so the map phase of inference goes from bytes to a canonical interned
type with no ``JSONValue`` DOM, no per-document frame objects, and
memory proportional to nesting depth:

- :func:`type_from_events` — one type per top-level document in an
  event stream;
- :func:`type_of_text` — the canonical type of one JSON text in a
  single lexer pass (identical by object identity to
  ``intern(type_of(parse(text)))``, with the parser's exact error
  behaviour on malformed input);
- :func:`infer_type_streaming` / :func:`infer_report_streaming` — full
  parametric inference over NDJSON lines.

Equivalence with the DOM path is pinned by the cross-path conformance
matrix (``tests/test_conformance_matrix.py``) and the fuzz differential
(``tests/test_streaming_fuzz.py``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import InferenceError
from repro.inference.engine import accumulate_lines
from repro.inference.parametric import InferenceReport
from repro.jsonvalue.events import JsonEvent
from repro.types import Equivalence, Type
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable, global_table

_DEFAULT_ENCODER: Optional[EventTypeEncoder] = None


def _shared_encoder(
    table: Optional[InternTable], encoder: Optional[EventTypeEncoder]
) -> EventTypeEncoder:
    """Resolve the encoder to use: explicit > per-table > shared global.

    The process-wide default encoder is bound to the global intern table
    (mirroring :func:`repro.types.build.type_of_interned`); pass a
    ``table`` to keep workloads isolated, or hold an
    :class:`~repro.types.build.EventTypeEncoder` yourself for batch work
    so its shape caches persist across calls.

    Only safe for :meth:`~repro.types.build.EventTypeEncoder.encode_text`
    callers: that path keeps its parse state in locals, so concurrent or
    interleaved texts cannot corrupt each other through the shared
    instance.  The event feed keeps *cross-call* state (its frame
    stack), so :func:`type_from_events` never shares implicitly.
    """
    global _DEFAULT_ENCODER
    if encoder is not None:
        return encoder
    if table is None or table is global_table():
        enc = _DEFAULT_ENCODER
        if enc is None:
            enc = _DEFAULT_ENCODER = EventTypeEncoder(global_table())
        return enc
    return EventTypeEncoder(table)


def type_from_events(
    events: Iterable[JsonEvent],
    *,
    table: Optional[InternTable] = None,
    encoder: Optional[EventTypeEncoder] = None,
) -> Iterator[Type]:
    """Yield the canonical type of each top-level document in an event
    stream.

    Equivalent to ``intern(type_of(value))`` for the values the events
    describe, but without materialising them: events feed the fused
    encoder's shape caches directly.  Raises
    :class:`~repro.errors.InferenceError` on ill-formed or truncated
    streams.

    With no explicit ``encoder`` a fresh one is built per call, so
    concurrent or interleaved streams can never share a frame stack.
    Callers that pass their own encoder (to amortize its shape caches)
    must not interleave two streams through it.
    """
    enc = encoder if encoder is not None else EventTypeEncoder(table)
    if enc.depth:
        enc.reset()  # discard state a previously failed stream left behind
    feed_event = enc.feed_event
    try:
        for event in events:
            done = feed_event(event)
            if done is not None:
                yield done
        if enc.depth:
            raise InferenceError("event stream ended inside an unclosed container")
    finally:
        # A raising event source (or an abandoned generator) must not
        # leak half-built frames into a caller-held encoder.
        if enc.depth:
            enc.reset()


def type_of_text(
    text: str,
    *,
    table: Optional[InternTable] = None,
    encoder: Optional[EventTypeEncoder] = None,
    max_depth: int = 512,
) -> Type:
    """The canonical interned type of one JSON text, in one lexer pass.

    Identical (by object identity against the backing table) to
    ``table.intern(type_of(parse(text)))``; malformed input raises the
    same error class/message/offset as the DOM parser.
    """
    return _shared_encoder(table, encoder).encode_text(text, max_depth=max_depth)


def infer_type_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> Type:
    """Parametric inference over NDJSON lines without building DOMs.

    Each line runs through the fused text→type pipeline
    (:meth:`~repro.inference.engine.TypeAccumulator.add_text`) and merges
    incrementally: per-accumulator state is O(equivalence classes) plus a
    bounded memo, and only one document's type is in flight at a time.
    (The backing intern table additionally caches one canonical node per
    *distinct* structure seen — see the memory-model note in
    :mod:`repro.types.intern`.)  Blank lines are skipped.
    """
    accumulator = accumulate_lines(lines, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return accumulator.result()


def infer_report_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> InferenceReport:
    """Streaming inference plus the report the papers' tables need
    (type, size, document count) — the CLI's zero-materialization path."""
    accumulator = accumulate_lines(lines, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return InferenceReport(
        inferred=accumulator.result(),
        equivalence=equivalence,
        document_count=accumulator.document_count,
    )


def infer_report_path(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = 1,
    shared_memory: bool = False,
) -> InferenceReport:
    """One-stop inference over an NDJSON source — the CLI's entry point.

    ``source`` is a file path, ``"-"`` for stdin, or any line iterable.
    With ``jobs=1`` the corpus streams serially in O(nesting) memory.
    Otherwise the run routes through the adaptive scheduler
    (:func:`repro.inference.distributed.infer_adaptive_text`):
    ``jobs=None`` sizes the worker pool from CPU affinity, ``jobs=N``
    caps it at N, and either way the scheduler falls back to a serial
    fold when its timed-sample cost model says workers would lose.  Real
    files are mapped as a zero-copy
    :class:`~repro.datasets.ndjson.MmapCorpus`, so the parallel feed
    ships byte ranges without the parent ever splitting lines.
    """
    import os

    from repro.datasets.ndjson import iter_ndjson_lines, open_corpus

    if jobs == 1:
        return infer_report_streaming(iter_ndjson_lines(source), equivalence)

    from repro.inference.distributed import infer_adaptive_text

    corpus = None
    if (
        isinstance(source, (str, os.PathLike))
        and str(source) != "-"
        and os.path.isfile(source)
    ):
        # Only regular files can be mapped; FIFOs, /dev/stdin and other
        # special files stat as size 0 and must be read as streams.
        corpus = open_corpus(source)
    try:
        lines = corpus if corpus is not None else list(iter_ndjson_lines(source))
        run = infer_adaptive_text(
            lines, equivalence, jobs=jobs, shared_memory=shared_memory
        )
    finally:
        if corpus is not None:
            corpus.close()
    return InferenceReport(
        inferred=run.result,
        equivalence=equivalence,
        document_count=run.document_count,
    )
