"""Streaming schema inference: types straight from the event stream.

The tutorial emphasises streaming operation twice — mongodb-schema
"processes them in a streaming fashion", and the parametric inference is
built for "massive JSON datasets" where materialising documents is the
wrong plan.  This module computes :func:`repro.types.build.type_of`
*directly from the SAX-style event stream* of
:mod:`repro.jsonvalue.events`, so the map phase of inference runs in
memory proportional to nesting depth, not document size:

- :func:`type_from_events` — one type per top-level document in a stream;
- :func:`infer_type_streaming` — full parametric inference over NDJSON
  lines without ever building a DOM.

Equivalence with the DOM path (``type_of(parse(text))``) is
property-tested.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.errors import InferenceError
from repro.inference.engine import TypeAccumulator
from repro.jsonvalue.events import JsonEvent, JsonEventType, iter_events
from repro.types import Equivalence, Type, union
from repro.types.terms import (
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    RecType,
    STR,
)


def _scalar_type(value: Any) -> Type:
    if value is None:
        return NULL
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLT
    return STR


class _Frame:
    """One open container while typing the stream."""

    __slots__ = ("is_object", "fields", "items", "pending_key")

    def __init__(self, is_object: bool) -> None:
        self.is_object = is_object
        self.fields: dict[str, Type] = {}  # duplicate keys: last wins
        self.items: list[Type] = []
        self.pending_key: Optional[str] = None

    def close(self) -> Type:
        if self.is_object:
            return RecType(
                tuple(FieldType(name, t, required=True) for name, t in self.fields.items())
            )
        if not self.items:
            return ArrType(BOT)
        return ArrType(union(self.items))

    def attach(self, t: Type) -> None:
        if self.is_object:
            assert self.pending_key is not None
            self.fields[self.pending_key] = t
            self.pending_key = None
        else:
            self.items.append(t)


def type_from_events(events: Iterable[JsonEvent]) -> Iterator[Type]:
    """Yield the exact type of each top-level document in an event stream.

    Equivalent to ``type_of(value)`` for the value the events describe,
    but without materialising the value.
    """
    stack: list[_Frame] = []

    def emit_or_attach(t: Type) -> Optional[Type]:
        if not stack:
            return t
        stack[-1].attach(t)
        return None

    for event in events:
        etype = event.type
        if etype is JsonEventType.KEY:
            if not stack or not stack[-1].is_object:
                raise InferenceError("key event outside an object")
            if stack[-1].pending_key is not None:
                raise InferenceError("two key events without a value")
            stack[-1].pending_key = event.value
        elif etype is JsonEventType.VALUE:
            done = emit_or_attach(_scalar_type(event.value))
            if done is not None:
                yield done
        elif etype is JsonEventType.START_OBJECT:
            stack.append(_Frame(is_object=True))
        elif etype is JsonEventType.START_ARRAY:
            stack.append(_Frame(is_object=False))
        elif etype in (JsonEventType.END_OBJECT, JsonEventType.END_ARRAY):
            if not stack:
                raise InferenceError("container end without start")
            frame = stack.pop()
            done = emit_or_attach(frame.close())
            if done is not None:
                yield done
        else:  # pragma: no cover - exhaustive enum
            raise InferenceError(f"unknown event {etype!r}")
    if stack:
        raise InferenceError("event stream ended inside an unclosed container")


def type_of_text(text: str) -> Type:
    """The exact type of one JSON text, computed in streaming fashion."""
    types = list(type_from_events(iter_events(text)))
    if len(types) != 1:
        raise InferenceError(f"expected one document, found {len(types)}")
    return types[0]


def infer_type_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> Type:
    """Parametric inference over NDJSON lines without building DOMs.

    Merges incrementally through the engine's
    :class:`~repro.inference.engine.TypeAccumulator`: per-accumulator
    state is O(equivalence classes) plus a bounded memo, and only one
    document's type is in flight at a time.  (The backing intern table
    additionally caches one canonical node per *distinct* structure seen
    — see the memory-model note in :mod:`repro.types.intern`.)
    """
    accumulator = TypeAccumulator(equivalence)
    for line in lines:
        if not line.strip():
            continue
        accumulator.add_type(type_of_text(line))
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return accumulator.result()
