"""Streaming schema inference: types straight from text, zero DOM.

The tutorial emphasises streaming operation twice — mongodb-schema
"processes them in a streaming fashion", and the parametric inference is
built for "massive JSON datasets" where materialising documents is the
wrong plan.  This module runs the *fully fused* text→type pipeline of
:class:`repro.types.build.EventTypeEncoder`: the lexer's tokens (or a
SAX-style event stream) drive the intern table's shape caches directly,
so the map phase of inference goes from bytes to a canonical interned
type with no ``JSONValue`` DOM, no per-document frame objects, and
memory proportional to nesting depth:

- :func:`type_from_events` — one type per top-level document in an
  event stream;
- :func:`type_of_text` — the canonical type of one JSON text in a
  single lexer pass (identical by object identity to
  ``intern(type_of(parse(text)))``, with the parser's exact error
  behaviour on malformed input);
- :func:`infer_type_streaming` / :func:`infer_report_streaming` — full
  parametric inference over NDJSON lines.

Equivalence with the DOM path is pinned by the cross-path conformance
matrix (``tests/test_conformance_matrix.py``) and the fuzz differential
(``tests/test_streaming_fuzz.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional

from repro.errors import InferenceError
from repro.inference.engine import accumulate_lines
from repro.inference.parametric import InferenceReport
from repro.jsonvalue.events import JsonEvent
from repro.types import Equivalence, Type
from repro.types.build import EventTypeEncoder
from repro.types.intern import InternTable, global_table

_DEFAULT_ENCODER: Optional[EventTypeEncoder] = None


def _shared_encoder(
    table: Optional[InternTable], encoder: Optional[EventTypeEncoder]
) -> EventTypeEncoder:
    """Resolve the encoder to use: explicit > per-table > shared global.

    The process-wide default encoder is bound to the global intern table
    (mirroring :func:`repro.types.build.type_of_interned`); pass a
    ``table`` to keep workloads isolated, or hold an
    :class:`~repro.types.build.EventTypeEncoder` yourself for batch work
    so its shape caches persist across calls.

    Only safe for :meth:`~repro.types.build.EventTypeEncoder.encode_text`
    callers: that path keeps its parse state in locals, so concurrent or
    interleaved texts cannot corrupt each other through the shared
    instance.  The event feed keeps *cross-call* state (its frame
    stack), so :func:`type_from_events` never shares implicitly.
    """
    global _DEFAULT_ENCODER
    if encoder is not None:
        return encoder
    if table is None or table is global_table():
        enc = _DEFAULT_ENCODER
        if enc is None:
            enc = _DEFAULT_ENCODER = EventTypeEncoder(global_table())
        return enc
    return EventTypeEncoder(table)


def type_from_events(
    events: Iterable[JsonEvent],
    *,
    table: Optional[InternTable] = None,
    encoder: Optional[EventTypeEncoder] = None,
) -> Iterator[Type]:
    """Yield the canonical type of each top-level document in an event
    stream.

    Equivalent to ``intern(type_of(value))`` for the values the events
    describe, but without materialising them: events feed the fused
    encoder's shape caches directly.  Raises
    :class:`~repro.errors.InferenceError` on ill-formed or truncated
    streams.

    With no explicit ``encoder`` a fresh one is built per call, so
    concurrent or interleaved streams can never share a frame stack.
    Callers that pass their own encoder (to amortize its shape caches)
    must not interleave two streams through it.
    """
    enc = encoder if encoder is not None else EventTypeEncoder(table)
    if enc.depth:
        enc.reset()  # discard state a previously failed stream left behind
    feed_event = enc.feed_event
    try:
        for event in events:
            done = feed_event(event)
            if done is not None:
                yield done
        if enc.depth:
            raise InferenceError("event stream ended inside an unclosed container")
    finally:
        # A raising event source (or an abandoned generator) must not
        # leak half-built frames into a caller-held encoder.
        if enc.depth:
            enc.reset()


def type_of_text(
    text: str,
    *,
    table: Optional[InternTable] = None,
    encoder: Optional[EventTypeEncoder] = None,
    max_depth: int = 512,
) -> Type:
    """The canonical interned type of one JSON text, in one lexer pass.

    Identical (by object identity against the backing table) to
    ``table.intern(type_of(parse(text)))``; malformed input raises the
    same error class/message/offset as the DOM parser.
    """
    return _shared_encoder(table, encoder).encode_text(text, max_depth=max_depth)


def type_of_bytes(
    data,
    start: int = 0,
    end: Optional[int] = None,
    *,
    table: Optional[InternTable] = None,
    encoder: Optional[EventTypeEncoder] = None,
    max_depth: int = 512,
) -> Type:
    """The canonical interned type of one JSON document held as UTF-8
    bytes — the bytes-native twin of :func:`type_of_text`.

    ``data`` may be ``bytes``, an mmap, or a shared-memory view; the
    byte range is scanned without decoding (string content skipped
    structurally, keys through a bytes→str cache).  Identical by object
    identity to ``type_of_text(bytes(data[start:end]).decode("utf-8"))``,
    with identical errors: undecodable input raises the exact
    ``UnicodeDecodeError`` the decode would, and malformed JSON raises
    the parser's exact error with character offsets relative to
    ``start``.
    """
    return _shared_encoder(table, encoder).encode_bytes(
        data, start, end, max_depth=max_depth
    )


def infer_report_corpus(
    corpus, equivalence: Equivalence = Equivalence.KIND
) -> InferenceReport:
    """Inference over an :class:`~repro.datasets.ndjson.MmapCorpus` via
    the bytes-native fold: the mapped file's line ranges go straight to
    canonical interned types (batched skeleton cache + bytes scan) with
    zero per-line ``str`` decode.  Interned-identical to every other
    route."""
    from repro.inference.engine import accumulate_ranges

    accumulator = accumulate_ranges(corpus.buffer(), corpus.spans, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return InferenceReport(
        inferred=accumulator.result(),
        equivalence=equivalence,
        document_count=accumulator.document_count,
    )


def fold_compressed(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
    format: Optional[str] = None,
    block_bytes: Optional[int] = None,
):
    """Fold a compressed NDJSON corpus through the bytes pipeline.

    The serial compressed route: the chunked decompression reader
    (:func:`repro.datasets.compressed.iter_line_blocks`) yields
    line-aligned decompressed blocks which feed one persistent
    :class:`~repro.inference.engine.RangeFolder` — the same batched
    line-shape-cache + bytes-scan fold an uncompressed mmap corpus
    runs, so the result is interned-identical to the plain-file fold of
    the decompressed bytes.  No decompressed corpus is ever
    materialised: memory is one block plus the longest line.

    This path **owns error ordering**: JSON/decode errors of earlier
    lines surface before a later decompression failure, exactly as a
    plain serial fold would order them.
    """
    from repro.datasets.compressed import (
        DEFAULT_BLOCK_BYTES,
        CompressedCorpusError,
        iter_block_line_spans,
        iter_line_blocks,
    )
    from repro.inference.engine import RangeFolder, TypeAccumulator

    accumulator = TypeAccumulator(equivalence, table=table)
    folder = RangeFolder(accumulator)
    blocks = iter_line_blocks(
        source,
        format=format,
        block_bytes=block_bytes if block_bytes is not None else DEFAULT_BLOCK_BYTES,
    )
    while True:
        try:
            block = next(blocks)
        except StopIteration:
            break
        except CompressedCorpusError:
            # Lines already read but still batched are *earlier* in the
            # corpus than this stream failure: flush them first so their
            # errors win, serial-ordering style.
            folder.finish()
            raise
        folder.feed(block, iter_block_line_spans(block))
    folder.finish()
    return accumulator


def infer_report_compressed(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = 1,
    format: Optional[str] = None,
) -> InferenceReport:
    """Inference over a gzip/zstd NDJSON file — the compressed entry point.

    With ``jobs=1`` the serial chunked fold (:func:`fold_compressed`)
    runs directly.  Otherwise the compressed scheduler
    (:func:`repro.inference.distributed.plan_compressed_schedule`)
    decides whether independent members/frames justify the worker pool;
    a parallel attempt that fails *for any reason* (false member
    candidates, a worker error, damaged bytes) silently falls back to
    the serial fold, which owns all error ordering — the subtree
    splitter's contract.
    """
    from repro.datasets.compressed import detect_compression

    fmt = format or detect_compression(source)
    if fmt is None:
        raise InferenceError(
            f"{source!s} is not a gzip/zstd compressed corpus"
        )
    if jobs != 1:
        from repro.inference.distributed import (
            infer_compressed_parallel,
            plan_compressed_schedule,
        )

        plan = plan_compressed_schedule(source, format=fmt, jobs=jobs)
        if plan.parallel:
            run = infer_compressed_parallel(
                source, equivalence, processes=plan.jobs, format=fmt
            )
            if run is not None:
                return InferenceReport(
                    inferred=run.result,
                    equivalence=equivalence,
                    document_count=run.document_count,
                )
    accumulator = fold_compressed(source, equivalence, format=fmt)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return InferenceReport(
        inferred=accumulator.result(),
        equivalence=equivalence,
        document_count=accumulator.document_count,
    )


def infer_type_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> Type:
    """Parametric inference over NDJSON lines without building DOMs.

    Each line runs through the fused text→type pipeline
    (:meth:`~repro.inference.engine.TypeAccumulator.add_text`) and merges
    incrementally: per-accumulator state is O(equivalence classes) plus a
    bounded memo, and only one document's type is in flight at a time.
    (The backing intern table additionally caches one canonical node per
    *distinct* structure seen — see the memory-model note in
    :mod:`repro.types.intern`.)  Blank lines are skipped.
    """
    accumulator = accumulate_lines(lines, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return accumulator.result()


def infer_report_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> InferenceReport:
    """Streaming inference plus the report the papers' tables need
    (type, size, document count) — the CLI's zero-materialization path."""
    accumulator = accumulate_lines(lines, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return InferenceReport(
        inferred=accumulator.result(),
        equivalence=equivalence,
        document_count=accumulator.document_count,
    )


def infer_report_path(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = 1,
    shared_memory="auto",
) -> InferenceReport:
    """One-stop inference over an NDJSON source — the CLI's entry point.

    ``source`` is a file path, ``"-"`` for stdin, or any line iterable.
    A gzip/zstd-compressed file (detected by magic bytes) takes the
    chunked decompression fold (:func:`infer_report_compressed`) —
    member-parallel when ``jobs`` allows and the container has
    independent members.  With ``jobs=1`` a regular file takes the
    **bytes fold** by default:
    the file is mapped as a zero-copy
    :class:`~repro.datasets.ndjson.MmapCorpus` and its byte ranges run
    straight to interned types (:func:`infer_report_corpus`) with no
    per-line decode; non-file sources stream serially in O(nesting)
    memory.  Otherwise the run routes through the adaptive scheduler
    (:func:`repro.inference.distributed.infer_adaptive_text`):
    ``jobs=None`` sizes the worker pool from CPU affinity, ``jobs=N``
    caps it at N, and either way the scheduler falls back to a serial
    fold when its timed-sample cost model says workers would lose.

    ``shared_memory`` is ``True``, ``False``, or ``"auto"`` (default):
    auto lets the scheduler pick the corpus transport from corpus size
    and worker count (see
    :func:`repro.inference.distributed.choose_shared_memory`).
    """
    import os

    from repro.datasets.ndjson import iter_ndjson_lines, open_corpus

    is_file = (
        isinstance(source, (str, os.PathLike))
        and str(source) != "-"
        and os.path.isfile(source)
    )
    if is_file:
        # Compressed corpora cannot be mmap-line-indexed; they route
        # through the chunked decompression fold (and, with jobs, the
        # member-parallel scheduler) before any mmap/streaming choice.
        from repro.datasets.compressed import detect_compression

        fmt = detect_compression(source)
        if fmt is not None:
            return infer_report_compressed(
                source, equivalence, jobs=jobs, format=fmt
            )
    if jobs == 1:
        if is_file:
            # Only regular files can be mapped; FIFOs, /dev/stdin and
            # other special files stat as size 0 and stream instead.
            with open_corpus(source) as corpus:
                return infer_report_corpus(corpus, equivalence)
        return infer_report_streaming(iter_ndjson_lines(source), equivalence)

    from repro.inference.distributed import infer_adaptive_text

    corpus = open_corpus(source) if is_file else None
    try:
        lines = corpus if corpus is not None else list(iter_ndjson_lines(source))
        run = infer_adaptive_text(
            lines, equivalence, jobs=jobs, shared_memory=shared_memory
        )
    finally:
        if corpus is not None:
            corpus.close()
    return InferenceReport(
        inferred=run.result,
        equivalence=equivalence,
        document_count=run.document_count,
    )


@contextmanager
def report_with_lines(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = 1,
    shared_memory="auto",
):
    """Infer over ``source``, then hand its lines back for a second pass.

    A context manager yielding ``(report, lines)``: the
    :class:`InferenceReport` of the corpus plus an iterable of its
    decoded lines (blank lines included — consumers skip them, matching
    every fold).  This is the two-pass backbone of the single-pass-
    *looking* translate flow: the corpus is opened **once** — a regular
    file stays mapped across both passes, a compressed file is
    re-streamed through the chunked reader, a non-file line source is
    materialised so the second pass can see it at all.  Routing mirrors
    :func:`infer_report_path` case for case, so the report is
    interned-identical to what that entry point returns.
    """
    import os

    from repro.datasets.ndjson import iter_ndjson_lines, open_corpus

    is_file = (
        isinstance(source, (str, os.PathLike))
        and str(source) != "-"
        and os.path.isfile(source)
    )
    if is_file:
        from repro.datasets.compressed import (
            detect_compression,
            iter_compressed_lines,
        )

        fmt = detect_compression(source)
        if fmt is not None:
            report = infer_report_compressed(
                source, equivalence, jobs=jobs, format=fmt
            )
            yield report, iter_compressed_lines(source, format=fmt)
            return
        with open_corpus(source) as corpus:
            if jobs == 1:
                report = infer_report_corpus(corpus, equivalence)
            else:
                from repro.inference.distributed import infer_adaptive_text

                run = infer_adaptive_text(
                    corpus, equivalence, jobs=jobs, shared_memory=shared_memory
                )
                report = InferenceReport(
                    inferred=run.result,
                    equivalence=equivalence,
                    document_count=run.document_count,
                )
            yield report, corpus
        return
    lines = list(iter_ndjson_lines(source))
    report = infer_report_streaming(lines, equivalence)
    yield report, lines


@contextmanager
def report_with_spans(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = 1,
    shared_memory="auto",
):
    """Infer over a corpus *file*, then hand back its raw line spans.

    The byte-range sibling of :func:`report_with_lines`, for consumers
    that walk documents as byte slices instead of decoded ``str`` lines
    (the DOM-free translate machine).  Yields ``(report, sections)``
    where ``sections`` iterates ``(buffer, spans)`` pairs: one pair
    covering the whole corpus for a plain file (the mmap buffer plus its
    line index), one pair per decompressed line-aligned block for a
    gzip/zstd corpus (re-streamed through the chunked reader, so peak
    memory stays one block).  Blank spans ride along exactly as blank
    lines do — consumers skip them with the folds' whitespace rule.
    Routing mirrors :func:`infer_report_path` case for case.

    ``source`` must be an on-disk corpus file — other sources have no
    byte spans; callers should fall back to :func:`report_with_lines`.
    """
    import os

    if not (
        isinstance(source, (str, os.PathLike))
        and str(source) != "-"
        and os.path.isfile(source)
    ):
        raise ValueError("report_with_spans needs an on-disk corpus file")

    from repro.datasets.compressed import (
        detect_compression,
        iter_block_line_spans,
        iter_line_blocks,
    )
    from repro.datasets.ndjson import open_corpus

    fmt = detect_compression(source)
    if fmt is not None:
        report = infer_report_compressed(
            source, equivalence, jobs=jobs, format=fmt
        )

        def _sections():
            for block in iter_line_blocks(source, format=fmt):
                yield block, iter_block_line_spans(block)

        yield report, _sections()
        return
    with open_corpus(source) as corpus:
        if jobs == 1:
            report = infer_report_corpus(corpus, equivalence)
        else:
            from repro.inference.distributed import infer_adaptive_text

            run = infer_adaptive_text(
                corpus, equivalence, jobs=jobs, shared_memory=shared_memory
            )
            report = InferenceReport(
                inferred=run.result,
                equivalence=equivalence,
                document_count=run.document_count,
            )
        yield report, ((corpus.buffer(), corpus.spans),)
