"""Streaming schema inference: types straight from the event stream.

The tutorial emphasises streaming operation twice — mongodb-schema
"processes them in a streaming fashion", and the parametric inference is
built for "massive JSON datasets" where materialising documents is the
wrong plan.  This module computes :func:`repro.types.build.type_of`
*directly from the SAX-style event stream* of
:mod:`repro.jsonvalue.events`, so the map phase of inference runs in
memory proportional to nesting depth, not document size:

- :func:`type_from_events` — one type per top-level document in a stream;
- :func:`infer_type_streaming` — full parametric inference over NDJSON
  lines without ever building a DOM.

Equivalence with the DOM path (``type_of(parse(text))``) is
property-tested.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.errors import InferenceError
from repro.inference.engine import TypeAccumulator
from repro.jsonvalue.events import JsonEvent, JsonEventType, iter_events
from repro.types import Equivalence, Type, union
from repro.types.intern import InternTable
from repro.types.terms import (
    ArrType,
    BOOL,
    BOT,
    FLT,
    FieldType,
    INT,
    NULL,
    RecType,
    STR,
)


class _Builder:
    """Raw-term construction (the seed behavior, no intern table)."""

    __slots__ = ()

    def scalar(self, value: Any) -> Type:
        if value is None:
            return NULL
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLT
        return STR

    def record(self, fields: dict[str, Type]) -> Type:
        return RecType(
            tuple(FieldType(name, t, required=True) for name, t in fields.items())
        )

    def array(self, items: list[Type]) -> Type:
        if not items:
            return ArrType(BOT)
        return ArrType(union(items))


class _InternedBuilder(_Builder):
    """Fused construction: canonical interned terms, probe-first.

    The streaming analogue of :class:`repro.types.build.TypeEncoder` —
    every closed container goes straight to the table's probe-first
    constructors, so repeated event shapes allocate nothing.
    """

    __slots__ = ("table", "_scalars", "_empty_arr")

    def __init__(self, table: InternTable) -> None:
        self.table = table
        self._scalars = {
            type(None): table.intern(NULL),
            bool: table.intern(BOOL),
            int: table.intern(INT),
            float: table.intern(FLT),
            str: table.intern(STR),
        }
        self._empty_arr = table.arr_of(table.intern(BOT))

    def scalar(self, value: Any) -> Type:
        atom = self._scalars.get(type(value))
        if atom is not None:
            return atom
        return self.table.intern(super().scalar(value))

    def record(self, fields: dict[str, Type]) -> Type:
        field_of = self.table.field_of
        return self.table.rec_of([field_of(name, t) for name, t in fields.items()])

    def array(self, items: list[Type]) -> Type:
        if not items:
            return self._empty_arr
        return self.table.arr_of(self.table.union_of(items))


_RAW_BUILDER = _Builder()


class _Frame:
    """One open container while typing the stream."""

    __slots__ = ("is_object", "fields", "items", "pending_key")

    def __init__(self, is_object: bool) -> None:
        self.is_object = is_object
        self.fields: dict[str, Type] = {}  # duplicate keys: last wins
        self.items: list[Type] = []
        self.pending_key: Optional[str] = None

    def close(self, builder: _Builder) -> Type:
        if self.is_object:
            return builder.record(self.fields)
        return builder.array(self.items)

    def attach(self, t: Type) -> None:
        if self.is_object:
            assert self.pending_key is not None
            self.fields[self.pending_key] = t
            self.pending_key = None
        else:
            self.items.append(t)


def type_from_events(
    events: Iterable[JsonEvent],
    *,
    table: Optional[InternTable] = None,
    builder: Optional[_Builder] = None,
) -> Iterator[Type]:
    """Yield the exact type of each top-level document in an event stream.

    Equivalent to ``type_of(value)`` for the value the events describe,
    but without materialising the value.  With ``table`` the types are
    built canonically against it — identical (by interned identity) to
    ``table.intern(type_of(value))`` — so the map phase of streaming
    inference is fused just like the DOM path's
    :class:`~repro.types.build.TypeEncoder`.  Per-stream callers can
    construct one :class:`_InternedBuilder` and pass it as ``builder``
    to amortize its leaf setup across documents.
    """
    if builder is None:
        builder = _RAW_BUILDER if table is None else _InternedBuilder(table)
    scalar = builder.scalar
    stack: list[_Frame] = []

    def emit_or_attach(t: Type) -> Optional[Type]:
        if not stack:
            return t
        stack[-1].attach(t)
        return None

    for event in events:
        etype = event.type
        if etype is JsonEventType.KEY:
            if not stack or not stack[-1].is_object:
                raise InferenceError("key event outside an object")
            if stack[-1].pending_key is not None:
                raise InferenceError("two key events without a value")
            stack[-1].pending_key = event.value
        elif etype is JsonEventType.VALUE:
            done = emit_or_attach(scalar(event.value))
            if done is not None:
                yield done
        elif etype is JsonEventType.START_OBJECT:
            stack.append(_Frame(is_object=True))
        elif etype is JsonEventType.START_ARRAY:
            stack.append(_Frame(is_object=False))
        elif etype in (JsonEventType.END_OBJECT, JsonEventType.END_ARRAY):
            if not stack:
                raise InferenceError("container end without start")
            frame = stack.pop()
            done = emit_or_attach(frame.close(builder))
            if done is not None:
                yield done
        else:  # pragma: no cover - exhaustive enum
            raise InferenceError(f"unknown event {etype!r}")
    if stack:
        raise InferenceError("event stream ended inside an unclosed container")


def type_of_text(
    text: str,
    *,
    table: Optional[InternTable] = None,
    builder: Optional[_Builder] = None,
) -> Type:
    """The exact type of one JSON text, computed in streaming fashion."""
    types = list(type_from_events(iter_events(text), table=table, builder=builder))
    if len(types) != 1:
        raise InferenceError(f"expected one document, found {len(types)}")
    return types[0]


def infer_type_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> Type:
    """Parametric inference over NDJSON lines without building DOMs.

    Merges incrementally through the engine's
    :class:`~repro.inference.engine.TypeAccumulator`: per-accumulator
    state is O(equivalence classes) plus a bounded memo, and only one
    document's type is in flight at a time.  (The backing intern table
    additionally caches one canonical node per *distinct* structure seen
    — see the memory-model note in :mod:`repro.types.intern`.)
    """
    accumulator = TypeAccumulator(equivalence)
    # Build each document's type canonically against the accumulator's
    # own table: add_type then recognizes it as a fixpoint in O(1).  One
    # builder for the whole stream — its leaf setup is paid once.
    builder = _InternedBuilder(accumulator.table)
    for line in lines:
        if not line.strip():
            continue
        accumulator.add_type(type_of_text(line, builder=builder))
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty stream")
    return accumulator.result()
