"""Couchbase-style schema discovery: clustering documents into *flavors*.

Couchbase "is endowed with a schema discovery module which classifies the
objects of a JSON collection based on both structural and semantic
information … meant to facilitate query formulation" (tutorial §4.1).

The reproduction follows the published design sketch:

- every document is fingerprinted by its *structural features* — the set
  of ``(path, kind)`` pairs of its leaves — plus *semantic features*: the
  values of low-cardinality string fields (discriminators like ``type`` or
  ``kind``), which is the "semantic information" the blog post describes;
- documents are clustered greedily by Jaccard similarity of fingerprints
  (leader clustering with a configurable threshold);
- each cluster becomes a **flavor**: a representative schema inferred with
  the parametric K-merge over its members, plus the member count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import InferenceError
from repro.jsonvalue.model import iter_paths, kind_of
from repro.types import Equivalence, Type, merge_all, type_of, type_to_string


def _fingerprint(document: Any, discriminators: frozenset[str]) -> frozenset:
    """Structural + semantic feature set for one document."""
    features: set = set()
    for path, leaf in iter_paths(document):
        generalized = tuple("[*]" if isinstance(step, int) else step for step in path)
        features.add((generalized, kind_of(leaf).value))
        if (
            len(generalized) == 1
            and generalized[0] in discriminators
            and isinstance(leaf, str)
        ):
            features.add(("semantic", generalized[0], leaf))
    return frozenset(features)


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass
class Flavor:
    """One discovered document flavor."""

    representative: frozenset
    members: list
    schema: Type | None = None

    @property
    def count(self) -> int:
        return len(self.members)

    def describe(self) -> str:
        assert self.schema is not None
        return f"{self.count} docs: {type_to_string(self.schema)}"


def discover_flavors(
    documents: Iterable[Any],
    *,
    threshold: float = 0.7,
    discriminators: Iterable[str] = ("type", "kind", "category"),
) -> list[Flavor]:
    """Cluster documents into flavors and infer a schema per flavor.

    ``threshold`` is the minimum Jaccard similarity to an existing flavor's
    representative fingerprint for a document to join it; lower thresholds
    produce fewer, coarser flavors.
    """
    discriminator_set = frozenset(discriminators)
    flavors: list[Flavor] = []
    count = 0
    for doc in documents:
        count += 1
        fp = _fingerprint(doc, discriminator_set)
        best: Flavor | None = None
        best_similarity = -1.0  # any existing flavor beats "no flavor"
        for flavor in flavors:
            similarity = _jaccard(fp, flavor.representative)
            if similarity > best_similarity:
                best, best_similarity = flavor, similarity
        if best is not None and best_similarity >= threshold:
            best.members.append(doc)
        else:
            flavors.append(Flavor(representative=fp, members=[doc]))
    if not count:
        raise InferenceError("cannot discover flavors in an empty collection")
    for flavor in flavors:
        flavor.schema = merge_all(
            (type_of(d) for d in flavor.members), Equivalence.KIND
        )
    flavors.sort(key=lambda f: -f.count)
    return flavors
