"""Incremental inference engine: a streaming merge monoid.

The parametric merge of Baazizi et al. is an associative, commutative
monoid — the very property that lets the papers run the reduce phase as
per-partition Spark combiners.  The seed code did not exploit it on one
machine: ``infer_type`` materialized every per-document type in a list
and re-simplified the whole union on each ``merge_all``.

:class:`TypeAccumulator` is the monoid made operational.  It maintains
the *fused equivalence-class map* of ``merge_all`` online — one canonical
representative per equivalence class — so its memory is O(classes), not
O(documents), and each ``add`` is one intern walk plus a memoized
pairwise merge (O(1) once the class representatives stabilize, which for
real collections happens after the first few documents).

Laws (property-tested in ``tests/test_engine_properties.py``):

- ``result()`` is structurally identical to the seed
  ``merge_all(types, equivalence)`` for every ordering and chunking of
  the inputs;
- ``combine`` is associative and commutative up to that same result;
- the empty accumulator is the identity (``result() == BOT``).

:class:`CountingAccumulator` gives the counting-types algebra
(:mod:`repro.inference.counting`) the same streaming surface.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional, Sequence

from repro.errors import InferenceError
from repro.jsonvalue.lexer import WHITESPACE_PATTERN_BYTES
from repro.types import Equivalence, Type, class_key, union
from repro.types.build import EventTypeEncoder, TypeEncoder
from repro.types.intern import InternTable, global_table
from repro.types.terms import ArrType, BotType, RecType, UnionType

_BYTES_WS_RUN = re.compile(WHITESPACE_PATTERN_BYTES)
# ASCII bytes str.isspace() accepts beyond JSON's own whitespace: a line
# of these is blank to the str feed, so the bytes feed must agree.
_EXTRA_SPACE_BYTES = frozenset(b"\x0b\x0c\x1c\x1d\x1e\x1f")


class TypeAccumulator:
    """Streaming parametric merge with O(classes) state.

    ``add`` / ``add_type`` absorb one document / one type; ``combine``
    folds another accumulator in (the monoid operation, used per
    partition by :mod:`repro.inference.distributed`); ``result`` yields
    the merged type, bit-identical to ``merge_all`` over everything
    absorbed so far.  ``result`` does not consume the accumulator — it
    can be sampled mid-stream.
    """

    __slots__ = (
        "equivalence",
        "_table",
        "_encoder",
        "_event_encoder",
        "_classes",
        "_order",
        "_memo",
        "_count",
    )

    def __init__(
        self,
        equivalence: Equivalence = Equivalence.KIND,
        *,
        table: Optional[InternTable] = None,
    ) -> None:
        self.equivalence = equivalence
        self._table = table if table is not None else global_table()
        # Fused map phase: documents are encoded straight into canonical
        # interned terms (no raw type_of tree), lazily so type-only
        # accumulators never pay for the encoder's leaf setup.  The
        # event encoder is the text-feed analogue (raw NDJSON lines in,
        # canonical types out, no DOM in between).
        self._encoder: Optional[TypeEncoder] = None
        self._event_encoder: Optional[EventTypeEncoder] = None
        # class key -> fused, reduced, interned representative
        self._classes: dict[Hashable, Type] = {}
        # first-appearance order of keys (merge_all parity; union() sorts
        # anyway, but keeping the order makes the equivalence exact by
        # construction rather than by the final sort).
        self._order: list[Hashable] = []
        # Canonical types already absorbed.  Merge is idempotent
        # (merge(X, t, t) == merge(X, t), property-tested), so a type seen
        # before cannot change the state — the probe costs one hash and
        # one comparison that short-circuits on interned sub-terms.  The
        # memo is bounded (it is an optimization, not state): on wildly
        # heterogeneous streams it stops growing at _MEMO_LIMIT entries
        # instead of pinning one type per distinct document, keeping the
        # accumulator's memory O(classes + constant).
        self._memo: set[Type] = set()
        self._count = 0

    _MEMO_LIMIT = 8192

    # ------------------------------------------------------------------

    @property
    def table(self) -> InternTable:
        """The intern table this accumulator canonicalizes into."""
        return self._table

    def add(self, document: Any) -> None:
        """Type one document (fused encoder) and absorb it."""
        encoder = self._encoder
        if encoder is None:
            encoder = self._encoder = TypeEncoder(self._table)
        self.add_type(encoder.encode(document))

    def add_text(self, text: str) -> None:
        """Type one raw JSON text (fused lexer→type pipeline) and absorb it.

        The document is never materialised: the lexer's tokens build the
        canonical interned type directly through the encoder's shape
        caches, then merge in one ``add_type`` step.
        """
        encoder = self._event_encoder
        if encoder is None:
            encoder = self._event_encoder = EventTypeEncoder(self._table)
        self.add_type(encoder.encode_text(text))

    def add_bytes(self, data, start: int = 0, end: Optional[int] = None) -> None:
        """Type one raw UTF-8 document held as bytes and absorb it.

        The bytes-native analogue of :meth:`add_text`: ``data`` may be
        ``bytes``, an mmap, or a shared-memory view, and the byte range
        is scanned straight to a canonical interned type — no
        ``.decode`` on the happy path, identical types *and* identical
        errors to ``add_text(bytes(data[start:end]).decode("utf-8"))``.
        """
        encoder = self._event_encoder
        if encoder is None:
            encoder = self._event_encoder = EventTypeEncoder(self._table)
        self.add_type(encoder.encode_bytes(data, start, end))

    def add_type(self, t: Type) -> None:
        """Absorb one already-typed document (or any type term)."""
        self._count += 1
        memo = self._memo
        if t in memo:
            return
        table = self._table
        t = table.canonical(t)
        if len(memo) < self._MEMO_LIMIT:
            memo.add(t)
        members = t.members if isinstance(t, UnionType) else (t,)
        equivalence = self.equivalence
        classes = self._classes
        for member in members:
            key = class_key(member, equivalence)
            rep = classes.get(key)
            if rep is None:
                # Even a singleton class is reduced, exactly as
                # merge_all's _fuse_class rebuilds singleton containers.
                classes[key] = table.reduce_types(member, equivalence)
                self._order.append(key)
            else:
                classes[key] = table.merge_types(rep, member, equivalence)

    def add_types(self, types: Iterable[Type]) -> None:
        for t in types:
            self.add_type(t)

    def combine(self, other: "TypeAccumulator") -> None:
        """Fold another accumulator into this one (monoid operation)."""
        if other.equivalence is not self.equivalence:
            raise InferenceError(
                "cannot combine accumulators with different equivalences: "
                f"{self.equivalence.value} vs {other.equivalence.value}"
            )
        table = self._table
        classes = self._classes
        equivalence = self.equivalence
        for key in other._order:
            rep = other._classes[key]
            mine = classes.get(key)
            if mine is None:
                # Re-intern in case the other accumulator used a
                # different table (e.g. it crossed a process boundary).
                classes[key] = table.reduce_types(rep, equivalence)
                self._order.append(key)
            else:
                classes[key] = table.merge_types(mine, rep, equivalence)
        if table is other._table and len(self._memo) < self._MEMO_LIMIT:
            self._memo |= other._memo
        self._count += other._count

    # ------------------------------------------------------------------

    def result(self) -> Type:
        """The merged type of everything absorbed (``BOT`` when empty)."""
        return self._table.intern(union(self._classes[k] for k in self._order))

    @property
    def document_count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def class_count(self) -> int:
        """Number of live equivalence classes — the state size."""
        return len(self._classes)

    def state_nodes(self) -> int:
        """Total AST nodes held by class representatives.

        This is the accumulator's working-set measure: independent of the
        number of documents absorbed, unlike the seed's list of types.
        """
        return sum(self._classes[k].size() for k in self._order)


class CountingAccumulator:
    """Streaming counting-types merge (DBPL '17 algebra).

    Same surface as :class:`TypeAccumulator`; state is one counted union
    whose size is bounded by the fused schema, not the document count.
    """

    __slots__ = ("equivalence", "_acc", "_count")

    def __init__(self, equivalence: Equivalence = Equivalence.KIND) -> None:
        # Imported lazily: repro.inference.counting triggers the package
        # __init__, which imports modules that import this engine.
        from repro.inference.counting import CUnion

        self.equivalence = equivalence
        self._acc: "CUnion" = CUnion(())
        self._count = 0

    def add(self, document: Any) -> None:
        from repro.inference.counting import counted_type_of

        self.add_counted(counted_type_of(document, self.equivalence))

    def add_counted(self, counted: Any, *, documents: int = 1) -> None:
        """Absorb one counted union.

        ``documents`` is how many source documents it represents: 1 for
        a per-document type, the partition's document count when folding
        a pre-merged partial (as the parallel reduce does).
        """
        from repro.inference.counting import merge_counted

        self._acc = merge_counted(
            (self._acc, counted), self.equivalence, _empty_ok=True
        )
        self._count += documents

    def combine(self, other: "CountingAccumulator") -> None:
        if other.equivalence is not self.equivalence:
            raise InferenceError(
                "cannot combine accumulators with different equivalences: "
                f"{self.equivalence.value} vs {other.equivalence.value}"
            )
        from repro.inference.counting import merge_counted

        self._acc = merge_counted(
            (self._acc, other._acc), self.equivalence, _empty_ok=True
        )
        self._count += other._count

    def result(self) -> Any:
        return self._acc

    @property
    def document_count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0


# ---------------------------------------------------------------------------
# functional conveniences
# ---------------------------------------------------------------------------


def accumulate(
    documents: Iterable[Any],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold a document stream into a fresh accumulator."""
    acc = TypeAccumulator(equivalence, table=table)
    for document in documents:
        acc.add(document)
    return acc


def accumulate_types(
    types: Iterable[Type],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold a type stream into a fresh accumulator."""
    acc = TypeAccumulator(equivalence, table=table)
    for t in types:
        acc.add_type(t)
    return acc


def accumulate_lines(
    lines: Iterable[str],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold raw NDJSON lines into a fresh accumulator (blank lines are
    skipped) — the zero-materialization text feed."""
    acc = TypeAccumulator(equivalence, table=table)
    add_text = acc.add_text
    for line in lines:
        if not line or line.isspace():
            continue
        add_text(line)
    return acc


# Line batches fed to the encoder's batched skeleton passes grow from a
# small probe (so shape-poor corpora disable the line cache cheaply) to
# a size that amortizes the per-batch C passes.
_RANGE_CHUNK_START = 2048
_RANGE_CHUNK_LIMIT = 32768


class RangeFolder:
    """The bytes feed as a resumable object: byte ranges in, types folded.

    The engine core of :func:`accumulate_ranges`, factored out so
    producers that materialise the corpus a *block at a time* — the
    chunked decompression reader in :mod:`repro.datasets.compressed` —
    can push successive line-aligned buffers through one batched
    pipeline: the line batch, the escalating chunk size, and the
    line-shape cache all persist across :meth:`feed` calls, so a corpus
    fed in 1 MiB decompressed blocks folds exactly like one contiguous
    mmap.  ``finish`` flushes the tail batch.

    Error ordering is the serial contract: a line surfaces its error no
    later than the first flush after it, and any line needing the
    str-blank decision flushes everything before it first — identical to
    :func:`accumulate_ranges` over the concatenated spans.
    """

    __slots__ = ("_acc", "_encoder", "_batch", "_chunk")

    def __init__(
        self,
        accumulator: TypeAccumulator,
        *,
        encoder: Optional[EventTypeEncoder] = None,
    ) -> None:
        self._acc = accumulator
        self._encoder = (
            encoder if encoder is not None else EventTypeEncoder(accumulator.table)
        )
        self._batch: list[bytes] = []
        self._chunk = _RANGE_CHUNK_START

    @property
    def accumulator(self) -> TypeAccumulator:
        return self._acc

    def _flush(self) -> None:
        batch = self._batch
        if batch:
            add_type = self._acc.add_type
            for t in self._encoder.encode_lines(batch):
                add_type(t)
            del batch[:]

    def feed(self, data, spans) -> None:
        """Absorb the line ``spans`` of one buffer (bytes are copied into
        the batch, so ``data`` may be reused after the call)."""
        ws_match = _BYTES_WS_RUN.match
        batch = self._batch
        append = batch.append
        for start, end in spans:
            if end > start:
                ws_end = ws_match(data, start, end).end()
                if ws_end >= end:
                    continue  # ASCII whitespace only
                if data[ws_end] >= 0x80 or data[ws_end] in _EXTRA_SPACE_BYTES:
                    # Possibly whitespace-only by str.isspace's wider
                    # rules (unicode spaces, \x0b/\x0c/\x1c-\x1f) — the
                    # str feed skips those lines, so decide exactly as
                    # it would (and let a malformed-UTF-8 line raise its
                    # exact decode error).  Flush first: earlier lines
                    # must surface their errors before this line's
                    # decode, as they do serially.
                    self._flush()
                    text = bytes(data[start:end]).decode("utf-8")
                    if text.isspace():
                        continue
                append(bytes(data[start:end]))
                if len(batch) >= self._chunk:
                    self._flush()
                    self._chunk = min(_RANGE_CHUNK_LIMIT, self._chunk * 4)

    def finish(self) -> None:
        """Flush the pending batch (call once, after the last feed)."""
        self._flush()


def accumulate_ranges(
    data,
    spans: Sequence[tuple],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold undecoded byte ranges of an NDJSON buffer — the bytes feed.

    ``data`` is any byte buffer (an :class:`~repro.datasets.ndjson.MmapCorpus`
    buffer, a shared-memory view, plain ``bytes``) and ``spans`` the
    ``(start, end)`` byte range of each line, e.g.
    ``corpus.spans`` or :func:`repro.datasets.ndjson.iter_line_spans`
    output.  No line is ever decoded to ``str`` on the happy path: the
    ranges run through :meth:`EventTypeEncoder.encode_lines` — the
    batched skeleton cache plus the bytes-native structural scan — in
    growing chunks, and blank lines (including the rare non-ASCII
    whitespace-only line, for exact :func:`accumulate_lines` parity)
    are skipped.  The result is interned-identical to
    ``accumulate_lines`` over the decoded lines, with identical errors.
    """
    acc = TypeAccumulator(equivalence, table=table)
    folder = RangeFolder(acc)
    folder.feed(data, spans)
    folder.finish()
    return acc


# ---------------------------------------------------------------------------
# intra-document parallelism: split planning and partial reassembly
# ---------------------------------------------------------------------------
#
# One huge document serializes the whole line-parallel pipeline.  The
# functions below turn its *top-level container* into independently
# typable byte ranges and fold the partial results back to the exact
# interned node the serial ``encode_bytes`` would produce:
#
# - :func:`plan_subtree_split` descends to a splittable container
#   (recording a *spine* of wrapper frames for each level it enters) and
#   carves its children into contiguous chunk spans;
# - each chunk, re-wrapped in its container's brackets, is a complete
#   JSON document the unmodified bytes machine types and validates
#   (:func:`type_subtree_chunks`) — in this process or in a worker;
# - :func:`combine_subtree` merges the per-chunk contributions (array
#   element unions / record member maps) and re-applies the spine.
#
# Identity rests on the shape-closing algebra being reassociable:
# ``union`` is flattening, duplicate-insensitive and order-insensitive,
# so per-chunk element unions compose to the whole array's union; record
# members resolve duplicate keys last-wins, which chunk-ordered folding
# preserves; ``rec_of`` sorts fields, erasing chunk boundaries.  Any
# speculation failure (a separator matched inside a string, malformed
# input, depth overflow) fails chunk validation, and the caller falls
# back to the serial scan — exact errors, never a silently wrong type.

# Below this size the splitter runs the exact linear depth-1 scan; above
# it, speculative separator searches keep the parent's carving cost
# O(workers) instead of O(bytes).
_SUBTREE_EXACT_LIMIT = 1 << 20
# Spine recursion cap: levels of single-child wrappers to descend
# looking for a splittable container before giving up.
_SUBTREE_MAX_SPINE = 8


@dataclass(frozen=True)
class SubtreeSplit:
    """A plan for typing one document as parallel top-level chunks.

    ``frames`` is the wrapper spine, outermost first: ``("arr1",)`` for
    a single-element array entered, ``("recw", head_span, key)`` for an
    object entered through its last member ``key`` (``head_span`` is the
    byte span of the preceding members, ``None`` when there are none).
    ``chunks`` are ``(start, end)`` byte spans of ``kind``'s element or
    member lists; each must parse completely once wrapped in the
    container's brackets.
    """

    frames: tuple
    kind: str  # "object" | "array"
    chunks: tuple

    @property
    def spine_depth(self) -> int:
        return len(self.frames)


def plan_subtree_split(
    data,
    start: int = 0,
    end: Optional[int] = None,
    *,
    targets: int = 4,
    min_bytes: int = 0,
    exact_limit: int = _SUBTREE_EXACT_LIMIT,
    max_spine: int = _SUBTREE_MAX_SPINE,
    skip_chunk_levels: int = 0,
):
    """Plan the chunking of one document's byte range, or ``None``.

    ``None`` means "type it serially": top-level scalars, empty
    containers, ranges under ``min_bytes``, unsplittable shapes, and
    anything the speculative carver declines.  A returned plan is still
    only *speculative* above ``exact_limit`` — chunk validation decides.

    ``skip_chunk_levels`` suppresses chunk proposal for the first N
    spine levels: when a proposed chunking fails validation (separators
    that really sat one level deeper, e.g. ``[ {"rows": [{...},{...}]} ]``),
    the driver re-plans with ``split.spine_depth + 1`` to force the
    descent past the level that lied.  The exact tier is never skipped —
    it cannot lie.
    """
    from repro.parsing.structural import (
        document_bounds,
        propose_chunks,
        propose_spine,
        scan_depth1_spans,
    )

    if end is None:
        end = len(data)
    if targets < 1:
        return None
    frames: list = []
    lo, hi = start, end
    ws_match = _BYTES_WS_RUN.match
    while True:
        if hi - lo < max(min_bytes, 2):
            return None
        if hi - lo <= exact_limit:
            scan = scan_depth1_spans(data, lo, hi)
            if scan is None or not scan.parts:
                return None
            parts = scan.parts
            groups = min(targets, len(parts))
            base, extra = divmod(len(parts), groups)
            chunks = []
            index = 0
            for g in range(groups):
                count = base + (1 if g < extra else 0)
                first = parts[index]
                last = parts[index + count - 1]
                # A chunk spans from the first part's start (the key
                # quote for objects) to the last part's value end; the
                # separators in between ride along and re-parse as the
                # wrapped container's own commas.
                chunks.append((first[0], last[-1]))
                index += count
            return SubtreeSplit(tuple(frames), scan.kind, tuple(chunks))
        bounds = document_bounds(data, lo, hi)
        if bounds is None:
            return None
        kind, open_, close = bounds
        chunks = (
            propose_chunks(data, open_, close, kind, targets)
            if len(frames) >= skip_chunk_levels
            else None
        )
        if chunks:
            return SubtreeSplit(tuple(frames), kind, tuple(chunks))
        if len(frames) >= max_spine:
            return None
        if kind == "array":
            # No separators found: speculate that the array holds one
            # huge container element and descend into it.
            pos = ws_match(data, open_ + 1, close).end()
            if pos >= close:
                return None
            opener = data[pos]
            if opener == 0x7B:
                closer = 0x7D
            elif opener == 0x5B:
                closer = 0x5D
            else:
                return None
            last = close - 1
            while last > pos and data[last] in b" \t\n\r":
                last -= 1
            if data[last] != closer:
                return None
            frames.append(("arr1",))
            lo, hi = pos, last + 1
        else:
            spine = propose_spine(data, open_, close)
            if spine is None:
                return None
            head, key_span, (vopen, vend) = spine
            raw = bytes(data[key_span[0] : key_span[1]])
            if b"\\" in raw:
                # Escaped keys would need the scanner's unescape to
                # rebuild the member; rare enough to punt to serial.
                return None
            try:
                key = raw.decode("utf-8")
            except UnicodeDecodeError:
                return None
            frames.append(("recw", head, key))
            lo, hi = vopen, vend


def _subtree_parts(kind: str, t: Type) -> list:
    """One typed, wrapped chunk → its mergeable contributions.

    Arrays contribute their element-union members; objects contribute
    ``(name, type, required)`` member triples.
    """
    if kind == "array":
        item = t.item
        if isinstance(item, UnionType):
            return list(item.members)
        if isinstance(item, BotType):
            return []
        return [item]
    return [(f.name, f.type, f.required) for f in t.fields]


def type_subtree_chunks(
    encoder: EventTypeEncoder,
    data,
    kind: str,
    chunks,
    *,
    max_depth: int = 512,
) -> list:
    """Type each chunk span through the full bytes machine.

    Every chunk is wrapped in its container's brackets and scanned as a
    complete document, so keys, escapes, UTF-8 runs, and nesting depth
    get the machine's exact validation; the wrapper contributes exactly
    the one level the real container contributes.  Raises whatever the
    machine raises on an invalid chunk — callers treat any failure as
    "this speculation was wrong, go serial".
    """
    wrap_open, wrap_close = (b"[", b"]") if kind == "array" else (b"{", b"}")
    encode = encoder.encode_bytes
    out = []
    for s, e in chunks:
        doc = wrap_open + bytes(data[s:e]) + wrap_close
        t = encode(doc, max_depth=max_depth)
        if kind == "array":
            if not isinstance(t, ArrType):  # pragma: no cover - wrap invariant
                raise InferenceError("subtree chunk did not type as an array")
        elif not isinstance(t, RecType):  # pragma: no cover - wrap invariant
            raise InferenceError("subtree chunk did not type as a record")
        out.append(_subtree_parts(kind, t))
    return out


def combine_subtree(
    table: InternTable, split: SubtreeSplit, chunk_parts, head_parts=None
) -> Type:
    """Reassemble chunk contributions into the whole document's type.

    ``chunk_parts`` is one :func:`_subtree_parts` list per chunk, in
    chunk order (possibly from other processes — everything is
    re-canonicalized into ``table``).  ``head_parts`` aligns with
    ``split.frames``: the typed member triples of each ``recw`` frame's
    head span (``None`` elsewhere).  The result is interned-identical to
    the serial scan of the whole document.
    """
    canonical = table.canonical
    if split.kind == "array":
        members: list = []
        seen: set = set()
        for parts in chunk_parts:
            for member in parts:
                member = canonical(member)
                if member not in seen:
                    seen.add(member)
                    members.append(member)
        t = table.arr_of(table.union_of(members))
    else:
        fields: dict = {}
        for parts in chunk_parts:
            for name, ftype, required in parts:
                # Duplicate keys across (and within) chunks: last wins,
                # matching the serial scan's dict overwrite.
                fields[name] = (canonical(ftype), required)
        t = table.rec_of(
            [table.field_of(n, ft, req) for n, (ft, req) in fields.items()]
        )
    frames = split.frames
    heads = head_parts if head_parts is not None else (None,) * len(frames)
    for frame, head in zip(reversed(frames), reversed(tuple(heads))):
        if frame[0] == "arr1":
            t = table.arr_of(table.union_of([t]))
        else:
            fields = {}
            if head:
                for name, ftype, required in head:
                    fields[name] = (canonical(ftype), required)
            # The spine member is the object's last member; assignment
            # order keeps last-wins exact if its key repeats in the head.
            fields[frame[2]] = (t, True)
            t = table.rec_of(
                [table.field_of(n, ft, req) for n, (ft, req) in fields.items()]
            )
    return t
