"""Incremental inference engine: a streaming merge monoid.

The parametric merge of Baazizi et al. is an associative, commutative
monoid — the very property that lets the papers run the reduce phase as
per-partition Spark combiners.  The seed code did not exploit it on one
machine: ``infer_type`` materialized every per-document type in a list
and re-simplified the whole union on each ``merge_all``.

:class:`TypeAccumulator` is the monoid made operational.  It maintains
the *fused equivalence-class map* of ``merge_all`` online — one canonical
representative per equivalence class — so its memory is O(classes), not
O(documents), and each ``add`` is one intern walk plus a memoized
pairwise merge (O(1) once the class representatives stabilize, which for
real collections happens after the first few documents).

Laws (property-tested in ``tests/test_engine_properties.py``):

- ``result()`` is structurally identical to the seed
  ``merge_all(types, equivalence)`` for every ordering and chunking of
  the inputs;
- ``combine`` is associative and commutative up to that same result;
- the empty accumulator is the identity (``result() == BOT``).

:class:`CountingAccumulator` gives the counting-types algebra
(:mod:`repro.inference.counting`) the same streaming surface.
"""

from __future__ import annotations

import re
from typing import Any, Hashable, Iterable, Optional, Sequence

from repro.errors import InferenceError
from repro.jsonvalue.lexer import WHITESPACE_PATTERN_BYTES
from repro.types import Equivalence, Type, class_key, union
from repro.types.build import EventTypeEncoder, TypeEncoder
from repro.types.intern import InternTable, global_table
from repro.types.terms import UnionType

_BYTES_WS_RUN = re.compile(WHITESPACE_PATTERN_BYTES)
# ASCII bytes str.isspace() accepts beyond JSON's own whitespace: a line
# of these is blank to the str feed, so the bytes feed must agree.
_EXTRA_SPACE_BYTES = frozenset(b"\x0b\x0c\x1c\x1d\x1e\x1f")


class TypeAccumulator:
    """Streaming parametric merge with O(classes) state.

    ``add`` / ``add_type`` absorb one document / one type; ``combine``
    folds another accumulator in (the monoid operation, used per
    partition by :mod:`repro.inference.distributed`); ``result`` yields
    the merged type, bit-identical to ``merge_all`` over everything
    absorbed so far.  ``result`` does not consume the accumulator — it
    can be sampled mid-stream.
    """

    __slots__ = (
        "equivalence",
        "_table",
        "_encoder",
        "_event_encoder",
        "_classes",
        "_order",
        "_memo",
        "_count",
    )

    def __init__(
        self,
        equivalence: Equivalence = Equivalence.KIND,
        *,
        table: Optional[InternTable] = None,
    ) -> None:
        self.equivalence = equivalence
        self._table = table if table is not None else global_table()
        # Fused map phase: documents are encoded straight into canonical
        # interned terms (no raw type_of tree), lazily so type-only
        # accumulators never pay for the encoder's leaf setup.  The
        # event encoder is the text-feed analogue (raw NDJSON lines in,
        # canonical types out, no DOM in between).
        self._encoder: Optional[TypeEncoder] = None
        self._event_encoder: Optional[EventTypeEncoder] = None
        # class key -> fused, reduced, interned representative
        self._classes: dict[Hashable, Type] = {}
        # first-appearance order of keys (merge_all parity; union() sorts
        # anyway, but keeping the order makes the equivalence exact by
        # construction rather than by the final sort).
        self._order: list[Hashable] = []
        # Canonical types already absorbed.  Merge is idempotent
        # (merge(X, t, t) == merge(X, t), property-tested), so a type seen
        # before cannot change the state — the probe costs one hash and
        # one comparison that short-circuits on interned sub-terms.  The
        # memo is bounded (it is an optimization, not state): on wildly
        # heterogeneous streams it stops growing at _MEMO_LIMIT entries
        # instead of pinning one type per distinct document, keeping the
        # accumulator's memory O(classes + constant).
        self._memo: set[Type] = set()
        self._count = 0

    _MEMO_LIMIT = 8192

    # ------------------------------------------------------------------

    @property
    def table(self) -> InternTable:
        """The intern table this accumulator canonicalizes into."""
        return self._table

    def add(self, document: Any) -> None:
        """Type one document (fused encoder) and absorb it."""
        encoder = self._encoder
        if encoder is None:
            encoder = self._encoder = TypeEncoder(self._table)
        self.add_type(encoder.encode(document))

    def add_text(self, text: str) -> None:
        """Type one raw JSON text (fused lexer→type pipeline) and absorb it.

        The document is never materialised: the lexer's tokens build the
        canonical interned type directly through the encoder's shape
        caches, then merge in one ``add_type`` step.
        """
        encoder = self._event_encoder
        if encoder is None:
            encoder = self._event_encoder = EventTypeEncoder(self._table)
        self.add_type(encoder.encode_text(text))

    def add_bytes(self, data, start: int = 0, end: Optional[int] = None) -> None:
        """Type one raw UTF-8 document held as bytes and absorb it.

        The bytes-native analogue of :meth:`add_text`: ``data`` may be
        ``bytes``, an mmap, or a shared-memory view, and the byte range
        is scanned straight to a canonical interned type — no
        ``.decode`` on the happy path, identical types *and* identical
        errors to ``add_text(bytes(data[start:end]).decode("utf-8"))``.
        """
        encoder = self._event_encoder
        if encoder is None:
            encoder = self._event_encoder = EventTypeEncoder(self._table)
        self.add_type(encoder.encode_bytes(data, start, end))

    def add_type(self, t: Type) -> None:
        """Absorb one already-typed document (or any type term)."""
        self._count += 1
        memo = self._memo
        if t in memo:
            return
        table = self._table
        t = table.canonical(t)
        if len(memo) < self._MEMO_LIMIT:
            memo.add(t)
        members = t.members if isinstance(t, UnionType) else (t,)
        equivalence = self.equivalence
        classes = self._classes
        for member in members:
            key = class_key(member, equivalence)
            rep = classes.get(key)
            if rep is None:
                # Even a singleton class is reduced, exactly as
                # merge_all's _fuse_class rebuilds singleton containers.
                classes[key] = table.reduce_types(member, equivalence)
                self._order.append(key)
            else:
                classes[key] = table.merge_types(rep, member, equivalence)

    def add_types(self, types: Iterable[Type]) -> None:
        for t in types:
            self.add_type(t)

    def combine(self, other: "TypeAccumulator") -> None:
        """Fold another accumulator into this one (monoid operation)."""
        if other.equivalence is not self.equivalence:
            raise InferenceError(
                "cannot combine accumulators with different equivalences: "
                f"{self.equivalence.value} vs {other.equivalence.value}"
            )
        table = self._table
        classes = self._classes
        equivalence = self.equivalence
        for key in other._order:
            rep = other._classes[key]
            mine = classes.get(key)
            if mine is None:
                # Re-intern in case the other accumulator used a
                # different table (e.g. it crossed a process boundary).
                classes[key] = table.reduce_types(rep, equivalence)
                self._order.append(key)
            else:
                classes[key] = table.merge_types(mine, rep, equivalence)
        if table is other._table and len(self._memo) < self._MEMO_LIMIT:
            self._memo |= other._memo
        self._count += other._count

    # ------------------------------------------------------------------

    def result(self) -> Type:
        """The merged type of everything absorbed (``BOT`` when empty)."""
        return self._table.intern(union(self._classes[k] for k in self._order))

    @property
    def document_count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def class_count(self) -> int:
        """Number of live equivalence classes — the state size."""
        return len(self._classes)

    def state_nodes(self) -> int:
        """Total AST nodes held by class representatives.

        This is the accumulator's working-set measure: independent of the
        number of documents absorbed, unlike the seed's list of types.
        """
        return sum(self._classes[k].size() for k in self._order)


class CountingAccumulator:
    """Streaming counting-types merge (DBPL '17 algebra).

    Same surface as :class:`TypeAccumulator`; state is one counted union
    whose size is bounded by the fused schema, not the document count.
    """

    __slots__ = ("equivalence", "_acc", "_count")

    def __init__(self, equivalence: Equivalence = Equivalence.KIND) -> None:
        # Imported lazily: repro.inference.counting triggers the package
        # __init__, which imports modules that import this engine.
        from repro.inference.counting import CUnion

        self.equivalence = equivalence
        self._acc: "CUnion" = CUnion(())
        self._count = 0

    def add(self, document: Any) -> None:
        from repro.inference.counting import counted_type_of

        self.add_counted(counted_type_of(document, self.equivalence))

    def add_counted(self, counted: Any, *, documents: int = 1) -> None:
        """Absorb one counted union.

        ``documents`` is how many source documents it represents: 1 for
        a per-document type, the partition's document count when folding
        a pre-merged partial (as the parallel reduce does).
        """
        from repro.inference.counting import merge_counted

        self._acc = merge_counted(
            (self._acc, counted), self.equivalence, _empty_ok=True
        )
        self._count += documents

    def combine(self, other: "CountingAccumulator") -> None:
        if other.equivalence is not self.equivalence:
            raise InferenceError(
                "cannot combine accumulators with different equivalences: "
                f"{self.equivalence.value} vs {other.equivalence.value}"
            )
        from repro.inference.counting import merge_counted

        self._acc = merge_counted(
            (self._acc, other._acc), self.equivalence, _empty_ok=True
        )
        self._count += other._count

    def result(self) -> Any:
        return self._acc

    @property
    def document_count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0


# ---------------------------------------------------------------------------
# functional conveniences
# ---------------------------------------------------------------------------


def accumulate(
    documents: Iterable[Any],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold a document stream into a fresh accumulator."""
    acc = TypeAccumulator(equivalence, table=table)
    for document in documents:
        acc.add(document)
    return acc


def accumulate_types(
    types: Iterable[Type],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold a type stream into a fresh accumulator."""
    acc = TypeAccumulator(equivalence, table=table)
    for t in types:
        acc.add_type(t)
    return acc


def accumulate_lines(
    lines: Iterable[str],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold raw NDJSON lines into a fresh accumulator (blank lines are
    skipped) — the zero-materialization text feed."""
    acc = TypeAccumulator(equivalence, table=table)
    add_text = acc.add_text
    for line in lines:
        if not line or line.isspace():
            continue
        add_text(line)
    return acc


# Line batches fed to the encoder's batched skeleton passes grow from a
# small probe (so shape-poor corpora disable the line cache cheaply) to
# a size that amortizes the per-batch C passes.
_RANGE_CHUNK_START = 2048
_RANGE_CHUNK_LIMIT = 32768


def accumulate_ranges(
    data,
    spans: Sequence[tuple],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    table: Optional[InternTable] = None,
) -> TypeAccumulator:
    """Fold undecoded byte ranges of an NDJSON buffer — the bytes feed.

    ``data`` is any byte buffer (an :class:`~repro.datasets.ndjson.MmapCorpus`
    buffer, a shared-memory view, plain ``bytes``) and ``spans`` the
    ``(start, end)`` byte range of each line, e.g.
    ``corpus.spans`` or :func:`repro.datasets.ndjson.iter_line_spans`
    output.  No line is ever decoded to ``str`` on the happy path: the
    ranges run through :meth:`EventTypeEncoder.encode_lines` — the
    batched skeleton cache plus the bytes-native structural scan — in
    growing chunks, and blank lines (including the rare non-ASCII
    whitespace-only line, for exact :func:`accumulate_lines` parity)
    are skipped.  The result is interned-identical to
    ``accumulate_lines`` over the decoded lines, with identical errors.
    """
    acc = TypeAccumulator(equivalence, table=table)
    encoder = EventTypeEncoder(acc.table)
    add_type = acc.add_type
    ws_match = _BYTES_WS_RUN.match
    batch: list[bytes] = []
    append = batch.append
    chunk = _RANGE_CHUNK_START
    for start, end in spans:
        if end > start:
            ws_end = ws_match(data, start, end).end()
            if ws_end >= end:
                continue  # ASCII whitespace only
            if data[ws_end] >= 0x80 or data[ws_end] in _EXTRA_SPACE_BYTES:
                # Possibly whitespace-only by str.isspace's wider rules
                # (unicode spaces, \x0b/\x0c/\x1c-\x1f) — the str feed
                # skips those lines, so decide exactly as it would (and
                # let a malformed-UTF-8 line raise its exact decode
                # error).  Flush first: earlier lines must surface
                # their errors before this line's decode, as they do
                # serially.
                if batch:
                    for t in encoder.encode_lines(batch):
                        add_type(t)
                    del batch[:]
                text = bytes(data[start:end]).decode("utf-8")
                if text.isspace():
                    continue
            append(bytes(data[start:end]))
            if len(batch) >= chunk:
                for t in encoder.encode_lines(batch):
                    add_type(t)
                del batch[:]
                chunk = min(_RANGE_CHUNK_LIMIT, chunk * 4)
    if batch:
        for t in encoder.encode_lines(batch):
            add_type(t)
    return acc
