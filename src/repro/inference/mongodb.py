"""mongodb-schema-style streaming analyzer (tutorial §4.1).

``mongodb-schema`` "analyzes JSON objects pulled from MongoDB, and
processes them in a **streaming fashion**; it is able to return quite
concise schemas, but it **cannot infer information describing field
correlation**".

The reproduction: a :class:`StreamingAnalyzer` consuming one document at a
time in O(schema) memory.  For every field (recursively, with arrays
abstracted to their elements) it tracks

- ``count`` — in how many parent documents the field appeared,
- ``probability`` — count / parents seen,
- per-BSON-ish-type counts and probabilities,
- a bounded reservoir of sample values.

The output deliberately has **no correlation information**: each field is
summarised independently, so ``{"a":1,"b":1}`` vs ``{"a":2}``/``{"b":2}``
produce identical summaries — a property the tests assert, since it is the
limitation the tutorial uses to position the parametric approach.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Any, Iterable, Optional

from repro.errors import InferenceError
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of


def _type_name(value: Any) -> str:
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return "Null"
    if kind is JsonKind.BOOLEAN:
        return "Boolean"
    if kind is JsonKind.NUMBER:
        return "Long" if is_integer_value(value) else "Double"
    if kind is JsonKind.STRING:
        return "String"
    if kind is JsonKind.ARRAY:
        return "Array"
    return "Document"


@dataclass
class TypeSummary:
    """Statistics for one (field, type) pair."""

    name: str
    count: int = 0
    samples: list = dc_field(default_factory=list)
    # For Array: summary of the elements; for Document: nested fields.
    elements: Optional["FieldSummaryMap"] = None
    document: Optional["FieldSummaryMap"] = None

    def probability(self, parent_count: int) -> float:
        return self.count / parent_count if parent_count else 0.0


@dataclass
class FieldSummary:
    """Statistics for one field across all parents that could carry it."""

    name: str
    count: int = 0
    types: dict = dc_field(default_factory=dict)  # type name -> TypeSummary

    def probability(self, parent_count: int) -> float:
        return self.count / parent_count if parent_count else 0.0

    def type_names(self) -> list[str]:
        return sorted(self.types)

    def has_multiple_types(self) -> bool:
        return len(self.types) > 1


class FieldSummaryMap:
    """A set of field summaries under one parent (document or array elems)."""

    def __init__(self) -> None:
        self.fields: dict[str, FieldSummary] = {}
        self.parent_count = 0


class StreamingAnalyzer:
    """Streaming, field-level schema analyzer (no correlations, by design)."""

    def __init__(self, *, sample_size: int = 5, seed: int = 0) -> None:
        self.sample_size = sample_size
        self._rng = random.Random(seed)
        self._root = FieldSummaryMap()
        self._seen = 0

    @property
    def documents_seen(self) -> int:
        return self._seen

    def feed(self, document: Any) -> None:
        """Consume one document (must be an object, as in MongoDB)."""
        if not isinstance(document, dict):
            raise InferenceError("mongodb-schema analyzes object documents only")
        self._seen += 1
        self._feed_object(self._root, document)

    def feed_many(self, documents: Iterable[Any]) -> "StreamingAnalyzer":
        for doc in documents:
            self.feed(doc)
        return self

    def _feed_object(self, summary_map: FieldSummaryMap, obj: dict) -> None:
        summary_map.parent_count += 1
        for name, value in obj.items():
            summary = summary_map.fields.get(name)
            if summary is None:
                summary = FieldSummary(name)
                summary_map.fields[name] = summary
            summary.count += 1
            self._feed_value(summary, value)

    def _feed_value(self, summary: FieldSummary, value: Any) -> None:
        tname = _type_name(value)
        tsummary = summary.types.get(tname)
        if tsummary is None:
            tsummary = TypeSummary(tname)
            summary.types[tname] = tsummary
        tsummary.count += 1
        self._reservoir(tsummary, value)
        if tname == "Document":
            if tsummary.document is None:
                tsummary.document = FieldSummaryMap()
            self._feed_object(tsummary.document, value)
        elif tname == "Array":
            if tsummary.elements is None:
                tsummary.elements = FieldSummaryMap()
            # Array elements are summarised as an anonymous "[]" field.
            tsummary.elements.parent_count += 1
            elem_summary = tsummary.elements.fields.get("[]")
            if elem_summary is None:
                elem_summary = FieldSummary("[]")
                tsummary.elements.fields["[]"] = elem_summary
            for element in value:
                elem_summary.count += 1
                self._feed_value(elem_summary, element)

    def _reservoir(self, tsummary: TypeSummary, value: Any) -> None:
        if tsummary.name in ("Document", "Array"):
            return
        samples = tsummary.samples
        if len(samples) < self.sample_size:
            samples.append(value)
        else:
            index = self._rng.randint(0, tsummary.count - 1)
            if index < self.sample_size:
                samples[index] = value

    # -- output ----------------------------------------------------------

    def result(self) -> dict[str, Any]:
        """A JSON-ready summary, shaped like mongodb-schema's output."""
        if not self._seen:
            raise InferenceError("no documents analyzed")
        return {
            "count": self._seen,
            "fields": _render_map(self._root),
        }

    def schema_size(self) -> int:
        """Node count of the summary (conciseness measure for E10)."""

        def size_of(node: Any) -> int:
            if isinstance(node, dict):
                return 1 + sum(size_of(v) for v in node.values())
            if isinstance(node, list):
                return 1 + sum(size_of(v) for v in node)
            return 1

        return size_of(self.result())


def _render_map(summary_map: FieldSummaryMap) -> list[dict[str, Any]]:
    out = []
    for name in sorted(summary_map.fields):
        summary = summary_map.fields[name]
        types_out = []
        for tname in sorted(summary.types):
            tsummary = summary.types[tname]
            entry: dict[str, Any] = {
                "name": tname,
                "count": tsummary.count,
                "probability": round(tsummary.count / summary.count, 4),
            }
            if tsummary.samples:
                entry["samples"] = list(tsummary.samples)
            if tsummary.document is not None:
                entry["fields"] = _render_map(tsummary.document)
            if tsummary.elements is not None:
                entry["elements"] = _render_map(tsummary.elements)
            types_out.append(entry)
        out.append(
            {
                "name": name,
                "count": summary.count,
                "probability": round(summary.probability(summary_map.parent_count), 4),
                "types": types_out,
            }
        )
    return out


def analyze(documents: Iterable[Any], *, sample_size: int = 5, seed: int = 0) -> dict[str, Any]:
    """One-shot convenience: stream all documents, return the summary."""
    analyzer = StreamingAnalyzer(sample_size=sample_size, seed=seed)
    analyzer.feed_many(documents)
    return analyzer.result()
