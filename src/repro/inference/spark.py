"""Spark DataFrame-style schema inference (tutorial §4.1).

Spark's JSON datasource infers a ``StructType`` for a collection, but —
as the tutorial stresses — "its inference approach is quite imprecise,
since the type language **lacks union types**, and the inference algorithm
**resorts to Str** on strongly heterogeneous collections of data".

This module reproduces that behaviour faithfully:

- atomic types: ``LongType`` ``DoubleType`` ``BooleanType`` ``StringType``
  ``NullType``;
- ``Long`` and ``Double`` widen to ``Double``; any other atomic conflict
  collapses to ``StringType``;
- a conflict between a struct and anything else, or an array and anything
  else, also collapses to ``StringType`` (Spark falls back to treating the
  column as a JSON string);
- structs merge field-wise with ``nullable=True`` for partial fields;
- everything is nullable once a null has been seen (Spark marks columns
  nullable generously).

``render_schema`` mimics ``DataFrame.printSchema()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Tuple

from repro.errors import InferenceError
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of


class SparkType:
    """Base class for the Spark-like type language (no unions — the point)."""

    __slots__ = ()

    def simple_name(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.simple_name()


@dataclass(frozen=True)
class AtomicType(SparkType):
    name: str  # long | double | boolean | string | null

    def simple_name(self) -> str:
        return self.name


LONG = AtomicType("long")
DOUBLE = AtomicType("double")
BOOLEAN = AtomicType("boolean")
STRING = AtomicType("string")
NULL = AtomicType("null")


@dataclass(frozen=True)
class ArrayType(SparkType):
    element: SparkType
    contains_null: bool = False

    def simple_name(self) -> str:
        return f"array<{self.element.simple_name()}>"


@dataclass(frozen=True)
class StructField(SparkType):
    name: str
    dtype: SparkType
    nullable: bool = True

    def simple_name(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.dtype.simple_name()}"


@dataclass(frozen=True)
class StructType(SparkType):
    fields: Tuple[StructField, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if names != sorted(names):
            object.__setattr__(
                self, "fields", tuple(sorted(self.fields, key=lambda f: f.name))
            )

    def field_map(self) -> dict[str, StructField]:
        return {f.name: f for f in self.fields}

    def simple_name(self) -> str:
        inner = ",".join(f"{f.name}:{f.dtype.simple_name()}" for f in self.fields)
        return f"struct<{inner}>"


def _type_of_value(value: Any) -> SparkType:
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return NULL
    if kind is JsonKind.BOOLEAN:
        return BOOLEAN
    if kind is JsonKind.NUMBER:
        return LONG if is_integer_value(value) else DOUBLE
    if kind is JsonKind.STRING:
        return STRING
    if kind is JsonKind.ARRAY:
        element: SparkType = NULL
        contains_null = False
        for v in value:
            if v is None:
                contains_null = True
                continue
            element = merge_types(element, _type_of_value(v))
        return ArrayType(element, contains_null)
    fields = tuple(
        StructField(name, _type_of_value(v), nullable=v is None)
        for name, v in value.items()
    )
    return StructType(fields)


def merge_types(left: SparkType, right: SparkType) -> SparkType:
    """Spark's pairwise type compatibility: widen or fall back to string."""
    if left == right:
        return left
    if left == NULL:
        return right
    if right == NULL:
        return left
    if {left, right} == {LONG, DOUBLE}:
        return DOUBLE
    if isinstance(left, ArrayType) and isinstance(right, ArrayType):
        return ArrayType(
            merge_types(left.element, right.element),
            left.contains_null or right.contains_null,
        )
    if isinstance(left, StructType) and isinstance(right, StructType):
        return _merge_structs(left, right)
    # Everything else — string vs number, struct vs array, struct vs scalar —
    # collapses to StringType.  This is the imprecision the tutorial calls out.
    return STRING


def _merge_structs(left: StructType, right: StructType) -> StructType:
    lmap, rmap = left.field_map(), right.field_map()
    names = sorted(set(lmap) | set(rmap))
    fields = []
    for name in names:
        lf, rf = lmap.get(name), rmap.get(name)
        if lf is not None and rf is not None:
            fields.append(
                StructField(
                    name,
                    merge_types(lf.dtype, rf.dtype),
                    nullable=lf.nullable or rf.nullable,
                )
            )
        else:
            present = lf if lf is not None else rf
            assert present is not None
            fields.append(StructField(name, present.dtype, nullable=True))
    return StructType(tuple(fields))


def infer_spark_schema(documents: Iterable[Any]) -> StructType:
    """Infer a Spark-like schema for a collection of JSON objects.

    Non-object documents make the whole collection fall back to a single
    ``_corrupt_record: string`` column, mirroring Spark's behaviour.
    """
    merged: SparkType | None = None
    saw_corrupt = False
    for doc in documents:
        if not isinstance(doc, dict):
            saw_corrupt = True
            continue
        t = _type_of_value(doc)
        merged = t if merged is None else merge_types(merged, t)
    if merged is None:
        if saw_corrupt:
            return StructType((StructField("_corrupt_record", STRING, True),))
        raise InferenceError("cannot infer a schema from an empty collection")
    if not isinstance(merged, StructType):
        return StructType((StructField("_corrupt_record", STRING, True),))
    if saw_corrupt:
        merged = _merge_structs(
            merged, StructType((StructField("_corrupt_record", STRING, True),))
        )
    return merged


def render_schema(schema: StructType) -> str:
    """Mimic ``DataFrame.printSchema()`` output."""
    lines = ["root"]

    def emit(field: StructField, depth: int) -> None:
        pad = " |   " * depth + " |-- "
        dtype = field.dtype
        if isinstance(dtype, StructType):
            lines.append(f"{pad}{field.name}: struct (nullable = {str(field.nullable).lower()})")
            for inner in dtype.fields:
                emit(inner, depth + 1)
        elif isinstance(dtype, ArrayType):
            lines.append(
                f"{pad}{field.name}: array<{dtype.element.simple_name()}> "
                f"(nullable = {str(field.nullable).lower()})"
            )
        else:
            lines.append(
                f"{pad}{field.name}: {dtype.simple_name()} "
                f"(nullable = {str(field.nullable).lower()})"
            )

    for field in schema.fields:
        emit(field, 0)
    return "\n".join(lines)


def count_string_collapses(documents: Iterable[Any]) -> int:
    """Top-level fields typed ``string`` despite non-string samples.

    The E4 imprecision metric: a union-typed language would keep the
    variants apart; Spark's fallback folds them into ``StringType``,
    losing the non-string structure these samples carried.
    """
    docs = [d for d in documents if isinstance(d, dict)]
    schema = infer_spark_schema(docs)
    collapsed = 0
    for field in schema.fields:
        if field.dtype != STRING:
            continue
        samples = [d[field.name] for d in docs if field.name in d]
        if any(s is not None and not isinstance(s, str) for s in samples):
            collapsed += 1
    return collapsed
