"""Schema inference for JSON collections (tutorial Part 4).

One module per surveyed system:

- :mod:`repro.inference.parametric` — the tutorial authors' parametric
  K/L-equivalence inference (EDBT '17 / VLDB J '19);
- :mod:`repro.inference.counting` — counting types (DBPL '17);
- :mod:`repro.inference.spark` — Spark DataFrame extraction (no unions,
  falls back to strings);
- :mod:`repro.inference.mongodb` — mongodb-schema streaming field summary;
- :mod:`repro.inference.skinfer` — Skinfer JSON Schema inference
  (record-only merge);
- :mod:`repro.inference.studio3t` — Studio 3T shape catalogue (no merging);
- :mod:`repro.inference.couchbase` — Couchbase flavor discovery;
- :mod:`repro.inference.skeleton` — Wang et al. skeletons (VLDB '15);
- :mod:`repro.inference.relational` — DiScala & Abadi FD-driven
  normalisation (SIGMOD '16);
- :mod:`repro.inference.profiling` — Gallinucci et al. decision-tree
  schema profiles (Inf. Syst. '18);
- :mod:`repro.inference.distributed` — the map/combine/reduce cost
  simulator plus a real multiprocessing execution of the distributed
  variant;
- :mod:`repro.inference.engine` — the hash-consed incremental merge
  accumulator the parametric/streaming/distributed/counting paths run
  through.
"""

from repro.inference.parametric import InferenceReport, infer, infer_type, precision_against
from repro.inference.counting import (
    CArr,
    CAtom,
    CField,
    CRec,
    CUnion,
    counted_type_of,
    counted_type_of_bytes,
    counted_type_of_text,
    field_presence_ratios,
    infer_counted,
    infer_counted_compressed,
    infer_counted_streaming,
    merge_counted,
)
from repro.inference.spark import (
    infer_spark_schema,
    render_schema as render_spark_schema,
    count_string_collapses,
)
from repro.inference.mongodb import StreamingAnalyzer, analyze as mongodb_analyze
from repro.inference.skinfer import (
    infer_schema as skinfer_infer_schema,
    merge_schemas as skinfer_merge_schemas,
    schema_from_object,
    schema_size as jsonschema_size,
)
from repro.inference.studio3t import Studio3TAnalysis, analyze as studio3t_analyze, shape_of
from repro.inference.couchbase import Flavor, discover_flavors
from repro.inference.skeleton import (
    Skeleton,
    Structure,
    build_skeleton,
    document_coverage,
    mine_structures,
    path_coverage,
    structure_of,
)
from repro.inference.relational import (
    Decomposition,
    FunctionalDependency,
    NormalizationReport,
    Table,
    decompose,
    flatten,
    mine_fds,
    normalize,
)
from repro.inference.profiling import SchemaProfile, candidate_features, train_profile
from repro.inference.calibration import (
    SchedCalibration,
    load_calibration,
    measure_calibration,
)
from repro.inference.distributed import (
    CountedParallelRun,
    DistributedRun,
    ParallelRun,
    SchedulePlan,
    auto_jobs,
    choose_shared_memory,
    infer_adaptive_text,
    infer_compressed_parallel,
    infer_counted_parallel,
    infer_distributed,
    infer_distributed_parallel,
    infer_distributed_text,
    infer_subtree_text,
    partition,
    partition_bounds,
    partition_contiguous,
    partition_lines,
    plan_compressed_schedule,
    plan_schedule,
)
from repro.inference.streaming import (
    fold_compressed,
    infer_report_compressed,
    infer_report_corpus,
    infer_report_path,
    infer_report_streaming,
    infer_type_streaming,
    type_from_events,
    type_of_bytes,
    type_of_text,
)
from repro.inference.engine import (
    CountingAccumulator,
    RangeFolder,
    TypeAccumulator,
    accumulate,
    accumulate_lines,
    accumulate_ranges,
    accumulate_types,
)

__all__ = [
    "InferenceReport",
    "infer",
    "infer_type",
    "precision_against",
    "CArr",
    "CAtom",
    "CField",
    "CRec",
    "CUnion",
    "counted_type_of",
    "counted_type_of_bytes",
    "counted_type_of_text",
    "field_presence_ratios",
    "infer_counted",
    "infer_counted_compressed",
    "infer_counted_streaming",
    "merge_counted",
    "infer_spark_schema",
    "render_spark_schema",
    "count_string_collapses",
    "StreamingAnalyzer",
    "mongodb_analyze",
    "skinfer_infer_schema",
    "skinfer_merge_schemas",
    "schema_from_object",
    "jsonschema_size",
    "Studio3TAnalysis",
    "studio3t_analyze",
    "shape_of",
    "Flavor",
    "discover_flavors",
    "Skeleton",
    "Structure",
    "build_skeleton",
    "document_coverage",
    "mine_structures",
    "path_coverage",
    "structure_of",
    "Decomposition",
    "FunctionalDependency",
    "NormalizationReport",
    "Table",
    "decompose",
    "flatten",
    "mine_fds",
    "normalize",
    "SchemaProfile",
    "candidate_features",
    "train_profile",
    "CountedParallelRun",
    "DistributedRun",
    "ParallelRun",
    "SchedCalibration",
    "SchedulePlan",
    "auto_jobs",
    "choose_shared_memory",
    "load_calibration",
    "measure_calibration",
    "infer_adaptive_text",
    "infer_compressed_parallel",
    "infer_counted_parallel",
    "infer_distributed",
    "infer_distributed_parallel",
    "infer_distributed_text",
    "infer_subtree_text",
    "partition",
    "partition_bounds",
    "partition_contiguous",
    "partition_lines",
    "plan_compressed_schedule",
    "plan_schedule",
    "infer_report_corpus",
    "infer_report_path",
    "infer_report_streaming",
    "infer_type_streaming",
    "type_from_events",
    "type_of_bytes",
    "type_of_text",
    "CountingAccumulator",
    "TypeAccumulator",
    "accumulate",
    "accumulate_lines",
    "accumulate_ranges",
    "RangeFolder",
    "fold_compressed",
    "infer_report_compressed",
    "accumulate_types",
]
