"""Skeleton-based schema summaries (Wang et al., VLDB '15; tutorial §2).

"A skeleton is a collection of trees describing structures that frequently
appear in the objects of a JSON data collection.  In particular, the
skeleton **may totally miss information about paths that can be traversed
in some of the JSON objects**."

The reproduction:

- each document is abstracted to its **structure**: the frozenset of its
  generalized root-to-leaf paths (array positions → ``[*]``), which is the
  canonical-form idea behind the paper's eSiBu-Tree;
- equal structures are grouped and counted; the *skeleton of order k* keeps
  the ``k`` most frequent structures (rendered back as trees);
- **document coverage** = fraction of documents whose structure is in the
  skeleton; **path coverage** = fraction of (document, path) occurrences
  whose path appears somewhere in the skeleton.  E6 reproduces the
  coverage-vs-k curve: heavily clustered collections saturate quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import InferenceError
from repro.jsonvalue.model import iter_paths

PathKey = tuple[str, ...]


def structure_of(document: Any) -> frozenset[PathKey]:
    """The generalized leaf-path set of a document (its structure)."""
    paths: set[PathKey] = set()
    for path, _ in iter_paths(document):
        paths.add(tuple("[*]" if isinstance(step, int) else step for step in path))
    return frozenset(paths)


@dataclass(frozen=True)
class Structure:
    """One distinct structure with its support count."""

    paths: frozenset[PathKey]
    count: int


@dataclass
class Skeleton:
    """The top-k structures of a collection."""

    structures: list[Structure]
    document_count: int

    @property
    def order(self) -> int:
        return len(self.structures)

    def all_paths(self) -> frozenset[PathKey]:
        out: set[PathKey] = set()
        for s in self.structures:
            out |= s.paths
        return frozenset(out)

    def covers_document(self, document: Any) -> bool:
        """True if the document's exact structure is in the skeleton."""
        return structure_of(document) in {s.paths for s in self.structures}

    def covers_path(self, path: PathKey) -> bool:
        return path in self.all_paths()

    def as_trees(self) -> list[dict]:
        """Render each structure as a nested-dict tree (for display)."""
        return [_paths_to_tree(s.paths) for s in self.structures]


def _paths_to_tree(paths: frozenset[PathKey]) -> dict:
    root: dict = {}
    for path in sorted(paths):
        node = root
        for step in path:
            node = node.setdefault(step, {})
    return root


def mine_structures(documents: Iterable[Any]) -> list[Structure]:
    """Group documents by structure, most frequent first."""
    counts: dict[frozenset[PathKey], int] = {}
    total = 0
    for doc in documents:
        total += 1
        s = structure_of(doc)
        counts[s] = counts.get(s, 0) + 1
    if not total:
        raise InferenceError("cannot mine structures from an empty collection")
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], sorted(kv[0])))
    return [Structure(paths, count) for paths, count in ordered]


def build_skeleton(documents: Iterable[Any], k: int) -> Skeleton:
    """The skeleton of order ``k``: the k most frequent structures."""
    docs = list(documents)
    structures = mine_structures(docs)
    return Skeleton(structures=structures[:k], document_count=len(docs))


def document_coverage(skeleton: Skeleton, documents: Iterable[Any]) -> float:
    """Fraction of documents whose structure the skeleton contains."""
    total = 0
    covered = 0
    structure_set = {s.paths for s in skeleton.structures}
    for doc in documents:
        total += 1
        if structure_of(doc) in structure_set:
            covered += 1
    if not total:
        raise InferenceError("coverage needs at least one document")
    return covered / total


def path_coverage(skeleton: Skeleton, documents: Iterable[Any]) -> float:
    """Fraction of (document, path) occurrences present in the skeleton."""
    skeleton_paths = skeleton.all_paths()
    total = 0
    covered = 0
    for doc in documents:
        for path in structure_of(doc):
            total += 1
            if path in skeleton_paths:
                covered += 1
    if not total:
        raise InferenceError("coverage needs at least one path")
    return covered / total
