"""Skinfer-style JSON Schema inference (tutorial §4.1).

Skinfer "exploits two different functions for inferring a schema from an
object and for merging two schemas; schema merging is **limited to record
types only**, and **cannot be recursively applied to objects nested inside
arrays**".

Both functions are reproduced:

- :func:`schema_from_object` — one document → one JSON Schema;
- :func:`merge_schemas` — pairwise merge that recurses through object
  ``properties`` but treats array ``items`` atomically: if two array item
  schemas differ *at all*, the merged array abandons item constraints
  (``items`` is dropped), losing the information.  The E10 benchmark shows
  the precision gap this opens against the parametric approach on
  array-heavy data.

The inferred schemas are real JSON Schema documents validated by
:mod:`repro.jsonschema` — soundness (every input document validates) is
property-tested, limitation and all.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import InferenceError
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of


def schema_from_object(value: Any) -> dict[str, Any]:
    """Infer a JSON Schema for a single value (Skinfer's first function)."""
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return {"type": "null"}
    if kind is JsonKind.BOOLEAN:
        return {"type": "boolean"}
    if kind is JsonKind.NUMBER:
        return {"type": "integer" if is_integer_value(value) else "number"}
    if kind is JsonKind.STRING:
        return {"type": "string"}
    if kind is JsonKind.ARRAY:
        if not value:
            return {"type": "array"}
        item_schemas = [schema_from_object(v) for v in value]
        merged = item_schemas[0]
        for s in item_schemas[1:]:
            if s != merged:
                # Heterogeneous array: give up on items (the limitation).
                return {"type": "array"}
        return {"type": "array", "items": merged}
    properties = {name: schema_from_object(v) for name, v in value.items()}
    return {
        "type": "object",
        "properties": properties,
        "required": sorted(value.keys()),
    }


def merge_schemas(left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
    """Merge two inferred schemas (Skinfer's second function).

    Recursive for objects; **not** recursive for arrays — differing item
    schemas are dropped rather than merged, reproducing the documented
    limitation.
    """
    if left == right:
        return dict(left)
    ltype, rtype = left.get("type"), right.get("type")
    if ltype == rtype == "object":
        return _merge_objects(left, right)
    if ltype == rtype == "array":
        litems, ritems = left.get("items"), right.get("items")
        if litems == ritems and litems is not None:
            return {"type": "array", "items": litems}
        return {"type": "array"}  # items dropped: no recursive array merge
    if ltype == rtype:
        return {"type": ltype}
    if (
        isinstance(ltype, str)
        and isinstance(rtype, str)
        and {ltype, rtype} == {"integer", "number"}
    ):
        return {"type": "number"}
    # Different types: union via "type" list (Skinfer emits type arrays).
    types: list[str] = []
    for t in (ltype, rtype):
        if isinstance(t, list):
            types.extend(t)
        elif t is not None:
            types.append(t)
    deduped = sorted(set(types))
    return {"type": deduped if len(deduped) > 1 else deduped[0]}


def _merge_objects(left: dict[str, Any], right: dict[str, Any]) -> dict[str, Any]:
    lprops = left.get("properties", {})
    rprops = right.get("properties", {})
    properties = {}
    for name in sorted(set(lprops) | set(rprops)):
        if name in lprops and name in rprops:
            properties[name] = merge_schemas(lprops[name], rprops[name])
        else:
            properties[name] = lprops.get(name, rprops.get(name))
    required = sorted(
        set(left.get("required", [])) & set(right.get("required", []))
    )
    out: dict[str, Any] = {"type": "object", "properties": properties}
    if required:
        out["required"] = required
    return out


def infer_schema(documents: Iterable[Any]) -> dict[str, Any]:
    """Infer one JSON Schema for a collection (fold of merge_schemas)."""
    merged: dict[str, Any] | None = None
    for doc in documents:
        schema = schema_from_object(doc)
        merged = schema if merged is None else merge_schemas(merged, schema)
    if merged is None:
        raise InferenceError("cannot infer a schema from an empty collection")
    return merged


def schema_size(schema: dict[str, Any]) -> int:
    """Node count of a JSON Schema document (E10 conciseness measure)."""
    if isinstance(schema, dict):
        return 1 + sum(schema_size(v) for v in schema.values())
    if isinstance(schema, list):
        return 1 + sum(schema_size(v) for v in schema)
    return 1
