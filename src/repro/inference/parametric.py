"""Parametric schema inference (Baazizi et al., EDBT '17 / VLDB J '19).

The tutorial's own line of work: a *distributed, parametric* inference
algorithm "capable of inferring schemas at different levels of abstraction".
The algorithm is a map/reduce over the collection:

- **map**: each document is typed exactly — fused straight into canonical
  interned terms by :class:`repro.types.build.TypeEncoder`, the
  recursion-free equivalent of ``intern(type_of(document))``;
- **reduce**: types are merged monoidally under an *equivalence parameter*
  (:class:`repro.types.merge.Equivalence`) that controls precision:
  ``KIND`` fuses aggressively (one record type), ``LABEL`` keeps records
  with different label sets as distinct union members, preserving field
  correlations.

Because merge is associative and commutative (property-tested), the reduce
can be arbitrarily partitioned — which is what
:mod:`repro.inference.distributed` exploits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import InferenceError
from repro.inference.engine import accumulate
from repro.types import (
    Equivalence,
    Type,
    matches,
    type_to_jsonschema,
    type_to_string,
)


@dataclass(frozen=True)
class InferenceReport:
    """The inferred type plus the measurements the papers report."""

    inferred: Type
    equivalence: Equivalence
    document_count: int

    @property
    def schema_size(self) -> int:
        """AST node count — the succinctness measure."""
        return self.inferred.size()

    def to_jsonschema(self) -> dict:
        return type_to_jsonschema(self.inferred)

    def __str__(self) -> str:
        return (
            f"[{self.equivalence.value}] {self.document_count} docs -> "
            f"size {self.schema_size}: {type_to_string(self.inferred)}"
        )


def infer_type(
    documents: Iterable[Any], equivalence: Equivalence = Equivalence.KIND
) -> Type:
    """Infer the type of a collection under the given equivalence.

    Runs through the incremental engine: documents are typed by the
    fused encoder and folded into a
    :class:`~repro.inference.engine.TypeAccumulator` one at a time, so
    the collection is never materialized as a list of types and no raw
    (un-interned) type tree is ever built.  The result is structurally
    identical to the seed's
    ``merge_all([type_of(d) for d in documents], equivalence)``.
    """
    accumulator = accumulate(documents, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty collection")
    return accumulator.result()


def infer(
    documents: Iterable[Any], equivalence: Equivalence = Equivalence.KIND
) -> InferenceReport:
    """Infer and report (type + size + count)."""
    accumulator = accumulate(documents, equivalence)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty collection")
    return InferenceReport(
        inferred=accumulator.result(),
        equivalence=equivalence,
        document_count=accumulator.document_count,
    )


def precision_against(inferred: Type, witnesses: Iterable[Any]) -> float:
    """Fraction of *witness* documents accepted by the inferred type.

    With witnesses drawn from outside the training collection this is the
    (inverse of the) over-generalisation measure: KIND typically accepts
    more outsiders than LABEL because fused records forget correlations.
    """
    iterator = iter(witnesses)
    try:
        first = next(iterator)
    except StopIteration:
        raise InferenceError("precision_against needs at least one witness") from None
    total = 0
    accepted = 0
    for w in itertools.chain((first,), iterator):
        total += 1
        if matches(w, inferred):
            accepted += 1
    return accepted / total
