"""ML-based schema profiling (Gallinucci, Golfarelli & Rizzi, Inf. Syst. '18).

The tutorial's "Future Opportunities" part points to this work as evidence
of "the potential benefits of ML approaches in schema inference": instead
of merely *listing* the structural variants of a collection, a **schema
profile** *explains* them — a decision tree whose internal nodes test the
values of chosen fields and whose leaves identify the structural variant
a document will exhibit.

The reproduction:

- documents are labelled with their structural variant (the skeleton
  structure id from :mod:`repro.inference.skeleton`);
- features are the values of low-cardinality scalar fields (strings,
  booleans, ints with few distinct values) — *value-based* conditions,
  which is what distinguishes schema profiling from plain inference;
- a depth-bounded ID3 tree is grown with information gain, and rendered
  as readable rules; accuracy on the training collection is reported
  (the paper's explanation-quality proxy).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import InferenceError
from repro.inference.skeleton import structure_of


@dataclass
class ProfileLeaf:
    label: int
    counts: Counter

    def is_leaf(self) -> bool:
        return True


@dataclass
class ProfileNode:
    feature: str
    # value -> subtree; None key handles "feature absent".
    branches: dict
    fallback: "ProfileLeaf"

    def is_leaf(self) -> bool:
        return False


def _entropy(labels: list[int]) -> float:
    counts = Counter(labels)
    total = len(labels)
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def _feature_value(doc: Any, feature: str) -> Any:
    if isinstance(doc, dict) and feature in doc:
        value = doc[feature]
        if isinstance(value, (str, bool, int)) and not isinstance(value, float):
            return value
    return None


class SchemaProfile:
    """A trained schema profile: a decision tree over field values."""

    def __init__(self, root, labels: dict[int, frozenset]) -> None:
        self._root = root
        self.labels = labels  # variant id -> structure (path set)

    def classify(self, document: Any) -> int:
        """Predict the structural-variant id for a document."""
        node = self._root
        while not node.is_leaf():
            value = _feature_value(document, node.feature)
            node = node.branches.get(value, node.fallback)
        return node.label

    def accuracy(self, documents: Iterable[Any]) -> float:
        """Fraction of documents routed to their true variant."""
        structure_to_label = {s: i for i, s in self.labels.items()}
        total = 0
        hit = 0
        for doc in documents:
            total += 1
            truth = structure_to_label.get(structure_of(doc))
            if truth is not None and self.classify(doc) == truth:
                hit += 1
        if not total:
            raise InferenceError("accuracy needs at least one document")
        return hit / total

    def rules(self) -> list[str]:
        """Render the tree as flat 'conditions → variant' rules."""
        out: list[str] = []

        def walk(node, conditions: list[str]) -> None:
            if node.is_leaf():
                cond = " and ".join(conditions) if conditions else "(always)"
                out.append(f"{cond} -> variant #{node.label}")
                return
            for value, subtree in sorted(node.branches.items(), key=lambda kv: str(kv[0])):
                walk(subtree, conditions + [f"{node.feature} = {value!r}"])
            walk(node.fallback, conditions + [f"{node.feature} = <other>"])

        walk(self._root, [])
        return out


def candidate_features(documents: list[Any], *, max_cardinality: int = 8) -> list[str]:
    """Low-cardinality scalar fields usable as decision-tree conditions."""
    values: dict[str, set] = {}
    for doc in documents:
        if not isinstance(doc, dict):
            continue
        for name, value in doc.items():
            if isinstance(value, (str, bool, int)) and not isinstance(value, float):
                values.setdefault(name, set()).add(value)
    return sorted(
        name
        for name, seen in values.items()
        if 1 <= len(seen) <= max_cardinality
    )


def train_profile(
    documents: Iterable[Any], *, max_depth: int = 4, max_cardinality: int = 8
) -> SchemaProfile:
    """Train a schema profile for a collection."""
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot profile an empty collection")

    structures: dict[frozenset, int] = {}
    labels: list[int] = []
    for doc in docs:
        s = structure_of(doc)
        if s not in structures:
            structures[s] = len(structures)
        labels.append(structures[s])

    features = candidate_features(docs, max_cardinality=max_cardinality)

    def majority_leaf(indices: list[int]) -> ProfileLeaf:
        counts = Counter(labels[i] for i in indices)
        label = counts.most_common(1)[0][0]
        return ProfileLeaf(label=label, counts=counts)

    def grow(indices: list[int], depth: int, remaining: list[str]):
        current_labels = [labels[i] for i in indices]
        if depth >= max_depth or len(set(current_labels)) == 1 or not remaining:
            return majority_leaf(indices)
        base_entropy = _entropy(current_labels)
        best_feature: Optional[str] = None
        best_gain = 1e-9
        best_partition: dict = {}
        for feature in remaining:
            partition: dict[Any, list[int]] = {}
            for i in indices:
                partition.setdefault(_feature_value(docs[i], feature), []).append(i)
            if len(partition) <= 1:
                continue
            remainder = sum(
                len(subset) / len(indices) * _entropy([labels[i] for i in subset])
                for subset in partition.values()
            )
            gain = base_entropy - remainder
            if gain > best_gain:
                best_feature, best_gain, best_partition = feature, gain, partition
        if best_feature is None:
            return majority_leaf(indices)
        next_remaining = [f for f in remaining if f != best_feature]
        branches = {
            value: grow(subset, depth + 1, next_remaining)
            for value, subset in best_partition.items()
        }
        return ProfileNode(
            feature=best_feature, branches=branches, fallback=majority_leaf(indices)
        )

    root = grow(list(range(len(docs))), 0, features)
    return SchemaProfile(root, {i: s for s, i in structures.items()})
