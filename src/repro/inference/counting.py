"""Counting types (Baazizi et al., DBPL '17).

Counting types decorate the inferred type with **cardinalities**: how many
values matched each union member, how many records carried each field, how
many elements each array position contributed.  The result answers
questions a plain type cannot — "is this field rare or common?", "which
variant dominates?" — at a modest size overhead (E5 measures it).

The counted algebra mirrors :mod:`repro.types.terms`:

- ``CAtom(tag, count)``
- ``CArr(item, count, element_count)``
- ``CRec(fields, count)`` with per-field presence counts
- ``CUnion(members)`` where every member carries its own count

Merging adds counts; the underlying plain type of a merge equals the plain
merge of the underlying types (a property test pins this commuting square).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Tuple

from repro.errors import InferenceError
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.types import Equivalence, Type, union
from repro.types.terms import (
    ArrType,
    AtomType,
    FieldType,
    RecType,
)


class CType:
    """Base class of counted type terms."""

    __slots__ = ()

    count: int

    def plain(self) -> Type:
        """Strip counts, producing a term of the plain algebra."""
        raise NotImplementedError

    def size(self) -> int:
        """AST size including one node per counter (the overhead measure)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CAtom(CType):
    tag: str
    count: int

    def plain(self) -> Type:
        return AtomType(self.tag)

    def size(self) -> int:
        return 2  # the atom + its counter

    def __str__(self) -> str:
        return f"{self.tag.capitalize()}({self.count})"


@dataclass(frozen=True)
class CArr(CType):
    item: "CUnion"
    count: int
    element_count: int

    def plain(self) -> Type:
        return ArrType(self.item.plain())

    def size(self) -> int:
        return 3 + self.item.size()

    def __str__(self) -> str:
        return f"[{self.item}]({self.count}x{self.element_count})"


@dataclass(frozen=True)
class CField(CType):
    name: str
    type: "CUnion"
    count: int  # how many parent records carry this field

    def plain(self) -> FieldType:
        # required relative to the parent is decided by CRec.plain().
        raise NotImplementedError("CField.plain is context-dependent")

    def size(self) -> int:
        return 2 + self.type.size()

    def __str__(self) -> str:
        return f"{self.name}({self.count}): {self.type}"


@dataclass(frozen=True)
class CRec(CType):
    fields: Tuple[CField, ...]
    count: int

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if names != sorted(names):
            object.__setattr__(
                self, "fields", tuple(sorted(self.fields, key=lambda f: f.name))
            )

    def plain(self) -> Type:
        return RecType(
            tuple(
                FieldType(f.name, f.type.plain(), required=f.count == self.count)
                for f in self.fields
            )
        )

    def size(self) -> int:
        return 2 + sum(f.size() for f in self.fields)

    def field_map(self) -> dict[str, CField]:
        return {f.name: f for f in self.fields}

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"{{{inner}}}({self.count})"


@dataclass(frozen=True)
class CUnion(CType):
    """A counted union: zero or more counted members (zero = Bot)."""

    members: Tuple[CType, ...]

    @property
    def count(self) -> int:  # type: ignore[override]
        return sum(m.count for m in self.members)

    def plain(self) -> Type:
        return union(m.plain() for m in self.members)

    def size(self) -> int:
        if not self.members:
            return 1
        return sum(m.size() for m in self.members)

    def __str__(self) -> str:
        if not self.members:
            return "Bot"
        return " + ".join(str(m) for m in self.members)


# ---------------------------------------------------------------------------
# map phase
# ---------------------------------------------------------------------------


def counted_type_of(value: Any, equivalence: Equivalence = Equivalence.KIND) -> CUnion:
    """Type a single value with all counters at 1.

    ``equivalence`` controls how array *elements* fuse (the only place the
    map phase already merges); it must match the reduce-phase parameter.
    """
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return CUnion((CAtom("null", 1),))
    if kind is JsonKind.BOOLEAN:
        return CUnion((CAtom("bool", 1),))
    if kind is JsonKind.NUMBER:
        return CUnion((CAtom("int" if is_integer_value(value) else "flt", 1),))
    if kind is JsonKind.STRING:
        return CUnion((CAtom("str", 1),))
    if kind is JsonKind.ARRAY:
        items = merge_counted(
            (counted_type_of(v, equivalence) for v in value), equivalence, _empty_ok=True
        )
        return CUnion((CArr(items, 1, len(value)),))
    fields = tuple(
        CField(name, counted_type_of(v, equivalence), 1) for name, v in value.items()
    )
    return CUnion((CRec(fields, 1),))


# ---------------------------------------------------------------------------
# reduce phase
# ---------------------------------------------------------------------------


def merge_counted(
    types: Iterable[CUnion],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    _empty_ok: bool = False,
) -> CUnion:
    """Merge counted unions; counts add within each fused class."""
    members: list[CType] = []
    for t in types:
        members.extend(t.members)
    if not members:
        if _empty_ok:
            return CUnion(())
        return CUnion(())

    classes: dict[Hashable, list[CType]] = {}
    order: list[Hashable] = []
    for member in members:
        key = _class_key(member, equivalence)
        if key not in classes:
            classes[key] = []
            order.append(key)
        classes[key].append(member)

    fused = tuple(_fuse(classes[key], equivalence) for key in order)
    return CUnion(fused)


def _class_key(t: CType, equivalence: Equivalence) -> Hashable:
    if isinstance(t, CRec):
        if equivalence is Equivalence.KIND:
            return ("rec",)
        return ("rec", frozenset(f.name for f in t.fields))
    if isinstance(t, CArr):
        return ("arr",)
    if isinstance(t, CAtom):
        if equivalence is Equivalence.KIND:
            kind = "number" if t.tag in ("int", "flt", "num") else t.tag
            return ("atom", kind)
        return ("atom", t.tag)
    raise InferenceError(f"unexpected counted member {t!r}")  # pragma: no cover


def _fuse(members: list[CType], equivalence: Equivalence) -> CType:
    first = members[0]
    if isinstance(first, CAtom):
        tags = {m.tag for m in members}  # type: ignore[union-attr]
        total = sum(m.count for m in members)
        tag = first.tag if len(tags) == 1 else "num"
        return CAtom(tag, total)
    if isinstance(first, CArr):
        item = merge_counted(
            (m.item for m in members), equivalence, _empty_ok=True  # type: ignore[union-attr]
        )
        return CArr(
            item,
            sum(m.count for m in members),
            sum(m.element_count for m in members),  # type: ignore[union-attr]
        )
    if isinstance(first, CRec):
        by_name: dict[str, list[CField]] = {}
        for rec in members:
            for f in rec.fields:  # type: ignore[union-attr]
                by_name.setdefault(f.name, []).append(f)
        fields = tuple(
            CField(
                name,
                merge_counted((f.type for f in occurrences), equivalence, _empty_ok=True),
                sum(f.count for f in occurrences),
            )
            for name, occurrences in by_name.items()
        )
        return CRec(fields, sum(m.count for m in members))
    raise InferenceError(f"unexpected counted member {first!r}")  # pragma: no cover


def infer_counted(
    documents: Iterable[Any], equivalence: Equivalence = Equivalence.KIND
) -> CUnion:
    """Full counting-types inference over a collection.

    Folds through the engine's
    :class:`~repro.inference.engine.CountingAccumulator`, so the stream
    is never materialized and state stays O(fused schema).
    """
    from repro.inference.engine import CountingAccumulator

    accumulator = CountingAccumulator(equivalence)
    for document in documents:
        accumulator.add(document)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a counted schema from an empty collection")
    return accumulator.result()


def field_presence_ratios(counted: CUnion) -> dict[str, float]:
    """Top-level record field presence ratios (the headline statistic)."""
    out: dict[str, float] = {}
    for member in counted.members:
        if isinstance(member, CRec) and member.count:
            for f in member.fields:
                out[f.name] = f.count / member.count
    return out
