"""Counting types (Baazizi et al., DBPL '17).

Counting types decorate the inferred type with **cardinalities**: how many
values matched each union member, how many records carried each field, how
many elements each array position contributed.  The result answers
questions a plain type cannot — "is this field rare or common?", "which
variant dominates?" — at a modest size overhead (E5 measures it).

The counted algebra mirrors :mod:`repro.types.terms`:

- ``CAtom(tag, count)``
- ``CArr(item, count, element_count)``
- ``CRec(fields, count)`` with per-field presence counts
- ``CUnion(members)`` where every member carries its own count

Merging adds counts; the underlying plain type of a merge equals the plain
merge of the underlying types (a property test pins this commuting square).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional, Tuple

from repro.errors import InferenceError
from repro.jsonvalue.events import JsonEventType, iter_events
from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.types import Equivalence, Type, union
from repro.types.build import (
    _BYTES_AFTER_SCAN,
    _BYTES_HIGH_BYTE,
    _BYTES_KEY_SCAN,
    _BYTES_NUMBER_BOUNDARY,
    _BYTES_UTF8_RUN,
    _BYTES_VALUE_SCAN,
    _BYTES_WS_RUN,
    _PHASE_AFTER,
    _PHASE_KEY,
    _PHASE_KEY_OR_CLOSE,
    _PHASE_VALUE,
    _PHASE_VALUE_OR_CLOSE,
)
from repro.types.terms import (
    ArrType,
    AtomType,
    FieldType,
    RecType,
)


class CType:
    """Base class of counted type terms."""

    __slots__ = ()

    count: int

    def plain(self) -> Type:
        """Strip counts, producing a term of the plain algebra."""
        raise NotImplementedError

    def size(self) -> int:
        """AST size including one node per counter (the overhead measure)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CAtom(CType):
    tag: str
    count: int

    def plain(self) -> Type:
        return AtomType(self.tag)

    def size(self) -> int:
        return 2  # the atom + its counter

    def __str__(self) -> str:
        return f"{self.tag.capitalize()}({self.count})"


@dataclass(frozen=True)
class CArr(CType):
    item: "CUnion"
    count: int
    element_count: int

    def plain(self) -> Type:
        return ArrType(self.item.plain())

    def size(self) -> int:
        return 3 + self.item.size()

    def __str__(self) -> str:
        return f"[{self.item}]({self.count}x{self.element_count})"


@dataclass(frozen=True)
class CField(CType):
    name: str
    type: "CUnion"
    count: int  # how many parent records carry this field

    def plain(self) -> FieldType:
        # required relative to the parent is decided by CRec.plain().
        raise NotImplementedError("CField.plain is context-dependent")

    def size(self) -> int:
        return 2 + self.type.size()

    def __str__(self) -> str:
        return f"{self.name}({self.count}): {self.type}"


@dataclass(frozen=True)
class CRec(CType):
    fields: Tuple[CField, ...]
    count: int

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if names != sorted(names):
            object.__setattr__(
                self, "fields", tuple(sorted(self.fields, key=lambda f: f.name))
            )

    def plain(self) -> Type:
        return RecType(
            tuple(
                FieldType(f.name, f.type.plain(), required=f.count == self.count)
                for f in self.fields
            )
        )

    def size(self) -> int:
        return 2 + sum(f.size() for f in self.fields)

    def field_map(self) -> dict[str, CField]:
        return {f.name: f for f in self.fields}

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in self.fields)
        return f"{{{inner}}}({self.count})"


@dataclass(frozen=True)
class CUnion(CType):
    """A counted union: zero or more counted members (zero = Bot)."""

    members: Tuple[CType, ...]

    @property
    def count(self) -> int:  # type: ignore[override]
        return sum(m.count for m in self.members)

    def plain(self) -> Type:
        return union(m.plain() for m in self.members)

    def size(self) -> int:
        if not self.members:
            return 1
        return sum(m.size() for m in self.members)

    def __str__(self) -> str:
        if not self.members:
            return "Bot"
        return " + ".join(str(m) for m in self.members)


# ---------------------------------------------------------------------------
# map phase
# ---------------------------------------------------------------------------


def _counted_scalar(value: Any, kind: JsonKind) -> CUnion:
    if kind is JsonKind.NULL:
        return CUnion((CAtom("null", 1),))
    if kind is JsonKind.BOOLEAN:
        return CUnion((CAtom("bool", 1),))
    if kind is JsonKind.NUMBER:
        return CUnion((CAtom("int" if is_integer_value(value) else "flt", 1),))
    return CUnion((CAtom("str", 1),))


def counted_type_of(value: Any, equivalence: Equivalence = Equivalence.KIND) -> CUnion:
    """Type a single value with all counters at 1.

    ``equivalence`` controls how array *elements* fuse (the only place the
    map phase already merges); it must match the reduce-phase parameter.

    Like the plain fused encoder (:class:`repro.types.build.TypeEncoder`),
    the traversal uses an explicit frame stack, so deeply nested
    documents type without hitting the recursion limit.
    """
    kind = kind_of(value)
    if kind not in (JsonKind.ARRAY, JsonKind.OBJECT):
        return _counted_scalar(value, kind)
    # Frames: [is_object, iterator, parts, pending name, element count].
    # Object parts collect CField; array parts collect element CUnions.
    stack: list[list] = [_counted_open(value, kind)]
    result: CUnion | None = None
    while stack:
        frame = stack[-1]
        parts = frame[2]
        pushed = False
        if frame[0]:
            for name, v in frame[1]:
                ckind = kind_of(v)
                if ckind in (JsonKind.ARRAY, JsonKind.OBJECT):
                    frame[3] = name
                    stack.append(_counted_open(v, ckind))
                    pushed = True
                    break
                parts.append(CField(name, _counted_scalar(v, ckind), 1))
            if pushed:
                continue
            done = CUnion((CRec(tuple(parts), 1),))
        else:
            for v in frame[1]:
                ckind = kind_of(v)
                if ckind in (JsonKind.ARRAY, JsonKind.OBJECT):
                    stack.append(_counted_open(v, ckind))
                    pushed = True
                    break
                parts.append(_counted_scalar(v, ckind))
            if pushed:
                continue
            if len(parts) == 1:
                # Merging a singleton union deep-rebuilds an equal
                # structure (counts sum trivially, field/member order is
                # already canonical) — skip it, keeping single-element
                # arrays O(depth) instead of O(depth²).
                items = parts[0]
            else:
                items = merge_counted(parts, equivalence, _empty_ok=True)
            done = CUnion((CArr(items, 1, frame[4]),))
        stack.pop()
        if stack:
            parent = stack[-1]
            if parent[0]:
                parent[2].append(CField(parent[3], done, 1))
                parent[3] = None
            else:
                parent[2].append(done)
        else:
            result = done
    assert result is not None
    return result


def _counted_open(value: Any, kind: JsonKind) -> list:
    if kind is JsonKind.OBJECT:
        return [True, iter(value.items()), [], None, 0]
    return [False, iter(value), [], None, len(value)]


def _counted_scalar_value(value: Any) -> CUnion:
    """Counted atom for an event-stream scalar (exact-type dispatch)."""
    if value is None:
        return CUnion((CAtom("null", 1),))
    cls = value.__class__
    if cls is bool:
        return CUnion((CAtom("bool", 1),))
    if cls is int:
        return CUnion((CAtom("int", 1),))
    if cls is float:
        return CUnion((CAtom("flt", 1),))
    if cls is str:
        return CUnion((CAtom("str", 1),))
    return _counted_scalar(value, kind_of(value))  # scalar subclasses


def _close_counted(frame: list, equivalence: Equivalence) -> CUnion:
    """Resolve one finished container frame to its counted union."""
    parts = frame[1]
    if frame[0]:
        if len({f.name for f in parts}) != len(parts):
            # Duplicate keys: last wins, matching the plain text path and
            # the DOM parser's default policy.
            by_name = {f.name: f for f in parts}
            parts = list(by_name.values())
        return CUnion((CRec(tuple(parts), 1),))
    if len(parts) == 1:
        items = parts[0]  # singleton-merge skip, as in counted_type_of
    else:
        items = merge_counted(parts, equivalence, _empty_ok=True)
    return CUnion((CArr(items, 1, len(parts)),))


def counted_type_of_text(
    text: str,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    max_depth: int = 512,
) -> CUnion:
    """Counted type of one JSON text, straight from the event stream.

    The counting analogue of the fused text→type pipeline: no DOM is
    materialised, containers live as list frames holding counted parts.
    Structurally equal to ``counted_type_of(parse(text), equivalence)``
    (pinned by the conformance matrix); malformed text raises the event
    parser's errors.
    """
    # Frames: [is_object, parts, pending field name].
    stack: list[list] = []
    result: CUnion | None = None
    for event in iter_events(text, max_depth=max_depth):
        etype = event.type
        if etype is JsonEventType.KEY:
            stack[-1][2] = event.value
        elif etype is JsonEventType.VALUE:
            done = _counted_scalar_value(event.value)
            if stack:
                frame = stack[-1]
                if frame[0]:
                    frame[1].append(CField(frame[2], done, 1))
                    frame[2] = None
                else:
                    frame[1].append(done)
            else:
                result = done
        elif etype is JsonEventType.START_OBJECT:
            stack.append([True, [], None])
        elif etype is JsonEventType.START_ARRAY:
            stack.append([False, [], None])
        else:  # END_OBJECT / END_ARRAY
            done = _close_counted(stack.pop(), equivalence)
            if stack:
                frame = stack[-1]
                if frame[0]:
                    frame[1].append(CField(frame[2], done, 1))
                    frame[2] = None
                else:
                    frame[1].append(done)
            else:
                result = done
    assert result is not None  # iter_events yields exactly one document
    return result


def _delegate_counted(
    data, start: int, end: int, equivalence: Equivalence, max_depth: int
) -> CUnion:
    """Decode the document range and re-run the counting text machine.

    The bytes scan delegates only when the range cannot scan as valid
    JSON (or hits a shape the byte patterns under-approximate, like an
    escaped key): the decode raises the exact ``UnicodeDecodeError``
    the text pipeline's up-front decode would, and on decodable input
    :func:`counted_type_of_text` raises the parser-exact error or
    returns the correct counted type.
    """
    return counted_type_of_text(
        bytes(data[start:end]).decode("utf-8"), equivalence, max_depth=max_depth
    )


def counted_type_of_bytes(
    data,
    start: int = 0,
    end: Optional[int] = None,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    max_depth: int = 512,
) -> CUnion:
    """Counted type of one JSON document held as UTF-8 bytes.

    The counting algebra's entry point for the bytes pipeline (mmap
    ranges, shared-memory views).  A per-token regex scan over the raw
    bytes — the same master patterns as the plain bytes machine
    (:meth:`repro.types.build.EventTypeEncoder.encode_bytes`), so the
    happy path never decodes string content; object keys decode one
    slice each, and UTF-8 validity is checked lazily once per document.
    Structurally equal to decode + :func:`counted_type_of_text`
    (pinned by the bytes-scan fuzz differential), with the exact error
    on malformed input via delegation to the text machine.
    """
    if end is None:
        end = len(data)
    value_scan = _BYTES_VALUE_SCAN.match
    key_scan = _BYTES_KEY_SCAN.match
    after_scan = _BYTES_AFTER_SCAN.match
    ws_run = _BYTES_WS_RUN.match
    pos = start
    length = end
    # Frames: [is_object, parts, pending field name] — the same layout
    # (and the same _close_counted) as counted_type_of_text's frames.
    stack: list[list] = []
    phase = _PHASE_VALUE
    result: CUnion | None = None

    while True:
        if phase == _PHASE_AFTER:
            m = after_scan(data, pos, length)
            if m is None:
                ws_end = ws_run(data, pos, length).end()
                if ws_end >= length and not stack:
                    assert result is not None
                    # Lazy UTF-8 validity, once per document (see
                    # encode_bytes): pure ASCII returns straight away.
                    if _BYTES_HIGH_BYTE.search(data, start, length) is None:
                        return result
                    run = _BYTES_UTF8_RUN.match(data, start, length)
                    if run.end() == length:
                        return result
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                # EOF inside a container, or trailing garbage.
                return _delegate_counted(data, start, length, equivalence, max_depth)
            mend = m.end()
            ch = data[mend - 1]
            if not stack:
                # Trailing data after the document.
                return _delegate_counted(data, start, length, equivalence, max_depth)
            frame = stack[-1]
            if ch == 0x2C:  # ","
                pos = mend
                phase = _PHASE_KEY if frame[0] else _PHASE_VALUE
                continue
            # "}" or "]": must close the innermost container's kind.
            if (ch == 0x7D) != frame[0]:
                return _delegate_counted(data, start, length, equivalence, max_depth)
            pos = mend
            done = _close_counted(stack.pop(), equivalence)
        elif phase == _PHASE_KEY or phase == _PHASE_KEY_OR_CLOSE:
            m = key_scan(data, pos, length)
            if m is None:
                # Malformed key, missing colon, EOF, garbage.
                return _delegate_counted(data, start, length, equivalence, max_depth)
            mend = m.end()
            if m.lastindex == 2:  # "}"
                if phase == _PHASE_KEY:
                    # A comma promised another member.
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                pos = mend
                done = _close_counted(stack.pop(), equivalence)
                phase = _PHASE_AFTER
            else:
                raw = m.group(1)
                if b"\\" in raw:
                    # Escaped key: the text machine resolves the escape
                    # (and the duplicate-key policy) exactly.
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                try:
                    stack[-1][2] = raw.decode("utf-8")
                except UnicodeDecodeError:
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                pos = mend
                phase = _PHASE_VALUE
                continue
        else:  # _PHASE_VALUE / _PHASE_VALUE_OR_CLOSE: one token
            m = value_scan(data, pos, length)
            if m is None:
                # Malformed token, malformed UTF-8, EOF, or garbage.
                return _delegate_counted(data, start, length, equivalence, max_depth)
            idx = m.lastindex
            mend = m.end()
            if idx == 1:  # string (escapes included): content never matters
                done = CUnion((CAtom("str", 1),))
            elif idx == 2:  # number
                if mend < length and data[mend] in _BYTES_NUMBER_BOUNDARY:
                    # Maximal match may hide a malformed literal ("01",
                    # "1.e5") — delegate for the exact outcome.
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                tail_start, tail_end = m.span(3)
                done = CUnion(
                    (CAtom("int" if tail_start == tail_end else "flt", 1),)
                )
            elif idx == 4:  # true / false
                done = CUnion((CAtom("bool", 1),))
            elif idx == 5:  # null
                done = CUnion((CAtom("null", 1),))
            elif idx == 6:  # empty array
                if len(stack) >= max_depth:
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                done = CUnion((CArr(CUnion(()), 1, 0),))
            elif idx == 7:  # empty object
                if len(stack) >= max_depth:
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                done = CUnion((CRec((), 1),))
            elif idx == 8:  # "{"
                if len(stack) >= max_depth:
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                pos = mend
                stack.append([True, [], None])
                phase = _PHASE_KEY_OR_CLOSE
                continue
            elif idx == 9:  # "["
                if len(stack) >= max_depth:
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                pos = mend
                stack.append([False, [], None])
                phase = _PHASE_VALUE_OR_CLOSE
                continue
            else:  # idx == 10: "]" closing a just-opened array
                if phase != _PHASE_VALUE_OR_CLOSE:
                    return _delegate_counted(
                        data, start, length, equivalence, max_depth
                    )
                done = _close_counted(stack.pop(), equivalence)
            pos = mend
            phase = _PHASE_AFTER
        # Attach the completed counted union to the parent (or finish).
        if stack:
            frame = stack[-1]
            if frame[0]:
                frame[1].append(CField(frame[2], done, 1))
                frame[2] = None
            else:
                frame[1].append(done)
        else:
            result = done


# ---------------------------------------------------------------------------
# reduce phase
# ---------------------------------------------------------------------------


def merge_counted(
    types: Iterable[CUnion],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    _empty_ok: bool = False,
) -> CUnion:
    """Merge counted unions; counts add within each fused class."""
    members: list[CType] = []
    for t in types:
        members.extend(t.members)
    if not members:
        if _empty_ok:
            return CUnion(())
        return CUnion(())

    classes: dict[Hashable, list[CType]] = {}
    order: list[Hashable] = []
    for member in members:
        key = _class_key(member, equivalence)
        if key not in classes:
            classes[key] = []
            order.append(key)
        classes[key].append(member)

    fused = tuple(_fuse(classes[key], equivalence) for key in order)
    return CUnion(fused)


def _class_key(t: CType, equivalence: Equivalence) -> Hashable:
    if isinstance(t, CRec):
        if equivalence is Equivalence.KIND:
            return ("rec",)
        return ("rec", frozenset(f.name for f in t.fields))
    if isinstance(t, CArr):
        return ("arr",)
    if isinstance(t, CAtom):
        if equivalence is Equivalence.KIND:
            kind = "number" if t.tag in ("int", "flt", "num") else t.tag
            return ("atom", kind)
        return ("atom", t.tag)
    raise InferenceError(f"unexpected counted member {t!r}")  # pragma: no cover


def _fuse(members: list[CType], equivalence: Equivalence) -> CType:
    first = members[0]
    if isinstance(first, CAtom):
        tags = {m.tag for m in members}  # type: ignore[union-attr]
        total = sum(m.count for m in members)
        tag = first.tag if len(tags) == 1 else "num"
        return CAtom(tag, total)
    if isinstance(first, CArr):
        item = merge_counted(
            (m.item for m in members), equivalence, _empty_ok=True  # type: ignore[union-attr]
        )
        return CArr(
            item,
            sum(m.count for m in members),
            sum(m.element_count for m in members),  # type: ignore[union-attr]
        )
    if isinstance(first, CRec):
        by_name: dict[str, list[CField]] = {}
        for rec in members:
            for f in rec.fields:  # type: ignore[union-attr]
                by_name.setdefault(f.name, []).append(f)
        fields = tuple(
            CField(
                name,
                merge_counted((f.type for f in occurrences), equivalence, _empty_ok=True),
                sum(f.count for f in occurrences),
            )
            for name, occurrences in by_name.items()
        )
        return CRec(fields, sum(m.count for m in members))
    raise InferenceError(f"unexpected counted member {first!r}")  # pragma: no cover


def infer_counted(
    documents: Iterable[Any], equivalence: Equivalence = Equivalence.KIND
) -> CUnion:
    """Full counting-types inference over a collection.

    Folds through the engine's
    :class:`~repro.inference.engine.CountingAccumulator`, so the stream
    is never materialized and state stays O(fused schema).
    """
    from repro.inference.engine import CountingAccumulator

    accumulator = CountingAccumulator(equivalence)
    for document in documents:
        accumulator.add(document)
    if accumulator.is_empty():
        raise InferenceError("cannot infer a counted schema from an empty collection")
    return accumulator.result()


def infer_counted_streaming(
    lines: Iterable[str], equivalence: Equivalence = Equivalence.KIND
) -> CUnion:
    """Counting-types inference over NDJSON lines without building DOMs.

    The text-path twin of :func:`infer_counted`: each line's counted type
    comes from :func:`counted_type_of_text` and folds through the
    engine's :class:`~repro.inference.engine.CountingAccumulator`.
    Blank lines are skipped.
    """
    from repro.inference.engine import CountingAccumulator

    accumulator = CountingAccumulator(equivalence)
    for line in lines:
        if not line or line.isspace():
            continue
        accumulator.add_counted(counted_type_of_text(line, equivalence))
    if accumulator.is_empty():
        raise InferenceError("cannot infer a counted schema from an empty stream")
    return accumulator.result()


def infer_counted_compressed(
    source,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    format: Optional[str] = None,
) -> CUnion:
    """Counting-types inference straight off a gzip/zstd NDJSON corpus.

    The compressed twin of :func:`infer_counted_streaming`: the chunked
    decompression reader yields line-aligned byte blocks and every line
    span runs the bytes-native counted scan
    (:func:`counted_type_of_bytes`) — no decompressed corpus, no
    per-line ``str`` decode.  Blank lines are skipped with the bytes
    fold's exact ``str.isspace`` parity.
    """
    from repro.datasets.compressed import iter_block_line_spans, iter_line_blocks
    from repro.inference.engine import CountingAccumulator, _EXTRA_SPACE_BYTES

    accumulator = CountingAccumulator(equivalence)
    ws_run = _BYTES_WS_RUN.match
    for block in iter_line_blocks(source, format=format):
        for start, end in iter_block_line_spans(block):
            if end <= start:
                continue
            ws_end = ws_run(block, start, end).end()
            if ws_end >= end:
                continue
            if block[ws_end] >= 0x80 or block[ws_end] in _EXTRA_SPACE_BYTES:
                if block[start:end].decode("utf-8").isspace():
                    continue
            accumulator.add_counted(
                counted_type_of_bytes(block, start, end, equivalence)
            )
    if accumulator.is_empty():
        raise InferenceError("cannot infer a counted schema from an empty stream")
    return accumulator.result()


def field_presence_ratios(counted: CUnion) -> dict[str, float]:
    """Top-level record field presence ratios (the headline statistic)."""
    out: dict[str, float] = {}
    for member in counted.members:
        if isinstance(member, CRec) and member.count:
            for f in member.fields:
                out[f.name] = f.count / member.count
    return out
