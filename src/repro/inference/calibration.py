"""Persisted per-machine scheduler calibration.

:func:`repro.inference.distributed.plan_schedule` models a parallel run
as *per-worker startup* plus the fold split across CPUs plus *corpus
shipping*.  The startup and shipping constants are machine properties,
not corpus properties — so instead of re-sampling them per process or
falling back to hard-coded defaults, they are measured **once per
machine** and cached in a small JSON profile:

- ``$REPRO_SCHED_PROFILE`` if set, else
- ``$XDG_CACHE_HOME/repro/sched.json``, else ``~/.cache/repro/sched.json``.

Resolution order for each constant (first hit wins):

1. the env overrides ``REPRO_WORKER_STARTUP_SECONDS`` /
   ``REPRO_SHIP_BYTES_PER_SECOND`` (read on every plan, so tests and
   operators can pin values without touching the profile);
2. the persisted profile;
3. a fresh measurement, persisted best-effort (an unwritable cache
   directory degrades to measuring once per process);
4. the built-in defaults, when measurement is disabled or fails.

Measurement is deliberately cheap and one-shot: worker startup times a
no-op ``multiprocessing.Process`` spawn+join (the dominant fork/exec +
import cost the pool pays per worker), and shipping times ``pickle``
round-tripping a few-MiB bytes payload (the serialize half of a batch
pickle crossing the pipe).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

DEFAULT_WORKER_STARTUP_SECONDS = 0.08
DEFAULT_SHIP_BYTES_PER_SECOND = 150e6
# Bytes-rate constants for the subtree (intra-document) mode, where the
# timed per-line sample is useless: a corpus of few huge lines would pay
# whole-document scans just to decide the plan.  ``scan`` is the serial
# bytes-native typing rate; ``split`` the structural splitter's carving
# rate (speculative separator searches — near memory bandwidth).
DEFAULT_SCAN_BYTES_PER_SECOND = 80e6
DEFAULT_SPLIT_BYTES_PER_SECOND = 2e9
# Warm line-shape-cache speedup: how much faster a cached line folds
# than a full structural scan (feeds the hit-rate-adjusted cost model).
DEFAULT_CACHE_HIT_SPEEDUP = 4.0
# Decompression output rate for the compressed-corpus mode
# (zlib/zstd single-stream decode in decompressed bytes per second) —
# prices the I/O-bound stage the member-parallel fold overlaps.
DEFAULT_DECOMPRESS_BYTES_PER_SECOND = 250e6

_PROFILE_ENV = "REPRO_SCHED_PROFILE"
_STARTUP_ENV = "REPRO_WORKER_STARTUP_SECONDS"
_SHIP_ENV = "REPRO_SHIP_BYTES_PER_SECOND"
_SCAN_ENV = "REPRO_SCAN_BYTES_PER_SECOND"
_SPLIT_ENV = "REPRO_SPLIT_BYTES_PER_SECOND"
_CACHE_SPEEDUP_ENV = "REPRO_CACHE_HIT_SPEEDUP"
_DECOMPRESS_ENV = "REPRO_DECOMPRESS_BYTES_PER_SECOND"

_SHIP_PROBE_BYTES = 4 << 20


@dataclass(frozen=True)
class SchedCalibration:
    """The scheduler's machine constants and where they came from.

    ``source`` is ``"measured"``, ``"profile"``, or ``"default"`` —
    benchmarks and the CLI surface it so a run can prove it consumed
    the persisted profile rather than a fallback.
    """

    worker_startup_seconds: float
    ship_bytes_per_second: float
    source: str = "default"
    scan_bytes_per_second: float = DEFAULT_SCAN_BYTES_PER_SECOND
    split_bytes_per_second: float = DEFAULT_SPLIT_BYTES_PER_SECOND
    cache_hit_speedup: float = DEFAULT_CACHE_HIT_SPEEDUP
    decompress_bytes_per_second: float = DEFAULT_DECOMPRESS_BYTES_PER_SECOND


_DEFAULT = SchedCalibration(
    DEFAULT_WORKER_STARTUP_SECONDS, DEFAULT_SHIP_BYTES_PER_SECOND, "default"
)

# Process-level cache, keyed by resolved profile path so tests pointing
# REPRO_SCHED_PROFILE at fresh files are isolated from each other.
_LOADED: dict = {}


def profile_path() -> Path:
    """Where this machine's calibration profile lives."""
    override = os.environ.get(_PROFILE_ENV)
    if override:
        return Path(override)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "sched.json"


def _noop() -> None:  # pragma: no cover - runs in the probe child
    pass


def measure_calibration() -> SchedCalibration:
    """Measure the machine constants (one no-op worker, one pickle probe)."""
    import multiprocessing

    start = time.perf_counter()
    process = multiprocessing.Process(target=_noop)
    process.start()
    process.join()
    startup = max(time.perf_counter() - start, 1e-4)

    payload = b"\x00" * _SHIP_PROBE_BYTES
    start = time.perf_counter()
    pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    elapsed = max(time.perf_counter() - start, 1e-9)
    ship_rate = _SHIP_PROBE_BYTES / elapsed

    return SchedCalibration(
        worker_startup_seconds=round(startup, 5),
        ship_bytes_per_second=round(ship_rate, 1),
        source="measured",
    )


def _read_profile(path: Path) -> Optional[SchedCalibration]:
    """Parse a profile file; ``None`` on missing or malformed data."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
        startup = float(raw["worker_startup_seconds"])
        ship = float(raw["ship_bytes_per_second"])
        # Newer constants default when absent so profiles written by
        # older versions keep loading.
        scan = float(raw.get("scan_bytes_per_second", DEFAULT_SCAN_BYTES_PER_SECOND))
        split = float(
            raw.get("split_bytes_per_second", DEFAULT_SPLIT_BYTES_PER_SECOND)
        )
        speedup = float(raw.get("cache_hit_speedup", DEFAULT_CACHE_HIT_SPEEDUP))
        decompress = float(
            raw.get(
                "decompress_bytes_per_second", DEFAULT_DECOMPRESS_BYTES_PER_SECOND
            )
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if not (
        startup >= 0
        and ship > 0
        and scan > 0
        and split > 0
        and speedup >= 1
        and decompress > 0
    ):
        return None
    return SchedCalibration(
        startup, ship, "profile", scan, split, speedup, decompress
    )


def save_calibration(calibration: SchedCalibration, path: Path) -> bool:
    """Persist a measurement; returns False when the path is unwritable."""
    record = asdict(calibration)
    record["source"] = "measured"
    record["measured_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    except OSError:
        return False
    return True


def load_calibration(*, measure_if_missing: bool = True) -> SchedCalibration:
    """The machine constants: profile if present, else measure-and-persist.

    Cached per process (per profile path).  Malformed profiles fall back
    to the defaults without re-measuring — a hand-edited file should be
    fixed, not silently overwritten.
    """
    path = profile_path()
    key = str(path)
    cached = _LOADED.get(key)
    if cached is not None:
        return cached
    calibration: Optional[SchedCalibration] = None
    if path.exists():
        calibration = _read_profile(path)
        if calibration is None:
            calibration = _DEFAULT
    elif measure_if_missing:
        try:
            calibration = measure_calibration()
        except Exception:  # pragma: no cover - exotic platforms
            calibration = None
        else:
            save_calibration(calibration, path)
    if calibration is None:
        calibration = _DEFAULT
    _LOADED[key] = calibration
    return calibration


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def worker_startup_seconds() -> float:
    """Per-worker startup cost: env override > profile > measurement."""
    override = _env_float(_STARTUP_ENV)
    if override is not None:
        return override
    return load_calibration().worker_startup_seconds


def ship_bytes_per_second() -> float:
    """Corpus shipping throughput: env override > profile > measurement."""
    override = _env_float(_SHIP_ENV)
    if override is not None:
        return override
    return load_calibration().ship_bytes_per_second


def scan_bytes_per_second() -> float:
    """Serial bytes-native typing throughput (subtree-mode cost model)."""
    override = _env_float(_SCAN_ENV)
    if override is not None:
        return override
    return load_calibration().scan_bytes_per_second


def split_bytes_per_second() -> float:
    """Structural-splitter carving throughput (subtree-mode cost model)."""
    override = _env_float(_SPLIT_ENV)
    if override is not None:
        return override
    return load_calibration().split_bytes_per_second


def cache_hit_speedup() -> float:
    """Warm line-cache speedup over a full structural scan (>= 1)."""
    override = _env_float(_CACHE_SPEEDUP_ENV)
    if override is not None:
        return max(1.0, override)
    return load_calibration().cache_hit_speedup


def decompress_bytes_per_second() -> float:
    """Decompression output rate (compressed-corpus cost model)."""
    override = _env_float(_DECOMPRESS_ENV)
    if override is not None:
        return override
    return load_calibration().decompress_bytes_per_second


def calibration_source() -> str:
    """Provenance of the constants the next plan will use."""
    envs = (
        _STARTUP_ENV,
        _SHIP_ENV,
        _SCAN_ENV,
        _SPLIT_ENV,
        _CACHE_SPEEDUP_ENV,
        _DECOMPRESS_ENV,
    )
    if any(_env_float(name) is not None for name in envs):
        return "env"
    return load_calibration().source
