"""Relational schema generation from nested JSON (DiScala & Abadi, SIGMOD '16).

The tutorial (§4.1): the approach "deal[s] with the problem of
automatically transforming denormalised, nested JSON data into normalised
relational data … by means of a schema generation algorithm that learns
the normalised, relational schema from data.  This approach **ignores the
original structure** of the JSON input dataset and, instead, **depends on
patterns in the attribute data values (functional dependencies)** to guide
its schema generation."

The reproduction implements the three phases of that pipeline:

1. **flatten** — each document becomes one flat row; nested object fields
   turn into dotted attributes, nested arrays of objects are spun off into
   child tables linked by a synthetic ``_parent_id`` (standard shredding);
2. **mine** — exact single-determinant functional dependencies
   ``a -> b`` are mined from the value patterns of the flattened table
   (ignoring, as the paper does, the original nesting);
3. **decompose** — attributes are grouped into entity tables by their
   determinants (transitive closure collapsed), the fact table keeps one
   foreign key per extracted entity, and duplicate entity rows are
   deduplicated.  ``redundancy_reduction`` reports the cell-count saving —
   the paper's headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.errors import InferenceError
from repro.jsonvalue.model import freeze

_MISSING = "␀MISSING"  # sentinel for absent attribute values


@dataclass
class Table:
    """A relational table: named columns and rows of scalar values."""

    name: str
    columns: list[str]
    rows: list[tuple]

    def cell_count(self) -> int:
        return len(self.columns) * len(self.rows)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.columns)}) [{len(self.rows)} rows]"


@dataclass
class FlattenResult:
    """The flat fact table plus shredded child tables."""

    fact: Table
    children: list[Table] = field(default_factory=list)


def flatten(documents: Iterable[Any], *, table_name: str = "root") -> FlattenResult:
    """Shred nested documents into a flat fact table + array child tables."""
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot flatten an empty collection")

    flat_rows: list[dict[str, Any]] = []
    child_rows: dict[str, list[dict[str, Any]]] = {}

    def walk(obj: Any, prefix: str, row: dict[str, Any], doc_id: int) -> None:
        if isinstance(obj, dict):
            for key, value in obj.items():
                name = f"{prefix}.{key}" if prefix else key
                walk(value, name, row, doc_id)
        elif isinstance(obj, list):
            if all(isinstance(v, dict) for v in obj):
                rows = child_rows.setdefault(prefix, [])
                for element in obj:
                    child_row: dict[str, Any] = {"_parent_id": doc_id}
                    walk(element, "", child_row, doc_id)
                    rows.append(child_row)
            else:
                # Scalar/mixed arrays stay in the fact table as frozen blobs.
                row[prefix] = str(freeze(obj))
        else:
            row[prefix] = obj

    for doc_id, doc in enumerate(docs):
        if not isinstance(doc, dict):
            raise InferenceError("relational generation expects object documents")
        row: dict[str, Any] = {"_id": doc_id}
        walk(doc, "", row, doc_id)
        flat_rows.append(row)

    fact = _rows_to_table(table_name, flat_rows)
    children = [
        _rows_to_table(f"{table_name}.{path}", rows) for path, rows in sorted(child_rows.items())
    ]
    return FlattenResult(fact=fact, children=children)


def _rows_to_table(name: str, dict_rows: list[dict[str, Any]]) -> Table:
    columns: list[str] = []
    for row in dict_rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rows = [tuple(row.get(c, _MISSING) for c in columns) for row in dict_rows]
    return Table(name=name, columns=columns, rows=rows)


@dataclass(frozen=True)
class FunctionalDependency:
    determinant: str
    dependent: str

    def __str__(self) -> str:
        return f"{self.determinant} -> {self.dependent}"


def mine_fds(table: Table, *, min_support: int = 2) -> list[FunctionalDependency]:
    """Mine exact single-attribute FDs ``a -> b`` from value patterns.

    ``a -> b`` holds when every value of ``a`` maps to exactly one value of
    ``b``.  Key-like columns (all values distinct, e.g. ``_id``) are
    excluded as determinants — they determine everything trivially and
    would pull the whole table into one entity.
    """
    n = len(table.rows)
    if n < min_support:
        return []
    column_values: dict[str, list[Any]] = {
        c: [row[i] for row in table.rows] for i, c in enumerate(table.columns)
    }
    fds: list[FunctionalDependency] = []
    for a in table.columns:
        values_a = column_values[a]
        distinct_a = len(set(values_a))
        if distinct_a == n or distinct_a <= 1 or a.startswith("_"):
            continue  # trivial key, constant, or synthetic column
        for b in table.columns:
            if a == b or b.startswith("_"):
                continue
            mapping: dict[Any, Any] = {}
            holds = True
            for va, vb in zip(values_a, column_values[b]):
                if va in mapping:
                    if mapping[va] != vb:
                        holds = False
                        break
                else:
                    mapping[va] = vb
            if holds:
                fds.append(FunctionalDependency(a, b))
    return fds


@dataclass
class Decomposition:
    """The normalised output: fact table + extracted entity tables."""

    fact: Table
    entities: list[Table]
    fds_used: list[FunctionalDependency]

    def table_count(self) -> int:
        return 1 + len(self.entities)

    def total_cells(self) -> int:
        return self.fact.cell_count() + sum(t.cell_count() for t in self.entities)


def decompose(table: Table, fds: Optional[list[FunctionalDependency]] = None) -> Decomposition:
    """Decompose ``table`` into entities along mined FDs (3NF-flavoured)."""
    if fds is None:
        fds = mine_fds(table)

    dependents: dict[str, list[str]] = {}
    for fd in fds:
        dependents.setdefault(fd.determinant, []).append(fd.dependent)

    # Pick determinants greedily by how many columns they explain; a column
    # already absorbed into an entity cannot become a determinant later.
    chosen: list[tuple[str, list[str]]] = []
    absorbed: set[str] = set()
    for det in sorted(dependents, key=lambda d: -len(dependents[d])):
        if det in absorbed:
            continue
        group = [d for d in dependents[det] if d not in absorbed and d != det]
        if not group:
            continue
        chosen.append((det, group))
        absorbed.update(group)

    column_index = {c: i for i, c in enumerate(table.columns)}
    entities: list[Table] = []
    used_fds: list[FunctionalDependency] = []
    for det, group in chosen:
        cols = [det] + sorted(group)
        seen_rows: dict[tuple, None] = {}
        for row in table.rows:
            entity_row = tuple(row[column_index[c]] for c in cols)
            seen_rows.setdefault(entity_row, None)
        entities.append(
            Table(name=f"entity_{det.replace('.', '_')}", columns=cols, rows=list(seen_rows))
        )
        used_fds.extend(FunctionalDependency(det, g) for g in group)

    keep = [c for c in table.columns if c not in absorbed]
    fact_rows = [tuple(row[column_index[c]] for c in keep) for row in table.rows]
    fact = Table(name=table.name, columns=keep, rows=fact_rows)
    return Decomposition(fact=fact, entities=entities, fds_used=used_fds)


@dataclass
class NormalizationReport:
    flattened: FlattenResult
    decomposition: Decomposition
    fds: list[FunctionalDependency]

    @property
    def redundancy_reduction(self) -> float:
        """1 - (cells after / cells before), on the fact table."""
        before = self.flattened.fact.cell_count()
        after = self.decomposition.total_cells()
        if before == 0:
            return 0.0
        return 1.0 - after / before


def normalize(documents: Iterable[Any]) -> NormalizationReport:
    """Full pipeline: flatten → mine FDs → decompose."""
    flattened = flatten(documents)
    fds = mine_fds(flattened.fact)
    decomposition = decompose(flattened.fact, fds)
    return NormalizationReport(flattened=flattened, decomposition=decomposition, fds=fds)
