"""Distributed map/combine/reduce harness for schema inference.

The parametric inference of Baazizi et al. is *distributed by design*:
typing a document is a pure map, and the merge operator is an associative,
commutative monoid, so the reduce can run as a combiner per partition
followed by a merge tree across partitions — exactly the Spark execution
the VLDB J paper evaluates.

Two execution modes share the partitioned dataflow:

- :func:`infer_distributed` — a **deterministic simulator** that executes
  the dataflow on one machine and *accounts* for the distributed costs
  the paper reports:

  - per-partition map + combine work (documents typed, merges performed),
  - the size of every partial type shipped between stages (serialized
    bytes of the printed type — the shuffle volume),
  - the depth of the binary merge tree (number of parallel reduce rounds),
  - the simulated *makespan*: the critical path through the tree,
    charging each stage the maximum cost among its parallel tasks.

- :func:`infer_distributed_parallel` — a **real** ``multiprocessing``
  execution: one :class:`~repro.inference.engine.TypeAccumulator` per
  partition runs in a worker process, the partial types come back over
  the pipe (pickling strips intern marks), and the parent combines them.

Both produce a result bit-identical to the sequential
:func:`repro.inference.parametric.infer_type` (associativity property),
which the tests assert — that equivalence is what makes either execution
a faithful substitute for the cluster.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import InferenceError
from repro.inference.engine import TypeAccumulator, accumulate
from repro.types import Equivalence, Type, merge_interned, type_to_string
from repro.types.build import TypeEncoder


@dataclass
class StageCost:
    """Cost accounting for one stage of the dataflow."""

    name: str
    tasks: int
    max_task_units: int  # critical-path cost of the stage
    total_units: int  # total work across tasks
    shipped_bytes: int  # bytes of partial types leaving the stage


@dataclass
class DistributedRun:
    """Outcome of a simulated distributed inference."""

    result: Type
    partitions: int
    equivalence: Equivalence
    stages: list[StageCost] = field(default_factory=list)

    @property
    def reduce_rounds(self) -> int:
        return sum(1 for s in self.stages if s.name.startswith("reduce"))

    @property
    def makespan_units(self) -> int:
        """Critical path: sum of per-stage parallel maxima."""
        return sum(s.max_task_units for s in self.stages)

    @property
    def total_work_units(self) -> int:
        return sum(s.total_units for s in self.stages)

    @property
    def total_shipped_bytes(self) -> int:
        return sum(s.shipped_bytes for s in self.stages)


def partition(documents: Sequence[Any], partitions: int) -> list[list[Any]]:
    """Round-robin partitioning (deterministic)."""
    if partitions < 1:
        raise InferenceError("need at least one partition")
    buckets: list[list[Any]] = [[] for _ in range(partitions)]
    for i, doc in enumerate(documents):
        buckets[i % partitions].append(doc)
    return [b for b in buckets if b]


def _type_bytes(t: Type) -> int:
    return len(type_to_string(t).encode("utf-8"))


def infer_distributed(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
) -> DistributedRun:
    """Run the simulated distributed inference.

    Dataflow: per-partition ``map`` (type each document) and ``combine``
    (merge within the partition), then a binary tree of ``reduce`` rounds
    across partitions.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)

    run_stages: list[StageCost] = []

    # --- map + combine per partition -----------------------------------
    partials: list[Type] = []
    map_costs: list[int] = []
    shipped = 0
    encoder = TypeEncoder()  # fused map phase, shared across partitions
    for bucket in buckets:
        # One streaming accumulator per partition — the combiner the
        # papers run inside each Spark task, instead of materializing the
        # partition's types in a list.
        accumulator = TypeAccumulator(equivalence)
        units = 0
        for document in bucket:
            t = encoder.encode(document)
            # Cost model: one unit per typed node plus one per merged input.
            units += t.size() + 1
            accumulator.add_type(t)
        combined = accumulator.result()
        partials.append(combined)
        map_costs.append(units)
        shipped += _type_bytes(combined)
    run_stages.append(
        StageCost(
            name="map+combine",
            tasks=len(buckets),
            max_task_units=max(map_costs),
            total_units=sum(map_costs),
            shipped_bytes=shipped,
        )
    )

    # --- binary merge tree ----------------------------------------------
    level = partials
    round_index = 0
    while len(level) > 1:
        round_index += 1
        next_level: list[Type] = []
        costs: list[int] = []
        shipped = 0
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            merged = merge_interned(left, right, equivalence)
            next_level.append(merged)
            costs.append(left.size() + right.size())
            shipped += _type_bytes(merged)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
            shipped += _type_bytes(level[-1])
        run_stages.append(
            StageCost(
                name=f"reduce-{round_index}",
                tasks=len(level) // 2,
                max_task_units=max(costs),
                total_units=sum(costs),
                shipped_bytes=shipped,
            )
        )
        level = next_level

    return DistributedRun(
        result=level[0],
        partitions=len(buckets),
        equivalence=equivalence,
        stages=run_stages,
    )


# ---------------------------------------------------------------------------
# real multiprocessing execution
# ---------------------------------------------------------------------------


@dataclass
class ParallelRun:
    """Outcome of a real multi-process inference."""

    result: Type
    partitions: int
    processes: int
    equivalence: Equivalence
    partition_documents: list[int] = field(default_factory=list)

    @property
    def document_count(self) -> int:
        return sum(self.partition_documents)


def _infer_partition(payload: tuple[list[Any], str]) -> tuple[Type, int]:
    """Worker: fold one partition through an accumulator (picklable I/O)."""
    documents, equivalence_value = payload
    accumulator = accumulate(documents, Equivalence(equivalence_value))
    return accumulator.result(), accumulator.document_count


def infer_distributed_parallel(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
) -> ParallelRun:
    """Run the partitioned inference on real worker processes.

    One :class:`~repro.inference.engine.TypeAccumulator` per partition,
    executed by a ``multiprocessing.Pool``; the parent folds the partial
    types with the same memoized merge the simulator uses.  The result is
    bit-identical to :func:`infer_distributed` and the sequential path.

    ``processes`` defaults to ``min(partitions, cpu_count)``; with one
    partition (or one process and one partition) the pool is skipped.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)
    payloads = [(bucket, equivalence.value) for bucket in buckets]

    if processes is None:
        processes = min(len(buckets), multiprocessing.cpu_count())
    processes = max(1, processes)

    if processes == 1 or len(buckets) == 1:
        partials = [_infer_partition(p) for p in payloads]
        processes = 1
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_partition, payloads)

    combined = TypeAccumulator(equivalence)
    counts: list[int] = []
    for partial_type, count in partials:
        combined.add_type(partial_type)
        counts.append(count)
    return ParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        partition_documents=counts,
    )
