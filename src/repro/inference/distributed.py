"""Distributed map/combine/reduce harness for schema inference.

The parametric inference of Baazizi et al. is *distributed by design*:
typing a document is a pure map, and the merge operator is an associative,
commutative monoid, so the reduce can run as a combiner per partition
followed by a merge tree across partitions — exactly the Spark execution
the VLDB J paper evaluates.

Two execution modes share the partitioned dataflow:

- :func:`infer_distributed` — a **deterministic simulator** that executes
  the dataflow on one machine and *accounts* for the distributed costs
  the paper reports:

  - per-partition map + combine work (documents typed, merges performed),
  - the size of every partial type shipped between stages (serialized
    bytes of the printed type — the shuffle volume),
  - the depth of the binary merge tree (number of parallel reduce rounds),
  - the simulated *makespan*: the critical path through the tree,
    charging each stage the maximum cost among its parallel tasks.

- :func:`infer_distributed_parallel` — a **real** ``multiprocessing``
  execution: one :class:`~repro.inference.engine.TypeAccumulator` per
  partition runs in a worker process, the partial types come back over
  the pipe (pickling strips intern marks), and the parent combines them.

Both produce a result bit-identical to the sequential
:func:`repro.inference.parametric.infer_type` (associativity property),
which the tests assert — that equivalence is what makes either execution
a faithful substitute for the cluster.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import InferenceError
from repro.inference.engine import CountingAccumulator, TypeAccumulator, accumulate
from repro.types import Equivalence, Type, merge_interned, type_to_string
from repro.types.build import TypeEncoder


@dataclass
class StageCost:
    """Cost accounting for one stage of the dataflow."""

    name: str
    tasks: int
    max_task_units: int  # critical-path cost of the stage
    total_units: int  # total work across tasks
    shipped_bytes: int  # bytes of partial types leaving the stage


@dataclass
class DistributedRun:
    """Outcome of a simulated distributed inference."""

    result: Type
    partitions: int
    equivalence: Equivalence
    stages: list[StageCost] = field(default_factory=list)

    @property
    def reduce_rounds(self) -> int:
        return sum(1 for s in self.stages if s.name.startswith("reduce"))

    @property
    def makespan_units(self) -> int:
        """Critical path: sum of per-stage parallel maxima."""
        return sum(s.max_task_units for s in self.stages)

    @property
    def total_work_units(self) -> int:
        return sum(s.total_units for s in self.stages)

    @property
    def total_shipped_bytes(self) -> int:
        return sum(s.shipped_bytes for s in self.stages)


def partition(documents: Sequence[Any], partitions: int) -> list[list[Any]]:
    """Round-robin partitioning (deterministic)."""
    if partitions < 1:
        raise InferenceError("need at least one partition")
    buckets: list[list[Any]] = [[] for _ in range(partitions)]
    for i, doc in enumerate(documents):
        buckets[i % partitions].append(doc)
    return [b for b in buckets if b]


def _type_bytes(t: Type) -> int:
    return len(type_to_string(t).encode("utf-8"))


def infer_distributed(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
) -> DistributedRun:
    """Run the simulated distributed inference.

    Dataflow: per-partition ``map`` (type each document) and ``combine``
    (merge within the partition), then a binary tree of ``reduce`` rounds
    across partitions.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)

    run_stages: list[StageCost] = []

    # --- map + combine per partition -----------------------------------
    partials: list[Type] = []
    map_costs: list[int] = []
    shipped = 0
    encoder = TypeEncoder()  # fused map phase, shared across partitions
    for bucket in buckets:
        # One streaming accumulator per partition — the combiner the
        # papers run inside each Spark task, instead of materializing the
        # partition's types in a list.
        accumulator = TypeAccumulator(equivalence)
        units = 0
        for document in bucket:
            t = encoder.encode(document)
            # Cost model: one unit per typed node plus one per merged input.
            units += t.size() + 1
            accumulator.add_type(t)
        combined = accumulator.result()
        partials.append(combined)
        map_costs.append(units)
        shipped += _type_bytes(combined)
    run_stages.append(
        StageCost(
            name="map+combine",
            tasks=len(buckets),
            max_task_units=max(map_costs),
            total_units=sum(map_costs),
            shipped_bytes=shipped,
        )
    )

    # --- binary merge tree ----------------------------------------------
    level = partials
    round_index = 0
    while len(level) > 1:
        round_index += 1
        next_level: list[Type] = []
        costs: list[int] = []
        shipped = 0
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            merged = merge_interned(left, right, equivalence)
            next_level.append(merged)
            costs.append(left.size() + right.size())
            shipped += _type_bytes(merged)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
            shipped += _type_bytes(level[-1])
        run_stages.append(
            StageCost(
                name=f"reduce-{round_index}",
                tasks=len(level) // 2,
                max_task_units=max(costs),
                total_units=sum(costs),
                shipped_bytes=shipped,
            )
        )
        level = next_level

    return DistributedRun(
        result=level[0],
        partitions=len(buckets),
        equivalence=equivalence,
        stages=run_stages,
    )


# ---------------------------------------------------------------------------
# real multiprocessing execution
# ---------------------------------------------------------------------------


@dataclass
class ParallelRun:
    """Outcome of a real multi-process inference."""

    result: Type
    partitions: int
    processes: int
    equivalence: Equivalence
    partition_documents: list[int] = field(default_factory=list)
    # Set when the run was routed by the adaptive scheduler.
    plan: Optional["SchedulePlan"] = None

    @property
    def document_count(self) -> int:
        return sum(self.partition_documents)


def _infer_partition(payload: tuple[list[Any], str]) -> tuple[Type, int]:
    """Worker: fold one partition through an accumulator (picklable I/O)."""
    documents, equivalence_value = payload
    accumulator = accumulate(documents, Equivalence(equivalence_value))
    return accumulator.result(), accumulator.document_count


def infer_distributed_parallel(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
) -> ParallelRun:
    """Run the partitioned inference on real worker processes.

    One :class:`~repro.inference.engine.TypeAccumulator` per partition,
    executed by a ``multiprocessing.Pool``; the parent folds the partial
    types with the same memoized merge the simulator uses.  The result is
    bit-identical to :func:`infer_distributed` and the sequential path.

    ``processes`` defaults to ``min(partitions, cpu_count)``; with one
    partition (or one process and one partition) the pool is skipped.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)
    payloads = [(bucket, equivalence.value) for bucket in buckets]

    if processes is None:
        processes = min(len(buckets), auto_jobs())
    processes = max(1, processes)

    if processes == 1 or len(buckets) == 1:
        partials = [_infer_partition(p) for p in payloads]
        processes = 1
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_partition, payloads)

    combined = TypeAccumulator(equivalence)
    counts: list[int] = []
    for partial_type, count in partials:
        combined.add_type(partial_type)
        counts.append(count)
    return ParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        partition_documents=counts,
    )


# ---------------------------------------------------------------------------
# batched text feed: raw NDJSON lines to the workers, types back
# ---------------------------------------------------------------------------


def partition_bounds(total: int, partitions: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` index ranges (deterministic).

    The index-level form of :func:`partition_contiguous`: the mmap
    corpus feed partitions *byte ranges* through these bounds without
    materialising any slice.
    """
    if partitions < 1:
        raise InferenceError("need at least one partition")
    bounds: list[tuple[int, int]] = []
    base, extra = divmod(total, partitions)
    start = 0
    for i in range(partitions):
        size = base + (1 if i < extra else 0)
        if size:
            bounds.append((start, start + size))
            start += size
    return bounds


def partition_contiguous(items: Sequence[Any], partitions: int) -> list[list[Any]]:
    """Contiguous, balanced slices (deterministic).

    The text feed ships each worker one pickle containing its whole
    slice (or a byte range into a shared-memory buffer), so slices are
    contiguous rather than round-robin.  For the plain type monoid any
    partitioning yields the identical result; the *counting* algebra is
    commutative only up to union member order (members keep
    first-appearance order), and contiguous slices reproduce the serial
    fold's appearance order exactly — so the parallel counting reduce is
    equal member-for-member, not merely up to permutation.
    """
    return [
        list(items[start:stop])
        for start, stop in partition_bounds(len(items), partitions)
    ]


def partition_lines(lines: Sequence[str], partitions: int) -> list[list[str]]:
    """Contiguous slices of a line corpus (the text feed's batch shape)."""
    return partition_contiguous(lines, partitions)


def _infer_lines_partition(payload: tuple[list[str], str]) -> tuple[Type, int]:
    """Worker: run the fused text→type pipeline over one batch of lines.

    Documents are never materialised — each line goes straight from the
    lexer into the worker's accumulator; only the interned partition
    type (and its document count) crosses back over the pipe.
    """
    from repro.inference.engine import accumulate_lines

    lines, equivalence_value = payload
    accumulator = accumulate_lines(lines, Equivalence(equivalence_value))
    return accumulator.result(), accumulator.document_count


def _attach_shared(name: str):
    """Attach a shared-memory segment without adopting its lifetime."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method(allow_none=True) == "spawn":
        # Under spawn each worker runs its own resource tracker, which
        # would "clean up" (unlink) the parent's segment when the
        # worker exits; tell it this attach is not ours to free.  Under
        # fork the tracker is shared with the parent, whose own
        # registration must stay — attaching registrations collapse
        # into it (the tracker cache is a set).
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    return segment


def _fold_bytes_range(data, start: int, end: int, equivalence_value: str):
    """Fold one undecoded byte range of corpus lines — the worker-side
    bytes feed.  Lines are recovered as byte spans with the corpus
    line-break grammar and typed by the bytes-native pipeline; no
    decoded line ever exists in the worker."""
    from repro.datasets.ndjson import iter_line_spans
    from repro.inference.engine import accumulate_ranges

    accumulator = accumulate_ranges(
        data, list(iter_line_spans(data, start, end)), Equivalence(equivalence_value)
    )
    return accumulator.result(), accumulator.document_count


def _infer_shm_partition(payload: tuple[str, int, int, str]) -> tuple[Type, int]:
    """Worker: fold one byte range of the shared corpus buffer.

    The parent pickles only ``(segment name, start, end, equivalence)``
    per partition — the corpus itself crosses the process boundary once,
    through :mod:`multiprocessing.shared_memory` — and the worker runs
    the bytes-native fold directly on the attached buffer: zero decoded
    intermediaries between the shared bytes and the interned partial.
    """
    name, start, end, equivalence_value = payload
    segment = _attach_shared(name)
    try:
        buf = segment.buf
        try:
            return _fold_bytes_range(buf, start, end, equivalence_value)
        finally:
            del buf
    finally:
        segment.close()


# The mmap-corpus shared-memory worker is the same fold: byte ranges of
# the one shared buffer, lines recovered by the corpus grammar.
_infer_shm_corpus_partition = _infer_shm_partition


def _infer_file_range_partition(
    payload: tuple[str, int, int, str]
) -> tuple[Type, int]:
    """Worker: read one byte range of the corpus file directly.

    The parent ships only ``(path, start, end, equivalence)`` — no
    parent-side decode, no per-line pickles; the worker reads its own
    slice and folds the raw bytes."""
    file_path, start, end, equivalence_value = payload
    with open(file_path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    return _fold_bytes_range(data, 0, len(data), equivalence_value)


# ---------------------------------------------------------------------------
# intra-document parallelism: subtree chunks to workers, partials back
# ---------------------------------------------------------------------------


# Documents below this size stay on the line-parallel / serial paths:
# splitting them cannot beat the fixed worker round-trip.
_SUBTREE_MIN_BYTES = 4 << 20
# Re-plan budget when a speculative chunking fails validation (the
# separators sat one level deeper than assumed); each retry forces the
# planner to descend past the level that lied.
_SUBTREE_ATTEMPTS = 3


# ---------------------------------------------------------------------------
# compressed-member parallelism: per-worker decompress + fold, stitched
# ---------------------------------------------------------------------------


def _fold_compressed_range(
    path: str, start: int, end: int, fmt: str, equivalence_value: str
):
    """Worker: decompress one member-aligned compressed byte range and
    fold its *interior* lines; the boundary lines come home raw.

    A worker cannot know where the previous member's last line ends or
    its own last line ends, so it returns
    ``(head, partial_type, interior_count, tail)``: ``head`` is the raw
    bytes of its decompressed output up to and **including** the first
    line break, ``tail`` the raw bytes after the last break.  The
    parent stitches ``tail_{i} + head_{i+1}`` and types those boundary
    lines itself — keeping the break bytes means a ``\\r\\n`` pair
    split across two members reassembles into one break, not two lines.
    When the range's whole output contains no break at all, ``tail`` is
    ``None`` and ``head`` carries the full output for the parent to
    merge into the running boundary.
    """
    from repro.datasets.compressed import (
        _iter_decompressed,
        _line_aligned_cut,
    )
    from repro.datasets.ndjson import _LINE_BREAK_BYTES, iter_line_spans
    from repro.inference.engine import RangeFolder

    accumulator = TypeAccumulator(Equivalence(equivalence_value))
    folder = RangeFolder(accumulator)
    head = None
    pending = b""
    for chunk in _iter_decompressed(path, fmt, start, end):
        data = pending + chunk if pending else chunk
        if head is None:
            match = _LINE_BREAK_BYTES.search(data)
            if match is None or (
                match.end() == len(data) and data[match.start() :] == b"\r"
            ):
                # No complete first break yet (a trailing lone \r may
                # still pair with a \n in the next chunk).
                pending = data
                continue
            head = data[: match.end()]
            data = data[match.end() :]
        cut = _line_aligned_cut(data)
        if cut is None:
            pending = data
            continue
        block = data[:cut]
        pending = data[cut:]
        folder.feed(block, iter_line_spans(block))
    folder.finish()
    if head is None:
        return pending, None, 0, None
    return head, accumulator.result(), accumulator.document_count, pending


def _compressed_range_worker(payload):
    """Pool wrapper: any failure (false member candidate, damaged bytes,
    JSON error) becomes ``None`` — the parent then abandons the
    speculative parallel run and the serial fold reports the real
    error in its canonical order."""
    path, start, end, fmt, equivalence_value = payload
    try:
        return _fold_compressed_range(path, start, end, fmt, equivalence_value)
    except Exception:
        return None


def _type_boundary_line(accumulator: TypeAccumulator, encoder, line: bytes) -> int:
    """Type one stitched boundary line with the fold's exact blank
    semantics; returns the document count contribution (0 for blanks)."""
    from repro.inference.engine import _BYTES_WS_RUN, _EXTRA_SPACE_BYTES

    if not line:
        return 0
    ws_end = _BYTES_WS_RUN.match(line).end()
    if ws_end >= len(line):
        return 0
    if line[ws_end] >= 0x80 or line[ws_end] in _EXTRA_SPACE_BYTES:
        if line.decode("utf-8").isspace():
            return 0
    accumulator.add_type(encoder.encode_bytes(line))
    return 1


def infer_compressed_parallel(
    path,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
    format: Optional[str] = None,
    candidates: Optional[Sequence[int]] = None,
) -> Optional[ParallelRun]:
    """Member-parallel fold of a compressed corpus, or ``None``.

    Groups the speculative member/frame candidates
    (:func:`repro.datasets.compressed.member_candidates`) into one
    contiguous compressed byte range per worker; each worker
    decompresses and folds its own range and ships back
    ``(head, partial, count, tail)``; the parent types the stitched
    boundary lines and combines the partials through the monoid —
    interned-identical to the serial fold by commutativity.

    Speculative like the subtree splitter: **any** failure — a
    candidate that was payload coincidence, a range not ending on a
    member boundary, corrupt bytes, a JSON error — returns ``None``,
    and the caller's serial fold owns the error report.  Returns
    ``None`` likewise when the container has no exploitable parallelism
    (fewer than two candidate members).
    """
    from repro.datasets.compressed import detect_compression, member_candidates
    from repro.datasets.ndjson import split_corpus_bytes
    from repro.types.build import EventTypeEncoder

    path = str(path)
    fmt = format or detect_compression(path)
    if fmt is None:
        return None
    if candidates is None:
        candidates = member_candidates(path, fmt)
    if len(candidates) < 2:
        return None
    size = os.path.getsize(path)
    jobs = processes if processes is not None else auto_jobs()
    groups = min(max(1, jobs), len(candidates))
    if groups < 2:
        return None
    bounds = partition_bounds(len(candidates), groups)
    ranges = [
        (
            candidates[lo],
            candidates[hi] if hi < len(candidates) else size,
        )
        for lo, hi in bounds
    ]
    payloads = [
        (path, start, end, fmt, equivalence.value) for start, end in ranges
    ]
    try:
        with multiprocessing.Pool(processes=groups) as pool:
            results = pool.map(_compressed_range_worker, payloads)
    except Exception:
        return None
    if any(result is None for result in results):
        return None

    accumulator = TypeAccumulator(equivalence)
    encoder = EventTypeEncoder(accumulator.table)
    partition_documents: list[int] = []
    boundary_documents = 0
    pending = b""
    try:
        for head, partial, count, tail in results:
            if tail is None:
                # The whole range produced no line break: its output is
                # one fragment of a boundary line spanning workers.
                pending = pending + head
                continue
            # pending + head ends with the break that terminated this
            # worker's first line; the final (empty) split segment is
            # the worker's interior, already folded.
            for line in split_corpus_bytes(pending + head)[:-1]:
                boundary_documents += _type_boundary_line(
                    accumulator, encoder, line
                )
            if partial is not None and count:
                # A zero-count partial is BOT (all-blank interior) and
                # contributes nothing to the merge.
                accumulator.add_type(partial)
                partition_documents.append(count)
            pending = tail
        tail_lines = split_corpus_bytes(pending) if pending else []
        if tail_lines and tail_lines[-1] == b"":
            # A terminator at true EOF produces no extra line — the
            # MmapCorpus index semantics.
            tail_lines = tail_lines[:-1]
        for line in tail_lines:
            boundary_documents += _type_boundary_line(accumulator, encoder, line)
    except Exception:
        return None
    if accumulator.is_empty() or (
        not partition_documents and not boundary_documents
    ):
        # Zero documents: the serial fold owns the empty-stream error.
        return None
    partition_documents.append(boundary_documents)
    return ParallelRun(
        result=accumulator.result(),
        partitions=len(ranges),
        processes=groups,
        equivalence=equivalence,
        partition_documents=partition_documents,
    )


def _infer_subtree_chunks(payload) -> Optional[list]:
    """Worker: type one group of chunk spans read straight from the file.

    The parent ships only ``(path, kind, [(start, end), ...], max_depth)``;
    the worker reads one covering slice, wraps each chunk in its
    container's brackets, and runs the full bytes machine — keys,
    escapes, UTF-8 runs and depth all get the serial scan's exact
    validation.  Returns the per-chunk contribution lists, or ``None``
    when any chunk fails: failure means the parent's speculative
    boundaries were wrong (or the document is malformed), and the parent
    falls back to the authoritative serial scan for exact errors.
    """
    path, kind, chunks, max_depth = payload
    try:
        from repro.inference.engine import type_subtree_chunks
        from repro.types.build import EventTypeEncoder
        from repro.types.intern import InternTable

        lo = min(start for start, _ in chunks)
        hi = max(end for _, end in chunks)
        with open(path, "rb") as handle:
            handle.seek(lo)
            data = handle.read(hi - lo)
        encoder = EventTypeEncoder(InternTable())
        relative = [(start - lo, end - lo) for start, end in chunks]
        return type_subtree_chunks(
            encoder, data, kind, relative, max_depth=max_depth
        )
    except Exception:
        return None


def _subtree_span_type(
    buffer,
    path: Optional[str],
    start: int,
    end: int,
    *,
    encoder,
    table,
    processes: int,
    targets: int,
    min_bytes: int,
    pool_state: dict,
    max_depth: int = 512,
):
    """Type one document span through the subtree-parallel pipeline.

    Returns the canonical type, or ``None`` when the span is not worth
    (or not amenable to) splitting — the caller then runs the serial
    ``encode_bytes``, which also owns all error reporting.  The worker
    pool is created lazily in ``pool_state`` on the first parallel
    dispatch and reused across spans.
    """
    from repro.inference.engine import (
        combine_subtree,
        plan_subtree_split,
        type_subtree_chunks,
    )

    skip = 0
    for _ in range(_SUBTREE_ATTEMPTS):
        split = plan_subtree_split(
            buffer,
            start,
            end,
            targets=targets,
            min_bytes=min_bytes,
            skip_chunk_levels=skip,
        )
        if split is None:
            return None
        chunk_depth = max_depth - split.spine_depth
        if chunk_depth <= 1:
            return None
        chunks = split.chunks
        if processes > 1 and len(chunks) > 1 and path is not None:
            bounds = partition_bounds(len(chunks), min(processes, len(chunks)))
            payloads = [
                (path, split.kind, list(chunks[a:b]), chunk_depth)
                for a, b in bounds
            ]
            pool = pool_state.get("pool")
            if pool is None:
                pool = pool_state["pool"] = multiprocessing.Pool(
                    processes=processes
                )
            results = pool.map(_infer_subtree_chunks, payloads)
            if any(group is None for group in results):
                skip = split.spine_depth + 1
                continue
            chunk_parts = [parts for group in results for parts in group]
        else:
            try:
                chunk_parts = type_subtree_chunks(
                    encoder, buffer, split.kind, chunks, max_depth=chunk_depth
                )
            except Exception:
                skip = split.spine_depth + 1
                continue
        try:
            # Spine heads (the members preceding a dominant last member)
            # are small; type them parent-side.
            heads = []
            for level, frame in enumerate(split.frames):
                if frame[0] == "recw" and frame[1] is not None:
                    heads.append(
                        type_subtree_chunks(
                            encoder,
                            buffer,
                            "object",
                            [frame[1]],
                            max_depth=max_depth - level,
                        )[0]
                    )
                else:
                    heads.append(None)
        except Exception:
            # A lying spine frame cannot be re-planned around.
            return None
        return combine_subtree(table, split, chunk_parts, heads)
    return None


def infer_subtree_text(
    corpus,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
    min_split_bytes: int = _SUBTREE_MIN_BYTES,
    targets: Optional[int] = None,
) -> ParallelRun:
    """Inference over an mmap corpus with *intra-document* parallelism.

    Lines of at least ``min_split_bytes`` are carved into top-level
    subtree chunks by the bytes-native structural splitter
    (:mod:`repro.parsing.structural`) and typed by ``encode_bytes``
    machines in parallel workers reading their own byte ranges from the
    backing file; the partial contributions merge back through the
    reassembly algebra and the :class:`~repro.inference.engine.TypeAccumulator`
    monoid.  Smaller lines fold through the batched bytes pipeline
    exactly as :func:`~repro.inference.engine.accumulate_ranges` runs
    them.  The result is interned-identical to the serial scan of every
    line, with identical errors: any span the splitter cannot carve (or
    whose speculative chunking fails validation) is re-scanned serially
    by the authoritative bytes machine.
    """
    from repro.inference.engine import (
        _EXTRA_SPACE_BYTES,
        _BYTES_WS_RUN,
        _RANGE_CHUNK_LIMIT,
        _RANGE_CHUNK_START,
        TypeAccumulator,
    )
    from repro.types.build import EventTypeEncoder

    if processes is None:
        processes = auto_jobs()
    processes = max(1, processes)
    if targets is None:
        targets = max(2, processes)

    accumulator = TypeAccumulator(equivalence)
    encoder = EventTypeEncoder(accumulator.table)
    add_type = accumulator.add_type
    buffer = corpus.buffer()
    path = getattr(corpus, "path", None)
    threshold = max(min_split_bytes, 2)
    ws_match = _BYTES_WS_RUN.match
    pool_state: dict = {}
    batch: list[bytes] = []
    chunk = _RANGE_CHUNK_START
    split_documents = 0

    def flush() -> None:
        if batch:
            for t in encoder.encode_lines(batch):
                add_type(t)
            del batch[:]

    try:
        for start, end in corpus.spans:
            if end <= start:
                continue
            ws_end = ws_match(buffer, start, end).end()
            if ws_end >= end:
                continue  # ASCII whitespace only
            if buffer[ws_end] >= 0x80 or buffer[ws_end] in _EXTRA_SPACE_BYTES:
                # str.isspace-parity blank check, flushing first so
                # earlier lines surface their errors in serial order.
                flush()
                text = bytes(buffer[start:end]).decode("utf-8")
                if text.isspace():
                    continue
            if end - start >= threshold:
                flush()
                t = _subtree_span_type(
                    buffer,
                    path,
                    start,
                    end,
                    encoder=encoder,
                    table=accumulator.table,
                    processes=processes,
                    targets=targets,
                    min_bytes=min_split_bytes,
                    pool_state=pool_state,
                )
                if t is None:
                    # Serial authority: exact type, exact errors.
                    t = encoder.encode_bytes(buffer, start, end)
                else:
                    split_documents += 1
                add_type(t)
                continue
            batch.append(bytes(buffer[start:end]))
            if len(batch) >= chunk:
                flush()
                chunk = min(_RANGE_CHUNK_LIMIT, chunk * 4)
        flush()
    finally:
        pool = pool_state.get("pool")
        if pool is not None:
            pool.close()
            pool.join()

    if accumulator.is_empty():
        raise InferenceError("cannot infer a schema from an empty collection")
    return ParallelRun(
        result=accumulator.result(),
        partitions=max(1, split_documents),
        processes=processes if pool_state.get("pool") is not None else 1,
        equivalence=equivalence,
        partition_documents=[accumulator.document_count],
    )


# Auto shared-memory heuristic: below this corpus size the per-batch
# pickles are cheap enough that a shared segment (create + one memcpy +
# per-worker attach) is not worth its setup.
_SHM_AUTO_MIN_BYTES = 4 << 20


def choose_shared_memory(corpus_bytes: int, jobs: int, *, file_backed: bool = False) -> bool:
    """The ``--shared-memory auto`` decision.

    Use one shared-memory segment when the corpus would otherwise be
    *pickled* to workers and is big enough (≥ 4 MiB) that batch pickles
    dominate the segment's setup cost, with more than one worker to
    share it.  File-backed corpora (mmap) default to ``False``: their
    workers already read byte ranges straight from the file, shipping
    nothing, so a segment would only add a memcpy.
    """
    if jobs <= 1 or file_backed:
        return False
    return corpus_bytes >= _SHM_AUTO_MIN_BYTES


def _resolve_shared_memory(shared_memory, corpus_bytes: int, jobs: int,
                           *, file_backed: bool = False) -> bool:
    """Normalise a ``True``/``False``/``"auto"`` transport request."""
    if shared_memory == "auto":
        return choose_shared_memory(corpus_bytes, jobs, file_backed=file_backed)
    return bool(shared_memory)


def infer_distributed_text(
    lines: Sequence[str],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
    shared_memory="auto",
) -> ParallelRun:
    """Run the partitioned inference on raw NDJSON lines.

    The batched text feed closes the last materialization gap of the
    multi-process mode: instead of parsing every document in the parent
    and re-pickling the DOMs to the workers, each worker receives a
    contiguous slice of raw lines (one pickle per batch, or — with
    ``shared_memory=True`` — a byte range into one
    :class:`multiprocessing.shared_memory.SharedMemory` buffer holding
    the whole corpus) and runs the fused text→type pipeline locally,
    folding through its own :class:`~repro.inference.engine.TypeAccumulator`.
    Only the interned partition types come back; the parent combines
    them, bit-identical to every serial path.  Blank lines are skipped.

    ``shared_memory`` is a transport hint — ``True``, ``False``, or
    ``"auto"`` (default), which applies
    :func:`choose_shared_memory`'s size/jobs heuristic.  Workers
    recover line boundaries from the newline-joined buffer with the
    corpus line-break grammar, so when any "line" itself contains a
    line break (legal JSON, not legal NDJSON) the feed silently falls
    back to per-batch pickles — the result is identical either way.

    An :class:`~repro.datasets.ndjson.MmapCorpus` input takes the
    zero-copy route: the parent copies the raw file bytes *once* into
    the shared segment and ships line-aligned byte ranges from the
    corpus index — it never splits, decodes, or pickles lines itself
    (and corpus lines cannot contain line breaks by construction, so
    there is no fallback case).
    """
    from repro.datasets.ndjson import MmapCorpus

    if isinstance(lines, MmapCorpus):
        return _infer_corpus_text(
            lines,
            partitions,
            equivalence,
            processes=processes,
            shared_memory=shared_memory,
        )
    lines = list(lines)
    if not any(line and not line.isspace() for line in lines):
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition_lines(lines, partitions)

    if processes is None:
        processes = min(len(buckets), auto_jobs())
    processes = max(1, processes)

    shared_memory = _resolve_shared_memory(
        shared_memory, sum(map(len, lines)), processes
    )
    if shared_memory and any("\n" in line or "\r" in line for line in lines):
        # Workers re-split the joined buffer with the line-break
        # grammar; embedded breaks would change the line count.
        shared_memory = False

    if processes == 1 or len(buckets) == 1:
        partials = [
            _infer_lines_partition((bucket, equivalence.value)) for bucket in buckets
        ]
        processes = 1
    elif shared_memory:
        from multiprocessing import shared_memory as shm

        encoded = [line.encode("utf-8") for line in lines]
        data = b"\n".join(encoded)
        spans: list[tuple[int, int]] = []
        cursor = 0
        index = 0
        for bucket in buckets:
            size = sum(len(encoded[index + j]) for j in range(len(bucket)))
            size += len(bucket) - 1  # newlines joining the bucket's lines
            spans.append((cursor, cursor + size))
            cursor += size + 1  # the newline separating adjacent buckets
            index += len(bucket)
        segment = shm.SharedMemory(create=True, size=max(1, len(data)))
        try:
            segment.buf[: len(data)] = data
            payloads = [
                (segment.name, start, end, equivalence.value) for start, end in spans
            ]
            with multiprocessing.Pool(processes=processes) as pool:
                partials = pool.map(_infer_shm_partition, payloads)
        finally:
            segment.close()
            segment.unlink()
    else:
        batch_payloads = [(bucket, equivalence.value) for bucket in buckets]
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_lines_partition, batch_payloads)

    combined = TypeAccumulator(equivalence)
    counts: list[int] = []
    for partial_type, count in partials:
        combined.add_type(partial_type)
        counts.append(count)
    return ParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        partition_documents=counts,
    )


def _infer_corpus_text(
    corpus,
    partitions: int,
    equivalence: Equivalence,
    *,
    processes: Optional[int],
    shared_memory,
) -> ParallelRun:
    """The mmap-corpus execution of :func:`infer_distributed_text`."""
    total = len(corpus)
    has_content = False
    for index, (start, end) in enumerate(corpus.spans):
        if end > start:
            line = corpus[index]
            if line and not line.isspace():
                has_content = True
                break
    if not has_content:
        raise InferenceError("cannot infer a schema from an empty collection")
    bounds = partition_bounds(total, partitions)

    if processes is None:
        processes = min(len(bounds), auto_jobs())
    processes = max(1, processes)
    shared_memory = _resolve_shared_memory(
        shared_memory, corpus.size_bytes, processes, file_backed=True
    )

    if processes == 1 or len(bounds) == 1:
        # Serial corpus fold: undecoded byte ranges straight to interned
        # types — no per-line decode anywhere.
        from repro.inference.engine import accumulate_ranges

        buffer = corpus.buffer()
        spans = corpus.spans
        partials = []
        for start, stop in bounds:
            accumulator = accumulate_ranges(
                buffer, spans[start:stop], equivalence
            )
            partials.append((accumulator.result(), accumulator.document_count))
        processes = 1
    elif shared_memory:
        from multiprocessing import shared_memory as shm

        size = corpus.size_bytes
        segment = shm.SharedMemory(create=True, size=max(1, size))
        try:
            # The corpus crosses the process boundary as one memcpy of
            # the raw file bytes; workers slice it by line-aligned byte
            # ranges from the index.
            segment.buf[:size] = corpus.buffer()
            payloads = [
                (segment.name, *corpus.byte_range(start, stop), equivalence.value)
                for start, stop in bounds
            ]
            with multiprocessing.Pool(processes=processes) as pool:
                partials = pool.map(_infer_shm_corpus_partition, payloads)
        finally:
            segment.close()
            segment.unlink()
    else:
        # No shared memory requested: workers still avoid any
        # parent-side decode by reading their own byte range straight
        # from the backing file.
        range_payloads = [
            (corpus.path, *corpus.byte_range(start, stop), equivalence.value)
            for start, stop in bounds
        ]
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_file_range_partition, range_payloads)

    combined = TypeAccumulator(equivalence)
    counts: list[int] = []
    for partial_type, count in partials:
        combined.add_type(partial_type)
        counts.append(count)
    return ParallelRun(
        result=combined.result(),
        partitions=len(bounds),
        processes=processes,
        equivalence=equivalence,
        partition_documents=counts,
    )


# ---------------------------------------------------------------------------
# adaptive scheduler: auto jobs, timed-sample cost model, serial fallback
# ---------------------------------------------------------------------------


def auto_jobs() -> int:
    """Worker processes this machine can actually run in parallel.

    Prefers ``os.sched_getaffinity`` (container/cgroup and taskset
    aware — ``cpu_count`` over-reports inside CPU-limited containers),
    falling back to ``multiprocessing.cpu_count``.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, multiprocessing.cpu_count())


@dataclass(frozen=True)
class SchedulePlan:
    """The adaptive scheduler's decision for one corpus.

    ``mode`` is ``"serial"``, ``"parallel"`` (line-parallel workers), or
    ``"subtree"`` (intra-document parallelism: huge documents carved
    into top-level chunks); the estimate fields record the cost model's
    inputs so benchmarks and the CLI can report *why* the scheduler
    chose what it chose.  ``calibration_source`` records where the
    startup/shipping constants came from (``"env"``, ``"profile"``,
    ``"measured"``, or ``"default"`` — see
    :mod:`repro.inference.calibration`).  ``sample_cache_hit_rate`` is
    the line-shape-cache hit rate the timed sample measured (0.0 when
    the sample ran the str path, which has no line cache).
    """

    mode: str
    jobs: int
    partitions: int
    documents: int
    cpus: int
    sample_docs_per_sec: float
    estimated_serial_seconds: float
    estimated_parallel_seconds: float
    reason: str
    calibration_source: str = "default"
    sample_cache_hit_rate: float = 0.0

    @property
    def parallel(self) -> bool:
        return self.mode == "parallel"

    @property
    def subtree(self) -> bool:
        return self.mode == "subtree"


# Cost-model constants.  Startup covers fork + pool handshake + module
# import per worker; shipping covers pickling line batches to workers
# (the shared-memory feed pays one memcpy instead, but modelling the
# pickle cost keeps the decision conservative).  Both constants resolve
# through :mod:`repro.inference.calibration`: env override first, then
# the persisted per-machine profile (measured once and cached in
# ``~/.cache/repro/sched.json``), then the built-in defaults.
_PARALLEL_ADVANTAGE = 1.15  # modeled win required before spawning workers
_SAMPLE_SIZE = 200
# The timed sample is throwaway work; cap it by wall clock as well as
# count so corpora of few-but-huge lines don't pay a large fraction of
# the fold just to decide the plan.
_SAMPLE_BUDGET_SECONDS = 0.05
_SAMPLE_MINIMUM = 8
# Corpus sampling feeds the batched line pipeline in sub-batches so the
# line-shape cache participates (its hit rate feeds the cost model);
# the wall-clock budget is re-checked between batches.
_SAMPLE_BATCH_LINES = 32


def plan_schedule(
    lines: Sequence[str],
    *,
    jobs: Optional[int] = None,
    shared_memory="auto",
    sample_size: int = _SAMPLE_SIZE,
) -> SchedulePlan:
    """Decide serial vs. parallel execution for a line corpus.

    The model: parallel wall-clock is per-worker startup, plus the
    serial fold divided across the CPUs that can really run (requested
    jobs capped by :func:`auto_jobs`), plus corpus shipping.  The
    startup and shipping constants come from the persisted per-machine
    calibration profile (:mod:`repro.inference.calibration` — measured
    once, env-overridable) rather than per-plan guesses.  The timed
    sample measures the *map* rate (text to canonical type), which
    dominates the fold and does not depend on the equivalence — so one
    plan serves both equivalences.  An
    :class:`~repro.datasets.ndjson.MmapCorpus` is sampled through the
    bytes-native scan (no decode); in-memory lines through the str
    scan.  The serial fold rate is *measured*, not assumed, so the
    decision tracks the actual machine and document shape.  When the
    modeled parallel win is under ``_PARALLEL_ADVANTAGE`` the plan is
    serial: spawning workers that lose to the serial fold (the E16
    regression: 0.94x at ``--jobs 2`` on one usable CPU) is the one
    outcome this scheduler exists to prevent.
    """
    from repro.inference import calibration

    documents = len(lines)
    cpus = auto_jobs()
    requested = cpus if jobs is None else max(1, jobs)

    def serial_plan(reason: str, rate: float = 0.0, serial_s: float = 0.0,
                    parallel_s: float = 0.0,
                    calibration_source: str = "default",
                    cache_hit_rate: float = 0.0) -> SchedulePlan:
        return SchedulePlan(
            mode="serial",
            jobs=1,
            partitions=1,
            documents=documents,
            cpus=cpus,
            sample_docs_per_sec=rate,
            estimated_serial_seconds=serial_s,
            estimated_parallel_seconds=parallel_s,
            reason=reason,
            calibration_source=calibration_source,
            sample_cache_hit_rate=cache_hit_rate,
        )

    if documents == 0:
        return serial_plan("empty corpus")
    if jobs is not None and requested == 1:
        return serial_plan("one worker requested")
    if cpus == 1:
        return serial_plan(
            "one usable CPU: parallel workers would only contend"
        )

    from repro.datasets.ndjson import MmapCorpus

    is_corpus = isinstance(lines, MmapCorpus)

    # --- corpus-shape probe: few huge lines → intra-document mode -------
    # Decided *before* the timed sample: sampling a corpus of 100 MB
    # lines would scan whole documents just to plan, and the per-line
    # rate is meaningless when one line is the corpus.  Bytes-rate
    # calibration constants model it instead.
    if is_corpus and documents <= max(1, sample_size):
        biggest = lines.max_line_bytes
        if biggest >= _SUBTREE_MIN_BYTES:
            total_bytes = lines.size_bytes
            huge_bytes = sum(
                end - start
                for start, end in lines.spans
                if end - start >= _SUBTREE_MIN_BYTES
            )
            if huge_bytes * 2 > total_bytes:
                effective = min(requested, cpus)
                serial_seconds = (
                    total_bytes / calibration.scan_bytes_per_second()
                )
                subtree_seconds = (
                    calibration.worker_startup_seconds() * effective
                    + total_bytes / calibration.split_bytes_per_second()
                    + serial_seconds / effective
                )
                source = calibration.calibration_source()
                if serial_seconds > subtree_seconds * _PARALLEL_ADVANTAGE:
                    return SchedulePlan(
                        mode="subtree",
                        jobs=effective,
                        partitions=effective,
                        documents=documents,
                        cpus=cpus,
                        sample_docs_per_sec=0.0,
                        estimated_serial_seconds=serial_seconds,
                        estimated_parallel_seconds=subtree_seconds,
                        reason=(
                            f"huge-document corpus ({huge_bytes / 1e6:.0f} MB "
                            f"in splittable lines): modeled "
                            f"{serial_seconds / subtree_seconds:.2f}x win "
                            f"from intra-document chunks on {effective} of "
                            f"{cpus} CPUs"
                        ),
                        calibration_source=source,
                    )
                return serial_plan(
                    f"huge-document corpus but modeled subtree win "
                    f"{serial_seconds / subtree_seconds:.2f}x is under the "
                    f"{_PARALLEL_ADVANTAGE:.2f}x threshold",
                    0.0,
                    serial_seconds,
                    subtree_seconds,
                    source,
                )

    sample_limit = min(documents, max(1, sample_size))
    encoder = _sample_encoder()
    sample_bytes = 0
    sampled = 0
    cache_hit_rate = 0.0
    full_hit_rate = 0.0
    start_time = time.perf_counter()
    if is_corpus:
        # Bytes-native sampling: run undecoded ranges of the mapped file
        # through the *batched* line pipeline — the exact code the
        # serial fold runs, line-shape cache included, so the measured
        # rate reflects warm-cache folding, not the cold structural
        # scan.  Blank lines (str.isspace parity included) are skipped
        # exactly as the fold skips them.
        from repro.inference.engine import _EXTRA_SPACE_BYTES, _BYTES_WS_RUN

        buffer = lines.buffer()
        ws_match = _BYTES_WS_RUN.match
        encode_lines = encoder.encode_lines
        batch: list[bytes] = []
        for start, end in lines.spans[:sample_limit]:
            sample_bytes += end - start
            if end > start:
                ws_end = ws_match(buffer, start, end).end()
                if ws_end < end and not (
                    buffer[ws_end] >= 0x80
                    or buffer[ws_end] in _EXTRA_SPACE_BYTES
                ):
                    batch.append(bytes(buffer[start:end]))
                elif ws_end < end:
                    text = bytes(buffer[start:end]).decode("utf-8")
                    if not text.isspace():
                        encoder.encode_text(text)
            sampled += 1
            if len(batch) >= _SAMPLE_BATCH_LINES:
                for _ in encode_lines(batch):
                    pass
                del batch[:]
                if (
                    sampled >= _SAMPLE_MINIMUM
                    and time.perf_counter() - start_time
                    > _SAMPLE_BUDGET_SECONDS
                ):
                    break
        if batch:
            for _ in encode_lines(batch):
                pass
    else:
        encode_text = encoder.encode_text
        for index in range(sample_limit):
            line = lines[index]
            sample_bytes += len(line)
            if line and not line.isspace():
                encode_text(line)
            sampled += 1
            if (
                sampled >= _SAMPLE_MINIMUM
                and time.perf_counter() - start_time > _SAMPLE_BUDGET_SECONDS
            ):
                break
    elapsed = max(time.perf_counter() - start_time, 1e-9)
    rate = sampled / elapsed

    serial_seconds = documents / rate
    if is_corpus:
        attempts, hits, _enabled = encoder.line_cache_stats
        if attempts:
            # Hit-rate feedback: the sample's warm-cache rate, projected
            # to the full fold.  The sample under-measures the hit rate
            # when most lines repeat a shape it saw once (every distinct
            # shape costs one miss, amortized over the *whole* corpus,
            # not the sample) — so project the full-corpus rate from the
            # distinct-shape count and cost cached lines at the
            # calibrated speedup.
            speedup = calibration.cache_hit_speedup()
            cache_hit_rate = hits / attempts
            distinct = attempts - hits
            full_hit_rate = max(
                cache_hit_rate, 1.0 - distinct / max(documents, 1)
            )
            sample_cost = (1.0 - cache_hit_rate) + cache_hit_rate / speedup
            full_cost = (1.0 - full_hit_rate) + full_hit_rate / speedup
            if sample_cost > 0:
                serial_seconds = (documents / rate) * (full_cost / sample_cost)
    effective = min(requested, cpus)
    total_bytes = sample_bytes * (documents / sampled)
    # Shipping: per-batch pickles for in-memory line lists only.  Both
    # corpus transports avoid it — workers read their own byte ranges
    # from the file or from one shared-memory memcpy.
    use_shm = _resolve_shared_memory(
        shared_memory, total_bytes, effective, file_backed=is_corpus
    )
    ships_lines = not use_shm and not is_corpus
    ship_seconds = (
        total_bytes / calibration.ship_bytes_per_second() if ships_lines else 0.0
    )
    source = calibration.calibration_source()
    parallel_seconds = (
        calibration.worker_startup_seconds() * effective
        + serial_seconds / effective
        + ship_seconds
    )

    if serial_seconds > parallel_seconds * _PARALLEL_ADVANTAGE:
        return SchedulePlan(
            mode="parallel",
            jobs=effective,
            partitions=effective,
            documents=documents,
            cpus=cpus,
            sample_docs_per_sec=rate,
            estimated_serial_seconds=serial_seconds,
            estimated_parallel_seconds=parallel_seconds,
            reason=(
                f"modeled {serial_seconds / parallel_seconds:.2f}x win "
                f"on {effective} of {cpus} CPUs"
            ),
            calibration_source=source,
            sample_cache_hit_rate=cache_hit_rate,
        )
    return serial_plan(
        f"modeled parallel win {serial_seconds / parallel_seconds:.2f}x is "
        f"under the {_PARALLEL_ADVANTAGE:.2f}x threshold (startup + "
        "shipping eat the split fold)",
        rate,
        serial_seconds,
        parallel_seconds,
        source,
        cache_hit_rate,
    )


def plan_compressed_schedule(
    path,
    *,
    format: Optional[str] = None,
    jobs: Optional[int] = None,
) -> SchedulePlan:
    """Decide serial vs. member-parallel decode for a compressed corpus.

    The timed per-line sample is useless here (lines don't exist until
    decompression runs), so the model prices the two pipeline stages by
    bytes rates: decompression
    (:func:`repro.inference.calibration.decompress_bytes_per_second`,
    the new I/O-bound stage) plus the bytes-native scan, over the
    decompressed size estimated from a bounded first-blocks ratio probe
    (:func:`repro.datasets.compressed.estimate_ratio`).  A container
    with fewer than two member/frame candidates is inherently
    sequential — one DEFLATE stream cannot be split — and plans serial
    regardless of size.
    """
    from repro.datasets.compressed import (
        detect_compression,
        estimate_ratio,
        member_candidates,
    )
    from repro.inference import calibration

    path = str(path)
    fmt = format or detect_compression(path)
    cpus = auto_jobs()
    requested = cpus if jobs is None else max(1, jobs)

    def serial_plan(reason: str, serial_s: float = 0.0, parallel_s: float = 0.0,
                    source: str = "default") -> SchedulePlan:
        return SchedulePlan(
            mode="serial",
            jobs=1,
            partitions=1,
            documents=0,
            cpus=cpus,
            sample_docs_per_sec=0.0,
            estimated_serial_seconds=serial_s,
            estimated_parallel_seconds=parallel_s,
            reason=reason,
            calibration_source=source,
        )

    if fmt is None:
        return serial_plan("not a compressed corpus")
    if jobs is not None and requested == 1:
        return serial_plan("one worker requested")
    if cpus == 1:
        return serial_plan("one usable CPU: parallel workers would only contend")
    candidates = member_candidates(path, fmt)
    if len(candidates) < 2:
        return serial_plan(
            f"single {fmt} member: one compressed stream decodes sequentially"
        )
    compressed_size = os.path.getsize(path)
    total_out = compressed_size * estimate_ratio(path, fmt)
    serial_seconds = (
        total_out / calibration.decompress_bytes_per_second()
        + total_out / calibration.scan_bytes_per_second()
    )
    effective = min(requested, cpus, len(candidates))
    parallel_seconds = (
        calibration.worker_startup_seconds() * effective
        + serial_seconds / effective
    )
    source = calibration.calibration_source()
    if serial_seconds > parallel_seconds * _PARALLEL_ADVANTAGE:
        return SchedulePlan(
            mode="parallel",
            jobs=effective,
            partitions=effective,
            documents=0,
            cpus=cpus,
            sample_docs_per_sec=0.0,
            estimated_serial_seconds=serial_seconds,
            estimated_parallel_seconds=parallel_seconds,
            reason=(
                f"{len(candidates)} independent {fmt} member candidates: "
                f"modeled {serial_seconds / parallel_seconds:.2f}x win from "
                f"per-worker decompression on {effective} of {cpus} CPUs"
            ),
            calibration_source=source,
        )
    return serial_plan(
        f"{len(candidates)} {fmt} members but modeled parallel win "
        f"{serial_seconds / parallel_seconds:.2f}x is under the "
        f"{_PARALLEL_ADVANTAGE:.2f}x threshold",
        serial_seconds,
        parallel_seconds,
        source,
    )


def _sample_encoder():
    """A fused text encoder over a private table (samples must not
    pollute the global intern table's statistics)."""
    from repro.types.build import EventTypeEncoder
    from repro.types.intern import InternTable

    return EventTypeEncoder(InternTable())


def infer_adaptive_text(
    lines: Sequence[str],
    equivalence: Equivalence = Equivalence.KIND,
    *,
    jobs: Optional[int] = None,
    shared_memory="auto",
    sample_size: int = _SAMPLE_SIZE,
) -> ParallelRun:
    """The batched text feed behind the adaptive scheduler.

    ``lines`` is any in-memory line sequence or an
    :class:`~repro.datasets.ndjson.MmapCorpus`.  ``jobs=None`` sizes the
    worker pool from CPU affinity; any requested ``jobs`` is treated as
    a *cap*, not a command — the scheduler still falls back to a serial
    fold when the timed-sample cost model says workers would lose
    (guaranteeing ``--jobs N`` is never slower than serial by more than
    the sample cost).  A mapped corpus folds serially through the
    bytes-native pipeline — no per-line decode.  ``shared_memory`` is
    ``True``, ``False``, or ``"auto"`` (the
    :func:`choose_shared_memory` heuristic).  The result is
    bit-identical to every other path.
    """
    plan = plan_schedule(
        lines,
        jobs=jobs,
        shared_memory=shared_memory,
        sample_size=sample_size,
    )
    if plan.subtree:
        run = infer_subtree_text(lines, equivalence, processes=plan.jobs)
        run.plan = plan
        return run
    if not plan.parallel:
        from repro.datasets.ndjson import MmapCorpus
        from repro.inference.engine import accumulate_lines, accumulate_ranges

        if isinstance(lines, MmapCorpus):
            accumulator = accumulate_ranges(
                lines.buffer(), lines.spans, equivalence
            )
        else:
            accumulator = accumulate_lines(lines, equivalence)
        if accumulator.is_empty():
            raise InferenceError(
                "cannot infer a schema from an empty collection"
            )
        return ParallelRun(
            result=accumulator.result(),
            partitions=1,
            processes=1,
            equivalence=equivalence,
            partition_documents=[accumulator.document_count],
            plan=plan,
        )
    run = infer_distributed_text(
        lines,
        partitions=plan.partitions,
        equivalence=equivalence,
        processes=plan.jobs,
        shared_memory=shared_memory,
    )
    run.plan = plan
    return run


# ---------------------------------------------------------------------------
# parallel counting-types reduce
# ---------------------------------------------------------------------------


@dataclass
class CountedParallelRun:
    """Outcome of a multi-process counting-types inference."""

    result: Any  # CUnion — typed loosely to keep the counting import lazy
    partitions: int
    processes: int
    equivalence: Equivalence
    document_count: int


def _infer_counted_partition(payload: tuple[list[Any], str]) -> tuple[Any, int]:
    """Worker: fold one partition through a counting accumulator."""
    documents, equivalence_value = payload
    accumulator = CountingAccumulator(Equivalence(equivalence_value))
    for document in documents:
        accumulator.add(document)
    return accumulator.result(), accumulator.document_count


def _fold_counted_bytes_range(data, start: int, end: int, equivalence_value: str):
    """Fold one undecoded byte range through the counting algebra — the
    counted analogue of :func:`_fold_bytes_range`.  Lines are recovered
    as byte spans and typed by :func:`~repro.inference.counting.
    counted_type_of_bytes`; blanks are skipped with the bytes folds'
    exact whitespace rule, so counts reconcile with every serial path.
    """
    from repro.datasets.ndjson import iter_line_spans
    from repro.inference.counting import counted_type_of_bytes
    from repro.inference.engine import _EXTRA_SPACE_BYTES, _BYTES_WS_RUN

    equivalence = Equivalence(equivalence_value)
    accumulator = CountingAccumulator(equivalence)
    add_counted = accumulator.add_counted
    ws_match = _BYTES_WS_RUN.match
    for s, e in iter_line_spans(data, start, end):
        if e <= s:
            continue
        ws_end = ws_match(data, s, e).end()
        if ws_end >= e:
            continue
        if data[ws_end] >= 0x80 or data[ws_end] in _EXTRA_SPACE_BYTES:
            if bytes(data[s:e]).decode("utf-8").isspace():
                continue
        add_counted(counted_type_of_bytes(data, s, e, equivalence))
    return accumulator.result(), accumulator.document_count


def _infer_counted_file_range_partition(
    payload: tuple[str, int, int, str]
) -> tuple[Any, int]:
    """Worker: counting fold over one byte range read from the file.

    Mirrors :func:`_infer_file_range_partition`: the parent ships only
    ``(path, start, end, equivalence)`` — no decoded lines, no document
    pickles; only the counted partial (and its document count) returns.
    """
    file_path, start, end, equivalence_value = payload
    with open(file_path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    return _fold_counted_bytes_range(data, 0, len(data), equivalence_value)


def _infer_counted_corpus(
    corpus,
    partitions: int,
    equivalence: Equivalence,
    *,
    processes: Optional[int],
) -> CountedParallelRun:
    """The mmap-corpus execution of :func:`infer_counted_parallel`.

    Contiguous byte ranges from the corpus index go to workers that read
    their own file slice and run the bytes-native counting fold; the
    counted algebra's merge adds the per-range cardinalities back
    together.  Contiguous ranges (like :func:`partition_contiguous`)
    keep union member first-appearance order identical to the serial
    fold.
    """
    total = len(corpus)
    if total == 0:
        raise InferenceError(
            "cannot infer a counted schema from an empty collection"
        )
    bounds = partition_bounds(total, partitions)

    if processes is None:
        processes = min(len(bounds), auto_jobs())
    processes = max(1, processes)

    if processes == 1 or len(bounds) == 1:
        buffer = corpus.buffer()
        partials = [
            _fold_counted_bytes_range(
                buffer, *corpus.byte_range(start, stop), equivalence.value
            )
            for start, stop in bounds
        ]
        processes = 1
    else:
        payloads = [
            (corpus.path, *corpus.byte_range(start, stop), equivalence.value)
            for start, stop in bounds
        ]
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_counted_file_range_partition, payloads)

    combined = CountingAccumulator(equivalence)
    for counted, count in partials:
        combined.add_counted(counted, documents=count)
    if combined.is_empty():
        raise InferenceError(
            "cannot infer a counted schema from an empty collection"
        )
    return CountedParallelRun(
        result=combined.result(),
        partitions=len(bounds),
        processes=processes,
        equivalence=equivalence,
        document_count=combined.document_count,
    )


def infer_counted_parallel(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
) -> CountedParallelRun:
    """Counting-types inference over real worker processes.

    The counted algebra is a monoid too: per-partition counted unions
    merge by adding counts, so the parallel reduce preserves every
    cardinality exactly (pinned by the process-boundary regression
    tests).

    An :class:`~repro.datasets.ndjson.MmapCorpus` input takes the raw
    byte-range route (:func:`_infer_counted_corpus`): workers read their
    own contiguous file slice and fold undecoded line spans through the
    bytes-native :func:`~repro.inference.counting.counted_type_of_bytes`
    — no decoded line or document ever crosses the pipe.
    """
    from repro.datasets.ndjson import MmapCorpus

    if isinstance(documents, MmapCorpus):
        return _infer_counted_corpus(
            documents, partitions, equivalence, processes=processes
        )
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a counted schema from an empty collection")
    # Contiguous (not round-robin) so union member order — which follows
    # first appearance — matches the serial fold exactly.
    buckets = partition_contiguous(docs, partitions)
    payloads = [(bucket, equivalence.value) for bucket in buckets]

    if processes is None:
        processes = min(len(buckets), auto_jobs())
    processes = max(1, processes)

    if processes == 1 or len(buckets) == 1:
        partials = [_infer_counted_partition(p) for p in payloads]
        processes = 1
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_counted_partition, payloads)

    combined = CountingAccumulator(equivalence)
    for counted, count in partials:
        combined.add_counted(counted, documents=count)
    return CountedParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        document_count=combined.document_count,
    )
