"""Distributed map/combine/reduce harness for schema inference.

The parametric inference of Baazizi et al. is *distributed by design*:
typing a document is a pure map, and the merge operator is an associative,
commutative monoid, so the reduce can run as a combiner per partition
followed by a merge tree across partitions — exactly the Spark execution
the VLDB J paper evaluates.

With no cluster available, this module is a **deterministic simulator**
that executes the same dataflow on one machine and *accounts* for the
distributed costs the paper reports:

- per-partition map + combine work (documents typed, merges performed),
- the size of every partial type shipped between stages (serialized bytes
  of the printed type — the shuffle volume),
- the depth of the binary merge tree (number of parallel reduce rounds),
- the simulated *makespan*: the critical path through the tree, charging
  each stage the maximum cost among its parallel tasks.

The result type is bit-identical to the sequential
:func:`repro.inference.parametric.infer_type` (associativity property),
which the tests assert — that equivalence is what makes the simulation a
faithful substitute for the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import InferenceError
from repro.types import Equivalence, Type, merge_all, type_of, type_to_string


@dataclass
class StageCost:
    """Cost accounting for one stage of the dataflow."""

    name: str
    tasks: int
    max_task_units: int  # critical-path cost of the stage
    total_units: int  # total work across tasks
    shipped_bytes: int  # bytes of partial types leaving the stage


@dataclass
class DistributedRun:
    """Outcome of a simulated distributed inference."""

    result: Type
    partitions: int
    equivalence: Equivalence
    stages: list[StageCost] = field(default_factory=list)

    @property
    def reduce_rounds(self) -> int:
        return sum(1 for s in self.stages if s.name.startswith("reduce"))

    @property
    def makespan_units(self) -> int:
        """Critical path: sum of per-stage parallel maxima."""
        return sum(s.max_task_units for s in self.stages)

    @property
    def total_work_units(self) -> int:
        return sum(s.total_units for s in self.stages)

    @property
    def total_shipped_bytes(self) -> int:
        return sum(s.shipped_bytes for s in self.stages)


def partition(documents: Sequence[Any], partitions: int) -> list[list[Any]]:
    """Round-robin partitioning (deterministic)."""
    if partitions < 1:
        raise InferenceError("need at least one partition")
    buckets: list[list[Any]] = [[] for _ in range(partitions)]
    for i, doc in enumerate(documents):
        buckets[i % partitions].append(doc)
    return [b for b in buckets if b]


def _type_bytes(t: Type) -> int:
    return len(type_to_string(t).encode("utf-8"))


def infer_distributed(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
) -> DistributedRun:
    """Run the simulated distributed inference.

    Dataflow: per-partition ``map`` (type each document) and ``combine``
    (merge within the partition), then a binary tree of ``reduce`` rounds
    across partitions.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)

    run_stages: list[StageCost] = []

    # --- map + combine per partition -----------------------------------
    partials: list[Type] = []
    map_costs: list[int] = []
    shipped = 0
    for bucket in buckets:
        types = [type_of(d) for d in bucket]
        combined = merge_all(types, equivalence)
        partials.append(combined)
        # Cost model: one unit per typed node plus one per merged input.
        units = sum(t.size() for t in types) + len(types)
        map_costs.append(units)
        shipped += _type_bytes(combined)
    run_stages.append(
        StageCost(
            name="map+combine",
            tasks=len(buckets),
            max_task_units=max(map_costs),
            total_units=sum(map_costs),
            shipped_bytes=shipped,
        )
    )

    # --- binary merge tree ----------------------------------------------
    level = partials
    round_index = 0
    while len(level) > 1:
        round_index += 1
        next_level: list[Type] = []
        costs: list[int] = []
        shipped = 0
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            merged = merge_all((left, right), equivalence)
            next_level.append(merged)
            costs.append(left.size() + right.size())
            shipped += _type_bytes(merged)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
            shipped += _type_bytes(level[-1])
        run_stages.append(
            StageCost(
                name=f"reduce-{round_index}",
                tasks=len(level) // 2,
                max_task_units=max(costs),
                total_units=sum(costs),
                shipped_bytes=shipped,
            )
        )
        level = next_level

    return DistributedRun(
        result=level[0],
        partitions=len(buckets),
        equivalence=equivalence,
        stages=run_stages,
    )
