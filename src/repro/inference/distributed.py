"""Distributed map/combine/reduce harness for schema inference.

The parametric inference of Baazizi et al. is *distributed by design*:
typing a document is a pure map, and the merge operator is an associative,
commutative monoid, so the reduce can run as a combiner per partition
followed by a merge tree across partitions — exactly the Spark execution
the VLDB J paper evaluates.

Two execution modes share the partitioned dataflow:

- :func:`infer_distributed` — a **deterministic simulator** that executes
  the dataflow on one machine and *accounts* for the distributed costs
  the paper reports:

  - per-partition map + combine work (documents typed, merges performed),
  - the size of every partial type shipped between stages (serialized
    bytes of the printed type — the shuffle volume),
  - the depth of the binary merge tree (number of parallel reduce rounds),
  - the simulated *makespan*: the critical path through the tree,
    charging each stage the maximum cost among its parallel tasks.

- :func:`infer_distributed_parallel` — a **real** ``multiprocessing``
  execution: one :class:`~repro.inference.engine.TypeAccumulator` per
  partition runs in a worker process, the partial types come back over
  the pipe (pickling strips intern marks), and the parent combines them.

Both produce a result bit-identical to the sequential
:func:`repro.inference.parametric.infer_type` (associativity property),
which the tests assert — that equivalence is what makes either execution
a faithful substitute for the cluster.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import InferenceError
from repro.inference.engine import CountingAccumulator, TypeAccumulator, accumulate
from repro.types import Equivalence, Type, merge_interned, type_to_string
from repro.types.build import TypeEncoder


@dataclass
class StageCost:
    """Cost accounting for one stage of the dataflow."""

    name: str
    tasks: int
    max_task_units: int  # critical-path cost of the stage
    total_units: int  # total work across tasks
    shipped_bytes: int  # bytes of partial types leaving the stage


@dataclass
class DistributedRun:
    """Outcome of a simulated distributed inference."""

    result: Type
    partitions: int
    equivalence: Equivalence
    stages: list[StageCost] = field(default_factory=list)

    @property
    def reduce_rounds(self) -> int:
        return sum(1 for s in self.stages if s.name.startswith("reduce"))

    @property
    def makespan_units(self) -> int:
        """Critical path: sum of per-stage parallel maxima."""
        return sum(s.max_task_units for s in self.stages)

    @property
    def total_work_units(self) -> int:
        return sum(s.total_units for s in self.stages)

    @property
    def total_shipped_bytes(self) -> int:
        return sum(s.shipped_bytes for s in self.stages)


def partition(documents: Sequence[Any], partitions: int) -> list[list[Any]]:
    """Round-robin partitioning (deterministic)."""
    if partitions < 1:
        raise InferenceError("need at least one partition")
    buckets: list[list[Any]] = [[] for _ in range(partitions)]
    for i, doc in enumerate(documents):
        buckets[i % partitions].append(doc)
    return [b for b in buckets if b]


def _type_bytes(t: Type) -> int:
    return len(type_to_string(t).encode("utf-8"))


def infer_distributed(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
) -> DistributedRun:
    """Run the simulated distributed inference.

    Dataflow: per-partition ``map`` (type each document) and ``combine``
    (merge within the partition), then a binary tree of ``reduce`` rounds
    across partitions.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)

    run_stages: list[StageCost] = []

    # --- map + combine per partition -----------------------------------
    partials: list[Type] = []
    map_costs: list[int] = []
    shipped = 0
    encoder = TypeEncoder()  # fused map phase, shared across partitions
    for bucket in buckets:
        # One streaming accumulator per partition — the combiner the
        # papers run inside each Spark task, instead of materializing the
        # partition's types in a list.
        accumulator = TypeAccumulator(equivalence)
        units = 0
        for document in bucket:
            t = encoder.encode(document)
            # Cost model: one unit per typed node plus one per merged input.
            units += t.size() + 1
            accumulator.add_type(t)
        combined = accumulator.result()
        partials.append(combined)
        map_costs.append(units)
        shipped += _type_bytes(combined)
    run_stages.append(
        StageCost(
            name="map+combine",
            tasks=len(buckets),
            max_task_units=max(map_costs),
            total_units=sum(map_costs),
            shipped_bytes=shipped,
        )
    )

    # --- binary merge tree ----------------------------------------------
    level = partials
    round_index = 0
    while len(level) > 1:
        round_index += 1
        next_level: list[Type] = []
        costs: list[int] = []
        shipped = 0
        for i in range(0, len(level) - 1, 2):
            left, right = level[i], level[i + 1]
            merged = merge_interned(left, right, equivalence)
            next_level.append(merged)
            costs.append(left.size() + right.size())
            shipped += _type_bytes(merged)
        if len(level) % 2 == 1:
            next_level.append(level[-1])
            shipped += _type_bytes(level[-1])
        run_stages.append(
            StageCost(
                name=f"reduce-{round_index}",
                tasks=len(level) // 2,
                max_task_units=max(costs),
                total_units=sum(costs),
                shipped_bytes=shipped,
            )
        )
        level = next_level

    return DistributedRun(
        result=level[0],
        partitions=len(buckets),
        equivalence=equivalence,
        stages=run_stages,
    )


# ---------------------------------------------------------------------------
# real multiprocessing execution
# ---------------------------------------------------------------------------


@dataclass
class ParallelRun:
    """Outcome of a real multi-process inference."""

    result: Type
    partitions: int
    processes: int
    equivalence: Equivalence
    partition_documents: list[int] = field(default_factory=list)

    @property
    def document_count(self) -> int:
        return sum(self.partition_documents)


def _infer_partition(payload: tuple[list[Any], str]) -> tuple[Type, int]:
    """Worker: fold one partition through an accumulator (picklable I/O)."""
    documents, equivalence_value = payload
    accumulator = accumulate(documents, Equivalence(equivalence_value))
    return accumulator.result(), accumulator.document_count


def infer_distributed_parallel(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
) -> ParallelRun:
    """Run the partitioned inference on real worker processes.

    One :class:`~repro.inference.engine.TypeAccumulator` per partition,
    executed by a ``multiprocessing.Pool``; the parent folds the partial
    types with the same memoized merge the simulator uses.  The result is
    bit-identical to :func:`infer_distributed` and the sequential path.

    ``processes`` defaults to ``min(partitions, cpu_count)``; with one
    partition (or one process and one partition) the pool is skipped.
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition(docs, partitions)
    payloads = [(bucket, equivalence.value) for bucket in buckets]

    if processes is None:
        processes = min(len(buckets), multiprocessing.cpu_count())
    processes = max(1, processes)

    if processes == 1 or len(buckets) == 1:
        partials = [_infer_partition(p) for p in payloads]
        processes = 1
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_partition, payloads)

    combined = TypeAccumulator(equivalence)
    counts: list[int] = []
    for partial_type, count in partials:
        combined.add_type(partial_type)
        counts.append(count)
    return ParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        partition_documents=counts,
    )


# ---------------------------------------------------------------------------
# batched text feed: raw NDJSON lines to the workers, types back
# ---------------------------------------------------------------------------


def partition_contiguous(items: Sequence[Any], partitions: int) -> list[list[Any]]:
    """Contiguous, balanced slices (deterministic).

    The text feed ships each worker one pickle containing its whole
    slice (or a byte range into a shared-memory buffer), so slices are
    contiguous rather than round-robin.  For the plain type monoid any
    partitioning yields the identical result; the *counting* algebra is
    commutative only up to union member order (members keep
    first-appearance order), and contiguous slices reproduce the serial
    fold's appearance order exactly — so the parallel counting reduce is
    equal member-for-member, not merely up to permutation.
    """
    if partitions < 1:
        raise InferenceError("need at least one partition")
    total = len(items)
    buckets: list[list[Any]] = []
    base, extra = divmod(total, partitions)
    start = 0
    for i in range(partitions):
        size = base + (1 if i < extra else 0)
        if size:
            buckets.append(list(items[start : start + size]))
            start += size
    return buckets


def partition_lines(lines: Sequence[str], partitions: int) -> list[list[str]]:
    """Contiguous slices of a line corpus (the text feed's batch shape)."""
    return partition_contiguous(lines, partitions)


def _infer_lines_partition(payload: tuple[list[str], str]) -> tuple[Type, int]:
    """Worker: run the fused text→type pipeline over one batch of lines.

    Documents are never materialised — each line goes straight from the
    lexer into the worker's accumulator; only the interned partition
    type (and its document count) crosses back over the pipe.
    """
    from repro.inference.engine import accumulate_lines

    lines, equivalence_value = payload
    accumulator = accumulate_lines(lines, Equivalence(equivalence_value))
    return accumulator.result(), accumulator.document_count


def _infer_shm_partition(payload: tuple[str, int, int, str]) -> tuple[Type, int]:
    """Worker: decode one byte range of the shared corpus buffer and feed it.

    The parent pickles only ``(segment name, start, end, equivalence)``
    per partition — the corpus itself crosses the process boundary once,
    through :mod:`multiprocessing.shared_memory`.
    """
    from multiprocessing import shared_memory

    name, start, end, equivalence_value = payload
    segment = shared_memory.SharedMemory(name=name)
    try:
        if multiprocessing.get_start_method(allow_none=True) == "spawn":
            # Under spawn each worker runs its own resource tracker,
            # which would "clean up" (unlink) the parent's segment when
            # the worker exits; tell it this attach is not ours to free.
            # Under fork the tracker is shared with the parent, whose
            # own registration must stay — attaching registrations
            # collapse into it (the tracker cache is a set).
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals moved
                pass
        text = bytes(segment.buf[start:end]).decode("utf-8")
    finally:
        segment.close()
    return _infer_lines_partition((text.split("\n"), equivalence_value))


def infer_distributed_text(
    lines: Sequence[str],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
    shared_memory: bool = False,
) -> ParallelRun:
    """Run the partitioned inference on raw NDJSON lines.

    The batched text feed closes the last materialization gap of the
    multi-process mode: instead of parsing every document in the parent
    and re-pickling the DOMs to the workers, each worker receives a
    contiguous slice of raw lines (one pickle per batch, or — with
    ``shared_memory=True`` — a byte range into one
    :class:`multiprocessing.shared_memory.SharedMemory` buffer holding
    the whole corpus) and runs the fused text→type pipeline locally,
    folding through its own :class:`~repro.inference.engine.TypeAccumulator`.
    Only the interned partition types come back; the parent combines
    them, bit-identical to every serial path.  Blank lines are skipped.

    ``shared_memory`` is a transport hint: workers recover line
    boundaries from the newline-joined buffer, so when any "line"
    itself contains a newline (legal JSON, not legal NDJSON) the feed
    silently falls back to per-batch pickles — the result is identical
    either way.
    """
    lines = list(lines)
    if not any(line and not line.isspace() for line in lines):
        raise InferenceError("cannot infer a schema from an empty collection")
    buckets = partition_lines(lines, partitions)

    if processes is None:
        processes = min(len(buckets), multiprocessing.cpu_count())
    processes = max(1, processes)

    if shared_memory and any("\n" in line for line in lines):
        shared_memory = False

    if processes == 1 or len(buckets) == 1:
        partials = [
            _infer_lines_partition((bucket, equivalence.value)) for bucket in buckets
        ]
        processes = 1
    elif shared_memory:
        from multiprocessing import shared_memory as shm

        encoded = [line.encode("utf-8") for line in lines]
        data = b"\n".join(encoded)
        spans: list[tuple[int, int]] = []
        cursor = 0
        index = 0
        for bucket in buckets:
            size = sum(len(encoded[index + j]) for j in range(len(bucket)))
            size += len(bucket) - 1  # newlines joining the bucket's lines
            spans.append((cursor, cursor + size))
            cursor += size + 1  # the newline separating adjacent buckets
            index += len(bucket)
        segment = shm.SharedMemory(create=True, size=max(1, len(data)))
        try:
            segment.buf[: len(data)] = data
            payloads = [
                (segment.name, start, end, equivalence.value) for start, end in spans
            ]
            with multiprocessing.Pool(processes=processes) as pool:
                partials = pool.map(_infer_shm_partition, payloads)
        finally:
            segment.close()
            segment.unlink()
    else:
        batch_payloads = [(bucket, equivalence.value) for bucket in buckets]
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_lines_partition, batch_payloads)

    combined = TypeAccumulator(equivalence)
    counts: list[int] = []
    for partial_type, count in partials:
        combined.add_type(partial_type)
        counts.append(count)
    return ParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        partition_documents=counts,
    )


# ---------------------------------------------------------------------------
# parallel counting-types reduce
# ---------------------------------------------------------------------------


@dataclass
class CountedParallelRun:
    """Outcome of a multi-process counting-types inference."""

    result: Any  # CUnion — typed loosely to keep the counting import lazy
    partitions: int
    processes: int
    equivalence: Equivalence
    document_count: int


def _infer_counted_partition(payload: tuple[list[Any], str]) -> tuple[Any, int]:
    """Worker: fold one partition through a counting accumulator."""
    documents, equivalence_value = payload
    accumulator = CountingAccumulator(Equivalence(equivalence_value))
    for document in documents:
        accumulator.add(document)
    return accumulator.result(), accumulator.document_count


def infer_counted_parallel(
    documents: Sequence[Any],
    partitions: int,
    equivalence: Equivalence = Equivalence.KIND,
    *,
    processes: Optional[int] = None,
) -> CountedParallelRun:
    """Counting-types inference over real worker processes.

    The counted algebra is a monoid too: per-partition counted unions
    merge by adding counts, so the parallel reduce preserves every
    cardinality exactly (pinned by the process-boundary regression
    tests).
    """
    docs = list(documents)
    if not docs:
        raise InferenceError("cannot infer a counted schema from an empty collection")
    # Contiguous (not round-robin) so union member order — which follows
    # first appearance — matches the serial fold exactly.
    buckets = partition_contiguous(docs, partitions)
    payloads = [(bucket, equivalence.value) for bucket in buckets]

    if processes is None:
        processes = min(len(buckets), multiprocessing.cpu_count())
    processes = max(1, processes)

    if processes == 1 or len(buckets) == 1:
        partials = [_infer_counted_partition(p) for p in payloads]
        processes = 1
    else:
        with multiprocessing.Pool(processes=processes) as pool:
            partials = pool.map(_infer_counted_partition, payloads)

    combined = CountingAccumulator(equivalence)
    for counted, count in partials:
        combined.add_counted(counted, documents=count)
    return CountedParallelRun(
        result=combined.result(),
        partitions=len(buckets),
        processes=processes,
        equivalence=equivalence,
        document_count=combined.document_count,
    )
