"""Studio-3T-style schema analysis (tutorial §4.1).

Studio 3T "offers a very simple schema inference and analysis feature, but
it is **not able to merge similar types**, and the resulting schemas can
have a **huge size, which is comparable to that of the input data**".

Reproduced as written: every distinct structural *shape* (a document with
scalars replaced by type names) is kept separately with an occurrence
count.  On homogeneous data this is fine; on heterogeneous data the schema
grows linearly with the number of variants — E10 plots exactly that blow-up
against the merging approaches.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import InferenceError
from repro.jsonvalue.model import JsonKind, freeze, is_integer_value, kind_of


def shape_of(value: Any) -> Any:
    """Replace scalars with type-name strings, keeping all structure."""
    kind = kind_of(value)
    if kind is JsonKind.NULL:
        return "null"
    if kind is JsonKind.BOOLEAN:
        return "boolean"
    if kind is JsonKind.NUMBER:
        return "integer" if is_integer_value(value) else "double"
    if kind is JsonKind.STRING:
        return "string"
    if kind is JsonKind.ARRAY:
        return [shape_of(v) for v in value]
    return {name: shape_of(v) for name, v in value.items()}


class Studio3TAnalysis:
    """The full shape catalogue of a collection."""

    def __init__(self) -> None:
        self.shapes: list[tuple[Any, int]] = []  # (shape, count), insertion order
        self._index: dict[Any, int] = {}
        self.document_count = 0

    def feed(self, document: Any) -> None:
        self.document_count += 1
        shape = shape_of(document)
        key = freeze(shape)
        slot = self._index.get(key)
        if slot is None:
            self._index[key] = len(self.shapes)
            self.shapes.append((shape, 1))
        else:
            existing, count = self.shapes[slot]
            self.shapes[slot] = (existing, count + 1)

    def distinct_shapes(self) -> int:
        return len(self.shapes)

    def schema_size(self) -> int:
        """Total node count over all retained shapes (no merging!)."""

        def size_of(node: Any) -> int:
            if isinstance(node, dict):
                return 1 + sum(size_of(v) for v in node.values())
            if isinstance(node, list):
                return 1 + sum(size_of(v) for v in node)
            return 1

        return sum(size_of(shape) for shape, _ in self.shapes)

    def result(self) -> list[dict[str, Any]]:
        return [
            {"schema": shape, "count": count, "probability": count / self.document_count}
            for shape, count in sorted(self.shapes, key=lambda sc: -sc[1])
        ]


def analyze(documents: Iterable[Any]) -> Studio3TAnalysis:
    """Catalogue every distinct shape in the collection."""
    analysis = Studio3TAnalysis()
    for doc in documents:
        analysis.feed(doc)
    if not analysis.document_count:
        raise InferenceError("cannot analyze an empty collection")
    return analysis
