"""The internal JSON type algebra.

Terms (:mod:`repro.types.terms`), canonicalization
(:mod:`repro.types.simplify`), value typing (:mod:`repro.types.build`),
parametric merging (:mod:`repro.types.merge`), subtyping and semantics
(:mod:`repro.types.subtype`), concrete syntax (:mod:`repro.types.printer`)
and JSON Schema export (:mod:`repro.types.to_jsonschema`).
"""

from repro.types.terms import (
    ANY,
    ATOMIC_TAGS,
    AnyType,
    ArrType,
    AtomType,
    BOOL,
    BOT,
    BotType,
    FLT,
    FieldType,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    Type,
    UnionType,
    walk,
)
from repro.types.simplify import simplify, union, union2
from repro.types.build import (
    EventTypeEncoder,
    TypeEncoder,
    type_of,
    type_of_interned,
)
from repro.types.merge import Equivalence, class_key, merge, merge_all, reduce_type
from repro.types.intern import (
    InternTable,
    global_table,
    intern,
    intern_stats,
    merge_interned,
    reduce_interned,
)
from repro.types.subtype import is_equivalent, is_subtype, matches
from repro.types.printer import TypeSyntaxError, parse_type, type_to_string
from repro.types.to_jsonschema import type_to_jsonschema
from repro.types.generate import (
    TypeWitnessGenerator,
    UninhabitedTypeError,
    generate_witness,
    generate_witnesses,
)

__all__ = [
    "ANY",
    "ATOMIC_TAGS",
    "AnyType",
    "ArrType",
    "AtomType",
    "BOOL",
    "BOT",
    "BotType",
    "FLT",
    "FieldType",
    "INT",
    "NULL",
    "NUM",
    "RecType",
    "STR",
    "Type",
    "UnionType",
    "walk",
    "simplify",
    "union",
    "union2",
    "type_of",
    "EventTypeEncoder",
    "TypeEncoder",
    "type_of_interned",
    "Equivalence",
    "class_key",
    "merge",
    "merge_all",
    "reduce_type",
    "InternTable",
    "global_table",
    "intern",
    "intern_stats",
    "merge_interned",
    "reduce_interned",
    "is_equivalent",
    "is_subtype",
    "matches",
    "TypeSyntaxError",
    "parse_type",
    "type_to_string",
    "type_to_jsonschema",
    "TypeWitnessGenerator",
    "UninhabitedTypeError",
    "generate_witness",
    "generate_witnesses",
]
