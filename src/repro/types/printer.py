"""Concrete syntax for the type algebra: printing and parsing.

The textual form follows the notation of the inference papers::

    {a: Num, b?: Str, c: [Int + Null]} + Null

- records in braces, ``?`` marking optional fields;
- arrays in brackets;
- unions with ``+``;
- atoms capitalised (``Null Bool Int Flt Num Str``), plus ``Bot``/``Any``.

``parse_type`` accepts exactly what ``type_to_string`` prints (field names
that are not identifier-like are quoted as JSON strings), giving the
roundtrip property the tests pin down.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.jsonvalue.serializer import escape_string
from repro.types.simplify import union
from repro.types.terms import (
    ANY,
    AnyType,
    ArrType,
    AtomType,
    BOOL,
    BOT,
    BotType,
    FLT,
    FieldType,
    INT,
    NULL,
    NUM,
    RecType,
    STR,
    Type,
    UnionType,
)


class TypeSyntaxError(ReproError):
    """Raised by :func:`parse_type` on malformed input."""


_ATOM_NAMES = {
    "null": "Null",
    "bool": "Bool",
    "int": "Int",
    "flt": "Flt",
    "num": "Num",
    "str": "Str",
}
_NAME_TO_TYPE: dict[str, Type] = {
    "Null": NULL,
    "Bool": BOOL,
    "Int": INT,
    "Flt": FLT,
    "Num": NUM,
    "Str": STR,
    "Bot": BOT,
    "Any": ANY,
}


def _is_plain_name(name: str) -> bool:
    if not name:
        return False
    if not (name[0].isalpha() or name[0] == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in name)


def type_to_string(t: Type) -> str:
    """Render ``t`` in the papers' notation."""
    if isinstance(t, BotType):
        return "Bot"
    if isinstance(t, AnyType):
        return "Any"
    if isinstance(t, AtomType):
        return _ATOM_NAMES[t.tag]
    if isinstance(t, ArrType):
        return f"[{type_to_string(t.item)}]"
    if isinstance(t, RecType):
        parts = []
        for f in t.fields:
            name = f.name if _is_plain_name(f.name) else escape_string(f.name)
            mark = "" if f.required else "?"
            parts.append(f"{name}{mark}: {type_to_string(f.type)}")
        return "{" + ", ".join(parts) + "}"
    if isinstance(t, UnionType):
        rendered = []
        for m in t.members:
            text = type_to_string(m)
            # Unions never nest after simplification, so members need no parens.
            rendered.append(text)
        return " + ".join(rendered)
    if isinstance(t, FieldType):  # pragma: no cover - fields print via records
        mark = "" if t.required else "?"
        return f"{t.name}{mark}: {type_to_string(t.type)}"
    raise TypeError(f"unknown type term {t!r}")


class _TypeParser:
    """Recursive-descent parser for the printed syntax."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> TypeSyntaxError:
        return TypeSyntaxError(f"{message} at position {self.pos} in {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def parse(self) -> Type:
        t = self.parse_union()
        self.skip_ws()
        if self.pos != len(self.text):
            raise self.error("trailing input")
        return t

    def parse_union(self) -> Type:
        members = [self.parse_term()]
        while self.peek() == "+":
            self.pos += 1
            members.append(self.parse_term())
        return union(members) if len(members) > 1 else members[0]

    def parse_term(self) -> Type:
        ch = self.peek()
        if ch == "[":
            self.pos += 1
            inner = self.parse_union()
            self.expect("]")
            return ArrType(inner)
        if ch == "{":
            return self.parse_record()
        if ch == "(":
            self.pos += 1
            inner = self.parse_union()
            self.expect(")")
            return inner
        name = self.parse_name()
        t = _NAME_TO_TYPE.get(name)
        if t is None:
            raise self.error(f"unknown type name {name!r}")
        return t

    def parse_record(self) -> RecType:
        self.expect("{")
        fields: list[FieldType] = []
        if self.peek() == "}":
            self.pos += 1
            return RecType(())
        while True:
            name = self.parse_field_name()
            required = True
            if self.peek() == "?":
                self.pos += 1
                required = False
            self.expect(":")
            field_type = self.parse_union()
            fields.append(FieldType(name, field_type, required))
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("}")
            return RecType(tuple(fields))

    def parse_field_name(self) -> str:
        if self.peek() == '"':
            return self.parse_quoted()
        return self.parse_name()

    def parse_quoted(self) -> str:
        # Reuse the JSON lexer for quoted names: scan a string token.
        from repro.jsonvalue.lexer import _Scanner

        self.skip_ws()
        scanner = _Scanner(self.text)
        scanner.pos = self.pos
        token = scanner.scan_string()
        self.pos = scanner.pos
        assert isinstance(token.value, str)
        return token.value

    def parse_name(self) -> str:
        self.skip_ws()
        start = self.pos
        text = self.text
        if start >= len(text) or not (text[start].isalpha() or text[start] == "_"):
            raise self.error("expected a name")
        pos = start + 1
        while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        self.pos = pos
        return text[start:pos]


def parse_type(text: str) -> Type:
    """Parse the notation produced by :func:`type_to_string`."""
    return _TypeParser(text).parse()
