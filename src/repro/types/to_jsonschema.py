"""Export type-algebra terms as JSON Schema documents.

This is the bridge between the tutorial's Part 4 (inference produces types)
and Part 2 (schemas validate documents): an inferred type exported with
``type_to_jsonschema`` can be fed to :mod:`repro.jsonschema` and must
accept every document the type was inferred from — an end-to-end invariant
the integration tests enforce.

One deliberate loss: JSON Schema's ``integer`` matches ``2.0`` (draft 6+
treats any number with zero fractional part as an integer), so the
``Int``/``Flt`` split of the algebra widens to ``integer``/``number``.
The export direction is chosen so validation stays *sound* (never rejects
a value the type accepts).
"""

from __future__ import annotations

from typing import Any

from repro.types.terms import (
    AnyType,
    ArrType,
    AtomType,
    BotType,
    RecType,
    Type,
    UnionType,
)

_ATOM_SCHEMAS = {
    "null": {"type": "null"},
    "bool": {"type": "boolean"},
    "int": {"type": "integer"},
    "flt": {"type": "number"},
    "num": {"type": "number"},
    "str": {"type": "string"},
}


def type_to_jsonschema(t: Type) -> dict[str, Any]:
    """Render ``t`` as a (Draft-07 core) JSON Schema object.

    Interned (hash-consed) input converts each shared subtree once: the
    walk memoizes on node identity for the duration of the call, so the
    schema objects of repeated subtrees are *aliased* in the output.
    Treat the result as immutable (serialize it, validate with it) —
    mutating one branch would edit every position sharing the subtree.
    """
    return _export(t, {})


def _export(t: Type, memo: dict[int, dict[str, Any]]) -> dict[str, Any]:
    interned = t._interned is not None
    if interned:
        hit = memo.get(id(t))
        if hit is not None:
            return hit
    out = _build(t, memo)
    if interned:
        memo[id(t)] = out
    return out


def _build(t: Type, memo: dict[int, dict[str, Any]]) -> dict[str, Any]:
    if isinstance(t, BotType):
        return {"not": {}}
    if isinstance(t, AnyType):
        return {}
    if isinstance(t, AtomType):
        return dict(_ATOM_SCHEMAS[t.tag])
    if isinstance(t, ArrType):
        if isinstance(t.item, BotType):
            return {"type": "array", "maxItems": 0}
        return {"type": "array", "items": _export(t.item, memo)}
    if isinstance(t, RecType):
        properties = {f.name: _export(f.type, memo) for f in t.fields}
        required = sorted(f.name for f in t.fields if f.required)
        schema: dict[str, Any] = {
            "type": "object",
            "properties": properties,
            "additionalProperties": False,
        }
        if required:
            schema["required"] = required
        return schema
    if isinstance(t, UnionType):
        return {"anyOf": [_export(m, memo) for m in t.members]}
    raise TypeError(f"cannot export {t!r} to JSON Schema")
