"""Structural subtyping and semantic membership for the type algebra.

``is_subtype(s, t)`` decides ``s <: t`` structurally.  It is **sound**
(``s <: t`` implies every value of ``s`` matches ``t``) and complete on
the fragment inference produces; the one distributivity law it implements
specially is ``Num <: Int + Flt`` (every JSON number is an integer or a
float).  General union-distribution over records is intentionally not
chased — the tutorial's systems never need it, and the property tests pin
the soundness direction instead.

The checker runs on *canonical interned* forms: both sides are
canonicalized into the intern table, every pair starts with the identity
fast path (canonical terms are equal iff identical, so ``s is t`` answers
reflexivity in O(1)), and verdicts are memoized on ``(id(s), id(t))``
keyed to the table's epoch.  The evaluation itself is an **iterative
worklist** over and/or frames — no recursion, so types as deep as the
fused encoder can build decide without touching the recursion limit, and
union goals short-circuit exactly like the seed's ``all()``/``any()``.

``_sub`` is kept verbatim from the seed as the *unmemoized reference*;
``tests/test_subtype_oracle.py`` pins the memoized engine against it on
generated type pairs.

``matches(value, t)`` is the *semantics* of the algebra: does a concrete
JSON value inhabit ``t``?  It is the ground truth that inference soundness
and subtyping soundness are tested against.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.types.intern import EpochMemo, InternTable, global_table
from repro.types.simplify import simplify
from repro.types.terms import (
    AnyType,
    ArrType,
    AtomType,
    BotType,
    RecType,
    Type,
    UnionType,
)

# Frame modes: a conjunction of subgoals vs. a disjunction.
_ALL = 0
_ANY = 1

# Verdict memo for the global table, invalidated when the table starts a
# new epoch (ids of cleared nodes may be recycled).  Private tables get a
# fresh per-call memo instead — correctness never depends on the cache.
_MEMO = EpochMemo()


def _memo_for(table: InternTable) -> dict:
    return _MEMO.map_for(table)


def is_subtype(left: Type, right: Type, *, table: Optional[InternTable] = None) -> bool:
    """Decide ``left <: right`` on canonical forms (memoized, iterative)."""
    if table is None:
        table = global_table()
    memo = _memo_for(table)
    return _decide(table.canonical(left), table.canonical(right), memo)


def is_equivalent(left: Type, right: Type, *, table: Optional[InternTable] = None) -> bool:
    """Mutual subtyping (one canonicalization, shared memo)."""
    if table is None:
        table = global_table()
    memo = _memo_for(table)
    s = table.canonical(left)
    t = table.canonical(right)
    return _decide(s, t, memo) and _decide(t, s, memo)


def _expand(s: Type, t: Type):
    """Expand one canonical pair (``s is not t``) into a verdict or subgoals.

    Returns ``(verdict, None, None)`` when the pair is decidable without
    recursion, else ``(None, mode, pairs)`` where ``mode`` is ``_ALL`` or
    ``_ANY`` over the child ``pairs``.  Case order mirrors the seed
    ``_sub`` so the boolean result is identical by construction.
    """
    cs = s.__class__
    ct = t.__class__
    if cs is BotType:
        return True, None, None
    if ct is AnyType:
        return True, None, None
    if cs is AnyType:
        return False, None, None
    if cs is UnionType:
        return None, _ALL, [(m, t) for m in s.members]
    if ct is UnionType:
        if cs is AtomType and s.tag == "num":
            # Num <: Int + Flt: numbers split exactly into ints and floats.
            tags = {m.tag for m in t.members if m.__class__ is AtomType}
            if "int" in tags and "flt" in tags:
                return True, None, None
        return None, _ANY, [(s, m) for m in t.members]
    if cs is AtomType:
        if ct is not AtomType:
            return False, None, None
        if s.tag == t.tag:
            return True, None, None
        return (t.tag == "num" and s.kind == "number"), None, None
    if cs is ArrType and ct is ArrType:
        return None, _ALL, [(s.item, t.item)]
    if cs is RecType and ct is RecType:
        # Closed-record subtyping with optional fields: (1) every field s
        # may exhibit is allowed by t, (2) every field t requires is
        # required by s, (3) common field types are subgoals.
        t_fields = t.field_map()
        pairs = []
        for f in s.fields:
            tf = t_fields.get(f.name)
            if tf is None:
                return False, None, None
            pairs.append((f.type, tf.type))
        s_fields = s.field_map()
        for tf in t.fields:
            if tf.required:
                sf = s_fields.get(tf.name)
                if sf is None or not sf.required:
                    return False, None, None
        return None, _ALL, pairs
    return False, None, None


def _decide(s: Type, t: Type, memo: dict) -> bool:
    """Iterative worklist evaluation of ``s <: t`` over canonical terms."""
    if s is t:
        return True
    key = (id(s), id(t))
    cached = memo.get(key)
    if cached is not None:
        return cached
    verdict, mode, pairs = _expand(s, t)
    if verdict is not None:
        memo[key] = verdict
        return verdict
    # Frames are [key, mode, pairs, resume-index]; a frame completes when
    # its combinator short-circuits or its subgoals are exhausted, and
    # the parent re-reads the child's verdict through the memo.
    stack = [[key, mode, pairs, 0]]
    while stack:
        frame = stack[-1]
        fmode = frame[1]
        fpairs = frame[2]
        i = frame[3]
        n = len(fpairs)
        verdict = None
        pushed = False
        while i < n:
            cs, ct = fpairs[i]
            if cs is ct:
                r = True
            else:
                ckey = (id(cs), id(ct))
                r = memo.get(ckey)
                if r is None:
                    r, cmode, cpairs = _expand(cs, ct)
                    if r is None:
                        frame[3] = i
                        stack.append([ckey, cmode, cpairs, 0])
                        pushed = True
                        break
                    memo[ckey] = r
            i += 1
            if fmode is _ANY:
                if r:
                    verdict = True
                    break
            elif not r:
                verdict = False
                break
        if pushed:
            continue
        if verdict is None:
            # Exhausted: a conjunction with no failures holds, a
            # disjunction with no successes fails.
            verdict = fmode is _ALL
        memo[frame[0]] = verdict
        stack.pop()
    return memo[key]


# ---------------------------------------------------------------------------
# unmemoized reference (the seed semantics, kept as the testing oracle)
# ---------------------------------------------------------------------------


def _sub(s: Type, t: Type) -> bool:
    if s == t:
        return True
    if isinstance(s, BotType):
        return True
    if isinstance(t, AnyType):
        return True
    if isinstance(s, AnyType):
        return False
    if isinstance(s, UnionType):
        return all(_sub(m, t) for m in s.members)
    if isinstance(t, UnionType):
        if any(_sub(s, m) for m in t.members):
            return True
        # Num <: Int + Flt: numbers split exactly into ints and floats.
        if isinstance(s, AtomType) and s.tag == "num":
            tags = {m.tag for m in t.members if isinstance(m, AtomType)}
            return "int" in tags and "flt" in tags
        return False
    if isinstance(s, AtomType) and isinstance(t, AtomType):
        if s.tag == t.tag:
            return True
        return t.tag == "num" and s.kind == "number"
    if isinstance(s, ArrType) and isinstance(t, ArrType):
        return _sub(s.item, t.item)
    if isinstance(s, RecType) and isinstance(t, RecType):
        return _sub_record(s, t)
    return False


def _sub_record(s: RecType, t: RecType) -> bool:
    """Closed-record subtyping with optional fields.

    ``s <: t`` iff (1) every field ``s`` may exhibit is allowed by ``t``
    (closedness), (2) every field ``t`` requires is required by ``s``, and
    (3) common field types are in the subtype relation.
    """
    t_fields = t.field_map()
    for f in s.fields:
        tf = t_fields.get(f.name)
        if tf is None:
            return False
        if not _sub(f.type, tf.type):
            return False
    s_fields = s.field_map()
    for tf in t.fields:
        if tf.required:
            sf = s_fields.get(tf.name)
            if sf is None or not sf.required:
                return False
    return True


def is_subtype_reference(left: Type, right: Type) -> bool:
    """The seed's unmemoized recursive check (testing oracle)."""
    return _sub(simplify(left), simplify(right))


def matches(value: Any, t: Type) -> bool:
    """Semantic membership: does JSON ``value`` inhabit type ``t``?"""
    t = simplify(t)
    return _matches(value, t)


def _matches(value: Any, t: Type) -> bool:
    if isinstance(t, AnyType):
        return True
    if isinstance(t, BotType):
        return False
    if isinstance(t, UnionType):
        return any(_matches(value, m) for m in t.members)
    kind = kind_of(value)
    if isinstance(t, AtomType):
        if t.tag == "null":
            return kind is JsonKind.NULL
        if t.tag == "bool":
            return kind is JsonKind.BOOLEAN
        if t.tag == "str":
            return kind is JsonKind.STRING
        if kind is not JsonKind.NUMBER:
            return False
        if t.tag == "int":
            return is_integer_value(value)
        if t.tag == "flt":
            return not is_integer_value(value)
        return True  # num
    if isinstance(t, ArrType):
        if kind is not JsonKind.ARRAY:
            return False
        return all(_matches(v, t.item) for v in value)
    if isinstance(t, RecType):
        if kind is not JsonKind.OBJECT:
            return False
        fields = t.field_map()
        for name in value:
            if name not in fields:
                return False
        for f in t.fields:
            if f.name in value:
                if not _matches(value[f.name], f.type):
                    return False
            elif f.required:
                return False
        return True
    raise TypeError(f"unknown type term {t!r}")  # pragma: no cover
