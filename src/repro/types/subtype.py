"""Structural subtyping and semantic membership for the type algebra.

``is_subtype(s, t)`` decides ``s <: t`` structurally.  It is **sound**
(``s <: t`` implies every value of ``s`` matches ``t``) and complete on
the fragment inference produces; the one distributivity law it implements
specially is ``Num <: Int + Flt`` (every JSON number is an integer or a
float).  General union-distribution over records is intentionally not
chased — the tutorial's systems never need it, and the property tests pin
the soundness direction instead.

``matches(value, t)`` is the *semantics* of the algebra: does a concrete
JSON value inhabit ``t``?  It is the ground truth that inference soundness
and subtyping soundness are tested against.
"""

from __future__ import annotations

from typing import Any

from repro.jsonvalue.model import JsonKind, is_integer_value, kind_of
from repro.types.simplify import simplify
from repro.types.terms import (
    AnyType,
    ArrType,
    AtomType,
    BotType,
    RecType,
    Type,
    UnionType,
)


def is_subtype(left: Type, right: Type) -> bool:
    """Decide ``left <: right`` on simplified forms."""
    return _sub(simplify(left), simplify(right))


def _sub(s: Type, t: Type) -> bool:
    if s == t:
        return True
    if isinstance(s, BotType):
        return True
    if isinstance(t, AnyType):
        return True
    if isinstance(s, AnyType):
        return False
    if isinstance(s, UnionType):
        return all(_sub(m, t) for m in s.members)
    if isinstance(t, UnionType):
        if any(_sub(s, m) for m in t.members):
            return True
        # Num <: Int + Flt: numbers split exactly into ints and floats.
        if isinstance(s, AtomType) and s.tag == "num":
            tags = {m.tag for m in t.members if isinstance(m, AtomType)}
            return "int" in tags and "flt" in tags
        return False
    if isinstance(s, AtomType) and isinstance(t, AtomType):
        if s.tag == t.tag:
            return True
        return t.tag == "num" and s.kind == "number"
    if isinstance(s, ArrType) and isinstance(t, ArrType):
        return _sub(s.item, t.item)
    if isinstance(s, RecType) and isinstance(t, RecType):
        return _sub_record(s, t)
    return False


def _sub_record(s: RecType, t: RecType) -> bool:
    """Closed-record subtyping with optional fields.

    ``s <: t`` iff (1) every field ``s`` may exhibit is allowed by ``t``
    (closedness), (2) every field ``t`` requires is required by ``s``, and
    (3) common field types are in the subtype relation.
    """
    t_fields = t.field_map()
    for f in s.fields:
        tf = t_fields.get(f.name)
        if tf is None:
            return False
        if not _sub(f.type, tf.type):
            return False
    s_fields = s.field_map()
    for tf in t.fields:
        if tf.required:
            sf = s_fields.get(tf.name)
            if sf is None or not sf.required:
                return False
    return True


def is_equivalent(left: Type, right: Type) -> bool:
    """Mutual subtyping."""
    return is_subtype(left, right) and is_subtype(right, left)


def matches(value: Any, t: Type) -> bool:
    """Semantic membership: does JSON ``value`` inhabit type ``t``?"""
    t = simplify(t)
    return _matches(value, t)


def _matches(value: Any, t: Type) -> bool:
    if isinstance(t, AnyType):
        return True
    if isinstance(t, BotType):
        return False
    if isinstance(t, UnionType):
        return any(_matches(value, m) for m in t.members)
    kind = kind_of(value)
    if isinstance(t, AtomType):
        if t.tag == "null":
            return kind is JsonKind.NULL
        if t.tag == "bool":
            return kind is JsonKind.BOOLEAN
        if t.tag == "str":
            return kind is JsonKind.STRING
        if kind is not JsonKind.NUMBER:
            return False
        if t.tag == "int":
            return is_integer_value(value)
        if t.tag == "flt":
            return not is_integer_value(value)
        return True  # num
    if isinstance(t, ArrType):
        if kind is not JsonKind.ARRAY:
            return False
        return all(_matches(v, t.item) for v in value)
    if isinstance(t, RecType):
        if kind is not JsonKind.OBJECT:
            return False
        fields = t.field_map()
        for name in value:
            if name not in fields:
                return False
        for f in t.fields:
            if f.name in value:
                if not _matches(value[f.name], f.type):
                    return False
            elif f.required:
                return False
        return True
    raise TypeError(f"unknown type term {t!r}")  # pragma: no cover
